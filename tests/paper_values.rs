//! Regression tests pinning the reproduction to the paper's published
//! numbers (Anceaume, Sericola, Ludinard, Tronel — DSN 2011).
//!
//! Every constant below is either printed verbatim in the paper or is an
//! exact closed form the paper states; see the "Paper vs measured" note
//! in the repository README for the two documented typos in the original
//! (Table I's `1518` and Table II's `0.26`).

use pollux::{ClusterAnalysis, InitialCondition, ModelParams, ModelSpace};

fn analysis(mu: f64, d: f64, k: usize) -> ClusterAnalysis {
    let params = ModelParams::paper_defaults()
        .with_mu(mu)
        .with_d(d)
        .with_k(k)
        .expect("valid k");
    ClusterAnalysis::new(&params, InitialCondition::Delta).expect("paper parameters")
}

#[test]
fn figure1_caption_288_states() {
    let space = ModelSpace::new(&ModelParams::paper_defaults());
    assert_eq!(space.len(), 288);
}

#[test]
fn section_vii_mu0_constants() {
    // "in a failure free environment (mu = 0), E(T_S)+E(T_P) = ⌊Δ²/4⌋ = 12"
    // and "p(AmS) = 0.57 and p(AlS) = 0.43".
    let a = analysis(0.0, 0.9, 1);
    assert!((a.expected_safe_events().unwrap() - 12.0).abs() < 1e-9);
    assert!(a.expected_polluted_events().unwrap() < 1e-12);
    let split = a.absorption_split().unwrap();
    assert!((split.safe_merge - 4.0 / 7.0).abs() < 1e-9);
    assert!((split.safe_split - 3.0 / 7.0).abs() < 1e-9);
}

#[test]
fn table1_row_mu10() {
    // Paper: E(T_S) = 12.09, 12.08, 12.08; E(T_P) = 0.15, 2.6 (d=.95,.99).
    let a = analysis(0.10, 0.95, 1);
    assert!((a.expected_safe_events().unwrap() - 12.09).abs() < 0.01);
    assert!((a.expected_polluted_events().unwrap() - 0.15).abs() < 0.01);
    let a = analysis(0.10, 0.99, 1);
    assert!((a.expected_safe_events().unwrap() - 12.08).abs() < 0.01);
    assert!((a.expected_polluted_events().unwrap() - 2.6).abs() < 0.05);
}

#[test]
fn table1_row_mu20() {
    // Paper: 11.88 / 1.14 (d=.95), 11.84 / 699.7 (d=.99),
    // 11.83 / 511810822 (d=.999).
    let a = analysis(0.20, 0.95, 1);
    assert!((a.expected_safe_events().unwrap() - 11.88).abs() < 0.01);
    assert!((a.expected_polluted_events().unwrap() - 1.14).abs() < 0.01);
    let a = analysis(0.20, 0.99, 1);
    assert!((a.expected_polluted_events().unwrap() - 699.7).abs() < 0.5);
    let a = analysis(0.20, 0.999, 1);
    let tp = a.expected_polluted_events().unwrap();
    assert!((tp / 511_810_822.0 - 1.0).abs() < 1e-3, "E(T_P) = {tp}");
}

#[test]
fn table1_row_mu30() {
    // Paper: 11.54 / 5.96 (d=.95), 11.48 / 12597 (d=.99),
    // 11.47 / 9299884149 (d=.999).
    let a = analysis(0.30, 0.95, 1);
    assert!((a.expected_safe_events().unwrap() - 11.54).abs() < 0.02);
    assert!((a.expected_polluted_events().unwrap() - 5.96).abs() < 0.02);
    let a = analysis(0.30, 0.99, 1);
    assert!((a.expected_polluted_events().unwrap() - 12_597.0).abs() < 5.0);
    let a = analysis(0.30, 0.999, 1);
    let tp = a.expected_polluted_events().unwrap();
    assert!((tp / 9_299_884_149.0 - 1.0).abs() < 1e-3, "E(T_P) = {tp}");
}

#[test]
fn table1_mu10_d999_paper_typo() {
    // The paper prints 1518 here, which breaks its own d-scaling trend
    // (the mu=20% and mu=30% columns scale by ~7e5 from d=.99 to d=.999);
    // our value continues the trend and every other cell matches exactly.
    let a = analysis(0.10, 0.999, 1);
    let tp = a.expected_polluted_events().unwrap();
    assert!((tp / 1.488e6 - 1.0).abs() < 1e-2, "E(T_P) = {tp}");
}

#[test]
fn table2_successive_sojourns() {
    // Paper (d = 90%): columns mu = 0, 10, 20, 30 %:
    // E(T_S1): 12, 12.085, 11.890, 11.570
    // E(T_S2): 0, 0.013, 0.033, 0.043
    // E(T_P1): 0, 0.099, 0.558, 1.611
    // E(T_P2): 0, 0.004, 0.26 [documented typo, see README], 0.075
    let cases = [
        (0.0, 12.0, 0.0, 0.0, 0.0),
        (0.10, 12.085, 0.013, 0.099, 0.004),
        (0.20, 11.890, 0.033, 0.558, 0.026),
        (0.30, 11.570, 0.043, 1.611, 0.075),
    ];
    for (mu, s1, s2, p1, p2) in cases {
        let a = analysis(mu, 0.9, 1);
        let s = a.successive_safe_sojourns(2);
        let p = a.successive_polluted_sojourns(2);
        assert!((s[0] - s1).abs() < 0.005, "mu={mu}: T_S1 {} vs {s1}", s[0]);
        assert!((s[1] - s2).abs() < 0.002, "mu={mu}: T_S2 {} vs {s2}", s[1]);
        assert!((p[0] - p1).abs() < 0.002, "mu={mu}: T_P1 {} vs {p1}", p[0]);
        assert!((p[1] - p2).abs() < 0.002, "mu={mu}: T_P2 {} vs {p2}", p[1]);
    }
}

#[test]
fn figure4_polluted_merge_below_8_percent() {
    // Section VII-E: "strictly less than 8%" for alpha = delta, even at
    // mu = 30%, d = 90%.
    let a = analysis(0.30, 0.90, 1);
    let split = a.absorption_split().unwrap();
    assert!(split.polluted_merge < 0.08);
    assert!(split.polluted_merge > 0.06); // and it is close to the bound
    assert_eq!(split.polluted_split, 0.0);
}

#[test]
fn figure3_protocols_bound_the_family() {
    // "protocol_1 and protocol_C bound the performance of the other ones".
    let mu = 0.25;
    let d = 0.9;
    let e_p: Vec<f64> = (1..=7)
        .map(|k| analysis(mu, d, k).expected_polluted_events().unwrap())
        .collect();
    for k in 0..6 {
        assert!(
            e_p[k] <= e_p[k + 1] + 1e-9,
            "E(T_P) not monotone at k={}",
            k + 1
        );
    }
}

#[test]
fn figure5_inferred_mu25_peak() {
    // The paper reports E(N_P(m))/n < 2.2%; mu = 25% reproduces that
    // ceiling (peak ~2.17% at n=500, d=90%).
    let params = ModelParams::paper_defaults().with_mu(0.25).with_d(0.9);
    let model = pollux::OverlayModel::new(&params, InitialCondition::Delta, 500).unwrap();
    let points: Vec<u64> = (0..=50).map(|i| i * 2000).collect();
    let (_, peak) = model.peak_polluted(&points).unwrap();
    assert!(peak < 0.022, "peak {peak}");
    assert!(peak > 0.020, "peak {peak}");
}

#[test]
fn figure5_caption_lifetimes() {
    // Captions: d = 30% ⇒ L = 6.58; d = 90% ⇒ L = 46.05 (paper rounding).
    let l30 = ModelParams::paper_defaults()
        .with_d(0.3)
        .lifetime_l()
        .unwrap();
    let l90 = ModelParams::paper_defaults()
        .with_d(0.9)
        .lifetime_l()
        .unwrap();
    assert!((l30 - 6.58).abs() < 0.02, "L(30%) = {l30}");
    assert!((l90 - 46.05).abs() < 0.1, "L(90%) = {l90}");
}
