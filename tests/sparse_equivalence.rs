//! Dense-LU vs sparse-solver equivalence: the two analytical pipelines
//! must agree to [`pollux_prob::tolerance::ANALYTIC_REL_TOL`] on every
//! sweep-visible metric across a random `(μ, d, Δ, k)` grid, plus direct
//! dense/sparse agreement of the lower-level Markov analyses and CSR edge
//! cases. The agreement predicate is the shared
//! [`pollux_prob::tolerance::analytic_close`], so this suite and the
//! `pollux-fuzz` differential oracle can never drift apart.

use pollux_prob::tolerance::analytic_close as close;
use proptest::prelude::*;

use pollux::{AnalysisMode, ClusterAnalysis, InitialCondition, ModelParams};
use pollux_linalg::sparse::CsrMatrix;
use pollux_linalg::SolverOptions;
use pollux_markov::{AbsorbingChain, Dtmc, SojournAnalysis, SojournPartition, SparseDtmc};

/// Random model parameters kept small enough for debug-build dense LU.
fn params_strategy() -> impl Strategy<Value = ModelParams> {
    (
        3usize..=7,
        3usize..=8,
        0.0f64..0.6,
        0.0f64..0.95,
        0.01f64..0.5,
    )
        .prop_flat_map(|(c, delta, mu, d, nu)| {
            (1usize..=c).prop_map(move |k| {
                ModelParams::new(c, delta, k)
                    .expect("generated sizes are valid")
                    .with_mu(mu)
                    .with_d(d)
                    .with_nu(nu)
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The full pipeline: every metric the sweep engine can emit agrees
    /// between the forced-dense and forced-sparse `ClusterAnalysis`.
    #[test]
    fn pipelines_agree_on_random_grid(params in params_strategy()) {
        for initial in [InitialCondition::Delta, InitialCondition::Beta] {
            let dense =
                ClusterAnalysis::new_with_mode(&params, initial.clone(), AnalysisMode::Dense)
                    .expect("dense pipeline");
            let sparse =
                ClusterAnalysis::new_with_mode(&params, initial.clone(), AnalysisMode::Sparse)
                    .expect("sparse pipeline");
            let pairs = [
                ("E_T_S", dense.expected_safe_events(), sparse.expected_safe_events()),
                ("E_T_P", dense.expected_polluted_events(), sparse.expected_polluted_events()),
                (
                    "E_T",
                    dense.expected_absorption_events(),
                    sparse.expected_absorption_events(),
                ),
                ("var_S", dense.variance_safe_events(), sparse.variance_safe_events()),
                ("var_P", dense.variance_polluted_events(), sparse.variance_polluted_events()),
                ("p_ever", dense.pollution_probability(), sparse.pollution_probability()),
            ];
            for (name, a, b) in pairs {
                let a = a.expect("dense metric");
                let b = b.expect("sparse metric");
                prop_assert!(close(a, b), "{name} ({initial:?}): {a} vs {b}");
            }
            let sd = dense.absorption_split().expect("dense split");
            let ss = sparse.absorption_split().expect("sparse split");
            prop_assert!(close(sd.safe_merge, ss.safe_merge), "AmS: {sd:?} vs {ss:?}");
            prop_assert!(close(sd.safe_split, ss.safe_split), "AlS: {sd:?} vs {ss:?}");
            prop_assert!(
                close(sd.polluted_merge, ss.polluted_merge),
                "AmP: {sd:?} vs {ss:?}"
            );
            prop_assert!(
                close(sd.polluted_split, ss.polluted_split),
                "AlP: {sd:?} vs {ss:?}"
            );
            for (a, b) in dense
                .successive_safe_sojourns(4)
                .iter()
                .zip(sparse.successive_safe_sojourns(4).iter())
            {
                prop_assert!(close(*a, *b), "sojourn series: {a} vs {b}");
            }
            for (a, b) in dense
                .safe_time_distribution(64)
                .iter()
                .zip(sparse.safe_time_distribution(64).iter())
            {
                prop_assert!(close(*a, *b), "distribution: {a} vs {b}");
            }
        }
    }

    /// The Markov layer in isolation: `AbsorbingChain` steps/absorption
    /// probabilities and `SojournAnalysis` sojourns on the same chain,
    /// dense vs forced-iterative sparse.
    #[test]
    fn markov_analyses_agree_on_random_grid(params in params_strategy()) {
        let chain = pollux::ClusterChain::build(&params);
        let dense_chain = chain.dtmc();
        let sparse_chain = chain.sparse_dtmc();

        let dense_abs = AbsorbingChain::new(dense_chain).expect("dense absorbing");
        let sparse_abs = AbsorbingChain::new_sparse(sparse_chain, SolverOptions::force_sparse())
            .expect("sparse absorbing");
        prop_assert_eq!(dense_abs.transient_states(), sparse_abs.transient_states());
        prop_assert_eq!(dense_abs.closed_classes(), sparse_abs.closed_classes());
        for i in 0..dense_abs.n_states() {
            let a = dense_abs.expected_steps_from(i).expect("dense steps");
            let b = sparse_abs.expected_steps_from(i).expect("sparse steps");
            prop_assert!(close(a, b), "steps from {i}: {a} vs {b}");
            let pa = dense_abs.absorption_probabilities_from(i).expect("dense absorption");
            let pb = sparse_abs.absorption_probabilities_from(i).expect("sparse absorption");
            for (x, y) in pa.iter().zip(pb.iter()) {
                prop_assert!(close(*x, *y), "absorption from {i}: {x} vs {y}");
            }
        }

        let partition = SojournPartition::new(
            chain.space().transient_safe().to_vec(),
            chain.space().transient_polluted().to_vec(),
        )
        .expect("disjoint partition");
        let alpha = InitialCondition::Delta
            .distribution(chain.space())
            .expect("valid initial");
        let dense_soj =
            SojournAnalysis::new(dense_chain, &partition, &alpha).expect("dense sojourns");
        let sparse_soj = SojournAnalysis::new_sparse(
            sparse_chain,
            &partition,
            &alpha,
            SolverOptions::force_sparse(),
        )
        .expect("sparse sojourns");
        for (a, b) in [
            (dense_soj.expected_total_s(), sparse_soj.expected_total_s()),
            (dense_soj.expected_total_p(), sparse_soj.expected_total_p()),
            (dense_soj.variance_s(), sparse_soj.variance_s()),
            (dense_soj.variance_p(), sparse_soj.variance_p()),
        ] {
            let a = a.expect("dense sojourn metric");
            let b = b.expect("sparse sojourn metric");
            prop_assert!(close(a, b), "{a} vs {b}");
        }
        for (a, b) in dense_soj
            .expected_sojourns_p(4)
            .iter()
            .zip(sparse_soj.expected_sojourns_p(4).iter())
        {
            prop_assert!(close(*a, *b), "P-sojourns: {a} vs {b}");
        }
    }

    /// CSR construction invariants under adversarial triplet streams:
    /// duplicates, explicit zeros and empty rows must round-trip exactly
    /// like a dense scatter-accumulate.
    #[test]
    fn csr_matches_dense_scatter(
        triplets in proptest::collection::vec(
            (0usize..6, 0usize..6, -2.0f64..2.0),
            0..40,
        ),
        zero_coords in proptest::collection::vec((0usize..6, 0usize..6), 0..8),
    ) {
        let mut all = triplets.clone();
        for &(i, j) in &zero_coords {
            all.push((i, j, 0.0));
        }
        let m = CsrMatrix::from_triplets(6, 6, &all).expect("in-bounds triplets");
        // Dense scatter-accumulate reference.
        let mut dense = [[0.0f64; 6]; 6];
        for &(i, j, v) in &all {
            dense[i][j] += v;
        }
        for (i, row) in dense.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                prop_assert_eq!(m.get(i, j), want, "({}, {})", i, j);
            }
        }
        // Stored entries are sorted, deduplicated and non-zero.
        for i in 0..6 {
            let cols: Vec<usize> = m.row_entries(i).map(|(j, _)| j).collect();
            prop_assert!(cols.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(m.row_entries(i).all(|(_, v)| v != 0.0));
        }
        // Transpose round-trips.
        prop_assert_eq!(m.transpose().transpose(), m);
    }
}

/// Dense/sparse `Dtmc` bridges carry bit-identical probabilities, so the
/// pipelines genuinely analyze the same chain.
#[test]
fn representations_carry_identical_probabilities() {
    let params = ModelParams::paper_defaults().with_mu(0.3).with_d(0.9);
    let chain = pollux::ClusterChain::build(&params);
    let dense = chain.dtmc();
    let sparse = chain.sparse_dtmc();
    for i in 0..dense.n_states() {
        for j in 0..dense.n_states() {
            assert_eq!(dense.prob(i, j), sparse.prob(i, j), "({i}, {j})");
        }
    }
    let rebuilt = SparseDtmc::from_dense(dense);
    assert_eq!(&rebuilt, sparse);
}

/// A singular transient block (subset containing a closed class) fails
/// loudly on both pipelines rather than returning garbage.
#[test]
fn singular_systems_error_on_both_paths() {
    let chain = Dtmc::from_rows(&[&[1.0, 0.0, 0.0], &[0.5, 0.0, 0.5], &[0.0, 0.0, 1.0]]).unwrap();
    let sparse = SparseDtmc::from_dense(&chain);
    // Subset {0, 1} contains the absorbing state 0.
    let partition = SojournPartition::new(vec![0, 1], vec![]).unwrap();
    let alpha = [0.0, 1.0, 0.0];
    assert!(SojournAnalysis::new(&chain, &partition, &alpha).is_err());
    assert!(SojournAnalysis::new_sparse(
        &sparse,
        &partition,
        &alpha,
        SolverOptions::force_sparse()
    )
    .is_err());
}
