//! Replays the committed fuzz-failure corpus forever.
//!
//! Every file under `tests/regressions/` is a shrunk scenario that once
//! exposed a disagreement between two evaluation paths (under fault
//! injection or for real). On a healthy build each must pass every
//! applicable oracle pair — a disagreement here means a regression in
//! one of the evaluation paths, reproducible from the JSON alone.

use pollux_workspace::fuzz::{corpus, DiffRunner, PairStatus};
use std::path::Path;

#[test]
fn corpus_scenarios_stay_green() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/regressions");
    let entries = corpus::load_corpus(&dir).expect("corpus directory is readable");
    assert!(
        !entries.is_empty(),
        "the corpus ships with at least the two fault-injection minima"
    );
    let runner = DiffRunner::new();
    for (name, scenario) in &entries {
        let verdict = runner.run(scenario);
        for pair in &verdict.pairs {
            assert_ne!(
                pair.status,
                PairStatus::Disagree,
                "{name}: {} disagrees: {}",
                pair.name,
                pair.detail
            );
        }
    }
}

#[test]
fn corpus_files_round_trip_byte_identically() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/regressions");
    for (name, scenario) in corpus::load_corpus(&dir).expect("corpus directory is readable") {
        let on_disk = std::fs::read_to_string(dir.join(&name)).expect("corpus file is readable");
        assert_eq!(
            scenario.to_json(),
            on_disk,
            "{name}: re-encoding must reproduce the committed bytes"
        );
    }
}
