//! Time-driven overlay simulation: the discrete-event engine drives
//! Poisson churn over a real overlay while Property 1 (limited identifier
//! lifetimes) is enforced in the *time* domain — expired incarnations are
//! detected at event time and force the peer out, exactly as Section III-D
//! prescribes.

use pollux_des::churn::{ChurnKind, EventMix, PoissonProcess};
use pollux_des::{EventHandler, Scheduler, SimTime, Simulation};
use pollux_overlay::incarnation::IncarnationPolicy;
use pollux_overlay::{ops, Behavior, Cluster, ClusterParams, Label, Member, Overlay, PeerRegistry};
use rand::{rngs::StdRng, RngExt, SeedableRng};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// One churn arrival (join or leave decided by the mix).
    Churn,
}

struct ChurnedOverlay {
    overlay: Overlay,
    registry: PeerRegistry,
    policy: IncarnationPolicy,
    process: PoissonProcess,
    mix: EventMix,
    rng: StdRng,
    next_joiner: usize,
    churn_events: u64,
    forced_expirations: u64,
}

impl ChurnedOverlay {
    fn member_for(&mut self, idx: usize, t: f64) -> Member {
        let peer = &self.registry.peers()[idx % self.registry.len()];
        Member {
            peer: peer.id,
            malicious: peer.behavior == Behavior::Malicious,
            id: peer.current_id(&self.policy, t),
        }
    }

    /// Property-1 sweep of one cluster: members presenting an identifier
    /// that is no longer valid at time `t` are cut (spares leave, core
    /// members trigger the maintenance procedure).
    fn expire_invalid_members(&mut self, label: &Label, t: f64) {
        loop {
            let cluster = self.overlay.cluster(label).expect("label exists");
            let stale = cluster
                .core()
                .iter()
                .chain(cluster.spare())
                .find(|m| {
                    let peer = self.registry.peer(m.peer).expect("registry member");
                    !self
                        .policy
                        .is_id_valid(&peer.initial_id, peer.certificate.t0 as f64, &m.id, t)
                })
                .map(|m| m.peer);
            let Some(peer) = stale else { break };
            let cluster = self.overlay.cluster_mut(label).expect("label exists");
            if cluster.position_in_spare_public(peer) {
                ops::leave_spare(cluster, peer).expect("stale spare leaves");
            } else if cluster.spare_size() > 0 {
                ops::leave_core_randomized(cluster, peer, 1, &mut self.rng)
                    .expect("stale core member leaves");
            } else {
                break; // would force a merge; leave it to the churn logic
            }
            self.forced_expirations += 1;
        }
    }
}

/// Test-only helper: expose spare membership without widening the library
/// API surface.
trait SparePos {
    fn position_in_spare_public(&self, peer: pollux_overlay::PeerId) -> bool;
}

impl SparePos for Cluster {
    fn position_in_spare_public(&self, peer: pollux_overlay::PeerId) -> bool {
        self.spare().iter().any(|m| m.peer == peer)
    }
}

impl EventHandler for ChurnedOverlay {
    type Event = Event;

    fn handle(&mut self, t: SimTime, _ev: Event, sched: &mut Scheduler<Event>) {
        self.churn_events += 1;
        let labels = self.overlay.labels();
        let label = labels[self.rng.random_range(0..labels.len())].clone();

        // Enforce Property 1 before serving the event.
        self.expire_invalid_members(&label, t.value());

        match self.mix.sample(&mut self.rng) {
            ChurnKind::Join => {
                let idx = self.next_joiner;
                self.next_joiner += 1;
                let member = self.member_for(idx, t.value());
                let cluster = self.overlay.cluster_mut(&label).expect("label exists");
                if !cluster.contains(member.peer) && !cluster.must_split() {
                    ops::join(cluster, member).expect("join fits");
                } else if cluster.must_split() {
                    let _ = self.overlay.split_cluster(&label, &mut self.rng);
                }
            }
            ChurnKind::Leave => {
                let cluster = self.overlay.cluster_mut(&label).expect("label exists");
                if cluster.must_merge() {
                    let _ = self.overlay.merge_cluster(&label);
                } else if cluster.spare_size() > 0 {
                    let total = cluster.params().core_size() + cluster.spare_size();
                    let pick = self.rng.random_range(0..total);
                    if pick < cluster.params().core_size() {
                        let peer = cluster.core()[pick].peer;
                        ops::leave_core_randomized(cluster, peer, 1, &mut self.rng)
                            .expect("core leave with spares available");
                    } else {
                        let peer = cluster.spare()[pick - cluster.params().core_size()].peer;
                        ops::leave_spare(cluster, peer).expect("spare leave");
                    }
                }
            }
        }

        // Schedule the next arrival.
        let next = self.process.next_after(t, &mut self.rng);
        sched.schedule(next, Event::Churn);
    }
}

fn bootstrap(registry: &PeerRegistry, policy: &IncarnationPolicy) -> Overlay {
    let params = ClusterParams::new(4, 6).unwrap();
    let mut clusters = Vec::new();
    let mut idx = 0usize;
    for label in ["00", "01", "10", "11"] {
        let take = |idx: &mut usize, t: f64| {
            let peer = &registry.peers()[*idx];
            *idx += 1;
            Member {
                peer: peer.id,
                malicious: peer.behavior == Behavior::Malicious,
                id: peer.current_id(policy, t),
            }
        };
        let core: Vec<Member> = (0..4).map(|_| take(&mut idx, 0.0)).collect();
        let spare: Vec<Member> = (0..3).map(|_| take(&mut idx, 0.0)).collect();
        clusters.push(Cluster::new(Label::parse(label).unwrap(), params, core, spare).unwrap());
    }
    Overlay::bootstrap(params, clusters).unwrap()
}

#[test]
fn timed_churn_respects_property_1_and_invariants() {
    let mut rng = StdRng::seed_from_u64(2011);
    let registry = PeerRegistry::generate(2000, 0.1, &mut rng);
    // Lifetime of 40 time units with a 2-unit grace window; churn rate 2
    // events per unit: identifiers expire every ~80 events.
    let policy = IncarnationPolicy::new(40.0, 2.0).unwrap();
    let overlay = bootstrap(&registry, &policy);
    let handler = ChurnedOverlay {
        overlay,
        registry,
        policy,
        process: PoissonProcess::new(2.0).unwrap(),
        mix: EventMix::balanced(),
        rng,
        next_joiner: 28,
        churn_events: 0,
        forced_expirations: 0,
    };

    let mut sim = Simulation::new(handler);
    sim.schedule(SimTime::ZERO, Event::Churn);
    let horizon = 400.0;
    sim.run_until(SimTime::from(horizon));

    let h = sim.handler();
    // Poisson count sanity: ~rate * horizon events (5-sigma band).
    let expected = 2.0 * horizon;
    assert!(
        (h.churn_events as f64 - expected).abs() < 5.0 * expected.sqrt() + 1.0,
        "churn events {} vs expected {expected}",
        h.churn_events
    );
    // Identifiers expired (~10 lifetimes elapsed) and were acted upon.
    assert!(
        h.forced_expirations > 20,
        "expected many Property-1 expirations, got {}",
        h.forced_expirations
    );
    // Structural invariants survived the whole run.
    h.overlay.check_cover().expect("prefix cover intact");
    for cl in h.overlay.clusters() {
        cl.check_invariants().expect("cluster invariants intact");
    }
    // And no member currently presents an identifier older than the grace
    // window allows... except possibly in clusters that could not run a
    // maintenance (empty spare set); those are rare — require 90% clean.
    let t = sim.now().value();
    let mut total = 0usize;
    let mut valid = 0usize;
    for cl in h.overlay.clusters() {
        for m in cl.core().iter().chain(cl.spare()) {
            total += 1;
            let peer = h.registry.peer(m.peer).unwrap();
            if h.policy
                .is_id_valid(&peer.initial_id, peer.certificate.t0 as f64, &m.id, t)
            {
                valid += 1;
            }
        }
    }
    assert!(
        valid as f64 >= 0.9 * total as f64,
        "only {valid}/{total} members hold valid identifiers"
    );
}
