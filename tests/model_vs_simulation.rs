//! Cross-crate validation: the analytical Figure-2 matrix (crates/core +
//! crates/markov + crates/linalg) against the independently-coded
//! event-level Monte-Carlo simulator (crates/core::simulation +
//! crates/adversary + crates/prob), and Theorem 2 against the n-cluster
//! overlay simulation.

use pollux::overlay_sim::{run_overlay, OverlaySimConfig};
use pollux::simulation;
use pollux::{ClusterAnalysis, InitialCondition, ModelParams, OverlayModel};
use pollux_adversary::baselines::{PassiveAdversary, RecklessAdversary};
use pollux_adversary::TargetedStrategy;

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
}

#[test]
fn sojourns_and_absorption_agree_with_simulation() {
    for (mu, d, k) in [(0.15, 0.85, 1usize), (0.3, 0.9, 1), (0.25, 0.9, 7)] {
        let params = ModelParams::paper_defaults()
            .with_mu(mu)
            .with_d(d)
            .with_k(k)
            .unwrap();
        let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta).unwrap();
        let strategy = TargetedStrategy::new(k, params.nu()).unwrap();
        let report = simulation::estimate(
            &params,
            &InitialCondition::Delta,
            &strategy,
            30_000,
            99,
            threads(),
        );
        let e_ts = analysis.expected_safe_events().unwrap();
        let e_tp = analysis.expected_polluted_events().unwrap();
        assert!(
            (report.safe_events.mean - e_ts).abs() <= 3.0 * report.safe_events.ci_half_width,
            "mu={mu} d={d} k={k}: T_S sim {} vs {e_ts}",
            report.safe_events
        );
        assert!(
            (report.polluted_events.mean - e_tp).abs()
                <= 3.0 * report.polluted_events.ci_half_width,
            "mu={mu} d={d} k={k}: T_P sim {} vs {e_tp}",
            report.polluted_events
        );
        let split = analysis.absorption_split().unwrap();
        assert!(
            (report.absorption.2 - split.polluted_merge).abs() < 0.01,
            "mu={mu} d={d} k={k}: p(AmP) sim {} vs {}",
            report.absorption.2,
            split.polluted_merge
        );
    }
}

#[test]
fn first_sojourns_agree_with_relation_7_8() {
    let params = ModelParams::paper_defaults().with_mu(0.3).with_d(0.9);
    let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta).unwrap();
    let strategy = TargetedStrategy::new(1, params.nu()).unwrap();
    let report = simulation::estimate(
        &params,
        &InitialCondition::Delta,
        &strategy,
        40_000,
        7,
        threads(),
    );
    let s1 = analysis.successive_safe_sojourns(1)[0];
    let p1 = analysis.successive_polluted_sojourns(1)[0];
    assert!(
        (report.first_safe_sojourn.mean - s1).abs()
            <= 3.0 * report.first_safe_sojourn.ci_half_width,
        "T_S1 sim {} vs {s1}",
        report.first_safe_sojourn
    );
    assert!(
        (report.first_polluted_sojourn.mean - p1).abs()
            <= 3.0 * report.first_polluted_sojourn.ci_half_width,
        "T_P1 sim {} vs {p1}",
        report.first_polluted_sojourn
    );
}

#[test]
fn beta_initial_condition_agrees() {
    let params = ModelParams::paper_defaults().with_mu(0.2).with_d(0.8);
    let analysis = ClusterAnalysis::new(&params, InitialCondition::Beta).unwrap();
    let strategy = TargetedStrategy::new(1, params.nu()).unwrap();
    let report = simulation::estimate(
        &params,
        &InitialCondition::Beta,
        &strategy,
        30_000,
        21,
        threads(),
    );
    let e_tp = analysis.expected_polluted_events().unwrap();
    assert!(
        (report.polluted_events.mean - e_tp).abs() <= 3.0 * report.polluted_events.ci_half_width,
        "T_P sim {} vs {e_tp}",
        report.polluted_events
    );
}

#[test]
fn ablated_adversaries_change_outcomes_consistently() {
    // The passive adversary gives the same E(T_P) as the model with all
    // toggles off; the reckless one must do strictly worse for itself
    // than the targeted strategy under protocol_7 merge deterrence.
    let base = ModelParams::paper_defaults().with_mu(0.3).with_d(0.9);
    let passive_params = base.with_toggles(pollux::AdversaryToggles::none());
    let analysis = ClusterAnalysis::new(&passive_params, InitialCondition::Delta).unwrap();
    let report = simulation::estimate(
        &passive_params,
        &InitialCondition::Delta,
        &PassiveAdversary::new(),
        30_000,
        5,
        threads(),
    );
    let e_tp = analysis.expected_polluted_events().unwrap();
    assert!(
        (report.polluted_events.mean - e_tp).abs() <= 3.0 * report.polluted_events.ci_half_width,
        "passive T_P sim {} vs {e_tp}",
        report.polluted_events
    );

    // Reckless adversary exists and runs; with k = 1 its Rule-1 gambles
    // are executed by the simulator (the matrix cannot model it — that is
    // the point of having a simulator).
    let reckless = simulation::estimate(
        &base,
        &InitialCondition::Delta,
        &RecklessAdversary::new(),
        10_000,
        6,
        threads(),
    );
    assert!(reckless.polluted_events.mean >= 0.0);
}

#[test]
fn steady_state_fractions_match_regenerating_overlay() {
    // Renewal-reward prediction: a regenerating cluster is polluted a
    // fraction E(T_P)/(E(T_S)+E(T_P)+1) of its event slots.
    let params = ModelParams::paper_defaults().with_mu(0.3).with_d(0.9);
    let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta).unwrap();
    let (want_safe, want_polluted) = analysis.steady_state_fractions().unwrap();

    let strategy = TargetedStrategy::new(1, params.nu()).unwrap();
    // Sample late snapshots, well past the transient warm-up.
    let sample_points: Vec<u64> = (10..=30).map(|i| i * 10_000).collect();
    let config = OverlaySimConfig {
        n_clusters: 200,
        sample_points: sample_points.clone(),
        regenerate: true,
    };
    let mut safe_acc = 0.0;
    let mut polluted_acc = 0.0;
    let runs = 6;
    for seed in 0..runs {
        let tr = run_overlay(&params, &InitialCondition::Delta, &strategy, &config, seed);
        for &(_, s, p) in &tr.points {
            safe_acc += s;
            polluted_acc += p;
        }
    }
    let n_obs = (runs as usize * sample_points.len()) as f64;
    let sim_safe = safe_acc / n_obs;
    let sim_polluted = polluted_acc / n_obs;
    assert!(
        (sim_safe - want_safe).abs() < 0.02,
        "safe fraction: sim {sim_safe} vs renewal {want_safe}"
    );
    assert!(
        (sim_polluted - want_polluted).abs() < 0.015,
        "polluted fraction: sim {sim_polluted} vs renewal {want_polluted}"
    );
}

#[test]
fn theorem2_matches_overlay_simulation() {
    let params = ModelParams::paper_defaults().with_mu(0.2).with_d(0.9);
    let strategy = TargetedStrategy::new(1, params.nu()).unwrap();
    let n = 300usize;
    let sample_points = vec![0u64, 3000, 12_000, 30_000];
    let model = OverlayModel::new(&params, InitialCondition::Delta, n as u64).unwrap();
    let expect = model.proportion_series(&sample_points).unwrap();

    let runs = 10;
    let config = OverlaySimConfig {
        n_clusters: n,
        sample_points: sample_points.clone(),
        regenerate: false,
    };
    let mut mean_safe = vec![0.0; sample_points.len()];
    let mut mean_polluted = vec![0.0; sample_points.len()];
    for seed in 0..runs {
        let tr = run_overlay(&params, &InitialCondition::Delta, &strategy, &config, seed);
        for (i, &(_, s, p)) in tr.points.iter().enumerate() {
            mean_safe[i] += s / runs as f64;
            mean_polluted[i] += p / runs as f64;
        }
    }
    for (i, e) in expect.iter().enumerate() {
        assert!(
            (mean_safe[i] - e.safe).abs() < 0.03,
            "safe at m={}: {} vs {}",
            e.m,
            mean_safe[i],
            e.safe
        );
        assert!(
            (mean_polluted[i] - e.polluted).abs() < 0.015,
            "polluted at m={}: {} vs {}",
            e.m,
            mean_polluted[i],
            e.polluted
        );
    }
}
