//! Repo-level acceptance tests for the defense subsystem:
//!
//! * `NullDefense` is **byte-identical** to defense-free runs — in the
//!   DES report, in the analytical chain, and in the sweep engine's
//!   TSV/JSON artefacts;
//! * analytical and DES steady-state pollution agree under `InducedChurn`
//!   across a property-sampled `(μ, d, rate)` grid, pinned to the
//!   renewal-adjusted Wilson-interval criterion the duel scenarios use;
//! * at least one defense measurably reduces steady-state pollution
//!   against the paper's baseline adversary (the `duel_matrix`
//!   acceptance shape, at test scale).

use pollux::des_overlay::{run_des_overlay, run_des_overlay_duel, DesOverlayConfig};
use pollux::duel::{run_duel, DuelConfig};
use pollux::{ClusterChain, InitialCondition, ModelParams};
use pollux_adversary::TargetedStrategy;
use pollux_defense::{DefenseSpec, InducedChurn, NullDefense};
use pollux_prob::tolerance::AGREEMENT_SIGMAS;
use pollux_sweep::{registry, OutputKind, ParamGrid, Scenario, SweepRunner};
use proptest::prelude::*;

fn paper_params(mu: f64, d: f64) -> ModelParams {
    ModelParams::paper_defaults().with_mu(mu).with_d(d)
}

#[test]
fn null_defense_des_report_is_byte_identical_to_defense_free() {
    let params = paper_params(0.25, 0.9);
    let strategy = TargetedStrategy::new(1, 0.1).unwrap();
    let config = DesOverlayConfig::new(8, 1.0, 300 << 8)
        .with_regeneration()
        .with_sample_times(vec![10.0, 100.0]);
    let plain = run_des_overlay(&params, &InitialCondition::Delta, &strategy, &config, 42);
    let defended = run_des_overlay_duel(
        &params,
        &InitialCondition::Delta,
        &strategy,
        &NullDefense::new(),
        &config,
        42,
    );
    assert_eq!(plain, defended);
}

#[test]
fn null_defense_chain_is_byte_identical_to_plain_build() {
    let params = paper_params(0.3, 0.9);
    let plain = ClusterChain::build(&params);
    let defended = ClusterChain::build_with_defense(&params, &NullDefense::new());
    for (i, _) in plain.space().iter() {
        let a: Vec<(usize, u64)> = plain
            .sparse_dtmc()
            .successors(i)
            .map(|(j, p)| (j, p.to_bits()))
            .collect();
        let b: Vec<(usize, u64)> = defended
            .sparse_dtmc()
            .successors(i)
            .map(|(j, p)| (j, p.to_bits()))
            .collect();
        assert_eq!(a, b, "row {i}");
    }
}

#[test]
fn duel_sweep_artifacts_are_byte_identical_across_threads_and_reruns() {
    // A miniature duel_matrix: the Null row of its artefacts must equal a
    // defense-free steady-state run's measurements, and the whole artefact
    // must not depend on the thread count or on rerunning.
    let scenario = Scenario::new(
        "mini_duel",
        "test-scale duel",
        ParamGrid::paper().mu(vec![0.25]).d(vec![0.9]),
        OutputKind::Duel {
            defenses: vec![DefenseSpec::Null, DefenseSpec::InducedChurn { rate: 0.1 }],
            cluster_bits: 6,
            lambda: 1.0,
            max_events_per_cluster: 200,
            sigmas: AGREEMENT_SIGMAS,
        },
    );
    let one = SweepRunner::new().with_threads(1).run(&scenario).unwrap();
    let four = SweepRunner::new().with_threads(4).run(&scenario).unwrap();
    assert_eq!(one.to_tsv(), four.to_tsv());
    assert_eq!(one.to_json(), four.to_json());
    let rerun = SweepRunner::new().with_threads(1).run(&scenario).unwrap();
    assert_eq!(one.to_tsv(), rerun.to_tsv());

    // The Null row of a duel artefact reproduces the defense-free
    // regeneration measurement bit-for-bit: evaluate the kind with an
    // explicit cell seed and replay the defense-free run on the seed the
    // kind derives for defense index 0.
    let cell = ParamGrid::paper()
        .mu(vec![0.25])
        .d(vec![0.9])
        .cells()
        .unwrap()
        .remove(0);
    let rows = scenario.kind.evaluate(&cell, 123, 1).unwrap();
    let params = paper_params(0.25, 0.9);
    let strategy = TargetedStrategy::new(1, 0.1).unwrap();
    // The duel kind warms up half of each cluster's budget; replicate
    // that exactly to reproduce its measurement bit-for-bit.
    let config = DesOverlayConfig::new(6, 1.0, 200 << 6)
        .with_regeneration()
        .with_warmup_events(100);
    let free = run_des_overlay(
        &params,
        &InitialCondition::Delta,
        &strategy,
        &config,
        pollux_des::replication::replication_seed(123, 0),
    );
    let (_, want_poll) = free.steady_state_fractions();
    let des_at = scenario
        .kind
        .columns()
        .iter()
        .position(|c| c == "des_polluted")
        .unwrap();
    assert_eq!(rows[0][des_at].as_f64(), Some(want_poll));
}

#[test]
fn induced_churn_measurably_beats_the_null_defense() {
    // The duel_matrix acceptance shape at test scale: against the paper's
    // baseline adversary, induced churn reduces the steady-state polluted
    // fraction measurably (DES interval strictly below the baseline) and
    // the analytic/DES estimates agree on both rows.
    let params = paper_params(0.25, 0.9);
    let strategy = TargetedStrategy::new(params.k(), params.nu()).unwrap();
    let config = DuelConfig::new(8, 1.0, 500).with_sigmas(AGREEMENT_SIGMAS);
    let null = run_duel(
        &params,
        &InitialCondition::Delta,
        &strategy,
        &NullDefense::new(),
        &config,
        1,
    )
    .unwrap();
    let churn = run_duel(
        &params,
        &InitialCondition::Delta,
        &strategy,
        &InducedChurn::new(0.1).unwrap(),
        &config,
        2,
    )
    .unwrap();
    assert!(null.agrees, "{null:?}");
    assert!(churn.agrees, "{churn:?}");
    assert!(churn.reduction() > 0.2, "{churn:?}");
    assert!(churn.measurably_improves(), "{churn:?}");
}

#[test]
fn registry_des_steady_state_scenario_validates_the_closed_form() {
    // The registry scenario itself, shrunk to test scale: keep the grid,
    // shrink the overlay/budget so the debug-mode run stays fast.
    let full = registry::find("des_steady_state").expect("registered");
    let kind = match full.kind {
        OutputKind::DesSteadyState {
            lambda,
            sample_times,
            sigmas,
            ..
        } => OutputKind::DesSteadyState {
            cluster_bits: vec![7],
            lambda,
            max_events_per_cluster: 500,
            sample_times,
            sigmas,
        },
        other => panic!("unexpected kind {other:?}"),
    };
    let scenario = Scenario::new(full.name, full.description, full.grid, kind);
    let report = SweepRunner::new().with_threads(2).run(&scenario).unwrap();
    assert_eq!(report.rows.len(), 4, "2x2 (mu, d) grid");
    assert!(
        report.all_ok(),
        "steady-state mismatch:\n{}",
        report.render_text()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Analytical vs DES steady-state pollution under `InducedChurn`,
    /// pinned to the renewal-adjusted Wilson criterion over a random
    /// `(μ, d, rate)` box around the paper's evaluated corner.
    #[test]
    fn induced_churn_duels_agree_within_the_wilson_interval(
        mu in 0.15f64..0.3,
        d in 0.8f64..0.92,
        rate in 0.02f64..0.25,
    ) {
        let params = paper_params(mu, d);
        let strategy = TargetedStrategy::new(params.k(), params.nu()).unwrap();
        let defense = InducedChurn::new(rate).unwrap();
        // Derive a deterministic seed from the sampled point so failures
        // reproduce exactly.
        let seed = mu.to_bits() ^ d.to_bits().rotate_left(17) ^ rate.to_bits().rotate_left(43);
        let config = DuelConfig::new(7, 1.0, 400).with_sigmas(AGREEMENT_SIGMAS);
        let outcome = run_duel(
            &params,
            &InitialCondition::Delta,
            &strategy,
            &defense,
            &config,
            seed,
        )
        .unwrap();
        prop_assert!(outcome.agrees, "duel disagrees: {outcome:?}");
        // Induced churn never increases analytic steady-state pollution.
        prop_assert!(outcome.analytic_polluted <= outcome.baseline_polluted + 1e-12);
    }
}
