//! Repo-level acceptance tests for the whole-overlay discrete-event
//! simulator: the registry's `des_validate` scenario (10⁵⁺ nodes at its
//! largest overlay size) must be byte-identical across thread counts and
//! must agree with the Markov model within its statistical tolerances.

use pollux_sweep::{registry, SweepRunner};

#[test]
fn registry_des_validate_is_byte_identical_across_threads_and_agrees() {
    let scenario = registry::find("des_validate").expect("registered");
    let one = SweepRunner::new()
        .with_threads(1)
        .run(&scenario)
        .expect("runs");
    let eight = SweepRunner::new()
        .with_threads(8)
        .run(&scenario)
        .expect("runs");

    // Byte-identity of both artefact encodings, 1 vs 8 threads.
    assert_eq!(one.to_tsv(), eight.to_tsv());
    assert_eq!(one.to_json(), eight.to_json());

    // The scenario's largest overlay is the 10^5-node acceptance point.
    let nodes_col = one.column("nodes").expect("nodes column");
    let max_nodes = one
        .rows
        .iter()
        .filter_map(|r| r[nodes_col].as_f64())
        .fold(0.0f64, f64::max);
    assert!(
        max_nodes >= 1e5,
        "des_validate must reach 10^5 nodes (saw {max_nodes})"
    );

    // Simulated-vs-Markov agreement within the CI-checked tolerance on
    // every row (the `ok` verdict column), with no censored clusters.
    assert!(
        one.all_ok(),
        "DES vs Markov mismatch:\n{}",
        one.render_text()
    );
    let censored_col = one.column("censored").expect("censored column");
    assert!(one
        .rows
        .iter()
        .all(|r| r[censored_col].as_f64() == Some(0.0)));
}
