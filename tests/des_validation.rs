//! Repo-level acceptance tests for the whole-overlay discrete-event
//! simulator: the registry's `des_validate` scenario (10⁵⁺ nodes at its
//! largest overlay size) must be byte-identical across thread counts —
//! which, since the runner's thread count now also shards each DES run,
//! exercises the sharded engine end-to-end — and must agree with the
//! Markov model within its statistical tolerances. A property test
//! additionally pins [`pollux::des_overlay`]'s shard-invariance contract
//! (byte-identical `DesOverlayReport`s at 1, 2 and 8 shards, across both
//! queue backends and the work-stealing plan, with and without a defense
//! in the loop) across random `(C, Δ, k, μ, d)` draws.

use pollux::des_overlay::{run_des_overlay, run_des_overlay_duel, DesOverlayConfig, QueueBackend};
use pollux::{InitialCondition, ModelParams};
use pollux_adversary::TargetedStrategy;
use pollux_defense::IncarnationRefresh;
use pollux_prob::tolerance::AGREEMENT_SIGMAS;
use pollux_sweep::{registry, OutputKind, SweepRunner};
use proptest::prelude::*;

/// The statistical agreement criteria of the steady-state/duel scenarios
/// are pinned to the shared [`pollux_prob::tolerance`] quantile — the
/// same constant the `pollux-fuzz` differential oracle uses — so the
/// registry, this suite and the fuzzer cannot drift apart.
#[test]
fn steady_state_scenarios_pin_the_shared_agreement_quantile() {
    for name in ["des_steady_state", "duel_matrix"] {
        let scenario = registry::find(name).expect("registered");
        let sigmas = match scenario.kind {
            OutputKind::DesSteadyState { sigmas, .. } | OutputKind::Duel { sigmas, .. } => sigmas,
            other => panic!("unexpected kind {other:?}"),
        };
        assert_eq!(sigmas, AGREEMENT_SIGMAS, "{name}");
    }
}

#[test]
fn registry_des_validate_is_byte_identical_across_threads_and_agrees() {
    let scenario = registry::find("des_validate").expect("registered");
    let one = SweepRunner::new()
        .with_threads(1)
        .run(&scenario)
        .expect("runs");
    let eight = SweepRunner::new()
        .with_threads(8)
        .run(&scenario)
        .expect("runs");

    // Byte-identity of both artefact encodings, 1 vs 8 threads.
    assert_eq!(one.to_tsv(), eight.to_tsv());
    assert_eq!(one.to_json(), eight.to_json());

    // The scenario's largest overlay is the 10^5-node acceptance point.
    let nodes_col = one.column("nodes").expect("nodes column");
    let max_nodes = one
        .rows
        .iter()
        .filter_map(|r| r[nodes_col].as_f64())
        .fold(0.0f64, f64::max);
    assert!(
        max_nodes >= 1e5,
        "des_validate must reach 10^5 nodes (saw {max_nodes})"
    );

    // Simulated-vs-Markov agreement within the CI-checked tolerance on
    // every row (the `ok` verdict column), with no censored clusters.
    assert!(
        one.all_ok(),
        "DES vs Markov mismatch:\n{}",
        one.render_text()
    );
    let censored_col = one.column("censored").expect("censored column");
    assert!(one
        .rows
        .iter()
        .all(|r| r[censored_col].as_f64() == Some(0.0)));
}

/// Random model parameters small enough for fast debug-build DES runs.
fn params_strategy() -> impl Strategy<Value = ModelParams> {
    (
        3usize..=7,
        3usize..=8,
        0.0f64..0.5,
        0.0f64..0.95,
        0.01f64..0.5,
    )
        .prop_flat_map(|(c, delta, mu, d, nu)| {
            (1usize..=c).prop_map(move |k| {
                ModelParams::new(c, delta, k)
                    .expect("generated sizes are valid")
                    .with_mu(mu)
                    .with_d(d)
                    .with_nu(nu)
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sharded-DES determinism contract: per-cluster counter-seeded
    /// streams make every report a function of `(inputs, seed)` alone, so
    /// shard counts 1, 2 and 8 must produce byte-identical reports — in
    /// plain runs, in regeneration mode with an occupancy grid, and with
    /// a randomness-consuming defense in the loop. The contract extends
    /// over both queue backends (calendar reports must equal heap
    /// reports) and the work-stealing plan at a random skew.
    #[test]
    fn des_reports_are_byte_identical_across_shard_counts(
        params in params_strategy(),
        seed in 0u64..1_000_000,
        skew in 0u32..=3,
    ) {
        let strategy = TargetedStrategy::new(params.k(), params.nu())
            .expect("k and nu come from valid draws");
        let defense = IncarnationRefresh::new(8.0, 0.5).expect("valid defense");
        let plain = DesOverlayConfig::new(4, 1.0, 150 << 4);
        let regen = DesOverlayConfig::new(4, 1.0, 150 << 4)
            .with_regeneration()
            .with_sample_times(vec![0.0, 3.0, 40.0, 1e9]);
        for cfg in [plain, regen] {
            let cfg = cfg.with_queue_backend(QueueBackend::Heap);
            let one = run_des_overlay(&params, &InitialCondition::Delta, &strategy, &cfg, seed);
            let one_duel = run_des_overlay_duel(
                &params, &InitialCondition::Delta, &strategy, &defense, &cfg, seed,
            );
            let cal = run_des_overlay(
                &params,
                &InitialCondition::Delta,
                &strategy,
                &cfg.clone().with_queue_backend(QueueBackend::Calendar),
                seed,
            );
            prop_assert_eq!(&one, &cal, "calendar backend diverged");
            for shards in [2usize, 8] {
                let cfg_n = cfg.clone().with_shards(shards);
                let many =
                    run_des_overlay(&params, &InitialCondition::Delta, &strategy, &cfg_n, seed);
                prop_assert_eq!(&one, &many, "shards = {}", shards);
                let many_duel = run_des_overlay_duel(
                    &params, &InitialCondition::Delta, &strategy, &defense, &cfg_n, seed,
                );
                prop_assert_eq!(&one_duel, &many_duel, "duel shards = {}", shards);
                let stolen = run_des_overlay(
                    &params,
                    &InitialCondition::Delta,
                    &strategy,
                    &cfg_n
                        .clone()
                        .with_queue_backend(QueueBackend::Calendar)
                        .with_work_stealing(skew),
                    seed,
                );
                prop_assert_eq!(
                    &one, &stolen,
                    "stealing shards = {} skew = {}", shards, skew
                );
            }
        }
    }
}
