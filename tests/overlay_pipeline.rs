//! End-to-end exercise of the overlay substrate: peers with certificates
//! and incarnations, a bootstrapped prefix-tree topology, churn through
//! the four robust operations with invariants checked throughout, and
//! routing across the result.

use pollux_overlay::incarnation::IncarnationPolicy;
use pollux_overlay::{
    consensus, ops, routing, Behavior, Cluster, ClusterParams, Label, Member, NodeId, Overlay,
    PeerRegistry,
};
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn member_from(registry: &PeerRegistry, idx: usize, policy: &IncarnationPolicy, t: f64) -> Member {
    let peer = &registry.peers()[idx];
    Member {
        peer: peer.id,
        malicious: peer.behavior == Behavior::Malicious,
        id: peer.current_id(policy, t),
    }
}

/// Builds a 4-leaf overlay with members drawn from the registry.
fn bootstrap(registry: &PeerRegistry, policy: &IncarnationPolicy) -> Overlay {
    let params = ClusterParams::new(4, 6).unwrap();
    let mut clusters = Vec::new();
    let mut idx = 0;
    for label in ["00", "01", "10", "11"] {
        let core: Vec<Member> = (0..4)
            .map(|_| {
                let m = member_from(registry, idx, policy, 1.0);
                idx += 1;
                m
            })
            .collect();
        let spare: Vec<Member> = (0..3)
            .map(|_| {
                let m = member_from(registry, idx, policy, 1.0);
                idx += 1;
                m
            })
            .collect();
        clusters.push(Cluster::new(Label::parse(label).unwrap(), params, core, spare).unwrap());
    }
    Overlay::bootstrap(params, clusters).unwrap()
}

#[test]
fn churn_through_operations_preserves_invariants() {
    let mut rng = StdRng::seed_from_u64(7);
    let registry = PeerRegistry::generate(500, 0.2, &mut rng);
    let policy = IncarnationPolicy::new(1000.0, 2.0).unwrap();
    let mut overlay = bootstrap(&registry, &policy);
    let mut next_idx = 28usize;

    for step in 0..400 {
        let labels = overlay.labels();
        let label = labels[rng.random_range(0..labels.len())].clone();
        let join = rng.random_bool(0.5);
        if join {
            let member = member_from(&registry, next_idx % registry.len(), &policy, 1.0);
            next_idx += 1;
            let cluster = overlay.cluster_mut(&label).unwrap();
            if cluster.contains(member.peer) {
                continue;
            }
            if cluster.must_split() {
                // Split instead of overfilling; tolerate unbalanced sides.
                let _ = overlay.split_cluster(&label, &mut rng);
                continue;
            }
            let cluster = overlay.cluster_mut(&label).unwrap();
            ops::join(cluster, member).unwrap();
        } else {
            let cluster = overlay.cluster_mut(&label).unwrap();
            if cluster.must_merge() {
                let _ = overlay.merge_cluster(&label);
                continue;
            }
            // Leave a uniformly random member.
            let total = cluster.params().core_size() + cluster.spare_size();
            let pick = rng.random_range(0..total);
            if pick < cluster.params().core_size() {
                let peer = cluster.core()[pick].peer;
                ops::leave_core_randomized(cluster, peer, 1, &mut rng).unwrap();
            } else {
                let peer = cluster.spare()[pick - cluster.params().core_size()].peer;
                ops::leave_spare(cluster, peer).unwrap();
            }
        }
        // Invariants after every step.
        overlay
            .check_cover()
            .unwrap_or_else(|e| panic!("step {step}: {e}"));
        for cl in overlay.clusters() {
            cl.check_invariants()
                .unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
    }
}

#[test]
fn property_1_expired_ids_are_rejected() {
    let mut rng = StdRng::seed_from_u64(8);
    let registry = PeerRegistry::generate(10, 0.0, &mut rng);
    let policy = IncarnationPolicy::new(100.0, 2.0).unwrap();
    let peer = &registry.peers()[0];
    let id_at_t50 = peer.current_id(&policy, 50.0);
    // At t = 50 the id validates; at t = 250 (incarnation 3) it must not.
    assert!(policy.is_id_valid(
        &peer.initial_id,
        peer.certificate.t0 as f64,
        &id_at_t50,
        50.0
    ));
    assert!(!policy.is_id_valid(
        &peer.initial_id,
        peer.certificate.t0 as f64,
        &id_at_t50,
        250.0
    ));
    // The peer re-joins with its third incarnation and is accepted again.
    let id_at_t250 = peer.current_id(&policy, 250.0);
    assert!(policy.is_id_valid(
        &peer.initial_id,
        peer.certificate.t0 as f64,
        &id_at_t250,
        250.0
    ));
    // The forced move is real: the responsible cluster changes with high
    // probability (ids are hashes).
    assert_ne!(id_at_t50, id_at_t250);
}

#[test]
fn consensus_outcome_tracks_core_composition() {
    let mut rng = StdRng::seed_from_u64(9);
    let registry = PeerRegistry::generate(100, 0.5, &mut rng);
    let policy = IncarnationPolicy::new(1000.0, 2.0).unwrap();
    // A 7-member core with exactly 2 malicious (<= c): honest outcome.
    let members: Vec<Member> = (0..7)
        .map(|i| {
            let mut m = member_from(&registry, i, &policy, 1.0);
            m.malicious = i < 2;
            m
        })
        .collect();
    let out = consensus::agree(&members, "promote-spare-3", Some("promote-colluder"));
    assert!(out.honest_outcome);
    // With 3 malicious the colluders dictate the choice.
    let members: Vec<Member> = members
        .into_iter()
        .enumerate()
        .map(|(i, mut m)| {
            m.malicious = i < 3;
            m
        })
        .collect();
    let out = consensus::agree(&members, "promote-spare-3", Some("promote-colluder"));
    assert!(!out.honest_outcome);
    assert_eq!(out.decided, "promote-colluder");
}

#[test]
fn routing_degrades_only_through_polluted_clusters() {
    let mut rng = StdRng::seed_from_u64(10);
    let registry = PeerRegistry::generate(200, 0.0, &mut rng);
    let policy = IncarnationPolicy::new(1000.0, 2.0).unwrap();
    let overlay = bootstrap(&registry, &policy);
    // mu = 0 registry: nothing is polluted, everything delivers.
    let rate = routing::delivery_rate(&overlay, 500, &|c| c.is_polluted(), &mut rng);
    assert_eq!(rate, 1.0);
    // Force-drop one specific cluster and watch only its keys fail.
    let victim = Label::parse("11").unwrap();
    let drops = |c: &Cluster| c.label() == &victim;
    let mut failures = 0;
    let mut hits = 0;
    for i in 0..2000u64 {
        let target = NodeId::from_data(&i.to_be_bytes());
        let out = routing::route(&overlay, &Label::parse("00").unwrap(), &target, &drops).unwrap();
        if victim.is_prefix_of(&target) {
            hits += 1;
            assert!(!out.delivered, "keys of the dropped cluster must fail");
        } else {
            assert!(out.delivered, "other keys must not be affected");
        }
        if !out.delivered {
            failures += 1;
        }
    }
    assert_eq!(failures, hits);
    assert!(hits > 300); // about a quarter of the key space
}
