//! The observability layer's hard contract, enforced end to end:
//! instrumentation is **provably inert**. Every scenario artefact —
//! sweep TSV/JSON bytes, DES reports, duel reports — must be
//! byte-identical whether metrics are recorded or not, at any
//! shard/thread count. These tests run in both feature configurations
//! (CI builds with and without `--features metrics`); the recorded side
//! is additionally checked for plausibility when metrics are on.

use proptest::prelude::*;

use pollux::des_overlay::{
    run_des_overlay, run_des_overlay_duel_observed, run_des_overlay_duel_with_stats,
    DesOverlayConfig,
};
use pollux::{InitialCondition, ModelParams};
use pollux_adversary::TargetedStrategy;
use pollux_defense::NullDefense;
use pollux_sweep::{OutputKind, ParamGrid, Scenario, SweepRunner};

fn params() -> ModelParams {
    ModelParams::paper_defaults().with_mu(0.25).with_d(0.9)
}

fn strategy(p: &ModelParams) -> TargetedStrategy {
    TargetedStrategy::new(p.k(), p.nu()).unwrap()
}

/// DES duel artefacts must not change when a recorder rides along —
/// at 1 shard and at 8, in plain and regeneration modes.
#[test]
fn des_duel_bytes_survive_observation_at_any_shard_count() {
    let p = params();
    let s = strategy(&p);
    let configs = [
        DesOverlayConfig::new(6, 1.0, 3_000 << 6),
        DesOverlayConfig::new(6, 1.0, 3_000 << 6).with_shards(8),
        DesOverlayConfig::new(5, 1.0, 2_000 << 5)
            .with_regeneration()
            .with_warmup_events(500)
            .with_shards(8),
    ];
    for config in &configs {
        let (plain, plain_stats) = run_des_overlay_duel_with_stats(
            &p,
            &InitialCondition::Delta,
            &s,
            &NullDefense::new(),
            config,
            2011,
        );
        let (observed, obs_stats, obs) = run_des_overlay_duel_observed(
            &p,
            &InitialCondition::Delta,
            &s,
            &NullDefense::new(),
            config,
            2011,
            4096,
        );
        assert_eq!(plain, observed, "observation changed report bytes");
        assert_eq!(plain_stats.shard_events, obs_stats.shard_events);
        if pollux_obs::METRICS_ENABLED {
            assert!(!obs.registry.is_empty());
            assert!(!obs.trace.is_empty());
        } else {
            assert!(obs.registry.is_empty());
            assert!(obs.trace.is_empty());
        }
    }
}

/// The single-run entry point equals the duel path under observation,
/// and sharding never changes bytes either way.
#[test]
fn des_single_run_matches_observed_duel() {
    let p = params();
    let s = strategy(&p);
    let config = DesOverlayConfig::new(6, 1.0, 3_000 << 6);
    let single = run_des_overlay(&p, &InitialCondition::Delta, &s, &config, 7);
    for shards in [1usize, 8] {
        let cfg = config.clone().with_shards(shards);
        let (observed, _, _) = run_des_overlay_duel_observed(
            &p,
            &InitialCondition::Delta,
            &s,
            &NullDefense::new(),
            &cfg,
            7,
            64,
        );
        assert_eq!(single, observed, "shards={shards}");
    }
}

/// Sweep artefact bytes (TSV and JSON) are identical between the plain
/// and observed runner paths, at 1 thread and at 8, across an
/// analytical, a Monte-Carlo and a DES-validation scenario.
#[test]
fn sweep_artefact_bytes_survive_observation() {
    let scenarios = [
        Scenario::new(
            "inert_sojourns",
            "analytical battery",
            ParamGrid::paper().mu(vec![0.0, 0.25]).d(vec![0.5, 0.9]),
            OutputKind::Sojourns,
        ),
        Scenario::new(
            "inert_mc",
            "monte-carlo validation",
            ParamGrid::paper().mu(vec![0.2]).d(vec![0.8]),
            OutputKind::McValidation {
                replications: 200,
                sigmas: 4.0,
            },
        ),
        Scenario::new(
            "inert_des",
            "whole-overlay DES validation",
            ParamGrid::paper().mu(vec![0.25]).d(vec![0.9]),
            OutputKind::DesValidation {
                cluster_bits: vec![5],
                lambda: 1.0,
                max_events_per_cluster: 2_000,
                sigmas: 6.0,
            },
        ),
    ];
    for scenario in &scenarios {
        let mut renderings = Vec::new();
        for threads in [1usize, 8] {
            let runner = SweepRunner::new().with_threads(threads).with_seed(2011);
            let plain = runner.run(scenario).unwrap();
            let (observed, obs) = runner
                .run_all_observed(std::slice::from_ref(scenario))
                .unwrap();
            assert_eq!(plain, observed[0], "{}, threads={threads}", scenario.name);
            renderings.push((plain.to_tsv(), plain.to_json()));
            if pollux_obs::METRICS_ENABLED {
                assert!(obs[0].registry.counter("sweep.cells").is_some());
            } else {
                assert!(obs[0].registry.is_empty());
            }
        }
        assert_eq!(renderings[0], renderings[1], "{}", scenario.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random small DES workloads: observation is inert for every
    /// `(cluster_bits, shards, seed, mu)` drawn, including trace rings
    /// small enough to wrap.
    #[test]
    fn observed_des_is_inert_for_random_workloads(
        bits in 3u32..6,
        shards in 1usize..6,
        seed in 0u64..1_000,
        mu in 0.0f64..0.5,
        cap_choice in 0usize..3,
    ) {
        // Tiny capacities force ring wraparound; the large one never wraps.
        let trace_capacity = [1usize, 16, 4096][cap_choice];
        let p = ModelParams::paper_defaults().with_mu(mu).with_d(0.9);
        let s = strategy(&p);
        let config = DesOverlayConfig::new(bits, 1.0, 1_000 << bits);
        let plain = run_des_overlay(&p, &InitialCondition::Delta, &s, &config, seed);
        let cfg = config.clone().with_shards(shards);
        let (observed, _, obs) = run_des_overlay_duel_observed(
            &p,
            &InitialCondition::Delta,
            &s,
            &NullDefense::new(),
            &cfg,
            seed,
            trace_capacity,
        );
        prop_assert_eq!(&plain, &observed);
        if pollux_obs::METRICS_ENABLED {
            // Trace stays bounded and time-sorted even across shard merges.
            prop_assert!(obs.trace.len() <= trace_capacity * shards);
            prop_assert!(obs.trace.windows(2).all(|w| w[0].time <= w[1].time));
        }
    }
}
