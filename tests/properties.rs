//! Property-based tests over random model parameterizations: structural
//! invariants that must hold for *every* `(C, Δ, μ, d, k, ν)`, not just
//! the paper's grid.

use proptest::prelude::*;

use pollux::{
    polluted_split_unreachable, AdversaryToggles, ClusterAnalysis, ClusterChain, InitialCondition,
    ModelParams,
};
use pollux_adversary::{rules, ClusterView};

/// Strategy generating a valid parameter set (small enough to keep the
/// chain build fast in debug builds).
fn params_strategy() -> impl Strategy<Value = ModelParams> {
    (
        2usize..=8,
        2usize..=6,
        0.0f64..0.9,
        0.0f64..0.99,
        0.01f64..0.9,
    )
        .prop_flat_map(|(c, delta, mu, d, nu)| {
            (1usize..=c).prop_map(move |k| {
                ModelParams::new(c, delta, k)
                    .expect("generated sizes are valid")
                    .with_mu(mu)
                    .with_d(d)
                    .with_nu(nu)
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matrix_is_stochastic(params in params_strategy()) {
        let chain = ClusterChain::build(&params);
        prop_assert!(chain.dtmc().matrix().is_stochastic(1e-9));
        prop_assert_eq!(chain.space().len(), params.state_count());
    }

    #[test]
    fn polluted_split_never_reachable_with_rule2(params in params_strategy()) {
        let chain = ClusterChain::build(&params);
        prop_assert!(polluted_split_unreachable(&chain));
    }

    #[test]
    fn sojourn_totals_decompose_absorption_time(params in params_strategy()) {
        let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta)
            .expect("valid parameters");
        let ts = analysis.expected_safe_events().expect("solvable");
        let tp = analysis.expected_polluted_events().expect("solvable");
        let total = analysis.expected_absorption_events().expect("solvable");
        prop_assert!(ts >= 0.0 && tp >= 0.0);
        let err = (ts + tp - total).abs() / total.max(1.0);
        prop_assert!(err < 1e-6, "ts={ts} tp={tp} total={total}");
    }

    #[test]
    fn absorption_probabilities_sum_to_one(params in params_strategy()) {
        for initial in [InitialCondition::Delta, InitialCondition::Beta] {
            let analysis = ClusterAnalysis::new(&params, initial)
                .expect("valid parameters");
            let split = analysis.absorption_split().expect("solvable");
            prop_assert!((split.total() - 1.0).abs() < 1e-8, "total {}", split.total());
            prop_assert!(split.safe_merge >= 0.0 && split.safe_split >= 0.0);
            prop_assert!(split.polluted_merge >= -1e-15);
            prop_assert_eq!(split.polluted_split, 0.0);
        }
    }

    #[test]
    fn beta_distribution_is_valid(params in params_strategy()) {
        let space = pollux::ModelSpace::new(&params);
        let alpha = InitialCondition::Beta.distribution(&space).expect("valid");
        let mass: f64 = alpha.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
        prop_assert!(alpha.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn sojourn_series_is_summable_to_total(params in params_strategy()) {
        let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta)
            .expect("valid parameters");
        let total = analysis.expected_safe_events().expect("solvable");
        // Series terms are non-negative and partial sums stay below the
        // total (up to numerics).
        let series = analysis.successive_safe_sojourns(50);
        let mut acc = 0.0;
        for (n, &v) in series.iter().enumerate() {
            prop_assert!(v >= -1e-12, "negative sojourn at n={}", n + 1);
            acc += v;
            prop_assert!(acc <= total * (1.0 + 1e-6) + 1e-9,
                "partial sum {acc} exceeds total {total}");
        }
    }

    #[test]
    fn ablations_only_help_the_adversary_when_enabled(params in params_strategy()) {
        // Rule 2 off can only reduce (or keep) the polluted-merge mass.
        let full = ClusterAnalysis::new(&params, InitialCondition::Delta)
            .expect("valid parameters");
        let no_rule2 = ClusterAnalysis::new(
            &params.with_toggles(AdversaryToggles { rule2: false, ..AdversaryToggles::all() }),
            InitialCondition::Delta,
        ).expect("valid parameters");
        let a = full.absorption_split().expect("solvable").polluted_merge;
        let b = no_rule2.absorption_split().expect("solvable").polluted_merge;
        prop_assert!(b <= a + 1e-9, "rule2-off polluted-merge {b} > full {a}");
    }

    #[test]
    fn relation2_is_probability_and_zero_for_k1(
        c in 2usize..=10,
        s in 1usize..=8,
    ) {
        let delta = s.max(2) + 1;
        for x in 1..=c {
            for y in 0..=s {
                let view = ClusterView::new(c, delta, s, x, y).expect("consistent");
                let p1 = rules::relation2_probability(&view, 1);
                prop_assert_eq!(p1, 0.0);
                let pk = rules::relation2_probability(&view, c);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&pk));
            }
        }
    }

    #[test]
    fn simulated_trajectories_stay_in_omega(params in params_strategy(), seed in any::<u64>()) {
        use pollux_adversary::TargetedStrategy;
        use rand::{rngs::StdRng, SeedableRng};
        let strategy = TargetedStrategy::new(params.k(), params.nu()).expect("valid");
        let sim = pollux::simulation::ClusterSimulator::new(&params, &strategy)
            .with_max_events(500);
        let mut rng = StdRng::seed_from_u64(seed);
        let start = pollux::ClusterState::new(params.max_spare() / 2, 0, 0);
        let mut state = start;
        for _ in 0..200 {
            if !state.classify(&params).is_transient() {
                break;
            }
            state = sim.step(state, &mut rng);
            prop_assert!(state.is_consistent(&params), "left Omega: {state}");
        }
        // And a full run terminates with a coherent outcome.
        let out = sim.run(start, &mut rng);
        prop_assert!(out.first_safe_sojourn <= out.safe_events);
        prop_assert!(out.first_polluted_sojourn <= out.polluted_events);
    }
}
