//! Property-based validation of the mean-field (fluid-limit) layer
//! against the exact chain, over random `(C, Δ, μ, d, k, ν)` — the
//! repo-level counterpart of the unit tests inside `crates/meanfield`.
//!
//! The open-model fluid equilibrium and the exact renewal fractions
//! are two derivations of the same stationary object (the renewal
//! identity), so they must agree to solver tolerance for *every*
//! parameterization, not just the paper's grid. The adaptive ODE
//! trajectory must flow toward that equilibrium, and the defended
//! model must preserve both properties.

use proptest::prelude::*;

use pollux::{ClusterAnalysis, ClusterChain, InitialCondition, ModelParams};
use pollux_defense::InducedChurn;
use pollux_meanfield::{AdaptiveOptions, FluidModel};

/// Valid parameter sets, small enough that the debug-mode chain build
/// and renewal solve stay fast across the proptest case count.
fn params_strategy() -> impl Strategy<Value = ModelParams> {
    (
        2usize..=8,
        2usize..=6,
        0.0f64..0.9,
        0.0f64..0.99,
        0.01f64..0.9,
    )
        .prop_flat_map(|(c, delta, mu, d, nu)| {
            (1usize..=c).prop_map(move |k| {
                ModelParams::new(c, delta, k)
                    .expect("generated sizes are valid")
                    .with_mu(mu)
                    .with_d(d)
                    .with_nu(nu)
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fluid stationary fractions coincide with the exact chain's
    /// renewal fractions (the tentpole identity the sweep and fuzz
    /// layers also enforce, here over the whole parameter space).
    #[test]
    fn fluid_equilibrium_matches_exact_renewal_fractions(params in params_strategy()) {
        let model = FluidModel::build(&params, &InitialCondition::Delta)
            .expect("fluid model builds");
        let eq = model.open_equilibrium().expect("equilibrium solves");
        let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta)
            .expect("exact analysis builds");
        let (safe, polluted) = analysis
            .steady_state_fractions()
            .expect("exact fractions solve");
        prop_assert!(
            (eq.safe_fraction - safe).abs() <= 1e-8,
            "safe: fluid {} vs exact {safe}",
            eq.safe_fraction
        );
        prop_assert!(
            (eq.polluted_fraction - polluted).abs() <= 1e-8,
            "polluted: fluid {} vs exact {polluted}",
            eq.polluted_fraction
        );
        // The stationary profile is a distribution and a fixed point.
        let mass: f64 = eq.pi.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-10, "mass {mass}");
        prop_assert!(eq.residual < 1e-9, "residual {}", eq.residual);
    }

    /// The adaptive trajectory from the regeneration profile moves
    /// toward the equilibrium: the distance to it never grows over a
    /// horizon, and mass is conserved along the way.
    #[test]
    fn ode_trajectory_contracts_toward_the_equilibrium(params in params_strategy()) {
        let model = FluidModel::build(&params, &InitialCondition::Delta)
            .expect("fluid model builds");
        let eq = model.open_equilibrium().expect("equilibrium solves");
        let dist = |y: &[f64]| -> f64 {
            y.iter()
                .zip(&eq.pi)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
        };
        let d0 = dist(model.alpha());
        let run = model
            .integrate_adaptive(model.alpha(), 50.0, &AdaptiveOptions::default())
            .expect("trajectory integrates");
        let mass: f64 = run.y.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-8, "mass leak: {mass}");
        prop_assert!(
            dist(&run.y) <= d0 + 1e-9,
            "trajectory moved away from equilibrium: {} -> {}",
            d0,
            dist(&run.y)
        );
    }

    /// Defense folding commutes with the fluid limit: the defended
    /// fluid equilibrium equals the defended exact chain's fractions,
    /// and induced churn never increases stationary pollution.
    #[test]
    fn defended_equilibrium_matches_defended_chain(
        params in params_strategy(),
        rate in 0.05f64..0.5,
    ) {
        let defense = InducedChurn::new(rate).expect("rate is in domain");
        let model = FluidModel::build_with_defense(&params, &defense, &InitialCondition::Delta)
            .expect("defended fluid model builds");
        let eq = model.open_equilibrium().expect("defended equilibrium solves");
        let chain = ClusterChain::build_with_defense(&params, &defense);
        let analysis = ClusterAnalysis::from_chain(chain, InitialCondition::Delta)
            .expect("defended exact analysis builds");
        let (_, polluted) = analysis
            .steady_state_fractions()
            .expect("defended exact fractions solve");
        prop_assert!(
            (eq.polluted_fraction - polluted).abs() <= 1e-8,
            "defended polluted: fluid {} vs exact {polluted}",
            eq.polluted_fraction
        );

        let open = FluidModel::build(&params, &InitialCondition::Delta)
            .expect("open fluid model builds")
            .open_equilibrium()
            .expect("open equilibrium solves");
        prop_assert!(
            eq.polluted_fraction <= open.polluted_fraction + 1e-9,
            "induced churn increased pollution: {} -> {}",
            open.polluted_fraction,
            eq.polluted_fraction
        );
    }
}
