use crate::ClusterView;

/// The adversary's verdict on a join event received by a cluster it
/// controls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinDecision {
    /// The join proceeds (the peer enters the spare set).
    Accept,
    /// The join event is positively acknowledged but never executed — the
    /// joiner cannot tell the cluster is polluted (Rule 2's
    /// implementation note in Section V-B).
    Discard,
}

/// A pluggable adversary: the decision points of Section V.
///
/// The simulator consults the strategy exactly where the paper gives the
/// adversary latitude:
///
/// * join events received by **polluted** clusters (Rule 2) —
///   [`Strategy::join_decision`];
/// * leave events hitting a *valid* (non-expired) malicious core member of
///   a **safe** cluster (Rule 1) — [`Strategy::voluntary_core_leave`];
/// * the core-maintenance procedure in **polluted** clusters —
///   [`Strategy::biases_maintenance`].
///
/// Everything else — honest churn, expiry-forced departures, honest
/// maintenance — is protocol-determined and not negotiable.
pub trait Strategy {
    /// Short machine-friendly identifier for reports.
    fn name(&self) -> &'static str;

    /// Whether the polluted cluster described by `view` executes a join
    /// issued by a (malicious or honest) peer.
    fn join_decision(&self, view: &ClusterView, joiner_malicious: bool) -> JoinDecision;

    /// Whether a valid malicious core member of the safe cluster `view`
    /// leaves voluntarily when the churn process selects it (Rule 1).
    fn voluntary_core_leave(&self, view: &ClusterView) -> bool;

    /// Whether the adversary biases the maintenance of polluted clusters
    /// (replacing departed core members with valid malicious spares).
    fn biases_maintenance(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial strategy to pin the trait's object safety.
    struct Null;

    impl Strategy for Null {
        fn name(&self) -> &'static str {
            "null"
        }
        fn join_decision(&self, _view: &ClusterView, _m: bool) -> JoinDecision {
            JoinDecision::Accept
        }
        fn voluntary_core_leave(&self, _view: &ClusterView) -> bool {
            false
        }
        fn biases_maintenance(&self) -> bool {
            false
        }
    }

    #[test]
    fn strategy_is_object_safe() {
        let s: Box<dyn Strategy> = Box::new(Null);
        let view = ClusterView::new(7, 7, 3, 0, 0).unwrap();
        assert_eq!(s.join_decision(&view, true), JoinDecision::Accept);
        assert!(!s.voluntary_core_leave(&view));
        assert_eq!(s.name(), "null");
    }
}
