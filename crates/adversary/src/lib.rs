//! Adversarial strategies against cluster-based overlays.
//!
//! Implements the attacker of Section V of the DSN'11 paper — a strong
//! adversary controlling a global fraction `μ` of colluding peers — as a
//! pluggable [`Strategy`]:
//!
//! * [`TargetedStrategy`] — the paper's strategy: maximize malicious
//!   presence, **Rule 1** (trigger a voluntary core leave when the
//!   `k`-randomized maintenance increases the malicious core count with
//!   probability `> 1 − ν`, Relation 2), **Rule 2** (a polluted cluster
//!   discards honest joins while `s > 1` and all joins at `s = Δ − 1` to
//!   dodge splits), and biased core maintenance in polluted clusters.
//! * [`baselines`] — comparison strategies: a passive adversary that never
//!   exploits the protocol, and a reckless one that ignores the
//!   topological deterrents.
//! * [`rules`] — the bare Rule 1 / Rule 2 predicates, shared by the
//!   analytical transition-matrix builder and the simulators.
//!
//! Decisions are taken against a [`ClusterView`] — the `(s, x, y)`
//! abstraction of a cluster the colluding adversary observes — so the same
//! strategy object drives both the state-level Monte-Carlo simulator and
//! the full overlay simulation.
//!
//! # Example
//!
//! ```
//! use pollux_adversary::{ClusterView, Strategy, TargetedStrategy, JoinDecision};
//!
//! let strategy = TargetedStrategy::new(1, 0.1).unwrap();
//! // A polluted cluster (x = 3 > c = 2) with s = 3 discards honest joins…
//! let view = ClusterView::new(7, 7, 3, 3, 1).unwrap();
//! assert_eq!(strategy.join_decision(&view, false), JoinDecision::Discard);
//! // …but accepts malicious ones.
//! assert_eq!(strategy.join_decision(&view, true), JoinDecision::Accept);
//! ```

mod baselines_mod;
pub mod rules;
mod strategy;
mod targeted;
mod view;

pub use strategy::{JoinDecision, Strategy};
pub use targeted::TargetedStrategy;
pub use view::ClusterView;

/// Baseline strategies for ablation comparisons.
pub mod baselines {
    pub use crate::baselines_mod::{PassiveAdversary, RecklessAdversary};
}
