//! The bare Rule 1 and Rule 2 predicates of Section V, shared by the
//! analytical transition-matrix builder and the simulators.

use pollux_prob::hypergeometric_q;

use crate::ClusterView;

/// The probability in Relation (2): given that one *malicious, still
/// valid* core member of a cluster in state `(s, x, y)` leaves voluntarily
/// under `protocol_k`, the probability that the renewed core holds
/// **strictly more** malicious members than the current one.
///
/// With `i` malicious among the `k − 1` demoted and `j` malicious among the
/// `k` promoted, the new count is `x − 1 − i + j > x ⟺ j ≥ i + 2`:
///
/// ```text
/// Σ_{i=i₀}^{i_max} Σ_{j=i+2}^{j_max} q(k−1, C−1, i, x−1) · q(k, s+k−1, j, y+i)
/// ```
///
/// Returns 0 when the state admits no such departure (`x = 0` or `s = 0`).
///
/// # Panics
///
/// Panics when `k` is outside `1..=C`.
pub fn relation2_probability(view: &ClusterView, k: usize) -> f64 {
    let c_size = view.core_size();
    assert!(k >= 1 && k <= c_size, "k={k} outside 1..={c_size}");
    let (s, x, y) = (
        view.spare_size(),
        view.malicious_core(),
        view.malicious_spare(),
    );
    if x == 0 || s == 0 {
        return 0.0;
    }
    let i_lo = (k as i64 - 1 - (c_size as i64 - x as i64)).max(0) as u64;
    let i_hi = (k - 1).min(x - 1) as u64;
    let mut total = 0.0;
    let mut i = i_lo;
    while i <= i_hi {
        let p_demote = hypergeometric_q(k as u64 - 1, c_size as u64 - 1, i, x as u64 - 1);
        if p_demote > 0.0 {
            let j_hi = (k as u64).min(y as u64 + i);
            let mut j = i + 2;
            while j <= j_hi {
                total += p_demote * hypergeometric_q(k as u64, (s + k - 1) as u64, j, y as u64 + i);
                j += 1;
            }
        }
        i += 1;
        if i == 0 {
            break; // guards against u64 wrap when i_hi is u64::MAX (cannot happen)
        }
    }
    total
}

/// Rule 1 (adversarial leave): the adversary triggers a voluntary leave of
/// a valid malicious core member when
///
/// * the cluster is safe with at least one malicious core member
///   (`0 < x ≤ c`),
/// * leaving cannot push the cluster into a merge (`s > 1`), and
/// * Relation (2) exceeds `1 − ν`.
///
/// For `k = 1` the relation can never hold (no demotion means the malicious
/// count cannot increase by 2), matching the paper.
pub fn rule1_triggers(view: &ClusterView, k: usize, nu: f64) -> bool {
    let x = view.malicious_core();
    if x == 0 || view.is_polluted() || view.spare_size() <= 1 {
        return false;
    }
    relation2_probability(view, k) > 1.0 - nu
}

/// Rule 2 (adversarial join): a polluted cluster discards a join event
/// when `(joiner is honest and s > 1)` or `s = Δ − 1` (to dodge the split).
///
/// Safe clusters never discard (the honest core would not cooperate);
/// callers should only consult this for polluted clusters, but the
/// predicate checks pollution anyway for safety.
pub fn rule2_discards(view: &ClusterView, joiner_malicious: bool) -> bool {
    if !view.is_polluted() {
        return false;
    }
    let s = view.spare_size();
    (s == view.max_spare() - 1) || (!joiner_malicious && s > 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(s: usize, x: usize, y: usize) -> ClusterView {
        ClusterView::new(7, 7, s, x, y).expect("consistent view")
    }

    #[test]
    fn relation2_is_zero_for_k1() {
        for s in 1..7 {
            for x in 1..=7 {
                for y in 0..=s {
                    assert_eq!(relation2_probability(&view(s, x, y), 1), 0.0);
                }
            }
        }
    }

    #[test]
    fn relation2_hand_computed_value() {
        // C = 7, k = 7: all 6 remaining core members are demoted (i = x−1
        // surely). x = 1, y = 3, s = 3: pool of 9 with 3 malicious, draw 7;
        // success needs j ≥ 2, i.e. 1 − P(j=1) = 1 − C(3,1)C(6,6)/C(9,7)
        // = 1 − 3/36 = 11/12.
        let p = relation2_probability(&view(3, 1, 3), 7);
        assert!((p - 11.0 / 12.0).abs() < 1e-12, "p = {p}");
    }

    #[test]
    fn relation2_degenerate_states() {
        assert_eq!(relation2_probability(&view(3, 0, 2), 7), 0.0); // x = 0
        assert_eq!(relation2_probability(&view(0, 2, 0), 7), 0.0); // s = 0
                                                                   // y ≤ 1 can never yield j ≥ i + 2 beyond the demoted returns.
        assert_eq!(relation2_probability(&view(3, 2, 0), 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn relation2_rejects_bad_k() {
        relation2_probability(&view(3, 1, 1), 8);
    }

    #[test]
    fn relation2_is_a_probability() {
        for k in 1..=7 {
            for s in 1..7 {
                for x in 1..=7 {
                    for y in 0..=s {
                        let p = relation2_probability(&view(s, x, y), k);
                        assert!(
                            (0.0..=1.0 + 1e-12).contains(&p),
                            "k={k} s={s} x={x} y={y}: {p}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rule1_never_triggers_for_k1() {
        for s in 1..7 {
            for x in 0..=7 {
                for y in 0..=s {
                    assert!(!rule1_triggers(&view(s, x, y), 1, 0.5));
                }
            }
        }
    }

    #[test]
    fn rule1_triggers_in_favourable_k7_state() {
        // 11/12 ≈ 0.917 > 1 − 0.1.
        assert!(rule1_triggers(&view(3, 1, 3), 7, 0.1));
        // With a stricter threshold it does not.
        assert!(!rule1_triggers(&view(3, 1, 3), 7, 0.05));
    }

    #[test]
    fn rule1_blocked_by_merge_risk_and_pollution() {
        // s = 1: a voluntary leave would drain the spare set.
        assert!(!rule1_triggers(&view(1, 1, 1), 7, 0.5));
        // Polluted cluster: the adversary does not churn its own quorum.
        assert!(!rule1_triggers(&view(3, 3, 3), 7, 0.5));
        // No malicious core member to leave.
        assert!(!rule1_triggers(&view(3, 0, 3), 7, 0.5));
    }

    #[test]
    fn rule2_decision_table() {
        // Polluted, honest joiner, s > 1: discard.
        assert!(rule2_discards(&view(3, 3, 0), false));
        // Polluted, honest joiner, s = 1: accept (merge buffer).
        assert!(!rule2_discards(&view(1, 3, 0), false));
        // Polluted, malicious joiner, room available: accept.
        assert!(!rule2_discards(&view(3, 3, 0), true));
        // Polluted, s = Δ − 1: discard everyone.
        assert!(rule2_discards(&view(6, 3, 0), true));
        assert!(rule2_discards(&view(6, 3, 0), false));
        // Safe cluster never discards.
        assert!(!rule2_discards(&view(3, 2, 0), false));
    }
}
