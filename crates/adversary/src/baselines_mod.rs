//! Baseline adversaries used for ablation comparisons.

use crate::{ClusterView, JoinDecision, Strategy};

/// A passive adversary: its peers participate but never exploit the
/// protocol's decision points — joins always execute, malicious peers never
/// leave voluntarily and never bias maintenance.
///
/// Pollution under this adversary comes purely from the natural mixing of
/// malicious peers through churn, which isolates how much the *strategy*
/// (Rules 1–2 and biasing) adds on top of mere presence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassiveAdversary;

impl PassiveAdversary {
    /// Creates the passive adversary.
    pub fn new() -> Self {
        PassiveAdversary
    }
}

impl Strategy for PassiveAdversary {
    fn name(&self) -> &'static str {
        "passive"
    }

    fn join_decision(&self, _view: &ClusterView, _joiner_malicious: bool) -> JoinDecision {
        JoinDecision::Accept
    }

    fn voluntary_core_leave(&self, _view: &ClusterView) -> bool {
        false
    }

    fn biases_maintenance(&self) -> bool {
        false
    }
}

/// A reckless adversary: grabs every opportunity without regard for the
/// topological deterrents — it biases maintenance and triggers a voluntary
/// core leave whenever *any* malicious spare could be promoted, ignoring
/// both the merge risk and the probability calculation of Rule 1, and it
/// never suppresses joins (so its clusters split and its gains evaporate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecklessAdversary;

impl RecklessAdversary {
    /// Creates the reckless adversary.
    pub fn new() -> Self {
        RecklessAdversary
    }
}

impl Strategy for RecklessAdversary {
    fn name(&self) -> &'static str {
        "reckless"
    }

    fn join_decision(&self, _view: &ClusterView, _joiner_malicious: bool) -> JoinDecision {
        JoinDecision::Accept
    }

    fn voluntary_core_leave(&self, view: &ClusterView) -> bool {
        // Gamble whenever a malicious spare exists at all.
        view.malicious_core() > 0 && view.malicious_spare() > 0
    }

    fn biases_maintenance(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_never_acts() {
        let s = PassiveAdversary::new();
        let polluted = ClusterView::new(7, 7, 6, 3, 2).unwrap();
        assert_eq!(s.join_decision(&polluted, false), JoinDecision::Accept);
        assert!(!s.voluntary_core_leave(&polluted));
        assert!(!s.biases_maintenance());
        assert_eq!(s.name(), "passive");
    }

    #[test]
    fn reckless_gambles_without_merge_guard() {
        let s = RecklessAdversary::new();
        // Even with s = 1 (merge-risky) it leaves if a malicious spare
        // exists.
        let risky = ClusterView::new(7, 7, 1, 1, 1).unwrap();
        assert!(s.voluntary_core_leave(&risky));
        // But not without malicious material.
        let no_spare = ClusterView::new(7, 7, 3, 1, 0).unwrap();
        assert!(!s.voluntary_core_leave(&no_spare));
        let no_core = ClusterView::new(7, 7, 3, 0, 2).unwrap();
        assert!(!s.voluntary_core_leave(&no_core));
        // Never suppresses joins, even near the split boundary.
        let near_split = ClusterView::new(7, 7, 6, 3, 0).unwrap();
        assert_eq!(s.join_decision(&near_split, false), JoinDecision::Accept);
        assert_eq!(s.name(), "reckless");
    }
}
