use pollux_overlay::Cluster;

/// The `(s, x, y)` abstraction of a cluster as observed by the colluding
/// adversary: spare size `s`, malicious core count `x`, malicious spare
/// count `y`, together with the size parameters `C` and `Δ`.
///
/// The adversary coordinates its peers globally (Section V), so it always
/// knows these counts exactly; honest peers do not.
///
/// # Example
///
/// ```
/// use pollux_adversary::ClusterView;
///
/// let view = ClusterView::new(7, 7, 2, 3, 1).unwrap();
/// assert_eq!(view.quorum(), 2);
/// assert!(view.is_polluted()); // x = 3 > c = 2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterView {
    core_size: usize,
    max_spare: usize,
    spare_size: usize,
    malicious_core: usize,
    malicious_spare: usize,
}

impl ClusterView {
    /// Creates a view; returns `None` when the counts are inconsistent
    /// (`x > C`, `y > s`, or `s > Δ`).
    pub fn new(
        core_size: usize,
        max_spare: usize,
        spare_size: usize,
        malicious_core: usize,
        malicious_spare: usize,
    ) -> Option<Self> {
        if core_size == 0
            || malicious_core > core_size
            || malicious_spare > spare_size
            || spare_size > max_spare
        {
            return None;
        }
        Some(ClusterView {
            core_size,
            max_spare,
            spare_size,
            malicious_core,
            malicious_spare,
        })
    }

    /// Builds the view of a concrete overlay cluster.
    pub fn of_cluster(cluster: &Cluster) -> Self {
        let (s, x, y) = cluster.sxy();
        ClusterView {
            core_size: cluster.params().core_size(),
            max_spare: cluster.params().max_spare(),
            spare_size: s,
            malicious_core: x,
            malicious_spare: y,
        }
    }

    /// Core size `C`.
    pub fn core_size(&self) -> usize {
        self.core_size
    }

    /// Maximal spare size `Δ`.
    pub fn max_spare(&self) -> usize {
        self.max_spare
    }

    /// Spare size `s`.
    pub fn spare_size(&self) -> usize {
        self.spare_size
    }

    /// Malicious core count `x`.
    pub fn malicious_core(&self) -> usize {
        self.malicious_core
    }

    /// Malicious spare count `y`.
    pub fn malicious_spare(&self) -> usize {
        self.malicious_spare
    }

    /// Quorum threshold `c = ⌊(C−1)/3⌋`.
    pub fn quorum(&self) -> usize {
        (self.core_size - 1) / 3
    }

    /// `true` when `x > c`.
    pub fn is_polluted(&self) -> bool {
        self.malicious_core > self.quorum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_overlay::{Cluster, ClusterParams, Label, Member, NodeId, PeerId};

    #[test]
    fn validation() {
        assert!(ClusterView::new(0, 7, 0, 0, 0).is_none());
        assert!(ClusterView::new(7, 7, 2, 8, 0).is_none()); // x > C
        assert!(ClusterView::new(7, 7, 2, 0, 3).is_none()); // y > s
        assert!(ClusterView::new(7, 7, 8, 0, 0).is_none()); // s > Δ
        assert!(ClusterView::new(7, 7, 7, 7, 7).is_some());
    }

    #[test]
    fn pollution_and_quorum() {
        let v = ClusterView::new(7, 7, 0, 2, 0).unwrap();
        assert!(!v.is_polluted());
        let v = ClusterView::new(7, 7, 0, 3, 0).unwrap();
        assert!(v.is_polluted());
        assert_eq!(ClusterView::new(10, 7, 0, 0, 0).unwrap().quorum(), 3);
    }

    #[test]
    fn view_of_concrete_cluster() {
        let params = ClusterParams::new(4, 4).unwrap();
        let member = |i: u64, m: bool| Member {
            peer: PeerId(i),
            malicious: m,
            id: NodeId::from_data(&i.to_be_bytes()),
        };
        let core = vec![
            member(0, true),
            member(1, true),
            member(2, false),
            member(3, false),
        ];
        let spare = vec![member(10, true)];
        let cl = Cluster::new(Label::root(), params, core, spare).unwrap();
        let v = ClusterView::of_cluster(&cl);
        assert_eq!(
            (v.spare_size(), v.malicious_core(), v.malicious_spare()),
            (1, 2, 1)
        );
        assert_eq!(v.core_size(), 4);
        assert_eq!(v.max_spare(), 4);
        assert!(v.is_polluted()); // c = 1, x = 2
    }
}
