use crate::rules;
use crate::{ClusterView, JoinDecision, Strategy};

/// The paper's targeted-attack strategy (Section V): Rule 1 + Rule 2 +
/// biased maintenance, parameterized by the protocol's randomization
/// amount `k` and the Rule-1 confidence threshold `ν`.
///
/// # Example
///
/// ```
/// use pollux_adversary::{ClusterView, Strategy, TargetedStrategy};
///
/// let s = TargetedStrategy::new(7, 0.1).unwrap();
/// // Safe cluster with one malicious core member and a malicious-heavy
/// // spare set: the adversary gambles on the k = 7 reshuffle.
/// let view = ClusterView::new(7, 7, 3, 1, 3).unwrap();
/// assert!(s.voluntary_core_leave(&view));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetedStrategy {
    k: usize,
    nu: f64,
}

impl TargetedStrategy {
    /// Creates the strategy for `protocol_k` with threshold `ν ∈ (0, 1)`.
    ///
    /// Returns `None` when `k == 0` or `ν` is outside `(0, 1)`.
    pub fn new(k: usize, nu: f64) -> Option<Self> {
        if k == 0 || !(0.0 < nu && nu < 1.0) {
            return None;
        }
        Some(TargetedStrategy { k, nu })
    }

    /// The randomization amount `k` the strategy assumes.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The Rule-1 threshold `ν`.
    pub fn nu(&self) -> f64 {
        self.nu
    }
}

impl Strategy for TargetedStrategy {
    fn name(&self) -> &'static str {
        "targeted"
    }

    fn join_decision(&self, view: &ClusterView, joiner_malicious: bool) -> JoinDecision {
        if rules::rule2_discards(view, joiner_malicious) {
            JoinDecision::Discard
        } else {
            JoinDecision::Accept
        }
    }

    fn voluntary_core_leave(&self, view: &ClusterView) -> bool {
        rules::rule1_triggers(view, self.k, self.nu)
    }

    fn biases_maintenance(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(TargetedStrategy::new(0, 0.1).is_none());
        assert!(TargetedStrategy::new(1, 0.0).is_none());
        assert!(TargetedStrategy::new(1, 1.0).is_none());
        let s = TargetedStrategy::new(3, 0.2).unwrap();
        assert_eq!(s.k(), 3);
        assert_eq!(s.nu(), 0.2);
        assert_eq!(s.name(), "targeted");
        assert!(s.biases_maintenance());
    }

    #[test]
    fn rule2_wiring() {
        let s = TargetedStrategy::new(1, 0.1).unwrap();
        let polluted_midband = ClusterView::new(7, 7, 3, 3, 0).unwrap();
        assert_eq!(
            s.join_decision(&polluted_midband, false),
            JoinDecision::Discard
        );
        assert_eq!(
            s.join_decision(&polluted_midband, true),
            JoinDecision::Accept
        );
        let near_split = ClusterView::new(7, 7, 6, 3, 0).unwrap();
        assert_eq!(s.join_decision(&near_split, true), JoinDecision::Discard);
        let safe = ClusterView::new(7, 7, 3, 1, 0).unwrap();
        assert_eq!(s.join_decision(&safe, false), JoinDecision::Accept);
    }

    #[test]
    fn rule1_wiring_depends_on_k() {
        let favourable = ClusterView::new(7, 7, 3, 1, 3).unwrap();
        assert!(!TargetedStrategy::new(1, 0.1)
            .unwrap()
            .voluntary_core_leave(&favourable));
        assert!(TargetedStrategy::new(7, 0.1)
            .unwrap()
            .voluntary_core_leave(&favourable));
    }
}
