//! Artefact writers: one TSV/JSON file per report under an output
//! directory (the shared sink every harness binary uses). Files land via
//! tmp-and-rename ([`pollux_resilience::atomic_write`]), so a crash or
//! injected kill mid-write can never leave a torn artefact behind — a
//! later `--resume` run sees either the complete previous file or none.

use std::fs;
use std::path::{Path, PathBuf};

use pollux_resilience::atomic_write;

use crate::{SweepError, SweepReport};

/// On-disk artefact formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Tab-separated values (the default, diff-friendly).
    Tsv,
    /// A JSON object per report.
    Json,
    /// Both TSV and JSON.
    Both,
}

impl OutputFormat {
    /// Parses a `--format` argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tsv" => Some(OutputFormat::Tsv),
            "json" => Some(OutputFormat::Json),
            "both" => Some(OutputFormat::Both),
            _ => None,
        }
    }
}

/// Writes `report` as `<dir>/<scenario>.tsv`, creating `dir` as needed.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_tsv(report: &SweepReport, dir: &Path) -> Result<PathBuf, SweepError> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.tsv", report.scenario));
    atomic_write(&path, report.to_tsv().as_bytes())?;
    Ok(path)
}

/// Writes `report` as `<dir>/<scenario>.json`, creating `dir` as needed.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_json(report: &SweepReport, dir: &Path) -> Result<PathBuf, SweepError> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", report.scenario));
    atomic_write(&path, report.to_json().as_bytes())?;
    Ok(path)
}

/// Writes `report` in `format`, returning the paths written.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_report(
    report: &SweepReport,
    dir: &Path,
    format: OutputFormat,
) -> Result<Vec<PathBuf>, SweepError> {
    let mut paths = Vec::new();
    if matches!(format, OutputFormat::Tsv | OutputFormat::Both) {
        paths.push(write_tsv(report, dir)?);
    }
    if matches!(format, OutputFormat::Json | OutputFormat::Both) {
        paths.push(write_json(report, dir)?);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn report() -> SweepReport {
        SweepReport {
            scenario: "writer_demo".into(),
            columns: vec!["a".into(), "b".into()],
            rows: vec![vec![Value::U64(1), Value::F64(0.5)]],
        }
    }

    #[test]
    fn writes_both_formats() {
        let dir = std::env::temp_dir().join(format!("pollux-sweep-writers-{}", std::process::id()));
        let paths = write_report(&report(), &dir, OutputFormat::Both).unwrap();
        assert_eq!(paths.len(), 2);
        let tsv = fs::read_to_string(&paths[0]).unwrap();
        assert_eq!(tsv, "a\tb\n1\t0.5\n");
        let json = fs::read_to_string(&paths[1]).unwrap();
        assert!(json.contains("\"writer_demo\""));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn format_parsing() {
        assert_eq!(OutputFormat::parse("tsv"), Some(OutputFormat::Tsv));
        assert_eq!(OutputFormat::parse("json"), Some(OutputFormat::Json));
        assert_eq!(OutputFormat::parse("both"), Some(OutputFormat::Both));
        assert_eq!(OutputFormat::parse("xml"), None);
    }
}
