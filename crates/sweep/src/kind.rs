//! The measurement taken at each grid cell: one [`OutputKind`] per
//! scenario, mapping a cell (plus its deterministic seed) to typed rows.

use pollux::des_overlay::{des_memory_audit, run_des_overlay, DesOverlayConfig};
use pollux::duel::{renewal_wilson, run_duel_with_baseline, DuelConfig};
use pollux::simulation;
use pollux::{polluted_split_unreachable, ClusterAnalysis, ClusterChain, ModelSpace, OverlayModel};
use pollux_adversary::TargetedStrategy;
use pollux_defense::DefenseSpec;
use pollux_des::replication::replication_seed;
use pollux_meanfield::{
    tune_induced_churn, AdaptiveOptions, Coupling, FluidModel, Stability, TuningConfig,
};
use pollux_prob::tolerance::CI_HALF_WIDTH_FLOOR;
use pollux_prob::wilson_interval;

use crate::{SweepCell, SweepError, Value};

/// Integration horizon (time units at unit event rate) per chunk of the
/// adaptive mean-field trajectory. The trajectory is extended chunk by
/// chunk until it settles onto the stationary solve, so slow-mixing
/// cells (spectral gap ~10⁻³ on the d = 0.95 edge of the paper grid)
/// get the time they need without over-integrating the fast ones.
const MEAN_FIELD_ODE_HORIZON: f64 = 400.0;
/// Upper bound on settle chunks (total horizon 8 × 400 = 3200 time
/// units: two decades past the slowest paper-grid relaxation time).
const MEAN_FIELD_ODE_MAX_CHUNKS: u32 = 8;
/// Agreement demanded between the settled ODE state and the stationary
/// solve (looser than solver tolerance: the trajectory stops at a
/// finite horizon).
const MEAN_FIELD_ODE_SETTLE_TOL: f64 = 1e-6;
/// Power-iteration budget for the per-equilibrium relaxation-gap bound.
const MEAN_FIELD_GAP_ITERATIONS: u32 = 192;

/// What a scenario computes per cell.
///
/// Analytical kinds are deterministic by construction; Monte-Carlo kinds
/// derive every stream from the cell seed, so all of them produce
/// byte-identical artefacts regardless of the runner's thread count.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OutputKind {
    /// `E(T_S)`, `E(T_P)` (Relations 5–6) — Figure 3 / Table I / k-sweeps.
    Sojourns,
    /// `E(T_S)`, `E(T_P)` plus the polluted-merge absorption mass — the
    /// headline triple the ablation artefacts report.
    SojournsWithAbsorption,
    /// The first `count` successive sojourn expectations per subset
    /// (Relations 7–8) — Table II.
    SuccessiveSojourns {
        /// How many sojourns per subset.
        count: usize,
    },
    /// The Figure-1 absorption split (Relation 9) — Figure 4.
    Absorption,
    /// Beyond-paper decomposition `E(T_P) = P(ever polluted) × duration`,
    /// plus the renewal–reward steady-state polluted fraction.
    PollutionRisk,
    /// State-space partition counts and the Rule-2 reachability check —
    /// Figure 1.
    StateSpace,
    /// Sparse-pipeline scaling probe: the full analytical battery
    /// (Relations 5–6, Relation 9, pollution probability) evaluated
    /// through [`pollux::AnalysisMode::Auto`], reporting the state-space
    /// and non-zero counts alongside. Pushes Δ far past the paper's 7
    /// (state spaces of 10⁴–10⁵ states, where the dense pipeline's O(n²)
    /// memory and O(n³) solves are unusable); deterministic, so the
    /// artefacts stay byte-identical across thread counts.
    StateSpaceScaling,
    /// Overlay-level proportions `E(N_S(m))/n`, `E(N_P(m))/n`
    /// (Theorem 2) — Figure 5. One row per `(n, m)`.
    OverlayProportions {
        /// Overlay sizes `n` to evaluate.
        n_clusters: Vec<u64>,
        /// Event counts `m` at which to sample the proportions.
        sample_points: Vec<u64>,
    },
    /// Analytical metrics vs the event-level Monte-Carlo simulator
    /// (the Figure-2 validation).
    McValidation {
        /// Monte-Carlo replications per cell.
        replications: usize,
        /// Slack in CI half-widths before a mismatch is flagged.
        sigmas: f64,
    },
    /// The cluster-level Markov predictions vs the **whole-overlay
    /// discrete-event simulation** ([`pollux::des_overlay`]) at
    /// production scale: one row per overlay size, each comparing the
    /// measured per-cluster sojourns and absorption split of
    /// `2^cluster_bits` concurrently simulated clusters (10⁵–10⁶ nodes)
    /// against Relations 5–6 and 9, with Welford confidence intervals on
    /// the sojourns and a Wilson score interval
    /// ([`pollux_prob::wilson_interval`]) on the polluted-merge
    /// frequency.
    DesValidation {
        /// Overlay sizes to run: `n = 2^bits` clusters per entry, one
        /// output row each (seeded independently from the cell seed).
        cluster_bits: Vec<u32>,
        /// Per-cluster churn rate of the Poisson arrival streams.
        lambda: f64,
        /// Event budget **per cluster** (the DES distributes its global
        /// cap as per-cluster budgets): a cluster that has not absorbed
        /// within its budget is censored with its partial counts. Without
        /// regeneration an unused budget costs nothing, so validation
        /// scenarios set this generously to keep the sojourn tail's
        /// censoring probability negligible.
        max_events_per_cluster: u64,
        /// Slack multiplier on the confidence half-widths (sojourns) and
        /// the Wilson z quantile (absorption) before a mismatch is
        /// flagged.
        sigmas: f64,
    },
    /// Regeneration-mode DES vs the renewal–reward closed form
    /// ([`pollux::ClusterAnalysis::steady_state_fractions`]): the share
    /// of churn events landing on polluted clusters over an overlay whose
    /// absorbed clusters are re-seeded from the initial condition, with a
    /// renewal-adjusted Wilson interval
    /// ([`pollux::duel::renewal_wilson`]) around the measurement. Also
    /// samples live safe/polluted fractions on a fixed time grid (the
    /// continuous-time Figure-5 analogue) and reports their count and
    /// mean. The measurement substrate of the duel scenarios.
    DesSteadyState {
        /// Overlay sizes to run: `n = 2^bits` clusters per entry.
        cluster_bits: Vec<u32>,
        /// Per-cluster churn rate.
        lambda: f64,
        /// Event budget per cluster.
        max_events_per_cluster: u64,
        /// Fixed time grid for the live-fraction samples (sorted).
        sample_times: Vec<f64>,
        /// Wilson z-quantile of the agreement interval.
        sigmas: f64,
    },
    /// An adversary-vs-defense duel per cell: every listed defense is
    /// evaluated analytically (defense-folded chain through the sparse
    /// pipeline) **and** empirically (regeneration-mode DES), with the
    /// undefended baseline and the agreement verdict per row.
    Duel {
        /// The defenses to duel (one output row each).
        defenses: Vec<DefenseSpec>,
        /// `2^bits` clusters per DES run.
        cluster_bits: u32,
        /// Per-cluster churn rate.
        lambda: f64,
        /// Event budget per cluster.
        max_events_per_cluster: u64,
        /// Wilson z-quantile of the agreement interval.
        sigmas: f64,
    },
    /// Cross-validation of the mean-field (fluid-limit) evaluation path
    /// ([`pollux_meanfield::FluidModel`]): the fluid stationary
    /// fractions vs the exact renewal fractions
    /// ([`pollux::ClusterAnalysis::steady_state_fractions`]), vs the
    /// settled adaptive-ODE trajectory, and vs a regeneration-mode DES
    /// run whose renewal-adjusted Wilson interval is widened by the
    /// documented O(1/M) finite-size band.
    MeanFieldValidation {
        /// `2^bits` clusters in the DES run.
        cluster_bits: u32,
        /// Per-cluster churn rate of the DES.
        lambda: f64,
        /// Event budget per cluster (half is spent as warm-up).
        max_events_per_cluster: u64,
        /// Wilson z-quantile of the DES agreement interval.
        sigmas: f64,
        /// Absolute tolerance on the fluid-vs-exact stationary
        /// fractions (the two coincide by the renewal identity, so this
        /// is solver slack, not an approximation bound).
        tol: f64,
    },
    /// Coupled mean-field equilibria under the targeted-adversary
    /// routing-bias feedback: one row per (amplification, equilibrium
    /// branch) with the Jacobian-eigenvalue stability classification
    /// and the power-iteration relaxation-gap bound. Deterministic
    /// (byte-identical across thread counts by construction).
    MeanFieldEquilibrium {
        /// Routing-bias amplification factors to scan (`0` recovers the
        /// open model and its unique equilibrium).
        amplifications: Vec<f64>,
    },
    /// Mean-field-guided defense tuning: the minimal
    /// [`InducedChurn`](pollux_defense::InducedChurn)
    /// rate whose stationary polluted fraction meets a threshold, found
    /// by bisection on the fluid equilibrium and verified against the
    /// exact chain at the answer. Replaces the old `DefenseFrontier`
    /// grid scan with ~log₂(range/tol) sparse solves plus a single
    /// exact-chain battery. Purely analytical (byte-identical across
    /// thread counts by construction).
    ControlTuning {
        /// Target ceiling on the steady-state polluted fraction.
        threshold: f64,
        /// Upper end of the searched rate range (must stay below 1,
        /// the [`InducedChurn`](pollux_defense::InducedChurn) domain
        /// bound).
        max_rate: f64,
        /// Bracket width at which bisection stops.
        rate_tol: f64,
    },
    /// Theorem 2 vs the `n`-cluster competing Monte-Carlo simulation.
    OverlayMcValidation {
        /// Number of clusters `n`.
        n_clusters: usize,
        /// Independent overlay trajectories to average.
        runs: u64,
        /// Event counts `m` at which to compare.
        sample_points: Vec<u64>,
        /// Absolute tolerance on the safe proportion.
        tol_safe: f64,
        /// Absolute tolerance on the polluted proportion.
        tol_polluted: f64,
    },
}

impl OutputKind {
    /// The kind-specific column names (appended to the cell key columns).
    pub fn columns(&self) -> Vec<String> {
        match self {
            OutputKind::Sojourns => vec!["E_T_S".into(), "E_T_P".into()],
            OutputKind::SojournsWithAbsorption => {
                vec!["E_T_S".into(), "E_T_P".into(), "p_polluted_merge".into()]
            }
            OutputKind::SuccessiveSojourns { count } => {
                let mut cols = Vec::with_capacity(2 * count);
                for i in 1..=*count {
                    cols.push(format!("E_T_S{i}"));
                }
                for i in 1..=*count {
                    cols.push(format!("E_T_P{i}"));
                }
                cols
            }
            OutputKind::Absorption => vec![
                "p_safe_merge".into(),
                "p_safe_split".into(),
                "p_polluted_merge".into(),
                "p_polluted_split".into(),
                "total".into(),
            ],
            OutputKind::PollutionRisk => vec![
                "p_ever_polluted".into(),
                "E_T_P_given_polluted".into(),
                "E_T_P".into(),
                "steady_polluted_fraction".into(),
            ],
            OutputKind::StateSpace => vec![
                "n_states".into(),
                "n_transient_safe".into(),
                "n_transient_polluted".into(),
                "n_safe_merge".into(),
                "n_safe_split".into(),
                "n_polluted_merge".into(),
                "n_polluted_split".into(),
                "polluted_split_unreachable".into(),
            ],
            OutputKind::StateSpaceScaling => vec![
                "n_states".into(),
                "n_transient".into(),
                "nnz".into(),
                "pipeline".into(),
                "E_T_S".into(),
                "E_T_P".into(),
                "p_polluted_merge".into(),
                "p_ever_polluted".into(),
            ],
            OutputKind::OverlayProportions { .. } => vec![
                "n".into(),
                "m".into(),
                "safe_proportion".into(),
                "polluted_proportion".into(),
            ],
            OutputKind::McValidation { .. } => vec![
                "E_T_S".into(),
                "sim_T_S".into(),
                "sim_T_S_ci".into(),
                "E_T_P".into(),
                "sim_T_P".into(),
                "sim_T_P_ci".into(),
                "p_polluted_merge".into(),
                "sim_polluted_merge".into(),
                "censored".into(),
                "ok".into(),
            ],
            OutputKind::DesValidation { .. } => vec![
                "n_clusters".into(),
                "nodes".into(),
                "events".into(),
                "t_end".into(),
                "E_T_S".into(),
                "des_T_S".into(),
                "des_T_S_ci".into(),
                "E_T_P".into(),
                "des_T_P".into(),
                "des_T_P_ci".into(),
                "p_polluted_merge".into(),
                "des_polluted_merge".into(),
                "des_pm_lo".into(),
                "des_pm_hi".into(),
                "censored".into(),
                "ok".into(),
            ],
            OutputKind::DesSteadyState { .. } => vec![
                "n_clusters".into(),
                "events".into(),
                "cycles".into(),
                "analytic_safe".into(),
                "analytic_polluted".into(),
                "des_safe".into(),
                "des_polluted".into(),
                "des_lo".into(),
                "des_hi".into(),
                "n_samples".into(),
                "mean_live_polluted".into(),
                "ok".into(),
            ],
            OutputKind::Duel { .. } => vec![
                "defense".into(),
                "E_T_S".into(),
                "E_T_P".into(),
                "analytic_polluted".into(),
                "des_polluted".into(),
                "des_lo".into(),
                "des_hi".into(),
                "baseline_polluted".into(),
                "reduction".into(),
                "cycles".into(),
                "ok".into(),
            ],
            OutputKind::MeanFieldValidation { .. } => vec![
                "n_clusters".into(),
                "mf_safe".into(),
                "mf_polluted".into(),
                "exact_safe".into(),
                "exact_polluted".into(),
                "ode_polluted".into(),
                "des_polluted".into(),
                "des_lo".into(),
                "des_hi".into(),
                "band".into(),
                "cycles".into(),
                "ok".into(),
            ],
            OutputKind::MeanFieldEquilibrium { .. } => vec![
                "amplification".into(),
                "branch".into(),
                "mu_eff".into(),
                "safe".into(),
                "polluted".into(),
                "abscissa".into(),
                "stable".into(),
                "gap".into(),
            ],
            OutputKind::ControlTuning { .. } => vec![
                "baseline_polluted".into(),
                "threshold".into(),
                "found".into(),
                "frontier_rate".into(),
                "polluted_at_frontier".into(),
                "evaluations".into(),
                "verified_polluted".into(),
                "verified_ok".into(),
            ],
            OutputKind::OverlayMcValidation { .. } => vec![
                "n".into(),
                "m".into(),
                "t2_safe".into(),
                "sim_safe".into(),
                "t2_polluted".into(),
                "sim_polluted".into(),
                "ok".into(),
            ],
        }
    }

    /// Evaluates one cell. `seed` is the cell's deterministic seed; only
    /// Monte-Carlo kinds consume it. `shards` is the worker-shard count
    /// handed to the whole-overlay DES kinds (the runner passes its own
    /// thread count, so a `--threads 8` sweep also shards each DES run
    /// 8 ways) — DES output is byte-identical across shard counts, so
    /// this affects wall-clock time only, never artefact bytes.
    ///
    /// # Errors
    ///
    /// Propagates model/analysis construction failures.
    pub fn evaluate(
        &self,
        cell: &SweepCell,
        seed: u64,
        shards: usize,
    ) -> Result<Vec<Vec<Value>>, SweepError> {
        match self {
            OutputKind::Sojourns => {
                let a = ClusterAnalysis::new(&cell.params, cell.initial.clone())?;
                Ok(vec![vec![
                    a.expected_safe_events()?.into(),
                    a.expected_polluted_events()?.into(),
                ]])
            }
            OutputKind::SojournsWithAbsorption => {
                let a = ClusterAnalysis::new(&cell.params, cell.initial.clone())?;
                Ok(vec![vec![
                    a.expected_safe_events()?.into(),
                    a.expected_polluted_events()?.into(),
                    a.absorption_split()?.polluted_merge.into(),
                ]])
            }
            OutputKind::SuccessiveSojourns { count } => {
                let a = ClusterAnalysis::new(&cell.params, cell.initial.clone())?;
                let s = a.successive_safe_sojourns(*count);
                let p = a.successive_polluted_sojourns(*count);
                let mut row = Vec::with_capacity(2 * count);
                row.extend(s.into_iter().map(Value::from));
                row.extend(p.into_iter().map(Value::from));
                Ok(vec![row])
            }
            OutputKind::Absorption => {
                let a = ClusterAnalysis::new(&cell.params, cell.initial.clone())?;
                let split = a.absorption_split()?;
                Ok(vec![vec![
                    split.safe_merge.into(),
                    split.safe_split.into(),
                    split.polluted_merge.into(),
                    split.polluted_split.into(),
                    split.total().into(),
                ]])
            }
            OutputKind::PollutionRisk => {
                let a = ClusterAnalysis::new(&cell.params, cell.initial.clone())?;
                let e_tp = a.expected_polluted_events()?;
                let p_ever = a.pollution_probability()?;
                let duration = if p_ever > 0.0 { e_tp / p_ever } else { 0.0 };
                let (_, steady_polluted) = a.steady_state_fractions()?;
                Ok(vec![vec![
                    p_ever.into(),
                    duration.into(),
                    e_tp.into(),
                    steady_polluted.into(),
                ]])
            }
            OutputKind::StateSpace => {
                let space = ModelSpace::new(&cell.params);
                let chain = ClusterChain::build(&cell.params);
                Ok(vec![vec![
                    space.len().into(),
                    space.transient_safe().len().into(),
                    space.transient_polluted().len().into(),
                    space.safe_merge().len().into(),
                    space.safe_split().len().into(),
                    space.polluted_merge().len().into(),
                    space.polluted_split().len().into(),
                    polluted_split_unreachable(&chain).into(),
                ]])
            }
            OutputKind::StateSpaceScaling => {
                let chain = ClusterChain::build(&cell.params);
                let n_states = chain.space().len();
                let n_transient = chain.space().transient().len();
                let nnz = chain.sparse_dtmc().matrix().nnz();
                let a = ClusterAnalysis::from_chain(chain, cell.initial.clone())?;
                Ok(vec![vec![
                    n_states.into(),
                    n_transient.into(),
                    nnz.into(),
                    if a.is_sparse() { "sparse" } else { "dense" }.into(),
                    a.expected_safe_events()?.into(),
                    a.expected_polluted_events()?.into(),
                    a.absorption_split()?.polluted_merge.into(),
                    a.pollution_probability()?.into(),
                ]])
            }
            OutputKind::OverlayProportions {
                n_clusters,
                sample_points,
            } => {
                let mut rows = Vec::with_capacity(n_clusters.len() * sample_points.len());
                for &n in n_clusters {
                    let model = OverlayModel::new(&cell.params, cell.initial.clone(), n)?;
                    for point in model.proportion_series(sample_points)? {
                        rows.push(vec![
                            n.into(),
                            point.m.into(),
                            point.safe.into(),
                            point.polluted.into(),
                        ]);
                    }
                }
                Ok(rows)
            }
            OutputKind::McValidation {
                replications,
                sigmas,
            } => {
                let a = ClusterAnalysis::new(&cell.params, cell.initial.clone())?;
                let e_ts = a.expected_safe_events()?;
                let e_tp = a.expected_polluted_events()?;
                let split = a.absorption_split()?;
                let strategy = TargetedStrategy::new(cell.params.k(), cell.params.nu())
                    .ok_or_else(|| {
                        SweepError::InvalidScenario(format!(
                            "no targeted strategy for k = {}, nu = {}",
                            cell.params.k(),
                            cell.params.nu()
                        ))
                    })?;
                // One in-cell thread: the sweep runner supplies the
                // parallelism, and a fixed layout keeps streams identical.
                let report = simulation::estimate(
                    &cell.params,
                    &cell.initial,
                    &strategy,
                    *replications,
                    seed,
                    1,
                );
                let ok_s = (report.safe_events.mean - e_ts).abs()
                    <= sigmas * report.safe_events.ci_half_width.max(CI_HALF_WIDTH_FLOOR);
                let ok_p = (report.polluted_events.mean - e_tp).abs()
                    <= sigmas
                        * report
                            .polluted_events
                            .ci_half_width
                            .max(CI_HALF_WIDTH_FLOOR);
                let ok_a = (report.absorption.2 - split.polluted_merge).abs() < 0.01;
                Ok(vec![vec![
                    e_ts.into(),
                    report.safe_events.mean.into(),
                    report.safe_events.ci_half_width.into(),
                    e_tp.into(),
                    report.polluted_events.mean.into(),
                    report.polluted_events.ci_half_width.into(),
                    split.polluted_merge.into(),
                    report.absorption.2.into(),
                    report.censored.into(),
                    (ok_s && ok_p && ok_a).into(),
                ]])
            }
            OutputKind::DesValidation {
                cluster_bits,
                lambda,
                max_events_per_cluster,
                sigmas,
            } => {
                let a = ClusterAnalysis::new(&cell.params, cell.initial.clone())?;
                let e_ts = a.expected_safe_events()?;
                let e_tp = a.expected_polluted_events()?;
                let split = a.absorption_split()?;
                let strategy = TargetedStrategy::new(cell.params.k(), cell.params.nu())
                    .ok_or_else(|| {
                        SweepError::InvalidScenario(format!(
                            "no targeted strategy for k = {}, nu = {}",
                            cell.params.k(),
                            cell.params.nu()
                        ))
                    })?;
                let mut rows = Vec::with_capacity(cluster_bits.len());
                for (i, &bits) in cluster_bits.iter().enumerate() {
                    let config =
                        DesOverlayConfig::new(bits, *lambda, max_events_per_cluster << bits)
                            .with_shards(shards);
                    // Each overlay size gets its own stream derived from
                    // the cell seed, so adding a size never perturbs the
                    // others.
                    let r = run_des_overlay(
                        &cell.params,
                        &cell.initial,
                        &strategy,
                        &config,
                        replication_seed(seed, i as u64),
                    );
                    let (pm_lo, pm_hi) =
                        wilson_interval(r.absorption_counts[2], r.absorbed, *sigmas);
                    let ok_s = (r.safe_events.mean - e_ts).abs()
                        <= sigmas * r.safe_events.ci_half_width.max(CI_HALF_WIDTH_FLOOR);
                    let ok_p = (r.polluted_events.mean - e_tp).abs()
                        <= sigmas * r.polluted_events.ci_half_width.max(CI_HALF_WIDTH_FLOOR);
                    let ok_a = (pm_lo..=pm_hi).contains(&split.polluted_merge);
                    rows.push(vec![
                        (r.n_clusters as u64).into(),
                        r.initial_nodes.into(),
                        r.events.into(),
                        r.end_time.into(),
                        e_ts.into(),
                        r.safe_events.mean.into(),
                        r.safe_events.ci_half_width.into(),
                        e_tp.into(),
                        r.polluted_events.mean.into(),
                        r.polluted_events.ci_half_width.into(),
                        split.polluted_merge.into(),
                        r.absorption.2.into(),
                        pm_lo.into(),
                        pm_hi.into(),
                        r.censored.into(),
                        (ok_s && ok_p && ok_a).into(),
                    ]);
                }
                Ok(rows)
            }
            OutputKind::DesSteadyState {
                cluster_bits,
                lambda,
                max_events_per_cluster,
                sample_times,
                sigmas,
            } => {
                if sample_times.windows(2).any(|w| w[0] > w[1]) {
                    return Err(SweepError::InvalidScenario(
                        "sample times must be sorted increasing".into(),
                    ));
                }
                let a = ClusterAnalysis::new(&cell.params, cell.initial.clone())?;
                let (want_safe, want_poll) = a.steady_state_fractions()?;
                let strategy = TargetedStrategy::new(cell.params.k(), cell.params.nu())
                    .ok_or_else(|| {
                        SweepError::InvalidScenario(format!(
                            "no targeted strategy for k = {}, nu = {}",
                            cell.params.k(),
                            cell.params.nu()
                        ))
                    })?;
                let mut rows = Vec::with_capacity(cluster_bits.len());
                for (i, &bits) in cluster_bits.iter().enumerate() {
                    // Half the budget is warm-up (see `pollux::duel`): the
                    // fresh-δ transient is safe-heavy, and an unwarmed
                    // share biases the measured pollution low.
                    let config =
                        DesOverlayConfig::new(bits, *lambda, max_events_per_cluster << bits)
                            .with_regeneration()
                            .with_warmup_events(max_events_per_cluster / 2)
                            .with_sample_times(sample_times.clone())
                            .with_shards(shards);
                    let r = run_des_overlay(
                        &cell.params,
                        &cell.initial,
                        &strategy,
                        &config,
                        replication_seed(seed, i as u64),
                    );
                    let (des_safe, des_poll) = r.steady_state_fractions();
                    let (lo, hi) = renewal_wilson(
                        r.polluted_event_total,
                        r.events - r.warmup_events,
                        r.measured_cycles,
                        *sigmas,
                    );
                    let mean_live_polluted = if r.occupancy.is_empty() {
                        0.0
                    } else {
                        r.occupancy.iter().map(|&(_, _, p)| p).sum::<f64>()
                            / r.occupancy.len() as f64
                    };
                    rows.push(vec![
                        (r.n_clusters as u64).into(),
                        r.events.into(),
                        r.absorbed.into(),
                        want_safe.into(),
                        want_poll.into(),
                        des_safe.into(),
                        des_poll.into(),
                        lo.into(),
                        hi.into(),
                        (r.occupancy.len() as u64).into(),
                        mean_live_polluted.into(),
                        ((lo..=hi).contains(&want_poll)).into(),
                    ]);
                }
                Ok(rows)
            }
            OutputKind::Duel {
                defenses,
                cluster_bits,
                lambda,
                max_events_per_cluster,
                sigmas,
            } => {
                let strategy = TargetedStrategy::new(cell.params.k(), cell.params.nu())
                    .ok_or_else(|| {
                        SweepError::InvalidScenario(format!(
                            "no targeted strategy for k = {}, nu = {}",
                            cell.params.k(),
                            cell.params.nu()
                        ))
                    })?;
                // The undefended baseline is computed once per cell and
                // shared by every defense row.
                let baseline = ClusterAnalysis::new(&cell.params, cell.initial.clone())?;
                let (_, baseline_polluted) = baseline.steady_state_fractions()?;
                let config = DuelConfig {
                    cluster_bits: *cluster_bits,
                    lambda: *lambda,
                    max_events_per_cluster: *max_events_per_cluster,
                    sigmas: *sigmas,
                    shards,
                };
                let mut rows = Vec::with_capacity(defenses.len());
                for (i, spec) in defenses.iter().enumerate() {
                    let defense = spec
                        .build()
                        .map_err(|e| SweepError::InvalidScenario(e.to_string()))?;
                    // Each defense gets its own stream derived from the
                    // cell seed and its list position (so appending a
                    // defense never perturbs earlier rows; reordering or
                    // inserting mid-list re-seeds the rows after it).
                    let outcome = run_duel_with_baseline(
                        &cell.params,
                        &cell.initial,
                        &strategy,
                        defense.as_ref(),
                        &config,
                        replication_seed(seed, i as u64),
                        baseline_polluted,
                    )?;
                    rows.push(vec![
                        Value::Str(spec.label()),
                        outcome.analytic_safe_events.into(),
                        outcome.analytic_polluted_events.into(),
                        outcome.analytic_polluted.into(),
                        outcome.des_polluted.into(),
                        outcome.des_lo.into(),
                        outcome.des_hi.into(),
                        outcome.baseline_polluted.into(),
                        outcome.reduction().into(),
                        outcome.cycles.into(),
                        outcome.agrees.into(),
                    ]);
                }
                Ok(rows)
            }
            OutputKind::MeanFieldValidation {
                cluster_bits,
                lambda,
                max_events_per_cluster,
                sigmas,
                tol,
            } => {
                if !(*tol > 0.0 && tol.is_finite()) {
                    return Err(SweepError::InvalidScenario(format!(
                        "mean-field tolerance must be positive, got {tol}"
                    )));
                }
                let model = FluidModel::build(&cell.params, &cell.initial)
                    .map_err(|e| SweepError::InvalidScenario(e.to_string()))?;
                let eq = model
                    .open_equilibrium()
                    .map_err(|e| SweepError::InvalidScenario(e.to_string()))?;
                let a = ClusterAnalysis::new(&cell.params, cell.initial.clone())?;
                let (exact_safe, exact_polluted) = a.steady_state_fractions()?;
                // The ODE trajectory from the regeneration distribution
                // must settle onto the same equilibrium (a genuinely
                // independent check of the stationary solve).
                let mut y = model.alpha().to_vec();
                let mut ode_polluted = f64::NAN;
                for _ in 0..MEAN_FIELD_ODE_MAX_CHUNKS {
                    let run = model
                        .integrate_adaptive(&y, MEAN_FIELD_ODE_HORIZON, &AdaptiveOptions::default())
                        .map_err(|e| SweepError::InvalidScenario(e.to_string()))?;
                    y = run.y;
                    let (_, p) = model.fractions(&y);
                    ode_polluted = p;
                    if (p - eq.polluted_fraction).abs() <= MEAN_FIELD_ODE_SETTLE_TOL {
                        break;
                    }
                }
                let strategy = TargetedStrategy::new(cell.params.k(), cell.params.nu())
                    .ok_or_else(|| {
                        SweepError::InvalidScenario(format!(
                            "no targeted strategy for k = {}, nu = {}",
                            cell.params.k(),
                            cell.params.nu()
                        ))
                    })?;
                let config = DesOverlayConfig::new(
                    *cluster_bits,
                    *lambda,
                    max_events_per_cluster << cluster_bits,
                )
                .with_regeneration()
                .with_warmup_events(max_events_per_cluster / 2)
                .with_shards(shards);
                let r = run_des_overlay(&cell.params, &cell.initial, &strategy, &config, seed);
                let (_, des_polluted) = r.steady_state_fractions();
                let (lo, hi) = renewal_wilson(
                    r.polluted_event_total,
                    r.events - r.warmup_events,
                    r.measured_cycles,
                    *sigmas,
                );
                // The fluid prediction is exact only at M = ∞; a finite
                // DES overlay sits within O(1/M) of it, so the Wilson
                // band is widened by one finite-size term.
                let band = 1.0 / (1u64 << cluster_bits) as f64;
                let ok = (eq.safe_fraction - exact_safe).abs() <= *tol
                    && (eq.polluted_fraction - exact_polluted).abs() <= *tol
                    && (ode_polluted - eq.polluted_fraction).abs() <= MEAN_FIELD_ODE_SETTLE_TOL
                    && ((lo - band)..=(hi + band)).contains(&eq.polluted_fraction);
                Ok(vec![vec![
                    (1u64 << cluster_bits).into(),
                    eq.safe_fraction.into(),
                    eq.polluted_fraction.into(),
                    exact_safe.into(),
                    exact_polluted.into(),
                    ode_polluted.into(),
                    des_polluted.into(),
                    lo.into(),
                    hi.into(),
                    band.into(),
                    r.measured_cycles.into(),
                    ok.into(),
                ]])
            }
            OutputKind::MeanFieldEquilibrium { amplifications } => {
                if amplifications.is_empty()
                    || amplifications.iter().any(|a| !a.is_finite() || *a < 0.0)
                {
                    return Err(SweepError::InvalidScenario(
                        "amplifications must be non-empty and non-negative".into(),
                    ));
                }
                let mut rows = Vec::new();
                for &amplification in amplifications {
                    let model = FluidModel::build(&cell.params, &cell.initial)
                        .and_then(|m| {
                            m.with_coupling(if amplification == 0.0 {
                                Coupling::Open
                            } else {
                                Coupling::RoutingBias { amplification }
                            })
                        })
                        .map_err(|e| SweepError::InvalidScenario(e.to_string()))?;
                    let equilibria = model
                        .equilibria()
                        .map_err(|e| SweepError::InvalidScenario(e.to_string()))?;
                    for (branch, eq) in equilibria.iter().enumerate() {
                        let report = model
                            .classify_equilibrium(eq)
                            .map_err(|e| SweepError::InvalidScenario(e.to_string()))?;
                        let gap = model.relaxation_gap(eq, MEAN_FIELD_GAP_ITERATIONS);
                        rows.push(vec![
                            amplification.into(),
                            (branch as u64).into(),
                            eq.mu_eff.into(),
                            eq.safe_fraction.into(),
                            eq.polluted_fraction.into(),
                            report.abscissa.into(),
                            matches!(report.classification, Stability::Stable).into(),
                            gap.into(),
                        ]);
                    }
                }
                Ok(rows)
            }
            OutputKind::ControlTuning {
                threshold,
                max_rate,
                rate_tol,
            } => {
                let cfg = TuningConfig {
                    threshold: *threshold,
                    max_rate: *max_rate,
                    rate_tol: *rate_tol,
                };
                let out = tune_induced_churn(&cell.params, &cell.initial, &cfg)
                    .map_err(|e| SweepError::InvalidScenario(e.to_string()))?;
                Ok(vec![vec![
                    out.baseline_polluted.into(),
                    out.threshold.into(),
                    out.found.into(),
                    out.rate.into(),
                    out.polluted_at_rate.into(),
                    out.evaluations.into(),
                    out.verified_polluted.into(),
                    out.verified_ok.into(),
                ]])
            }
            OutputKind::OverlayMcValidation {
                n_clusters,
                runs,
                sample_points,
                tol_safe,
                tol_polluted,
            } => {
                let model =
                    OverlayModel::new(&cell.params, cell.initial.clone(), *n_clusters as u64)?;
                let expect = model.proportion_series(sample_points)?;
                let strategy = TargetedStrategy::new(cell.params.k(), cell.params.nu())
                    .ok_or_else(|| {
                        SweepError::InvalidScenario(format!(
                            "no targeted strategy for k = {}, nu = {}",
                            cell.params.k(),
                            cell.params.nu()
                        ))
                    })?;
                let config = pollux::overlay_sim::OverlaySimConfig {
                    n_clusters: *n_clusters,
                    sample_points: sample_points.clone(),
                    regenerate: false,
                };
                let mut mean_safe = vec![0.0; sample_points.len()];
                let mut mean_polluted = vec![0.0; sample_points.len()];
                for run in 0..*runs {
                    let tr = pollux::overlay_sim::run_overlay(
                        &cell.params,
                        &cell.initial,
                        &strategy,
                        &config,
                        replication_seed(seed, run),
                    );
                    for (i, &(_, s, p)) in tr.points.iter().enumerate() {
                        mean_safe[i] += s / *runs as f64;
                        mean_polluted[i] += p / *runs as f64;
                    }
                }
                let mut rows = Vec::with_capacity(expect.len());
                for (i, e) in expect.iter().enumerate() {
                    let ok = (mean_safe[i] - e.safe).abs() < *tol_safe
                        && (mean_polluted[i] - e.polluted).abs() < *tol_polluted;
                    rows.push(vec![
                        (*n_clusters).into(),
                        e.m.into(),
                        e.safe.into(),
                        mean_safe[i].into(),
                        e.polluted.into(),
                        mean_polluted[i].into(),
                        ok.into(),
                    ]);
                }
                Ok(rows)
            }
        }
    }

    /// Predicted peak memory footprint of evaluating one cell with the
    /// given DES shard count, or `None` when the kind has no usable
    /// prediction (the analytical kinds' footprint depends on pipeline
    /// selection, not on pre-declarable tables).
    ///
    /// DES kinds sum the table audit ([`des_memory_audit`] — the same
    /// accounting `pollux-obs` exposes) of the *largest* sub-run the cell
    /// will launch (sub-runs are sequential, so the peak is the max, not
    /// the sum) plus a per-shard working-set allowance for each worker's
    /// scratch (RNG state, staged accumulators, stack). The allowance is
    /// what makes shard shedding a real degradation lever: the audited
    /// tables are shard-invariant by design, so shards only add scratch —
    /// and since DES output bytes are shard-invariant too, shedding
    /// changes the memory plan without touching a single artefact byte.
    #[must_use]
    pub fn predicted_memory_bytes(&self, cell: &SweepCell, shards: usize) -> Option<u64> {
        /// Working-set allowance per DES shard worker (scratch buffers,
        /// RNG state, thread stack) on top of the audited shared tables.
        const PER_SHARD_OVERHEAD_BYTES: u64 = 1 << 20;
        let largest_audit = |configs: &mut dyn Iterator<Item = DesOverlayConfig>| {
            configs
                .map(|c| des_memory_audit(&cell.params, &c).total_bytes())
                .max()
                .unwrap_or(0)
        };
        let tables = match self {
            OutputKind::DesValidation {
                cluster_bits,
                lambda,
                max_events_per_cluster,
                ..
            } => largest_audit(&mut cluster_bits.iter().map(|&bits| {
                DesOverlayConfig::new(bits, *lambda, max_events_per_cluster << bits)
                    .with_shards(shards)
            })),
            OutputKind::DesSteadyState {
                cluster_bits,
                lambda,
                max_events_per_cluster,
                ..
            } => largest_audit(&mut cluster_bits.iter().map(|&bits| {
                DesOverlayConfig::new(bits, *lambda, max_events_per_cluster << bits)
                    .with_shards(shards)
            })),
            OutputKind::Duel {
                cluster_bits,
                lambda,
                max_events_per_cluster,
                ..
            } => largest_audit(&mut std::iter::once(
                DesOverlayConfig::new(*cluster_bits, *lambda, *max_events_per_cluster)
                    .with_shards(shards),
            )),
            OutputKind::MeanFieldValidation {
                cluster_bits,
                lambda,
                max_events_per_cluster,
                ..
            } => largest_audit(&mut std::iter::once(
                DesOverlayConfig::new(
                    *cluster_bits,
                    *lambda,
                    max_events_per_cluster << cluster_bits,
                )
                .with_shards(shards),
            )),
            _ => return None,
        };
        Some(tables + shards as u64 * PER_SHARD_OVERHEAD_BYTES)
    }

    /// `true` when the kind consumes randomness (its artefacts depend on
    /// the master seed as well as the grid).
    pub fn is_monte_carlo(&self) -> bool {
        matches!(
            self,
            OutputKind::McValidation { .. }
                | OutputKind::OverlayMcValidation { .. }
                | OutputKind::DesValidation { .. }
                | OutputKind::DesSteadyState { .. }
                | OutputKind::Duel { .. }
                | OutputKind::MeanFieldValidation { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamGrid;

    fn paper_cell() -> SweepCell {
        ParamGrid::paper()
            .mu(vec![0.2])
            .d(vec![0.9])
            .cells()
            .unwrap()
            .remove(0)
    }

    #[test]
    fn sojourns_match_direct_analysis() {
        let cell = paper_cell();
        let rows = OutputKind::Sojourns.evaluate(&cell, 0, 1).unwrap();
        assert_eq!(rows.len(), 1);
        let a = ClusterAnalysis::new(&cell.params, cell.initial.clone()).unwrap();
        assert_eq!(
            rows[0][0].as_f64().unwrap(),
            a.expected_safe_events().unwrap()
        );
        assert_eq!(
            rows[0][1].as_f64().unwrap(),
            a.expected_polluted_events().unwrap()
        );
    }

    #[test]
    fn absorption_rows_sum_to_one() {
        let rows = OutputKind::Absorption
            .evaluate(&paper_cell(), 0, 1)
            .unwrap();
        let total = rows[0][4].as_f64().unwrap();
        assert!((total - 1.0).abs() < 1e-8, "total {total}");
    }

    #[test]
    fn columns_match_row_arity_for_every_kind() {
        let cell = paper_cell();
        let kinds = [
            OutputKind::Sojourns,
            OutputKind::SojournsWithAbsorption,
            OutputKind::SuccessiveSojourns { count: 2 },
            OutputKind::Absorption,
            OutputKind::PollutionRisk,
            OutputKind::StateSpace,
            OutputKind::StateSpaceScaling,
            OutputKind::OverlayProportions {
                n_clusters: vec![10],
                sample_points: vec![0, 10, 20],
            },
            OutputKind::McValidation {
                replications: 50,
                sigmas: 3.0,
            },
            OutputKind::OverlayMcValidation {
                n_clusters: 10,
                runs: 2,
                sample_points: vec![0, 10],
                tol_safe: 1.0,
                tol_polluted: 1.0,
            },
            OutputKind::DesValidation {
                cluster_bits: vec![4, 6],
                lambda: 1.0,
                max_events_per_cluster: 100,
                sigmas: 4.0,
            },
            OutputKind::DesSteadyState {
                cluster_bits: vec![4],
                lambda: 1.0,
                max_events_per_cluster: 60,
                sample_times: vec![0.0, 20.0],
                sigmas: 5.0,
            },
            OutputKind::Duel {
                defenses: vec![DefenseSpec::Null, DefenseSpec::InducedChurn { rate: 0.1 }],
                cluster_bits: 4,
                lambda: 1.0,
                max_events_per_cluster: 60,
                sigmas: 5.0,
            },
            OutputKind::MeanFieldValidation {
                cluster_bits: 4,
                lambda: 1.0,
                max_events_per_cluster: 100,
                sigmas: 5.0,
                tol: 1e-7,
            },
            OutputKind::MeanFieldEquilibrium {
                amplifications: vec![0.0],
            },
            OutputKind::ControlTuning {
                threshold: 0.05,
                max_rate: 0.5,
                rate_tol: 0.05,
            },
        ];
        for kind in kinds {
            let rows = kind.evaluate(&cell, 7, 1).unwrap();
            assert!(!rows.is_empty());
            for row in &rows {
                assert_eq!(row.len(), kind.columns().len(), "{kind:?}");
            }
        }
    }

    #[test]
    fn des_validation_is_seed_deterministic_with_one_row_per_size() {
        let cell = paper_cell();
        let kind = OutputKind::DesValidation {
            cluster_bits: vec![6, 8],
            lambda: 1.0,
            max_events_per_cluster: 100,
            sigmas: 4.0,
        };
        let rows = kind.evaluate(&cell, 17, 1).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0].as_f64().unwrap(), 64.0);
        assert_eq!(rows[1][0].as_f64().unwrap(), 256.0);
        assert_eq!(rows, kind.evaluate(&cell, 17, 1).unwrap());
        assert_ne!(rows, kind.evaluate(&cell, 18, 1).unwrap());
        assert!(kind.is_monte_carlo());
    }

    #[test]
    fn des_validation_agrees_with_the_chain_at_moderate_scale() {
        let cell = paper_cell(); // mu = 0.2, d = 0.9
        let kind = OutputKind::DesValidation {
            cluster_bits: vec![11],
            lambda: 1.0,
            max_events_per_cluster: 2_000,
            sigmas: 4.0,
        };
        let rows = kind.evaluate(&cell, 5, 1).unwrap();
        let cols = kind.columns();
        let ok_at = cols.iter().position(|c| c == "ok").unwrap();
        assert_eq!(rows[0][ok_at].as_bool(), Some(true), "rows: {rows:?}");
        let censored_at = cols.iter().position(|c| c == "censored").unwrap();
        assert_eq!(rows[0][censored_at].as_f64(), Some(0.0));
    }

    #[test]
    fn scaling_kind_matches_direct_analysis_and_reports_pipeline() {
        let cell = paper_cell();
        let rows = OutputKind::StateSpaceScaling.evaluate(&cell, 0, 1).unwrap();
        assert_eq!(rows.len(), 1);
        let cols = OutputKind::StateSpaceScaling.columns();
        let at = |name: &str| cols.iter().position(|c| c == name).unwrap();
        assert_eq!(rows[0][at("n_states")].as_f64(), Some(288.0));
        // The paper-scale space stays on the dense pipeline under Auto.
        assert_eq!(rows[0][at("pipeline")], crate::Value::Str("dense".into()));
        let a = ClusterAnalysis::new(&cell.params, cell.initial.clone()).unwrap();
        assert_eq!(
            rows[0][at("E_T_S")].as_f64().unwrap(),
            a.expected_safe_events().unwrap()
        );
        assert_eq!(
            rows[0][at("p_ever_polluted")].as_f64().unwrap(),
            a.pollution_probability().unwrap()
        );
        assert!(!OutputKind::StateSpaceScaling.is_monte_carlo());
    }

    #[test]
    fn des_steady_state_rows_and_determinism() {
        let cell = ParamGrid::paper()
            .mu(vec![0.25])
            .d(vec![0.9])
            .cells()
            .unwrap()
            .remove(0);
        let kind = OutputKind::DesSteadyState {
            cluster_bits: vec![7],
            lambda: 1.0,
            max_events_per_cluster: 400,
            sample_times: vec![0.0, 50.0, 100.0],
            sigmas: 5.0,
        };
        let rows = kind.evaluate(&cell, 3, 1).unwrap();
        assert_eq!(rows, kind.evaluate(&cell, 3, 1).unwrap());
        assert_eq!(rows.len(), 1);
        let cols = kind.columns();
        let at = |name: &str| cols.iter().position(|c| c == name).unwrap();
        assert_eq!(rows[0][at("n_clusters")].as_f64(), Some(128.0));
        assert_eq!(rows[0][at("n_samples")].as_f64(), Some(3.0));
        assert_eq!(rows[0][at("ok")].as_bool(), Some(true), "rows: {rows:?}");
        assert!(kind.is_monte_carlo());
        // Unsorted grids are a scenario error, not a panic.
        let bad = OutputKind::DesSteadyState {
            cluster_bits: vec![4],
            lambda: 1.0,
            max_events_per_cluster: 10,
            sample_times: vec![5.0, 1.0],
            sigmas: 4.0,
        };
        assert!(matches!(
            bad.evaluate(&cell, 0, 1),
            Err(SweepError::InvalidScenario(_))
        ));
    }

    #[test]
    fn duel_rows_carry_defense_labels_and_null_matches_baseline() {
        let cell = ParamGrid::paper()
            .mu(vec![0.25])
            .d(vec![0.9])
            .cells()
            .unwrap()
            .remove(0);
        let kind = OutputKind::Duel {
            defenses: vec![
                DefenseSpec::Null,
                DefenseSpec::IncarnationRefresh {
                    period: 5.0,
                    detection_prob: 0.8,
                },
            ],
            cluster_bits: 6,
            lambda: 1.0,
            max_events_per_cluster: 300,
            sigmas: 5.0,
        };
        let rows = kind.evaluate(&cell, 9, 1).unwrap();
        assert_eq!(rows.len(), 2);
        let cols = kind.columns();
        let at = |name: &str| cols.iter().position(|c| c == name).unwrap();
        assert_eq!(rows[0][at("defense")], Value::Str("none".into()));
        assert_eq!(rows[1][at("defense")], Value::Str("refresh@5:0.8".into()));
        // The null duel's analytic value IS the baseline.
        assert_eq!(
            rows[0][at("analytic_polluted")].as_f64(),
            rows[0][at("baseline_polluted")].as_f64()
        );
        assert_eq!(rows[0][at("reduction")].as_f64(), Some(0.0));
        // The refresh defense reduces pollution analytically.
        assert!(
            rows[1][at("analytic_polluted")].as_f64().unwrap()
                < rows[1][at("baseline_polluted")].as_f64().unwrap()
        );
        assert!(kind.is_monte_carlo());
    }

    #[test]
    fn control_tuning_bisects_to_a_verified_frontier() {
        let cell = ParamGrid::paper()
            .mu(vec![0.25])
            .d(vec![0.9])
            .cells()
            .unwrap()
            .remove(0);
        let kind = OutputKind::ControlTuning {
            threshold: 0.01,
            max_rate: 0.5,
            rate_tol: 0.01,
        };
        let rows = kind.evaluate(&cell, 0, 1).unwrap();
        let cols = kind.columns();
        let at = |name: &str| cols.iter().position(|c| c == name).unwrap();
        assert_eq!(rows[0][at("found")].as_bool(), Some(true));
        let rate = rows[0][at("frontier_rate")].as_f64().unwrap();
        assert!(rate > 0.0, "undefended pollution exceeds the threshold");
        assert!(rows[0][at("polluted_at_frontier")].as_f64().unwrap() <= 0.01);
        // The exact chain re-checked the fluid answer at the frontier.
        assert_eq!(rows[0][at("verified_ok")].as_bool(), Some(true));
        // Bisection beats any useful grid: baseline + bracket +
        // ~log2(0.5/0.01) probes, where the old grid scan spent one full
        // exact battery per grid point.
        assert!(rows[0][at("evaluations")].as_f64().unwrap() <= 12.0);
        assert!(!kind.is_monte_carlo());
        assert_eq!(
            rows,
            kind.evaluate(&cell, 77, 1).unwrap(),
            "analytic: seed-free"
        );
        // An unreachable threshold reports found = false at max_rate.
        let none = OutputKind::ControlTuning {
            threshold: 1e-9,
            max_rate: 0.01,
            rate_tol: 0.005,
        };
        let rows = none.evaluate(&cell, 0, 1).unwrap();
        assert_eq!(rows[0][at("found")].as_bool(), Some(false));
        assert_eq!(rows[0][at("frontier_rate")].as_f64(), Some(0.01));
        // Malformed configurations are rejected.
        let bad = OutputKind::ControlTuning {
            threshold: 0.05,
            max_rate: 1.5,
            rate_tol: 0.01,
        };
        assert!(matches!(
            bad.evaluate(&cell, 0, 1),
            Err(SweepError::InvalidScenario(_))
        ));
    }

    #[test]
    fn mean_field_validation_agrees_on_every_path() {
        let cell = paper_cell(); // mu = 0.2, d = 0.9
        let kind = OutputKind::MeanFieldValidation {
            cluster_bits: 7,
            lambda: 1.0,
            max_events_per_cluster: 400,
            sigmas: 5.0,
            tol: 1e-7,
        };
        let rows = kind.evaluate(&cell, 11, 1).unwrap();
        assert_eq!(rows.len(), 1);
        let cols = kind.columns();
        let at = |name: &str| cols.iter().position(|c| c == name).unwrap();
        assert_eq!(rows[0][at("n_clusters")].as_f64(), Some(128.0));
        // Fluid and exact fractions coincide by the renewal identity.
        let mf = rows[0][at("mf_polluted")].as_f64().unwrap();
        let exact = rows[0][at("exact_polluted")].as_f64().unwrap();
        assert!((mf - exact).abs() <= 1e-7, "fluid {mf} vs exact {exact}");
        assert_eq!(rows[0][at("ok")].as_bool(), Some(true), "rows: {rows:?}");
        assert!(kind.is_monte_carlo());
        // Seed-deterministic like every Monte-Carlo kind.
        assert_eq!(rows, kind.evaluate(&cell, 11, 1).unwrap());
        // A DES shard prediction exists for the memory planner.
        assert!(kind.predicted_memory_bytes(&cell, 2).is_some());
    }

    #[test]
    fn mean_field_equilibrium_scans_amplifications() {
        let cell = paper_cell();
        let kind = OutputKind::MeanFieldEquilibrium {
            amplifications: vec![0.0, 1.5],
        };
        let rows = kind.evaluate(&cell, 0, 1).unwrap();
        assert!(rows.len() >= 2, "one row per amplification at least");
        let cols = kind.columns();
        let at = |name: &str| cols.iter().position(|c| c == name).unwrap();
        // The open row reproduces the exact stationary fractions and the
        // coupled rows raise (never lower) the effective pollution rate.
        assert_eq!(rows[0][at("amplification")].as_f64(), Some(0.0));
        assert_eq!(rows[0][at("mu_eff")].as_f64(), Some(0.2));
        for row in &rows {
            assert!(row[at("mu_eff")].as_f64().unwrap() >= 0.2);
            assert!(row[at("gap")].as_f64().unwrap() >= 0.0);
            assert_eq!(row[at("stable")].as_bool(), Some(true));
        }
        assert!(!kind.is_monte_carlo());
        // Malformed amplification lists are rejected.
        let bad = OutputKind::MeanFieldEquilibrium {
            amplifications: vec![-1.0],
        };
        assert!(matches!(
            bad.evaluate(&cell, 0, 1),
            Err(SweepError::InvalidScenario(_))
        ));
    }

    #[test]
    fn mc_validation_is_seed_deterministic() {
        let cell = paper_cell();
        let kind = OutputKind::McValidation {
            replications: 200,
            sigmas: 3.0,
        };
        assert_eq!(
            kind.evaluate(&cell, 99, 1).unwrap(),
            kind.evaluate(&cell, 99, 1).unwrap()
        );
        assert!(kind.is_monte_carlo());
        assert!(!OutputKind::Sojourns.is_monte_carlo());
    }
}
