//! The common command line shared by every harness binary:
//! `--threads N --seed S --out-dir DIR --format tsv|json|both [names…]`.

use std::path::PathBuf;

use crate::OutputFormat;

/// Parsed common arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Worker threads (defaults to the machine's parallelism).
    pub threads: Option<usize>,
    /// Master seed override.
    pub seed: Option<u64>,
    /// Artefact directory; `None` means print-only.
    pub out_dir: Option<PathBuf>,
    /// Artefact format (default TSV).
    pub format: OutputFormat,
    /// Directory for `<scenario>.metrics.json` instrumentation sidecars
    /// (`--metrics-dir`); `None` means no sidecars. Keep this distinct
    /// from `out_dir` when artefact directories are diffed for
    /// determinism — sidecars carry wall times.
    pub metrics_dir: Option<PathBuf>,
    /// Per-cell progress/ETA on stderr (`--progress`).
    pub progress: bool,
    /// Include beyond-paper scenarios (`--extended`).
    pub extended: bool,
    /// List scenarios and exit (`--list`).
    pub list: bool,
    /// Crash-safe mode (`--resume DIR`): journal completed cells to
    /// `DIR/sweep.journal.jsonl`, replaying any existing journal first so
    /// only missing cells are recomputed. Output is byte-identical to an
    /// uninterrupted run.
    pub resume: Option<PathBuf>,
    /// Extra evaluation attempts after a transient cell failure
    /// (`--retries N`; default 1). Retries re-run from the cell's
    /// original seed, so they never change output bytes.
    pub retries: Option<u32>,
    /// Memory budget DES cells pre-flight against (`--mem-budget-bytes
    /// B`; overrides the `POLLUX_MEM_BUDGET_BYTES` environment variable).
    pub mem_budget_bytes: Option<u64>,
    /// Positional scenario names (empty = the binary's default set).
    pub scenarios: Vec<String>,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            threads: None,
            seed: None,
            out_dir: None,
            format: OutputFormat::Tsv,
            metrics_dir: None,
            progress: false,
            extended: false,
            list: false,
            resume: None,
            retries: None,
            mem_budget_bytes: None,
            scenarios: Vec::new(),
        }
    }
}

/// The usage string appended to parse errors and `--help`.
pub const USAGE: &str = "options:
  --threads N          worker threads (default: all cores)
  --seed S             master seed for Monte-Carlo scenarios
  --out-dir DIR        write artefacts under DIR (default: print only / results)
  --format FMT         artefact format: tsv | json | both (default tsv)
  --metrics-dir DIR    write <scenario>.metrics.json sidecars under DIR
                       (needs a build with the `metrics` cargo feature)
  --progress           per-cell progress/ETA on stderr
  --extended           include beyond-paper scenarios
  --list               list available scenarios and exit
  --resume DIR         crash-safe mode: journal completed cells under DIR
                       and resume from an existing journal (output is
                       byte-identical to an uninterrupted run)
  --retries N          extra attempts after a transient cell failure
                       (default 1; same seed, so bytes never change)
  --mem-budget-bytes B refuse/degrade DES cells whose predicted footprint
                       exceeds B bytes (default: POLLUX_MEM_BUDGET_BYTES,
                       else unlimited)
  --help               this message
  [NAME…]              scenario names to run (default: the binary's set)";

impl SweepArgs {
    /// Parses `std::env::args().skip(1)`-style arguments.
    ///
    /// # Errors
    ///
    /// A human-readable message (print it with [`USAGE`] and exit).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = SweepArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    let n: usize = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
                    if n == 0 {
                        return Err("--threads must be >= 1".into());
                    }
                    out.threads = Some(n);
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    out.seed = Some(v.parse().map_err(|_| format!("bad seed '{v}'"))?);
                }
                "--out-dir" => {
                    let v = it.next().ok_or("--out-dir needs a value")?;
                    out.out_dir = Some(PathBuf::from(v));
                }
                "--format" => {
                    let v = it.next().ok_or("--format needs a value")?;
                    out.format = OutputFormat::parse(&v)
                        .ok_or_else(|| format!("bad format '{v}' (tsv | json | both)"))?;
                }
                "--metrics-dir" => {
                    let v = it.next().ok_or("--metrics-dir needs a value")?;
                    out.metrics_dir = Some(PathBuf::from(v));
                }
                "--progress" => out.progress = true,
                "--extended" => out.extended = true,
                "--list" => out.list = true,
                "--resume" => {
                    let v = it.next().ok_or("--resume needs a directory")?;
                    out.resume = Some(PathBuf::from(v));
                }
                "--retries" => {
                    let v = it.next().ok_or("--retries needs a value")?;
                    out.retries = Some(v.parse().map_err(|_| format!("bad retry count '{v}'"))?);
                }
                "--mem-budget-bytes" => {
                    let v = it.next().ok_or("--mem-budget-bytes needs a value")?;
                    out.mem_budget_bytes =
                        Some(v.parse().map_err(|_| format!("bad byte budget '{v}'"))?);
                }
                "--help" | "-h" => return Err("help".into()),
                name if !name.starts_with('-') => out.scenarios.push(name.to_string()),
                unknown => return Err(format!("unknown flag '{unknown}'")),
            }
        }
        Ok(out)
    }

    /// Builds the runner these arguments describe.
    pub fn runner(&self) -> crate::SweepRunner {
        let mut runner = crate::SweepRunner::new();
        if let Some(threads) = self.threads {
            runner = runner.with_threads(threads);
        }
        if let Some(seed) = self.seed {
            runner = runner.with_seed(seed);
        }
        if let Some(dir) = &self.resume {
            runner = runner.with_journal_dir(dir);
        }
        if let Some(retries) = self.retries {
            runner = runner.with_retry(pollux_resilience::RetryPolicy::new(retries + 1));
        }
        if let Some(bytes) = self.mem_budget_bytes {
            runner = runner.with_memory_budget(pollux_resilience::MemoryBudget::bytes(bytes));
        }
        runner.with_progress(self.progress)
    }

    /// As [`SweepArgs::runner`], additionally applying the resilience
    /// environment: `POLLUX_MEM_BUDGET_BYTES` (when `--mem-budget-bytes`
    /// was not given) and the `POLLUX_FAULT` injection plan. The harness
    /// binaries use this so CI can inject faults without a CLI surface.
    ///
    /// # Errors
    ///
    /// A human-readable message when either variable is set but
    /// malformed — a typo'd budget or fault plan must not silently
    /// become "no budget" / "no faults".
    pub fn runner_from_env(&self) -> Result<crate::SweepRunner, String> {
        let mut runner = self.runner();
        if self.mem_budget_bytes.is_none() {
            runner = runner.with_memory_budget(pollux_resilience::MemoryBudget::from_env()?);
        }
        let plan = pollux_resilience::FaultPlan::from_env()?;
        if !plan.is_empty() {
            runner = runner.with_fault_plan(plan);
        }
        Ok(runner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<SweepArgs, String> {
        SweepArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn full_flag_set() {
        let args = parse(&[
            "--threads",
            "8",
            "--seed",
            "42",
            "--out-dir",
            "out",
            "--format",
            "both",
            "--metrics-dir",
            "obs",
            "--progress",
            "--extended",
            "fig3",
            "table1",
        ])
        .unwrap();
        assert_eq!(args.threads, Some(8));
        assert_eq!(args.seed, Some(42));
        assert_eq!(args.out_dir.as_deref(), Some(std::path::Path::new("out")));
        assert_eq!(args.format, OutputFormat::Both);
        assert_eq!(
            args.metrics_dir.as_deref(),
            Some(std::path::Path::new("obs"))
        );
        assert!(args.progress);
        assert!(args.extended);
        assert_eq!(args.scenarios, vec!["fig3", "table1"]);
    }

    #[test]
    fn defaults_are_empty() {
        let args = parse(&[]).unwrap();
        assert_eq!(args, SweepArgs::default());
    }

    #[test]
    fn errors_are_actionable() {
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "zero"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--format", "xml"]).is_err());
        assert!(parse(&["--metrics-dir"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert_eq!(parse(&["--help"]).unwrap_err(), "help");
    }

    #[test]
    fn runner_reflects_flags() {
        let runner = parse(&["--threads", "3"]).unwrap().runner();
        assert_eq!(runner.threads(), 3);
    }

    #[test]
    fn resilience_flags_parse_and_reject_garbage() {
        let args = parse(&[
            "--resume",
            "ckpt",
            "--retries",
            "3",
            "--mem-budget-bytes",
            "1048576",
        ])
        .unwrap();
        assert_eq!(args.resume.as_deref(), Some(std::path::Path::new("ckpt")));
        assert_eq!(args.retries, Some(3));
        assert_eq!(args.mem_budget_bytes, Some(1_048_576));
        assert!(parse(&["--resume"]).is_err());
        assert!(parse(&["--retries", "many"]).is_err());
        assert!(parse(&["--mem-budget-bytes", "-5"]).is_err());
    }
}
