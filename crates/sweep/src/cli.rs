//! The common command line shared by every harness binary:
//! `--threads N --seed S --out-dir DIR --format tsv|json|both [names…]`.

use std::path::PathBuf;

use crate::OutputFormat;

/// Parsed common arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Worker threads (defaults to the machine's parallelism).
    pub threads: Option<usize>,
    /// Master seed override.
    pub seed: Option<u64>,
    /// Artefact directory; `None` means print-only.
    pub out_dir: Option<PathBuf>,
    /// Artefact format (default TSV).
    pub format: OutputFormat,
    /// Directory for `<scenario>.metrics.json` instrumentation sidecars
    /// (`--metrics-dir`); `None` means no sidecars. Keep this distinct
    /// from `out_dir` when artefact directories are diffed for
    /// determinism — sidecars carry wall times.
    pub metrics_dir: Option<PathBuf>,
    /// Per-cell progress/ETA on stderr (`--progress`).
    pub progress: bool,
    /// Include beyond-paper scenarios (`--extended`).
    pub extended: bool,
    /// List scenarios and exit (`--list`).
    pub list: bool,
    /// Positional scenario names (empty = the binary's default set).
    pub scenarios: Vec<String>,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            threads: None,
            seed: None,
            out_dir: None,
            format: OutputFormat::Tsv,
            metrics_dir: None,
            progress: false,
            extended: false,
            list: false,
            scenarios: Vec::new(),
        }
    }
}

/// The usage string appended to parse errors and `--help`.
pub const USAGE: &str = "options:
  --threads N          worker threads (default: all cores)
  --seed S             master seed for Monte-Carlo scenarios
  --out-dir DIR        write artefacts under DIR (default: print only / results)
  --format FMT         artefact format: tsv | json | both (default tsv)
  --metrics-dir DIR    write <scenario>.metrics.json sidecars under DIR
                       (needs a build with the `metrics` cargo feature)
  --progress           per-cell progress/ETA on stderr
  --extended           include beyond-paper scenarios
  --list               list available scenarios and exit
  --help               this message
  [NAME…]              scenario names to run (default: the binary's set)";

impl SweepArgs {
    /// Parses `std::env::args().skip(1)`-style arguments.
    ///
    /// # Errors
    ///
    /// A human-readable message (print it with [`USAGE`] and exit).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = SweepArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    let n: usize = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
                    if n == 0 {
                        return Err("--threads must be >= 1".into());
                    }
                    out.threads = Some(n);
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    out.seed = Some(v.parse().map_err(|_| format!("bad seed '{v}'"))?);
                }
                "--out-dir" => {
                    let v = it.next().ok_or("--out-dir needs a value")?;
                    out.out_dir = Some(PathBuf::from(v));
                }
                "--format" => {
                    let v = it.next().ok_or("--format needs a value")?;
                    out.format = OutputFormat::parse(&v)
                        .ok_or_else(|| format!("bad format '{v}' (tsv | json | both)"))?;
                }
                "--metrics-dir" => {
                    let v = it.next().ok_or("--metrics-dir needs a value")?;
                    out.metrics_dir = Some(PathBuf::from(v));
                }
                "--progress" => out.progress = true,
                "--extended" => out.extended = true,
                "--list" => out.list = true,
                "--help" | "-h" => return Err("help".into()),
                name if !name.starts_with('-') => out.scenarios.push(name.to_string()),
                unknown => return Err(format!("unknown flag '{unknown}'")),
            }
        }
        Ok(out)
    }

    /// Builds the runner these arguments describe.
    pub fn runner(&self) -> crate::SweepRunner {
        let mut runner = crate::SweepRunner::new();
        if let Some(threads) = self.threads {
            runner = runner.with_threads(threads);
        }
        if let Some(seed) = self.seed {
            runner = runner.with_seed(seed);
        }
        runner.with_progress(self.progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<SweepArgs, String> {
        SweepArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn full_flag_set() {
        let args = parse(&[
            "--threads",
            "8",
            "--seed",
            "42",
            "--out-dir",
            "out",
            "--format",
            "both",
            "--metrics-dir",
            "obs",
            "--progress",
            "--extended",
            "fig3",
            "table1",
        ])
        .unwrap();
        assert_eq!(args.threads, Some(8));
        assert_eq!(args.seed, Some(42));
        assert_eq!(args.out_dir.as_deref(), Some(std::path::Path::new("out")));
        assert_eq!(args.format, OutputFormat::Both);
        assert_eq!(
            args.metrics_dir.as_deref(),
            Some(std::path::Path::new("obs"))
        );
        assert!(args.progress);
        assert!(args.extended);
        assert_eq!(args.scenarios, vec!["fig3", "table1"]);
    }

    #[test]
    fn defaults_are_empty() {
        let args = parse(&[]).unwrap();
        assert_eq!(args, SweepArgs::default());
    }

    #[test]
    fn errors_are_actionable() {
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "zero"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--format", "xml"]).is_err());
        assert!(parse(&["--metrics-dir"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert_eq!(parse(&["--help"]).unwrap_err(), "help");
    }

    #[test]
    fn runner_reflects_flags() {
        let runner = parse(&["--threads", "3"]).unwrap().runner();
        assert_eq!(runner.threads(), 3);
    }
}
