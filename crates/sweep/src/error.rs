use std::error::Error;
use std::fmt;

use pollux::ParamsError;
use pollux_markov::MarkovError;
use pollux_resilience::{CellFailure, JournalError};

/// Errors produced while expanding or executing a sweep.
#[derive(Debug)]
#[non_exhaustive]
pub enum SweepError {
    /// A grid axis contained a value outside the model's domain.
    InvalidGrid(String),
    /// A scenario was malformed (empty grid, bad output kind config).
    InvalidScenario(String),
    /// A scenario name was not found in the registry.
    UnknownScenario(String),
    /// A model-construction error bubbled up from a cell.
    Params(ParamsError),
    /// An analysis error bubbled up from a cell.
    Markov(MarkovError),
    /// Writing an artefact failed.
    Io(std::io::Error),
    /// One cell failed after the retry ladder was exhausted (panic,
    /// solver non-convergence, memory-budget rejection). The structured
    /// record names the originating cell; every *other* cell still
    /// completed and — when journaling is on — was committed, so a
    /// resumed run only recomputes the failing cell.
    Cell(CellFailure),
    /// The completion journal could not be read, written, or trusted
    /// (corruption fails loudly naming the file and line).
    Journal(JournalError),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::InvalidGrid(msg) => write!(f, "invalid grid: {msg}"),
            SweepError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            SweepError::UnknownScenario(name) => {
                write!(
                    f,
                    "unknown scenario '{name}' (see registry::all for the list)"
                )
            }
            SweepError::Params(e) => write!(f, "model parameters: {e}"),
            SweepError::Markov(e) => write!(f, "analysis: {e}"),
            SweepError::Io(e) => write!(f, "io: {e}"),
            SweepError::Cell(e) => write!(f, "{e}"),
            SweepError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl Error for SweepError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SweepError::Params(e) => Some(e),
            SweepError::Markov(e) => Some(e),
            SweepError::Io(e) => Some(e),
            SweepError::Cell(e) => Some(e),
            SweepError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CellFailure> for SweepError {
    fn from(e: CellFailure) -> Self {
        SweepError::Cell(e)
    }
}

impl From<JournalError> for SweepError {
    fn from(e: JournalError) -> Self {
        SweepError::Journal(e)
    }
}

impl From<ParamsError> for SweepError {
    fn from(e: ParamsError) -> Self {
        SweepError::Params(e)
    }
}

impl From<MarkovError> for SweepError {
    fn from(e: MarkovError) -> Self {
        SweepError::Markov(e)
    }
}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError::Io(e)
    }
}
