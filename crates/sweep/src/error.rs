use std::error::Error;
use std::fmt;

use pollux::ParamsError;
use pollux_markov::MarkovError;

/// Errors produced while expanding or executing a sweep.
#[derive(Debug)]
#[non_exhaustive]
pub enum SweepError {
    /// A grid axis contained a value outside the model's domain.
    InvalidGrid(String),
    /// A scenario was malformed (empty grid, bad output kind config).
    InvalidScenario(String),
    /// A scenario name was not found in the registry.
    UnknownScenario(String),
    /// A model-construction error bubbled up from a cell.
    Params(ParamsError),
    /// An analysis error bubbled up from a cell.
    Markov(MarkovError),
    /// Writing an artefact failed.
    Io(std::io::Error),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::InvalidGrid(msg) => write!(f, "invalid grid: {msg}"),
            SweepError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            SweepError::UnknownScenario(name) => {
                write!(
                    f,
                    "unknown scenario '{name}' (see registry::all for the list)"
                )
            }
            SweepError::Params(e) => write!(f, "model parameters: {e}"),
            SweepError::Markov(e) => write!(f, "analysis: {e}"),
            SweepError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl Error for SweepError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SweepError::Params(e) => Some(e),
            SweepError::Markov(e) => Some(e),
            SweepError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParamsError> for SweepError {
    fn from(e: ParamsError) -> Self {
        SweepError::Params(e)
    }
}

impl From<MarkovError> for SweepError {
    fn from(e: MarkovError) -> Self {
        SweepError::Markov(e)
    }
}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError::Io(e)
    }
}
