//! The worker pool: cells fan out over OS threads through a channel,
//! results re-assemble in canonical order, so a sweep's artefacts are
//! byte-identical whether it runs on 1 thread or 64.
//!
//! The pool is crash-safe (`pollux-resilience`): each cell evaluates
//! under `catch_unwind` with bounded deterministic retry, a panicking
//! cell surfaces as a structured [`CellFailure`] naming the cell while
//! every other cell completes, DES cells pre-flight their predicted
//! footprint against an optional memory budget (shedding shards — an
//! output-invariant degradation — before refusing), and an optional
//! append-only journal commits each completed cell so an interrupted
//! sweep resumes byte-identically, recomputing only missing cells.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Mutex, PoisonError};

use pollux_des::replication::replication_seed;
use pollux_linalg::LinalgError;
use pollux_markov::MarkovError;
use pollux_obs::{Registry, Stopwatch};
use pollux_resilience::{
    catch_panic, fault::SIMULATED_KILL_EXIT_CODE, fnv1a64, run_with_retry, CellFailure,
    FailureKind, FaultPlan, Journal, JournalEntry, JournalError, JournalHeader, MemoryBudget,
    RetryPolicy,
};

use crate::codec::{decode_rows, encode_rows};
use crate::{OutputKind, Scenario, SweepCell, SweepError, SweepReport, Value};

/// The keyed rows one cell contributes to its scenario's report.
type CellRows = Vec<Vec<Value>>;
/// What a worker reports back: the owning scenario, the cell's rows and
/// the cell's wall time (0.0 unless the `metrics` feature is on).
type CellOutcome = (usize, Result<CellRows, SweepError>, f64);

/// File name of the completion journal inside a journal directory.
pub const JOURNAL_FILE: &str = "sweep.journal.jsonl";

/// Instrumentation sidecar of one scenario's sweep: per-cell wall-time
/// spans and cell/row counters, merged in canonical cell order so the
/// aggregate is independent of worker scheduling. Empty when the
/// `metrics` cargo feature is off — observation compiles out and
/// [`SweepRunner::run_all_observed`] stays byte-identical to
/// [`SweepRunner::run_all`].
#[derive(Debug, Clone, Default)]
pub struct SweepObs {
    /// The scenario this sidecar describes.
    pub scenario: String,
    /// `sweep.cells` / `sweep.rows` counters plus the `sweep.cell_wall_s`
    /// span over per-cell wall seconds.
    pub registry: Registry,
}

/// Default master seed (only Monte-Carlo kinds consume it).
pub const DEFAULT_SEED: u64 = 0xD51_2011; // DSN 2011

/// A deterministic multi-threaded scenario executor.
///
/// Parallelism is over grid cells: each cell gets a seed derived from
/// `(master_seed, cell index)` via SplitMix64 and is evaluated
/// independently; rows are then stitched together in cell order. Thread
/// count therefore affects wall-clock time only, never output bytes —
/// and so do retries, shard shedding and checkpoint/resume, all of which
/// re-derive the same per-cell seeds.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
    master_seed: u64,
    progress: bool,
    retry: RetryPolicy,
    fault_plan: FaultPlan,
    memory_budget: MemoryBudget,
    journal_dir: Option<PathBuf>,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner using every available core and the default seed.
    pub fn new() -> Self {
        SweepRunner {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            master_seed: DEFAULT_SEED,
            progress: false,
            retry: RetryPolicy::default(),
            fault_plan: FaultPlan::none(),
            memory_budget: MemoryBudget::unlimited(),
            journal_dir: None,
        }
    }

    /// Sets the worker-thread count (min 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the master seed for Monte-Carlo kinds.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Enables a per-cell progress/ETA line on stderr. Progress goes to
    /// stderr only — artefact bytes are unaffected.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Sets the bounded-retry policy for transient cell failures
    /// (default: two attempts). Retries re-run from the cell's original
    /// seed, so they can change whether output exists, never its bytes.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Installs a fault-injection plan (tests and the CI harness; the
    /// default plan injects nothing). Panic injections key on the global
    /// cell slot — the cell's position in the pooled job list across all
    /// scenarios of the call — and the 1-based attempt number.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the memory budget that DES cells pre-flight their predicted
    /// footprint against (default: unlimited). Over-budget cells first
    /// shed DES shards (output-invariant), then fail with a structured
    /// [`FailureKind::MemoryBudget`].
    pub fn with_memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.memory_budget = budget;
        self
    }

    /// Enables the crash-safe completion journal in `dir`
    /// (`dir/sweep.journal.jsonl`). If the journal already exists the
    /// run *resumes*: committed cells are replayed from the journal
    /// (after verifying the master seed, per-cell seeds, schema hashes
    /// and payload hashes) and only missing cells are recomputed — the
    /// assembled artefacts are byte-identical to an uninterrupted run.
    pub fn with_journal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one scenario.
    ///
    /// # Errors
    ///
    /// Propagates grid expansion and cell evaluation failures (the first
    /// failing cell in canonical order wins).
    pub fn run(&self, scenario: &Scenario) -> Result<SweepReport, SweepError> {
        Ok(self
            .run_all(std::slice::from_ref(scenario))?
            .pop()
            .expect("run_all returns exactly one report per scenario"))
    }

    /// Runs several scenarios as **one** job pool: all cells of all
    /// scenarios share the worker threads, so a long tail in one scenario
    /// overlaps with the start of the next.
    ///
    /// # Errors
    ///
    /// Propagates grid expansion and cell evaluation failures.
    pub fn run_all(&self, scenarios: &[Scenario]) -> Result<Vec<SweepReport>, SweepError> {
        Ok(self.run_all_observed(scenarios)?.0)
    }

    /// As [`SweepRunner::run_all`], additionally returning one
    /// [`SweepObs`] instrumentation sidecar per scenario (empty unless
    /// the `metrics` cargo feature is on). The reports are byte-identical
    /// to the unobserved path: observation happens strictly after each
    /// cell's rows are computed and draws no randomness.
    ///
    /// # Errors
    ///
    /// As [`SweepRunner::run_all`].
    pub fn run_all_observed(
        &self,
        scenarios: &[Scenario],
    ) -> Result<(Vec<SweepReport>, Vec<SweepObs>), SweepError> {
        struct Job<'s> {
            slot: usize,
            scenario_index: usize,
            cell: SweepCell,
            seed: u64,
            scenario: &'s Scenario,
        }

        let mut jobs = Vec::new();
        let mut cell_counts = Vec::with_capacity(scenarios.len());
        for (scenario_index, scenario) in scenarios.iter().enumerate() {
            let cells = scenario.cells()?;
            cell_counts.push(cells.len());
            for cell in cells {
                // The cell seed mixes the scenario's name into the master
                // seed so re-ordering scenarios never re-seeds a cell.
                let scenario_seed = replication_seed(self.master_seed, hash_name(&scenario.name));
                let seed = replication_seed(scenario_seed, cell.index as u64);
                jobs.push(Job {
                    slot: jobs.len(),
                    scenario_index,
                    cell,
                    seed,
                    scenario,
                });
            }
        }

        let n_slots = jobs.len();
        let mut outcomes: Vec<Option<CellOutcome>> = (0..n_slots).map(|_| None).collect();
        // (scenario name, scenario index, cell index, seed) per slot, for
        // journaling completions and naming cells whose worker died.
        let slot_meta: Vec<(String, usize, usize, u64)> = jobs
            .iter()
            .map(|j| {
                (
                    j.scenario.name.clone(),
                    j.scenario_index,
                    j.cell.index,
                    j.seed,
                )
            })
            .collect();

        // Checkpoint/resume: replay an existing journal (prefilling
        // outcomes for committed cells) and open it for appending.
        let mut journal = match &self.journal_dir {
            None => None,
            Some(dir) => {
                let path = dir.join(JOURNAL_FILE);
                let columns_hash: Vec<u64> = scenarios
                    .iter()
                    .map(|s| fnv1a64(s.columns().join("\t").as_bytes()))
                    .collect();
                let by_key: HashMap<(&str, usize), usize> = slot_meta
                    .iter()
                    .enumerate()
                    .map(|(slot, (name, _, cell_index, _))| ((name.as_str(), *cell_index), slot))
                    .collect();
                if path.exists() {
                    let replay = Journal::replay(&path)?;
                    if replay.header.master_seed != self.master_seed {
                        return Err(SweepError::Journal(JournalError::Header {
                            path,
                            reason: format!(
                                "journal was written with master seed {:#x}, this run uses {:#x} \
                                 — refusing to mix sample paths",
                                replay.header.master_seed, self.master_seed
                            ),
                        }));
                    }
                    for (i, entry) in replay.entries.iter().enumerate() {
                        // Header is line 1; entry i is line i + 2.
                        let line = i + 2;
                        // Entries for scenarios outside this run (a wider
                        // earlier invocation) are stale, not corrupt.
                        let Some(&slot) =
                            by_key.get(&(entry.scenario.as_str(), entry.cell_index as usize))
                        else {
                            continue;
                        };
                        let (_, scenario_index, _, seed) = slot_meta[slot];
                        if entry.seed != seed {
                            return Err(SweepError::Journal(JournalError::Header {
                                path,
                                reason: format!(
                                    "cell {} of '{}' was journaled with seed {:#x} but this run \
                                     derives {:#x} — different run configuration",
                                    entry.cell_index, entry.scenario, entry.seed, seed
                                ),
                            }));
                        }
                        if entry.columns_hash != columns_hash[scenario_index] {
                            return Err(SweepError::Journal(JournalError::Header {
                                path,
                                reason: format!(
                                    "scenario '{}' changed its output schema since the journal \
                                     was written — delete the journal to restart",
                                    entry.scenario
                                ),
                            }));
                        }
                        let rows = decode_rows(&entry.payload).map_err(|reason| {
                            SweepError::Journal(JournalError::Corrupt {
                                path: path.clone(),
                                line,
                                reason,
                            })
                        })?;
                        outcomes[slot] = Some((scenario_index, Ok(rows), 0.0));
                    }
                    Some((Journal::open_append(&path)?, columns_hash))
                } else {
                    let label: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
                    let header = JournalHeader::new(self.master_seed, &label.join(","));
                    Some((Journal::create(&path, &header)?, columns_hash))
                }
            }
        };

        // Only cells the journal did not already commit are enqueued.
        let jobs: Vec<Job<'_>> = jobs
            .into_iter()
            .filter(|j| outcomes[j.slot].is_none())
            .collect();
        let n_jobs = jobs.len();

        let (job_tx, job_rx) = mpsc::channel::<Job<'_>>();
        let (result_tx, result_rx) = mpsc::channel();
        for job in jobs {
            job_tx.send(job).expect("receiver alive");
        }
        drop(job_tx);
        let job_rx = Mutex::new(job_rx);

        let threads = self.threads;
        let retry = self.retry;
        let fault_plan = &self.fault_plan;
        let memory_budget = self.memory_budget;
        let mut journaled = 0u64;
        std::thread::scope(|scope| {
            for _ in 0..threads.min(n_jobs.max(1)) {
                let job_rx = &job_rx;
                let result_tx = result_tx.clone();
                scope.spawn(move || loop {
                    // Holding the lock only while popping keeps workers
                    // independent during evaluation; recovering from
                    // poison keeps one panicking worker (there should be
                    // none — cells evaluate under catch_unwind — but a
                    // worker can still die between cells) from cascading
                    // into every other worker. The queue itself is
                    // always in a consistent state: the critical section
                    // is a single try_recv.
                    let job = match job_rx
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .try_recv()
                    {
                        Ok(job) => job,
                        Err(_) => break,
                    };
                    let watch = Stopwatch::start();
                    let rows = evaluate_resilient(
                        job.scenario,
                        &job.cell,
                        job.seed,
                        job.slot,
                        threads,
                        retry,
                        fault_plan,
                        &memory_budget,
                    );
                    let cell_seconds = watch.elapsed_s();
                    let keyed = rows.map(|rows| {
                        rows.into_iter()
                            .map(|row| {
                                let mut full = job.cell.key_values();
                                full.extend(row);
                                full
                            })
                            .collect::<Vec<_>>()
                    });
                    if result_tx
                        .send((job.slot, (job.scenario_index, keyed, cell_seconds)))
                        .is_err()
                    {
                        break;
                    }
                });
            }
            drop(result_tx);
            let started = std::time::Instant::now();
            let mut done = 0usize;
            for (slot, outcome) in result_rx {
                // Commit successful cells to the journal before counting
                // them done: once the append returns, the cell survives
                // even SIGKILL.
                if let Some((journal, columns_hash)) = journal.as_mut() {
                    if let (scenario_index, Ok(rows), _) = &outcome {
                        let (name, _, cell_index, seed) = &slot_meta[slot];
                        let entry = JournalEntry::new(
                            name,
                            *cell_index as u64,
                            *seed,
                            columns_hash[*scenario_index],
                            encode_rows(rows),
                        );
                        if let Err(e) = journal.append(&entry) {
                            // Journaling is an aid, not a gate: warn and
                            // keep computing (the run itself is intact).
                            eprintln!("sweep: journal append failed: {e}");
                        } else {
                            journaled += 1;
                            if self.fault_plan.exit_after() == Some(journaled) {
                                // Fault injection: simulate SIGKILL
                                // between cells. Committed work stays on
                                // disk; everything in flight is lost.
                                std::process::exit(SIMULATED_KILL_EXIT_CODE);
                            }
                        }
                    }
                }
                outcomes[slot] = Some(outcome);
                done += 1;
                if self.progress {
                    // stderr only: progress never touches artefact bytes.
                    let elapsed = started.elapsed().as_secs_f64();
                    let eta = elapsed / done as f64 * (n_jobs - done) as f64;
                    eprintln!(
                        "sweep: {done}/{n_jobs} cells ({:.1}%) elapsed {elapsed:.1}s eta {eta:.1}s",
                        100.0 * done as f64 / n_jobs as f64,
                    );
                }
            }
        });

        let mut reports: Vec<SweepReport> = scenarios
            .iter()
            .map(|s| SweepReport {
                scenario: s.name.clone(),
                columns: s.columns(),
                rows: Vec::new(),
            })
            .collect();
        let mut obs: Vec<SweepObs> = scenarios
            .iter()
            .map(|s| SweepObs {
                scenario: s.name.clone(),
                registry: Registry::new(),
            })
            .collect();
        // Canonical slot order makes the span merge order — and thus the
        // sidecar's aggregate moments — independent of which worker
        // finished first. It also decides which failure surfaces when
        // several cells failed: the first in canonical order.
        for (slot, outcome) in outcomes.into_iter().enumerate() {
            // A missing slot means the worker died between dequeuing the
            // job and sending its result (evaluation itself is
            // panic-guarded, so this is a harness defect, not a model
            // one) — surface it as a structured failure naming the cell
            // rather than a second-hand panic.
            let (scenario_index, rows, cell_seconds) = outcome.unwrap_or_else(|| {
                let (name, scenario_index, cell_index, seed) = slot_meta[slot].clone();
                (
                    scenario_index,
                    Err(SweepError::Cell(CellFailure {
                        scenario: name,
                        cell_index,
                        seed,
                        attempts: 0,
                        kind: FailureKind::Panic(
                            "worker thread died without reporting a result".into(),
                        ),
                    })),
                    0.0,
                )
            });
            let rows = rows?;
            if pollux_obs::METRICS_ENABLED {
                let registry = &mut obs[scenario_index].registry;
                registry.add("sweep.cells", 1);
                registry.add("sweep.rows", rows.len() as u64);
                registry.span("sweep.cell_wall_s", cell_seconds);
            }
            reports[scenario_index].rows.extend(rows);
        }
        for (report, count) in reports.iter_mut().zip(cell_counts) {
            debug_assert!(
                report.rows.len() >= count,
                "every cell contributes at least one row"
            );
        }
        Ok((reports, obs))
    }
}

/// One cell's full resilient evaluation: memory pre-flight (with shard
/// shedding), fault injection, panic isolation, classification, bounded
/// retry from the *same seed*, and structured failure assembly.
#[allow(clippy::too_many_arguments)]
fn evaluate_resilient(
    scenario: &Scenario,
    cell: &SweepCell,
    seed: u64,
    slot: usize,
    threads: usize,
    retry: RetryPolicy,
    fault_plan: &FaultPlan,
    memory_budget: &MemoryBudget,
) -> Result<Vec<Vec<Value>>, SweepError> {
    // Fatal evaluation errors keep their original SweepError (so callers
    // matching on InvalidScenario / Params / Markov still see them);
    // transient kinds that exhaust the ladder become CellFailure.
    let mut original: Option<SweepError> = None;
    let outcome = run_with_retry(retry, |attempt| {
        let shards = plan_shards(&scenario.kind, cell, threads, memory_budget)?;
        let evaluated = catch_panic(|| {
            if fault_plan.should_panic(slot, attempt) {
                panic!("injected fault: panic-cell={slot}@{attempt}");
            }
            // The runner's thread count doubles as the DES shard count
            // (a sweep with few, large DES cells still uses every core)
            // unless the memory pre-flight shed shards; shard-invariance
            // keeps the bytes independent of it either way.
            scenario.kind.evaluate(cell, seed, shards)
        })?;
        evaluated.map_err(|e| {
            let kind = classify(&e);
            if matches!(kind, FailureKind::Fatal(_)) {
                original = Some(e);
            }
            kind
        })
    });
    match outcome {
        Ok((rows, _attempts)) => Ok(rows),
        Err((kind, attempts)) => {
            if matches!(kind, FailureKind::Fatal(_)) {
                if let Some(e) = original {
                    return Err(e);
                }
            }
            Err(SweepError::Cell(CellFailure {
                scenario: scenario.name.clone(),
                cell_index: cell.index,
                seed,
                attempts,
                kind,
            }))
        }
    }
}

/// Memory pre-flight: picks the largest shard count whose predicted
/// footprint fits the budget, walking down a halving ladder from the
/// requested count (shedding shards never changes DES output bytes).
/// Kinds without a footprint prediction run at the requested count.
fn plan_shards(
    kind: &OutputKind,
    cell: &SweepCell,
    threads: usize,
    budget: &MemoryBudget,
) -> Result<usize, FailureKind> {
    if kind.predicted_memory_bytes(cell, threads).is_none() || budget.limit_bytes().is_none() {
        return Ok(threads);
    }
    let mut ladder = Vec::new();
    let mut shards = threads.max(1);
    loop {
        let predicted = kind
            .predicted_memory_bytes(cell, shards)
            .expect("prediction exists for this kind");
        ladder.push((shards, predicted));
        if shards == 1 {
            break;
        }
        shards /= 2;
    }
    budget.admit_degrading(ladder)
}

/// Maps an evaluation error to the retry taxonomy: solver
/// non-convergence is transient (a retry may run a degraded but
/// converging configuration); everything else fails the same way every
/// time on the same `(config, seed)` and is fatal.
fn classify(e: &SweepError) -> FailureKind {
    match e {
        SweepError::Markov(MarkovError::Linalg(LinalgError::NoConvergence { .. })) => {
            FailureKind::NoConvergence(e.to_string())
        }
        other => FailureKind::Fatal(other.to_string()),
    }
}

/// Stable FNV-1a hash of a scenario name (part of the seed derivation;
/// delegates to the workspace-standard [`fnv1a64`], which implements the
/// identical polynomial, so historical seeds are unchanged).
fn hash_name(name: &str) -> u64 {
    fnv1a64(name.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OutputKind, ParamGrid};

    fn tiny_scenario() -> Scenario {
        Scenario::new(
            "tiny",
            "test grid",
            ParamGrid::paper().mu(vec![0.0, 0.2]).d(vec![0.3, 0.9]),
            OutputKind::Sojourns,
        )
    }

    fn des_scenario() -> Scenario {
        Scenario::new(
            "des",
            "small DES",
            ParamGrid::paper().mu(vec![0.2]).d(vec![0.9]),
            OutputKind::DesValidation {
                cluster_bits: vec![4],
                lambda: 1.0,
                max_events_per_cluster: 100,
                sigmas: 4.0,
            },
        )
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pollux-runner-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn rows_follow_canonical_cell_order() {
        let scenario = tiny_scenario();
        let report = SweepRunner::new().with_threads(4).run(&scenario).unwrap();
        assert_eq!(report.rows.len(), 4);
        let mu_col = report.column("mu").unwrap();
        let d_col = report.column("d").unwrap();
        let order: Vec<(f64, f64)> = report
            .rows
            .iter()
            .map(|r| (r[d_col].as_f64().unwrap(), r[mu_col].as_f64().unwrap()))
            .collect();
        assert_eq!(order, vec![(0.3, 0.0), (0.3, 0.2), (0.9, 0.0), (0.9, 0.2)]);
    }

    #[test]
    fn thread_count_never_changes_bytes() {
        let scenario = Scenario::new(
            "mc",
            "monte-carlo determinism",
            ParamGrid::paper().mu(vec![0.1, 0.2]).d(vec![0.8]),
            OutputKind::McValidation {
                replications: 300,
                sigmas: 4.0,
            },
        );
        let one = SweepRunner::new().with_threads(1).run(&scenario).unwrap();
        let many = SweepRunner::new().with_threads(8).run(&scenario).unwrap();
        assert_eq!(one.to_tsv(), many.to_tsv());
    }

    #[test]
    fn run_all_pools_scenarios_without_cross_talk() {
        let a = tiny_scenario();
        let b = Scenario::new(
            "abs",
            "absorption",
            ParamGrid::paper().mu(vec![0.3]).d(vec![0.9]),
            OutputKind::Absorption,
        );
        let pooled = SweepRunner::new()
            .with_threads(3)
            .run_all(&[a.clone(), b.clone()])
            .unwrap();
        let solo_a = SweepRunner::new().with_threads(1).run(&a).unwrap();
        let solo_b = SweepRunner::new().with_threads(1).run(&b).unwrap();
        assert_eq!(pooled[0], solo_a);
        assert_eq!(pooled[1], solo_b);
    }

    #[test]
    fn master_seed_changes_only_monte_carlo_output() {
        let analytic = tiny_scenario();
        let r1 = SweepRunner::new().with_seed(1).run(&analytic).unwrap();
        let r2 = SweepRunner::new().with_seed(2).run(&analytic).unwrap();
        assert_eq!(r1, r2);

        let mc = Scenario::new(
            "mc",
            "seeded",
            ParamGrid::paper().mu(vec![0.2]).d(vec![0.8]),
            OutputKind::McValidation {
                replications: 200,
                sigmas: 4.0,
            },
        );
        let m1 = SweepRunner::new().with_seed(1).run(&mc).unwrap();
        let m2 = SweepRunner::new().with_seed(2).run(&mc).unwrap();
        assert_ne!(m1.f64(0, "sim_T_S"), m2.f64(0, "sim_T_S"));
    }

    #[test]
    fn observed_run_matches_plain_run_and_populates_iff_metrics() {
        let scenario = tiny_scenario();
        let runner = SweepRunner::new().with_threads(4);
        let plain = runner.run_all(std::slice::from_ref(&scenario)).unwrap();
        let (observed, obs) = runner
            .run_all_observed(std::slice::from_ref(&scenario))
            .unwrap();
        assert_eq!(plain, observed);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].scenario, "tiny");
        if pollux_obs::METRICS_ENABLED {
            assert_eq!(obs[0].registry.counter("sweep.cells"), Some(4));
            assert_eq!(
                obs[0].registry.counter("sweep.rows"),
                Some(observed[0].rows.len() as u64)
            );
            let span = obs[0].registry.span_stats("sweep.cell_wall_s").unwrap();
            assert_eq!(span.count(), 4);
        } else {
            assert!(obs[0].registry.is_empty());
        }
    }

    #[test]
    fn grid_errors_propagate() {
        let bad = Scenario::new(
            "bad",
            "invalid",
            ParamGrid::paper().mu(vec![2.0]),
            OutputKind::Sojourns,
        );
        assert!(SweepRunner::new().run(&bad).is_err());
    }

    #[test]
    fn injected_panics_recover_via_retry_byte_identically() {
        let scenario = tiny_scenario();
        let clean = SweepRunner::new().with_threads(2).run(&scenario).unwrap();
        // Panic cells 0 and 3 on their first attempt: the default
        // two-attempt policy recovers both from the same seed.
        let plan = FaultPlan::parse("panic-cell=0@1,panic-cell=3@1").unwrap();
        let faulted = SweepRunner::new()
            .with_threads(2)
            .with_fault_plan(plan)
            .run(&scenario)
            .unwrap();
        assert_eq!(clean.to_tsv(), faulted.to_tsv());
    }

    #[test]
    fn persistent_panic_names_the_failing_cell_and_others_complete() {
        let scenario = tiny_scenario();
        // Cell 2 panics on both attempts — past the retry budget.
        let plan = FaultPlan::parse("panic-cell=2@1,panic-cell=2@2").unwrap();
        let err = SweepRunner::new()
            .with_threads(2)
            .with_fault_plan(plan)
            .run(&scenario)
            .unwrap_err();
        match err {
            SweepError::Cell(failure) => {
                assert_eq!(failure.scenario, "tiny");
                assert_eq!(failure.cell_index, 2);
                assert_eq!(failure.attempts, 2);
                assert!(matches!(failure.kind, FailureKind::Panic(_)));
                assert!(failure.to_string().contains("injected fault"));
            }
            other => panic!("expected Cell failure, got {other}"),
        }
    }

    #[test]
    fn journal_resume_is_byte_identical_and_skips_completed_cells() {
        let dir = temp_dir("resume");
        let scenario = tiny_scenario();
        let clean = SweepRunner::new().with_threads(1).run(&scenario).unwrap();

        // Full journaled run…
        let full = SweepRunner::new()
            .with_threads(1)
            .with_journal_dir(&dir)
            .run(&scenario)
            .unwrap();
        assert_eq!(clean.to_tsv(), full.to_tsv());
        let journal_path = dir.join(JOURNAL_FILE);
        assert!(journal_path.exists());

        // …then simulate a crash after two committed cells by chopping
        // the journal, and resume.
        let text = std::fs::read_to_string(&journal_path).unwrap();
        let keep: Vec<&str> = text.lines().take(3).collect(); // header + 2 cells
        std::fs::write(&journal_path, keep.join("\n") + "\n").unwrap();
        // Panic the journaled cells unconditionally: if resume tried to
        // recompute them, the run would fail — completing proves the
        // journal supplied them.
        let plan = FaultPlan::parse("panic-cell=0@1,panic-cell=0@2,panic-cell=1@1,panic-cell=1@2")
            .unwrap();
        let resumed = SweepRunner::new()
            .with_threads(1)
            .with_journal_dir(&dir)
            .with_fault_plan(plan)
            .run(&scenario)
            .unwrap();
        assert_eq!(clean.to_tsv(), resumed.to_tsv());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_under_a_different_master_seed_is_refused() {
        let dir = temp_dir("seed-mismatch");
        let scenario = tiny_scenario();
        SweepRunner::new()
            .with_seed(1)
            .with_journal_dir(&dir)
            .run(&scenario)
            .unwrap();
        let err = SweepRunner::new()
            .with_seed(2)
            .with_journal_dir(&dir)
            .run(&scenario)
            .unwrap_err();
        assert!(matches!(err, SweepError::Journal(_)), "{err}");
        assert!(err.to_string().contains("master seed"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_budget_sheds_shards_without_changing_bytes() {
        let scenario = des_scenario();
        let unlimited = SweepRunner::new().with_threads(4).run(&scenario).unwrap();
        // The 2^4-cluster DES tables are tiny (~10 KiB); 2 MiB admits
        // the tables plus one shard's working set, forcing the ladder
        // down from 4 shards — and shard count never changes bytes.
        let shed = SweepRunner::new()
            .with_threads(4)
            .with_memory_budget(MemoryBudget::bytes(2 << 20))
            .run(&scenario)
            .unwrap();
        assert_eq!(unlimited.to_tsv(), shed.to_tsv());
    }

    #[test]
    fn exhausted_memory_budget_is_a_structured_refusal() {
        let scenario = des_scenario();
        let err = SweepRunner::new()
            .with_threads(2)
            .with_memory_budget(MemoryBudget::bytes(1))
            .run(&scenario)
            .unwrap_err();
        match err {
            SweepError::Cell(failure) => {
                assert_eq!(failure.scenario, "des");
                assert!(matches!(failure.kind, FailureKind::MemoryBudget { .. }));
                let msg = failure.to_string();
                assert!(msg.contains("memory budget"), "{msg}");
            }
            other => panic!("expected Cell failure, got {other}"),
        }
        // Analytical kinds have no prediction and are never refused.
        assert!(SweepRunner::new()
            .with_memory_budget(MemoryBudget::bytes(1))
            .run(&tiny_scenario())
            .is_ok());
    }
}
