//! The worker pool: cells fan out over OS threads through a channel,
//! results re-assemble in canonical order, so a sweep's artefacts are
//! byte-identical whether it runs on 1 thread or 64.

use std::sync::mpsc;
use std::sync::Mutex;

use pollux_des::replication::replication_seed;
use pollux_obs::{Registry, Stopwatch};

use crate::{Scenario, SweepCell, SweepError, SweepReport, Value};

/// The keyed rows one cell contributes to its scenario's report.
type CellRows = Vec<Vec<Value>>;
/// What a worker reports back: the owning scenario, the cell's rows and
/// the cell's wall time (0.0 unless the `metrics` feature is on).
type CellOutcome = (usize, Result<CellRows, SweepError>, f64);

/// Instrumentation sidecar of one scenario's sweep: per-cell wall-time
/// spans and cell/row counters, merged in canonical cell order so the
/// aggregate is independent of worker scheduling. Empty when the
/// `metrics` cargo feature is off — observation compiles out and
/// [`SweepRunner::run_all_observed`] stays byte-identical to
/// [`SweepRunner::run_all`].
#[derive(Debug, Clone, Default)]
pub struct SweepObs {
    /// The scenario this sidecar describes.
    pub scenario: String,
    /// `sweep.cells` / `sweep.rows` counters plus the `sweep.cell_wall_s`
    /// span over per-cell wall seconds.
    pub registry: Registry,
}

/// Default master seed (only Monte-Carlo kinds consume it).
pub const DEFAULT_SEED: u64 = 0xD51_2011; // DSN 2011

/// A deterministic multi-threaded scenario executor.
///
/// Parallelism is over grid cells: each cell gets a seed derived from
/// `(master_seed, cell index)` via SplitMix64 and is evaluated
/// independently; rows are then stitched together in cell order. Thread
/// count therefore affects wall-clock time only, never output bytes.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
    master_seed: u64,
    progress: bool,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner using every available core and the default seed.
    pub fn new() -> Self {
        SweepRunner {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            master_seed: DEFAULT_SEED,
            progress: false,
        }
    }

    /// Sets the worker-thread count (min 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the master seed for Monte-Carlo kinds.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Enables a per-cell progress/ETA line on stderr. Progress goes to
    /// stderr only — artefact bytes are unaffected.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one scenario.
    ///
    /// # Errors
    ///
    /// Propagates grid expansion and cell evaluation failures (the first
    /// failing cell in canonical order wins).
    pub fn run(&self, scenario: &Scenario) -> Result<SweepReport, SweepError> {
        Ok(self
            .run_all(std::slice::from_ref(scenario))?
            .pop()
            .expect("run_all returns exactly one report per scenario"))
    }

    /// Runs several scenarios as **one** job pool: all cells of all
    /// scenarios share the worker threads, so a long tail in one scenario
    /// overlaps with the start of the next.
    ///
    /// # Errors
    ///
    /// Propagates grid expansion and cell evaluation failures.
    pub fn run_all(&self, scenarios: &[Scenario]) -> Result<Vec<SweepReport>, SweepError> {
        Ok(self.run_all_observed(scenarios)?.0)
    }

    /// As [`SweepRunner::run_all`], additionally returning one
    /// [`SweepObs`] instrumentation sidecar per scenario (empty unless
    /// the `metrics` cargo feature is on). The reports are byte-identical
    /// to the unobserved path: observation happens strictly after each
    /// cell's rows are computed and draws no randomness.
    ///
    /// # Errors
    ///
    /// As [`SweepRunner::run_all`].
    pub fn run_all_observed(
        &self,
        scenarios: &[Scenario],
    ) -> Result<(Vec<SweepReport>, Vec<SweepObs>), SweepError> {
        struct Job<'s> {
            slot: usize,
            scenario_index: usize,
            cell: SweepCell,
            seed: u64,
            scenario: &'s Scenario,
        }

        let mut jobs = Vec::new();
        let mut cell_counts = Vec::with_capacity(scenarios.len());
        for (scenario_index, scenario) in scenarios.iter().enumerate() {
            let cells = scenario.cells()?;
            cell_counts.push(cells.len());
            for cell in cells {
                // The cell seed mixes the scenario's name into the master
                // seed so re-ordering scenarios never re-seeds a cell.
                let scenario_seed = replication_seed(self.master_seed, hash_name(&scenario.name));
                let seed = replication_seed(scenario_seed, cell.index as u64);
                jobs.push(Job {
                    slot: jobs.len(),
                    scenario_index,
                    cell,
                    seed,
                    scenario,
                });
            }
        }

        let n_jobs = jobs.len();
        let mut outcomes: Vec<Option<CellOutcome>> = (0..n_jobs).map(|_| None).collect();

        let (job_tx, job_rx) = mpsc::channel::<Job<'_>>();
        let (result_tx, result_rx) = mpsc::channel();
        for job in jobs {
            job_tx.send(job).expect("receiver alive");
        }
        drop(job_tx);
        let job_rx = Mutex::new(job_rx);

        let threads = self.threads;
        std::thread::scope(|scope| {
            for _ in 0..threads.min(n_jobs.max(1)) {
                let job_rx = &job_rx;
                let result_tx = result_tx.clone();
                scope.spawn(move || loop {
                    // Holding the lock only while popping keeps workers
                    // independent during evaluation.
                    let job = match job_rx.lock().expect("queue lock").try_recv() {
                        Ok(job) => job,
                        Err(_) => break,
                    };
                    // The runner's thread count doubles as the DES shard
                    // count: a sweep with few, large DES cells still uses
                    // every core, and shard-invariance keeps the bytes
                    // independent of it.
                    let watch = Stopwatch::start();
                    let rows = job.scenario.kind.evaluate(&job.cell, job.seed, threads);
                    let cell_seconds = watch.elapsed_s();
                    let keyed = rows.map(|rows| {
                        rows.into_iter()
                            .map(|row| {
                                let mut full = job.cell.key_values();
                                full.extend(row);
                                full
                            })
                            .collect::<Vec<_>>()
                    });
                    if result_tx
                        .send((job.slot, (job.scenario_index, keyed, cell_seconds)))
                        .is_err()
                    {
                        break;
                    }
                });
            }
            drop(result_tx);
            let started = std::time::Instant::now();
            let mut done = 0usize;
            for (slot, outcome) in result_rx {
                outcomes[slot] = Some(outcome);
                done += 1;
                if self.progress {
                    // stderr only: progress never touches artefact bytes.
                    let elapsed = started.elapsed().as_secs_f64();
                    let eta = elapsed / done as f64 * (n_jobs - done) as f64;
                    eprintln!(
                        "sweep: {done}/{n_jobs} cells ({:.1}%) elapsed {elapsed:.1}s eta {eta:.1}s",
                        100.0 * done as f64 / n_jobs as f64,
                    );
                }
            }
        });

        let mut reports: Vec<SweepReport> = scenarios
            .iter()
            .map(|s| SweepReport {
                scenario: s.name.clone(),
                columns: s.columns(),
                rows: Vec::new(),
            })
            .collect();
        let mut obs: Vec<SweepObs> = scenarios
            .iter()
            .map(|s| SweepObs {
                scenario: s.name.clone(),
                registry: Registry::new(),
            })
            .collect();
        // Canonical slot order makes the span merge order — and thus the
        // sidecar's aggregate moments — independent of which worker
        // finished first.
        for outcome in outcomes {
            let (scenario_index, rows, cell_seconds) =
                outcome.expect("every job slot was filled by a worker");
            let rows = rows?;
            if pollux_obs::METRICS_ENABLED {
                let registry = &mut obs[scenario_index].registry;
                registry.add("sweep.cells", 1);
                registry.add("sweep.rows", rows.len() as u64);
                registry.span("sweep.cell_wall_s", cell_seconds);
            }
            reports[scenario_index].rows.extend(rows);
        }
        for (report, count) in reports.iter_mut().zip(cell_counts) {
            debug_assert!(
                report.rows.len() >= count,
                "every cell contributes at least one row"
            );
        }
        Ok((reports, obs))
    }
}

/// Stable FNV-1a hash of a scenario name (part of the seed derivation).
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OutputKind, ParamGrid};

    fn tiny_scenario() -> Scenario {
        Scenario::new(
            "tiny",
            "test grid",
            ParamGrid::paper().mu(vec![0.0, 0.2]).d(vec![0.3, 0.9]),
            OutputKind::Sojourns,
        )
    }

    #[test]
    fn rows_follow_canonical_cell_order() {
        let scenario = tiny_scenario();
        let report = SweepRunner::new().with_threads(4).run(&scenario).unwrap();
        assert_eq!(report.rows.len(), 4);
        let mu_col = report.column("mu").unwrap();
        let d_col = report.column("d").unwrap();
        let order: Vec<(f64, f64)> = report
            .rows
            .iter()
            .map(|r| (r[d_col].as_f64().unwrap(), r[mu_col].as_f64().unwrap()))
            .collect();
        assert_eq!(order, vec![(0.3, 0.0), (0.3, 0.2), (0.9, 0.0), (0.9, 0.2)]);
    }

    #[test]
    fn thread_count_never_changes_bytes() {
        let scenario = Scenario::new(
            "mc",
            "monte-carlo determinism",
            ParamGrid::paper().mu(vec![0.1, 0.2]).d(vec![0.8]),
            OutputKind::McValidation {
                replications: 300,
                sigmas: 4.0,
            },
        );
        let one = SweepRunner::new().with_threads(1).run(&scenario).unwrap();
        let many = SweepRunner::new().with_threads(8).run(&scenario).unwrap();
        assert_eq!(one.to_tsv(), many.to_tsv());
    }

    #[test]
    fn run_all_pools_scenarios_without_cross_talk() {
        let a = tiny_scenario();
        let b = Scenario::new(
            "abs",
            "absorption",
            ParamGrid::paper().mu(vec![0.3]).d(vec![0.9]),
            OutputKind::Absorption,
        );
        let pooled = SweepRunner::new()
            .with_threads(3)
            .run_all(&[a.clone(), b.clone()])
            .unwrap();
        let solo_a = SweepRunner::new().with_threads(1).run(&a).unwrap();
        let solo_b = SweepRunner::new().with_threads(1).run(&b).unwrap();
        assert_eq!(pooled[0], solo_a);
        assert_eq!(pooled[1], solo_b);
    }

    #[test]
    fn master_seed_changes_only_monte_carlo_output() {
        let analytic = tiny_scenario();
        let r1 = SweepRunner::new().with_seed(1).run(&analytic).unwrap();
        let r2 = SweepRunner::new().with_seed(2).run(&analytic).unwrap();
        assert_eq!(r1, r2);

        let mc = Scenario::new(
            "mc",
            "seeded",
            ParamGrid::paper().mu(vec![0.2]).d(vec![0.8]),
            OutputKind::McValidation {
                replications: 200,
                sigmas: 4.0,
            },
        );
        let m1 = SweepRunner::new().with_seed(1).run(&mc).unwrap();
        let m2 = SweepRunner::new().with_seed(2).run(&mc).unwrap();
        assert_ne!(m1.f64(0, "sim_T_S"), m2.f64(0, "sim_T_S"));
    }

    #[test]
    fn observed_run_matches_plain_run_and_populates_iff_metrics() {
        let scenario = tiny_scenario();
        let runner = SweepRunner::new().with_threads(4);
        let plain = runner.run_all(std::slice::from_ref(&scenario)).unwrap();
        let (observed, obs) = runner
            .run_all_observed(std::slice::from_ref(&scenario))
            .unwrap();
        assert_eq!(plain, observed);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].scenario, "tiny");
        if pollux_obs::METRICS_ENABLED {
            assert_eq!(obs[0].registry.counter("sweep.cells"), Some(4));
            assert_eq!(
                obs[0].registry.counter("sweep.rows"),
                Some(observed[0].rows.len() as u64)
            );
            let span = obs[0].registry.span_stats("sweep.cell_wall_s").unwrap();
            assert_eq!(span.count(), 4);
        } else {
            assert!(obs[0].registry.is_empty());
        }
    }

    #[test]
    fn grid_errors_propagate() {
        let bad = Scenario::new(
            "bad",
            "invalid",
            ParamGrid::paper().mu(vec![2.0]),
            OutputKind::Sojourns,
        );
        assert!(SweepRunner::new().run(&bad).is_err());
    }
}
