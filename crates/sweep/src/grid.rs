//! The declarative parameter grid: named axes over the paper's
//! `(C, Δ, μ, d, k, ν)` space plus adversary toggles and initial
//! conditions, expanded into a deterministic list of cells.

use pollux::{AdversaryToggles, InitialCondition, ModelParams};

use crate::SweepError;

/// A labelled adversary variant (the label is carried into every output
/// row, so ablation artefacts stay self-describing).
#[derive(Debug, Clone, PartialEq)]
pub struct ToggleSpec {
    /// Human-readable variant name (e.g. `full`, `no-rule2`).
    pub label: String,
    /// The toggles themselves.
    pub toggles: AdversaryToggles,
}

impl ToggleSpec {
    /// The paper's full adversary.
    pub fn full() -> Self {
        ToggleSpec {
            label: "full".into(),
            toggles: AdversaryToggles::all(),
        }
    }

    /// A named variant.
    pub fn named(label: &str, toggles: AdversaryToggles) -> Self {
        ToggleSpec {
            label: label.into(),
            toggles,
        }
    }
}

/// A cartesian grid over the model's axes.
///
/// Every axis defaults to the paper's single evaluation value, so a
/// scenario only lists the axes it actually sweeps:
///
/// ```
/// use pollux_sweep::ParamGrid;
///
/// let grid = ParamGrid::paper()
///     .mu(vec![0.0, 0.1, 0.2, 0.3])
///     .d(vec![0.95, 0.99, 0.999]);
/// assert_eq!(grid.cells().unwrap().len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParamGrid {
    core_size: Vec<usize>,
    max_spare: Vec<usize>,
    k: Vec<usize>,
    mu: Vec<f64>,
    d: Vec<f64>,
    nu: Vec<f64>,
    toggles: Vec<ToggleSpec>,
    initial: Vec<InitialCondition>,
}

impl ParamGrid {
    /// The paper's base point: `C = 7`, `Δ = 7`, `k = 1`, `μ = 0`,
    /// `d = 0`, `ν = 0.1`, full adversary, `α = δ`.
    pub fn paper() -> Self {
        ParamGrid {
            core_size: vec![7],
            max_spare: vec![7],
            k: vec![1],
            mu: vec![0.0],
            d: vec![0.0],
            nu: vec![0.1],
            toggles: vec![ToggleSpec::full()],
            initial: vec![InitialCondition::Delta],
        }
    }

    /// Sweeps the core size `C`.
    pub fn core_size(mut self, values: Vec<usize>) -> Self {
        self.core_size = values;
        self
    }

    /// Sweeps the spare bound `Δ`.
    pub fn max_spare(mut self, values: Vec<usize>) -> Self {
        self.max_spare = values;
        self
    }

    /// Sweeps the maintenance randomization `k`.
    pub fn k(mut self, values: Vec<usize>) -> Self {
        self.k = values;
        self
    }

    /// Sweeps the adversarial fraction `μ`.
    pub fn mu(mut self, values: Vec<f64>) -> Self {
        self.mu = values;
        self
    }

    /// Sweeps the identifier survival probability `d`.
    pub fn d(mut self, values: Vec<f64>) -> Self {
        self.d = values;
        self
    }

    /// Sweeps the Rule-1 threshold `ν`.
    pub fn nu(mut self, values: Vec<f64>) -> Self {
        self.nu = values;
        self
    }

    /// Sweeps adversary variants.
    pub fn toggles(mut self, values: Vec<ToggleSpec>) -> Self {
        self.toggles = values;
        self
    }

    /// Sweeps initial conditions.
    pub fn initial(mut self, values: Vec<InitialCondition>) -> Self {
        self.initial = values;
        self
    }

    /// Expands the grid into cells, in the canonical deterministic order
    /// `initial → adversary → C → Δ → k → d → μ → ν` (the innermost axes
    /// vary fastest).
    ///
    /// Combinations with `k > C` are skipped (they arise naturally when
    /// both axes are swept); every other invalid value is an error.
    ///
    /// # Errors
    ///
    /// [`SweepError::InvalidGrid`] for an empty axis or an out-of-domain
    /// value, [`SweepError::InvalidScenario`] when the expansion is empty.
    pub fn cells(&self) -> Result<Vec<SweepCell>, SweepError> {
        for (axis, len) in [
            ("C", self.core_size.len()),
            ("Delta", self.max_spare.len()),
            ("k", self.k.len()),
            ("mu", self.mu.len()),
            ("d", self.d.len()),
            ("nu", self.nu.len()),
            ("adversary", self.toggles.len()),
            ("initial", self.initial.len()),
        ] {
            if len == 0 {
                return Err(SweepError::InvalidGrid(format!("axis '{axis}' is empty")));
            }
        }
        for &mu in &self.mu {
            if !(0.0..1.0).contains(&mu) {
                return Err(SweepError::InvalidGrid(format!("mu = {mu} outside [0, 1)")));
            }
        }
        for &d in &self.d {
            if !(0.0..1.0).contains(&d) {
                return Err(SweepError::InvalidGrid(format!("d = {d} outside [0, 1)")));
            }
        }
        for &nu in &self.nu {
            if !(nu > 0.0 && nu < 1.0) {
                return Err(SweepError::InvalidGrid(format!("nu = {nu} outside (0, 1)")));
            }
        }

        let mut cells = Vec::new();
        for initial in &self.initial {
            for toggle in &self.toggles {
                for &c in &self.core_size {
                    for &delta in &self.max_spare {
                        for &k in &self.k {
                            if k > c {
                                continue;
                            }
                            let base = ModelParams::new(c, delta, k)?;
                            for &d in &self.d {
                                for &mu in &self.mu {
                                    for &nu in &self.nu {
                                        let params = base
                                            .with_mu(mu)
                                            .with_d(d)
                                            .with_nu(nu)
                                            .with_toggles(toggle.toggles);
                                        cells.push(SweepCell {
                                            index: cells.len(),
                                            params,
                                            initial: initial.clone(),
                                            adversary: toggle.label.clone(),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if cells.is_empty() {
            return Err(SweepError::InvalidScenario(
                "grid expands to zero cells (every k exceeds every C?)".into(),
            ));
        }
        Ok(cells)
    }
}

/// One point of an expanded grid: a fully built parameter set plus the
/// labels that identify it in output rows.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Position in the canonical expansion order (also the seed index).
    pub index: usize,
    /// The model parameters of this cell.
    pub params: ModelParams,
    /// The initial condition of this cell.
    pub initial: InitialCondition,
    /// The adversary-variant label of this cell.
    pub adversary: String,
}

impl SweepCell {
    /// The key columns prefixed to every output row of this cell.
    pub fn key_values(&self) -> Vec<crate::Value> {
        vec![
            crate::Value::U64(self.params.core_size() as u64),
            crate::Value::U64(self.params.max_spare() as u64),
            crate::Value::U64(self.params.k() as u64),
            crate::Value::F64(self.params.mu()),
            crate::Value::F64(self.params.d()),
            crate::Value::F64(self.params.nu()),
            crate::Value::Str(self.adversary.clone()),
            crate::Value::Str(self.initial.label().to_string()),
        ]
    }

    /// Names of the key columns, in [`SweepCell::key_values`] order.
    pub fn key_columns() -> Vec<String> {
        ["C", "Delta", "k", "mu", "d", "nu", "adversary", "initial"]
            .into_iter()
            .map(String::from)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_is_the_paper_point() {
        let cells = ParamGrid::paper().cells().unwrap();
        assert_eq!(cells.len(), 1);
        let p = &cells[0].params;
        assert_eq!((p.core_size(), p.max_spare(), p.k()), (7, 7, 1));
        assert_eq!((p.mu(), p.d(), p.nu()), (0.0, 0.0, 0.1));
        assert_eq!(cells[0].adversary, "full");
    }

    #[test]
    fn expansion_order_is_innermost_fastest() {
        let cells = ParamGrid::paper()
            .d(vec![0.1, 0.2])
            .mu(vec![0.0, 0.3])
            .cells()
            .unwrap();
        let pts: Vec<(f64, f64)> = cells
            .iter()
            .map(|c| (c.params.d(), c.params.mu()))
            .collect();
        assert_eq!(pts, vec![(0.1, 0.0), (0.1, 0.3), (0.2, 0.0), (0.2, 0.3)]);
        assert_eq!(
            cells.iter().map(|c| c.index).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn oversized_k_is_skipped_not_fatal() {
        let cells = ParamGrid::paper()
            .core_size(vec![4, 7])
            .k(vec![1, 5])
            .cells()
            .unwrap();
        // (C=4, k=5) is dropped; the three remaining combos survive.
        assert_eq!(cells.len(), 3);
        assert!(cells.iter().all(|c| c.params.k() <= c.params.core_size()));
    }

    #[test]
    fn invalid_axis_values_are_rejected() {
        assert!(matches!(
            ParamGrid::paper().mu(vec![1.0]).cells(),
            Err(SweepError::InvalidGrid(_))
        ));
        assert!(matches!(
            ParamGrid::paper().d(vec![-0.1]).cells(),
            Err(SweepError::InvalidGrid(_))
        ));
        assert!(matches!(
            ParamGrid::paper().nu(vec![0.0]).cells(),
            Err(SweepError::InvalidGrid(_))
        ));
        assert!(matches!(
            ParamGrid::paper().mu(vec![]).cells(),
            Err(SweepError::InvalidGrid(_))
        ));
    }

    #[test]
    fn key_columns_align_with_key_values() {
        let cells = ParamGrid::paper().cells().unwrap();
        assert_eq!(SweepCell::key_columns().len(), cells[0].key_values().len());
    }
}
