//! Built-in scenarios: every artefact of the paper's evaluation
//! (Sections VII–VIII) plus beyond-paper grids exploring regimes the
//! paper's fixed tables cannot show.

use pollux::experiments::{
    figure5_sample_points, FIGURE_D_GRID, FIGURE_MU_GRID, TABLE1_D_GRID, TABLE_MU_GRID,
};
use pollux::{AdversaryToggles, InitialCondition};
use pollux_defense::DefenseSpec;
use pollux_prob::tolerance::AGREEMENT_SIGMAS;

use crate::{OutputKind, ParamGrid, Scenario, SweepError, ToggleSpec};

/// The scenario names reproducing the paper's own artefacts, in
/// presentation order. [`paper`] returns exactly these.
pub const PAPER_ARTEFACTS: [&str; 11] = [
    "state_space",
    "fig3",
    "table1",
    "table2",
    "fig4",
    "fig5",
    "ablation_k",
    "ablation_rules",
    "ablation_nu",
    "validate_model",
    "validate_overlay",
];

fn both_initials() -> Vec<InitialCondition> {
    vec![InitialCondition::Delta, InitialCondition::Beta]
}

/// Scenarios reproducing the paper's tables and figures.
pub fn paper() -> Vec<Scenario> {
    vec![
        Scenario::new(
            "state_space",
            "Figure 1: state-space partition sizes and Rule-2 reachability across (C, Delta)",
            ParamGrid::paper()
                .core_size(vec![4, 7, 10])
                .max_spare(vec![4, 7, 10])
                .mu(vec![0.3])
                .d(vec![0.9]),
            OutputKind::StateSpace,
        ),
        Scenario::new(
            "fig3",
            "Figure 3: E(T_S^(k)), E(T_P^(k)) over (d, mu) for protocols 1 and 7, both initials",
            ParamGrid::paper()
                .initial(both_initials())
                .k(vec![1, 7])
                .d(FIGURE_D_GRID.to_vec())
                .mu(FIGURE_MU_GRID.to_vec()),
            OutputKind::Sojourns,
        ),
        Scenario::new(
            "table1",
            "Table I: E(T_S^(1)), E(T_P^(1)) in the high-survival regime",
            ParamGrid::paper()
                .d(TABLE1_D_GRID.to_vec())
                .mu(TABLE_MU_GRID.to_vec()),
            OutputKind::Sojourns,
        ),
        Scenario::new(
            "table2",
            "Table II: first two successive sojourn expectations at d = 90%",
            ParamGrid::paper().d(vec![0.9]).mu(TABLE_MU_GRID.to_vec()),
            OutputKind::SuccessiveSojourns { count: 2 },
        ),
        Scenario::new(
            "fig4",
            "Figure 4: absorption probabilities over (d, mu), both initials",
            ParamGrid::paper()
                .initial(both_initials())
                .d(FIGURE_D_GRID.to_vec())
                .mu(FIGURE_MU_GRID.to_vec()),
            OutputKind::Absorption,
        ),
        Scenario::new(
            "fig5",
            "Figure 5: overlay proportions E(N_S(m))/n, E(N_P(m))/n for n in {500, 1500}",
            ParamGrid::paper()
                .d(vec![0.3, 0.9])
                .mu(vec![0.10, 0.20, 0.25, 0.30]),
            OutputKind::OverlayProportions {
                n_clusters: vec![500, 1500],
                sample_points: figure5_sample_points(),
            },
        ),
        Scenario::new(
            "ablation_k",
            "k-sweep: the 'protocol_1 wins' lesson, extended to every k and both initials",
            ParamGrid::paper()
                .initial(both_initials())
                .k((1..=7).collect())
                .mu(vec![0.2, 0.3])
                .d(vec![0.8, 0.9]),
            OutputKind::Sojourns,
        ),
        Scenario::new(
            "ablation_rules",
            "Adversary-lever ablation: Rule 1 / Rule 2 / bias toggled independently",
            ParamGrid::paper()
                .toggles(vec![
                    ToggleSpec::full(),
                    ToggleSpec::named(
                        "no-rule2",
                        AdversaryToggles {
                            rule2: false,
                            ..AdversaryToggles::all()
                        },
                    ),
                    ToggleSpec::named(
                        "no-bias",
                        AdversaryToggles {
                            bias: false,
                            ..AdversaryToggles::all()
                        },
                    ),
                    ToggleSpec::named(
                        "no-rule1",
                        AdversaryToggles {
                            rule1: false,
                            ..AdversaryToggles::all()
                        },
                    ),
                    ToggleSpec::named("passive", AdversaryToggles::none()),
                ])
                .mu(vec![0.3])
                .d(vec![0.9]),
            OutputKind::SojournsWithAbsorption,
        ),
        Scenario::new(
            "ablation_nu",
            "Rule-1 threshold sweep at k = 7 (nu is inert for k = 1)",
            ParamGrid::paper()
                .k(vec![1, 7])
                .nu(vec![0.01, 0.05, 0.1, 0.2, 0.4])
                .mu(vec![0.3])
                .d(vec![0.9]),
            OutputKind::SojournsWithAbsorption,
        ),
        Scenario::new(
            "validate_model",
            "Figure 2 validation: analytical metrics vs event-level Monte-Carlo",
            // Covers the low-survival regime (d = 0.3) and an
            // intermediate protocol (k = 3), not just the corners.
            ParamGrid::paper()
                .k(vec![1, 3, 7])
                .mu(vec![0.0, 0.2, 0.3])
                .d(vec![0.3, 0.8, 0.9]),
            OutputKind::McValidation {
                replications: 40_000,
                sigmas: 3.0,
            },
        ),
        Scenario::new(
            "validate_overlay",
            "Theorem 2 validation: closed-form proportions vs n-cluster Monte-Carlo",
            ParamGrid::paper().mu(vec![0.25]).d(vec![0.9]),
            OutputKind::OverlayMcValidation {
                n_clusters: 500,
                runs: 20,
                sample_points: vec![0, 5_000, 10_000, 20_000, 40_000, 80_000],
                tol_safe: 0.02,
                tol_polluted: 0.01,
            },
        ),
    ]
}

/// Beyond-paper scenarios: larger grids and regimes the DSN'11 tables
/// leave unexplored.
pub fn extended() -> Vec<Scenario> {
    vec![
        Scenario::new(
            "mu_extreme",
            "Beyond-paper: adversarial fractions up to 50% (the paper stops at 30%)",
            ParamGrid::paper()
                .k(vec![1, 7])
                .mu(vec![0.30, 0.35, 0.40, 0.45, 0.50])
                .d(vec![0.8, 0.9, 0.95]),
            OutputKind::Sojourns,
        ),
        Scenario::new(
            "nu_fine",
            "Beyond-paper: fine-grained Rule-1 threshold sweep for k in {3, 5, 7}",
            ParamGrid::paper()
                .k(vec![3, 5, 7])
                .nu(vec![0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5])
                .mu(vec![0.2, 0.3])
                .d(vec![0.9]),
            OutputKind::SojournsWithAbsorption,
        ),
        Scenario::new(
            "delta_large",
            "Beyond-paper: larger spare bounds Delta (bigger transient band)",
            ParamGrid::paper()
                .max_spare(vec![7, 10, 14])
                .mu(vec![0.2, 0.3])
                .d(vec![0.9]),
            OutputKind::Sojourns,
        ),
        Scenario::new(
            "absorption_fine",
            "Beyond-paper: absorption split on a fine (mu, d) grid",
            ParamGrid::paper()
                .mu(vec![0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45])
                .d(vec![0.9, 0.95, 0.99]),
            OutputKind::Absorption,
        ),
        Scenario::new(
            "risk_decomposition",
            "Beyond-paper: pollution frequency vs episode duration vs steady-state fraction",
            ParamGrid::paper()
                .d(vec![0.3, 0.8, 0.9, 0.95])
                .mu(vec![0.1, 0.2, 0.3]),
            OutputKind::PollutionRisk,
        ),
        Scenario::new(
            "des_validate",
            "DES cross-validation: whole-overlay event-driven runs (10^4 and 1.6*10^5 nodes) vs the Markov chain",
            ParamGrid::paper().mu(vec![0.1, 0.25]).d(vec![0.8, 0.9]),
            // The per-cluster budget is a cap, not work: without
            // regeneration a cluster stops at absorption (E(T) ≈ 13
            // events), so a generous budget costs nothing and keeps the
            // censoring probability of the sojourn tail negligible even
            // over 2^14 clusters.
            OutputKind::DesValidation {
                cluster_bits: vec![10, 14],
                lambda: 1.0,
                max_events_per_cluster: 5_000,
                sigmas: 4.0,
            },
        ),
        Scenario::new(
            "des_validate_wide",
            "DES cross-validation across structure and adversary ablations: (C, Delta, k) x {full, no-rule2, no-bias, passive}",
            ParamGrid::paper()
                .core_size(vec![4, 7])
                .max_spare(vec![5, 7])
                .k(vec![1, 7])
                .mu(vec![0.2])
                .d(vec![0.8])
                .toggles(vec![
                    ToggleSpec::full(),
                    ToggleSpec::named(
                        "no-rule2",
                        AdversaryToggles {
                            rule2: false,
                            ..AdversaryToggles::all()
                        },
                    ),
                    ToggleSpec::named(
                        "no-bias",
                        AdversaryToggles {
                            bias: false,
                            ..AdversaryToggles::all()
                        },
                    ),
                    ToggleSpec::named("passive", AdversaryToggles::none()),
                ]),
            OutputKind::DesValidation {
                cluster_bits: vec![11],
                lambda: 1.0,
                max_events_per_cluster: 5_000,
                sigmas: 4.5,
            },
        ),
        Scenario::new(
            "state_space_scaling",
            "Sparse-pipeline scaling: the full analytical battery at Delta up to 100 (10^4-10^5 states, far past the paper's Delta = 7)",
            // Δ = 20 (1 848 states) crosses into the sparse pipeline;
            // Δ = 48 ≈ 10⁴ states; Δ = 100 ≈ 4·10⁴ states (the bench
            // suite pushes to Δ = 156 ≈ 10⁵). μ/d sit at the paper's
            // hardest evaluated corner so pollution metrics stay
            // non-trivial at every size.
            ParamGrid::paper()
                .max_spare(vec![7, 20, 48, 100])
                .mu(vec![0.2])
                .d(vec![0.8]),
            OutputKind::StateSpaceScaling,
        ),
        Scenario::new(
            "des_scale",
            "DES at production scale: one 1.3-million-node overlay (2^17 clusters) vs the Markov chain",
            ParamGrid::paper().mu(vec![0.25]).d(vec![0.9]),
            OutputKind::DesValidation {
                cluster_bits: vec![17],
                lambda: 1.0,
                max_events_per_cluster: 5_000,
                sigmas: 4.0,
            },
        ),
        Scenario::new(
            "des_steady_state",
            "Regeneration-mode DES vs the renewal-reward closed form: long-run safe/polluted event fractions plus a live-fraction time grid",
            ParamGrid::paper().mu(vec![0.2, 0.3]).d(vec![0.8, 0.9]),
            OutputKind::DesSteadyState {
                cluster_bits: vec![10],
                lambda: 1.0,
                max_events_per_cluster: 2_000,
                // ~2000 time units per run at λ = 1: sample the first
                // tenth densely (the transient settles within a few
                // cycles) and the rest coarsely.
                sample_times: vec![
                    0.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 1500.0, 2000.0,
                ],
                sigmas: AGREEMENT_SIGMAS,
            },
        ),
        Scenario::new(
            "duel_matrix",
            "Adversary-vs-defense duels: strategies x defenses x (C, Delta), analytic (sparse pipeline) vs regeneration-mode DES per cell",
            ParamGrid::paper()
                .core_size(vec![4, 7])
                .max_spare(vec![5, 7])
                .mu(vec![0.25])
                .d(vec![0.9])
                .toggles(vec![
                    ToggleSpec::full(),
                    ToggleSpec::named(
                        "no-bias",
                        AdversaryToggles {
                            bias: false,
                            ..AdversaryToggles::all()
                        },
                    ),
                    ToggleSpec::named("passive", AdversaryToggles::none()),
                ]),
            OutputKind::Duel {
                defenses: vec![
                    DefenseSpec::Null,
                    DefenseSpec::InducedChurn { rate: 0.1 },
                    DefenseSpec::IncarnationRefresh {
                        period: 10.0,
                        detection_prob: 0.8,
                    },
                    DefenseSpec::AdaptiveClusterSize {
                        target_fraction: 0.5,
                    },
                ],
                cluster_bits: 9,
                lambda: 1.0,
                // Regeneration-mode budgets are fully consumed; the duel
                // compares through the completed-cycle renewal estimator
                // (no interrupted-cycle truncation bias), so the budget
                // only sizes the cycle count behind the Wilson interval.
                max_events_per_cluster: 1_500,
                sigmas: AGREEMENT_SIGMAS,
            },
        ),
        Scenario::new(
            "defense_frontier",
            "Minimum induced-churn rate keeping steady-state pollution below 1% across the (mu, d) plane (mean-field bisection verified against the exact chain)",
            ParamGrid::paper()
                .mu(vec![0.2, 0.25, 0.3])
                .d(vec![0.85, 0.9, 0.95]),
            OutputKind::ControlTuning {
                threshold: 0.01,
                max_rate: 0.5,
                // Matches the finest step of the retired grid scan while
                // spending ~log2(0.5/0.01) fluid solves per cell instead
                // of one exact battery per grid point.
                rate_tol: 0.01,
            },
        ),
        Scenario::new(
            "meanfield_validate",
            "Fluid-limit stationary fractions vs the exact chain, the settled ODE trajectory, and a regeneration-mode DES with the O(1/M) band",
            ParamGrid::paper()
                .mu(vec![0.2, 0.25, 0.3])
                .d(vec![0.85, 0.9, 0.95]),
            OutputKind::MeanFieldValidation {
                cluster_bits: 10,
                lambda: 1.0,
                max_events_per_cluster: 2_000,
                sigmas: AGREEMENT_SIGMAS,
                tol: 1e-7,
            },
        ),
        Scenario::new(
            "meanfield_equilibrium",
            "Coupled mean-field equilibria and Jacobian-eigenvalue stability across routing-bias amplifications and the (mu, d) plane",
            ParamGrid::paper()
                .mu(vec![0.15, 0.2, 0.25, 0.3])
                .d(vec![0.85, 0.9, 0.95]),
            OutputKind::MeanFieldEquilibrium {
                amplifications: vec![0.0, 0.5, 1.0, 2.0, 4.0],
            },
        ),
    ]
}

/// Every built-in scenario (paper artefacts first).
pub fn all() -> Vec<Scenario> {
    let mut scenarios = paper();
    scenarios.extend(extended());
    scenarios
}

/// Looks up one scenario by name.
///
/// # Errors
///
/// [`SweepError::UnknownScenario`] when the name matches nothing.
pub fn find(name: &str) -> Result<Scenario, SweepError> {
    all()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| SweepError::UnknownScenario(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = all().into_iter().map(|s| s.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn paper_list_matches_constant() {
        let names: Vec<String> = paper().into_iter().map(|s| s.name).collect();
        assert_eq!(names, PAPER_ARTEFACTS.to_vec());
    }

    #[test]
    fn every_scenario_expands() {
        for scenario in all() {
            let cells = scenario
                .cells()
                .unwrap_or_else(|e| panic!("scenario '{}' fails to expand: {e}", scenario.name));
            assert!(!cells.is_empty(), "{}", scenario.name);
        }
    }

    #[test]
    fn find_hits_and_misses() {
        assert!(find("fig3").is_ok());
        assert!(matches!(find("fig99"), Err(SweepError::UnknownScenario(_))));
    }
}
