//! A named experiment: a grid plus the measurement taken at each cell.

use crate::{OutputKind, ParamGrid, SweepCell, SweepError};

/// A declarative experiment specification.
///
/// ```
/// use pollux_sweep::{OutputKind, ParamGrid, Scenario, SweepRunner};
///
/// let scenario = Scenario::new(
///     "quorum_margin",
///     "E(T_S), E(T_P) across survival probabilities",
///     ParamGrid::paper().mu(vec![0.2]).d(vec![0.3, 0.9]),
///     OutputKind::Sojourns,
/// );
/// let report = SweepRunner::new().run(&scenario).unwrap();
/// assert_eq!(report.rows.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Registry key and artefact file stem (e.g. `fig3`).
    pub name: String,
    /// One-line description shown by `--list` and in reports.
    pub description: String,
    /// The swept grid.
    pub grid: ParamGrid,
    /// The per-cell measurement.
    pub kind: OutputKind,
}

impl Scenario {
    /// Builds a scenario.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        grid: ParamGrid,
        kind: OutputKind,
    ) -> Self {
        Scenario {
            name: name.into(),
            description: description.into(),
            grid,
            kind,
        }
    }

    /// Expands the grid (see [`ParamGrid::cells`]).
    ///
    /// # Errors
    ///
    /// Propagates grid-validation failures.
    pub fn cells(&self) -> Result<Vec<SweepCell>, SweepError> {
        self.grid.cells()
    }

    /// Full column list of this scenario's report: key columns followed
    /// by the kind's measurement columns.
    pub fn columns(&self) -> Vec<String> {
        let mut cols = SweepCell::key_columns();
        cols.extend(self.kind.columns());
        cols
    }
}
