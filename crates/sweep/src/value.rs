use std::fmt;

/// One typed cell of a [`crate::SweepReport`] row.
///
/// The `Display` impl defines the on-disk TSV encoding; floats use Rust's
/// shortest round-trip formatting, so output is byte-identical across
/// runs, platforms and thread counts.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer (counts, event indices, sizes).
    U64(u64),
    /// A float (probabilities, expectations).
    F64(f64),
    /// A flag (validation verdicts).
    Bool(bool),
    /// A label (adversary variant, initial condition).
    Str(String),
}

impl Value {
    /// The float content, when numeric (integers widen losslessly up to
    /// 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            Value::Bool(_) | Value::Str(_) => None,
        }
    }

    /// The boolean content, when a flag.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The JSON encoding of this value.
    pub fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::F64(v) if v.is_finite() => {
                let s = v.to_string();
                // JSON numbers need a decimal point or exponent is fine;
                // Rust's Display for integral floats ("12") is valid JSON.
                s
            }
            Value::F64(_) => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
                out
            }
        }
    }

    /// `true` for numeric variants (used for table alignment).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::U64(_) | Value::F64(_))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_shortest_roundtrip() {
        assert_eq!(Value::F64(0.1).to_string(), "0.1");
        assert_eq!(Value::F64(12.0).to_string(), "12");
        assert_eq!(Value::U64(100_000).to_string(), "100000");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn json_escapes_strings_and_maps_nonfinite_to_null() {
        assert_eq!(
            Value::Str("a\"b\\c\n".into()).to_json(),
            "\"a\\\"b\\\\c\\n\""
        );
        assert_eq!(Value::F64(f64::INFINITY).to_json(), "null");
        assert_eq!(Value::F64(0.25).to_json(), "0.25");
    }

    #[test]
    fn numeric_accessors() {
        assert_eq!(Value::U64(3).as_f64(), Some(3.0));
        assert_eq!(Value::F64(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
    }
}
