//! Exact row codec for the completion journal.
//!
//! A journaled cell's payload must round-trip its rows *bit-exactly*:
//! a resumed sweep re-emits journaled rows through the same TSV/JSON
//! writers as a live run, so any lossy step here would break the
//! byte-identity contract between interrupted and uninterrupted runs.
//! TSV/JSON themselves are unsuitable as the storage format (shortest
//! round-trip float printing is exact for finite values but collapses
//! NaN payloads, and JSON nulls non-finite values outright), so the
//! journal stores rows in a typed line format of its own:
//!
//! * one row per line, fields separated by `\t`;
//! * each field is a type tag + body: `u<decimal>` for [`Value::U64`],
//!   `f<16 hex digits>` (the IEEE-754 bit pattern, so every NaN, ±0.0
//!   and subnormal survives) for [`Value::F64`], `b0`/`b1` for
//!   [`Value::Bool`], and `s<escaped>` for [`Value::Str`] with `%`,
//!   tab and newline percent-escaped.
//!
//! Decoding rejects anything it does not recognise — a corrupt payload
//! that slipped past the journal's hash check must fail loudly, not
//! produce plausible rows.

use crate::Value;

/// Encodes one cell's keyed rows as the journal payload string.
#[must_use]
pub fn encode_rows(rows: &[Vec<Value>]) -> String {
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        for (j, value) in row.iter().enumerate() {
            if j > 0 {
                out.push('\t');
            }
            match value {
                Value::U64(v) => {
                    out.push('u');
                    out.push_str(&v.to_string());
                }
                Value::F64(v) => {
                    out.push('f');
                    out.push_str(&format!("{:016x}", v.to_bits()));
                }
                Value::Bool(v) => out.push_str(if *v { "b1" } else { "b0" }),
                Value::Str(v) => {
                    out.push('s');
                    for c in v.chars() {
                        match c {
                            '%' => out.push_str("%25"),
                            '\t' => out.push_str("%09"),
                            '\n' => out.push_str("%0a"),
                            c => out.push(c),
                        }
                    }
                }
            }
        }
    }
    out
}

/// Decodes a journal payload back into rows, bit-exactly.
///
/// # Errors
///
/// A human-readable message on any malformed field — decoding never
/// guesses.
pub fn decode_rows(payload: &str) -> Result<Vec<Vec<Value>>, String> {
    if payload.is_empty() {
        return Ok(Vec::new());
    }
    payload
        .split('\n')
        .enumerate()
        .map(|(i, line)| {
            line.split('\t')
                .map(|field| decode_field(field).map_err(|e| format!("row {i}: {e}")))
                .collect()
        })
        .collect()
}

fn decode_field(field: &str) -> Result<Value, String> {
    let body = field.get(1..).ok_or("empty field")?;
    match field.as_bytes()[0] {
        b'u' => body
            .parse::<u64>()
            .map(Value::U64)
            .map_err(|e| format!("bad u64 '{body}': {e}")),
        b'f' => {
            if body.len() != 16 {
                return Err(format!("f64 bit pattern '{body}' is not 16 hex digits"));
            }
            u64::from_str_radix(body, 16)
                .map(|bits| Value::F64(f64::from_bits(bits)))
                .map_err(|e| format!("bad f64 bit pattern '{body}': {e}"))
        }
        b'b' => match body {
            "0" => Ok(Value::Bool(false)),
            "1" => Ok(Value::Bool(true)),
            other => Err(format!("bad bool '{other}'")),
        },
        b's' => {
            let mut out = String::with_capacity(body.len());
            let mut chars = body.chars();
            while let Some(c) = chars.next() {
                if c == '%' {
                    let code: String = (0..2).filter_map(|_| chars.next()).collect();
                    match code.as_str() {
                        "25" => out.push('%'),
                        "09" => out.push('\t'),
                        "0a" => out.push('\n'),
                        other => return Err(format!("bad escape '%{other}'")),
                    }
                } else {
                    out.push(c);
                }
            }
            Ok(Value::Str(out))
        }
        tag => Err(format!("unknown field tag '{}'", tag as char)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(rows: Vec<Vec<Value>>) {
        let encoded = encode_rows(&rows);
        let decoded = decode_rows(&encoded).unwrap();
        assert_eq!(rows.len(), decoded.len());
        for (a, b) in rows.iter().flatten().zip(decoded.iter().flatten()) {
            match (a, b) {
                // Bit-exact, not PartialEq: NaN != NaN but must survive.
                (Value::F64(x), Value::F64(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn typical_keyed_rows_round_trip() {
        round_trip(vec![
            vec![
                Value::U64(7),
                Value::F64(0.1),
                Value::Bool(true),
                Value::Str("targeted".into()),
            ],
            vec![
                Value::U64(u64::MAX),
                Value::F64(-0.0),
                Value::Bool(false),
                Value::Str(String::new()),
            ],
        ]);
    }

    #[test]
    fn hostile_floats_survive_bit_exactly() {
        round_trip(vec![vec![
            Value::F64(f64::NAN),
            Value::F64(f64::from_bits(0x7ff8_0000_dead_beef)), // payloaded NaN
            Value::F64(f64::INFINITY),
            Value::F64(f64::NEG_INFINITY),
            Value::F64(f64::MIN_POSITIVE / 8.0), // subnormal
            Value::F64(0.1 + 0.2),
        ]]);
    }

    #[test]
    fn hostile_strings_survive() {
        round_trip(vec![vec![
            Value::Str("tabs\tand\nnewlines".into()),
            Value::Str("percent % signs %09 literal".into()),
        ]]);
    }

    #[test]
    fn empty_payload_is_zero_rows() {
        assert_eq!(encode_rows(&[]), "");
        assert_eq!(decode_rows("").unwrap(), Vec::<Vec<Value>>::new());
    }

    #[test]
    fn corruption_fails_loudly() {
        assert!(decode_rows("uNaN").is_err());
        assert!(decode_rows("f123").is_err());
        assert!(decode_rows("b2").is_err());
        assert!(decode_rows("s%zz").is_err());
        assert!(decode_rows("x7").is_err());
        assert!(decode_rows("u1\t").is_err());
    }
}
