//! `pollux-sweep` — a declarative, deterministic, multi-threaded
//! scenario-sweep engine for the Pollux reproduction.
//!
//! The DSN'11 paper's whole evaluation is a family of parameter sweeps
//! over `(C, Δ, μ, d, k, ν)` grids. This crate turns each of them — and
//! any beyond-paper grid — into data:
//!
//! * [`Scenario`] — a named experiment: a [`ParamGrid`] (cartesian axes
//!   over the model parameters, adversary toggles and initial
//!   conditions) plus an [`OutputKind`] (sojourns, absorption splits,
//!   overlay proportions, Monte-Carlo validations, and the large-N
//!   whole-overlay DES validation).
//! * [`SweepRunner`] — a std-only worker pool (`std::thread` + channels)
//!   that evaluates grid cells in parallel with deterministic per-cell
//!   seeding, so artefacts are **byte-identical regardless of thread
//!   count**.
//! * [`SweepReport`] — structured rows with shared TSV / JSON / text
//!   renderings and [`write_report`] for one-call artefact emission.
//! * [`registry`] — every paper artefact (`fig3`, `table1`, …,
//!   `validate_overlay`) and a set of beyond-paper grids, by name.
//!
//! # Example
//!
//! ```
//! use pollux_sweep::{registry, SweepRunner};
//!
//! let scenario = registry::find("table2").unwrap();
//! let report = SweepRunner::new().with_threads(2).run(&scenario).unwrap();
//! assert_eq!(report.rows.len(), 4); // one row per mu
//! let e_ts1 = report.f64(0, "E_T_S1").unwrap();
//! assert!((e_ts1 - 12.0).abs() < 1e-6); // mu = 0: first safe sojourn = 12
//! ```

mod cli;
pub mod codec;
mod error;
mod grid;
mod kind;
pub mod registry;
mod report;
mod runner;
mod scenario;
mod value;
mod writers;

pub use cli::{SweepArgs, USAGE};
pub use error::SweepError;
pub use grid::{ParamGrid, SweepCell, ToggleSpec};
pub use kind::OutputKind;
pub use report::SweepReport;
pub use runner::{SweepObs, SweepRunner, DEFAULT_SEED, JOURNAL_FILE};
pub use scenario::Scenario;
pub use value::Value;
pub use writers::{write_json, write_report, write_tsv, OutputFormat};
