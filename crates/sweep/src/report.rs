//! Structured sweep results and their renderings (TSV, JSON, aligned
//! text).

use crate::Value;

/// The result of running one scenario: a rectangular table of typed
/// values with named columns.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The scenario name (artefact file stem).
    pub scenario: String,
    /// Column names, key columns first.
    pub columns: Vec<String>,
    /// Data rows in canonical cell order.
    pub rows: Vec<Vec<Value>>,
}

impl SweepReport {
    /// Index of a named column.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Float content of `(row, column-name)`, when numeric.
    pub fn f64(&self, row: usize, column: &str) -> Option<f64> {
        self.rows.get(row)?.get(self.column(column)?)?.as_f64()
    }

    /// Bool content of `(row, column-name)`, when a flag.
    pub fn bool(&self, row: usize, column: &str) -> Option<bool> {
        self.rows.get(row)?.get(self.column(column)?)?.as_bool()
    }

    /// `true` when every `ok` flag in the report is set (vacuously true
    /// for reports without an `ok` column) — the validation verdict.
    pub fn all_ok(&self) -> bool {
        match self.column("ok") {
            None => true,
            Some(i) => self
                .rows
                .iter()
                .all(|row| row[i].as_bool().unwrap_or(false)),
        }
    }

    /// The tab-separated rendering (header line + one line per row).
    ///
    /// Formatting is locale-free and shortest-round-trip, so two runs of
    /// the same scenario produce byte-identical output.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join("\t"));
        out.push('\n');
        for row in &self.rows {
            let mut first = true;
            for v in row {
                if !first {
                    out.push('\t');
                }
                first = false;
                out.push_str(&v.to_string());
            }
            out.push('\n');
        }
        out
    }

    /// The JSON rendering: an object with `scenario`, `columns` and
    /// row-major `rows`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"scenario\": {},\n",
            Value::Str(self.scenario.clone()).to_json()
        ));
        out.push_str("  \"columns\": [");
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&Value::Str(c.clone()).to_json());
        }
        out.push_str("],\n  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    [");
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&v.to_json());
            }
            out.push(']');
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// An aligned, human-readable text table.
    pub fn render_text(&self) -> String {
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|v| v.to_string()).collect())
            .collect();
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{c:>width$}", width = widths[i]));
        }
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SweepReport {
        SweepReport {
            scenario: "demo".into(),
            columns: vec!["mu".into(), "E_T_S".into(), "ok".into()],
            rows: vec![
                vec![Value::F64(0.1), Value::F64(12.085), Value::Bool(true)],
                vec![Value::F64(0.3), Value::F64(11.47), Value::Bool(false)],
            ],
        }
    }

    #[test]
    fn tsv_roundtrips_shape() {
        let tsv = report().to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "mu\tE_T_S\tok");
        assert_eq!(lines[1].split('\t').count(), 3);
        assert_eq!(lines[1], "0.1\t12.085\ttrue");
    }

    #[test]
    fn json_is_structurally_sound() {
        let json = report().to_json();
        assert!(json.contains("\"scenario\": \"demo\""));
        assert!(json.contains("[0.1, 12.085, true]"));
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn column_lookup_and_verdict() {
        let r = report();
        assert_eq!(r.f64(0, "E_T_S"), Some(12.085));
        assert_eq!(r.bool(1, "ok"), Some(false));
        assert!(!r.all_ok());
        let mut ok = r.clone();
        ok.rows[1][2] = Value::Bool(true);
        assert!(ok.all_ok());
        let no_flag = SweepReport {
            scenario: "x".into(),
            columns: vec!["a".into()],
            rows: vec![],
        };
        assert!(no_flag.all_ok());
    }

    #[test]
    fn text_render_aligns_columns() {
        let text = report().render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(lines[0].len(), lines[2].len());
    }
}
