//! End-to-end tests of the sweep engine: thread-count determinism,
//! registry completeness over the paper's artefacts, and a small
//! grid-to-artefact smoke test.

use std::fs;

use pollux_sweep::{
    registry, OutputFormat, OutputKind, ParamGrid, Scenario, SweepRunner, ToggleSpec,
};

/// A scenario mixing analytical and Monte-Carlo work, small enough for
/// debug-mode CI but wide enough to exercise the worker pool.
fn mixed_scenario() -> Scenario {
    Scenario::new(
        "determinism_probe",
        "analytic + MC grid for the determinism test",
        ParamGrid::paper()
            .k(vec![1, 3])
            .mu(vec![0.1, 0.3])
            .d(vec![0.5, 0.9]),
        OutputKind::McValidation {
            replications: 400,
            sigmas: 5.0,
        },
    )
}

#[test]
fn tsv_bytes_identical_across_thread_counts() {
    let scenario = mixed_scenario();
    let base = SweepRunner::new()
        .with_threads(1)
        .run(&scenario)
        .expect("runs")
        .to_tsv();
    for threads in [2, 4, 8] {
        let tsv = SweepRunner::new()
            .with_threads(threads)
            .run(&scenario)
            .expect("runs")
            .to_tsv();
        assert_eq!(tsv, base, "thread count {threads} changed output bytes");
    }
}

#[test]
fn pooled_multi_scenario_run_is_deterministic_too() {
    let scenarios = vec![
        Scenario::new(
            "probe_sojourns",
            "analytic",
            ParamGrid::paper().mu(vec![0.0, 0.2]).d(vec![0.9]),
            OutputKind::Sojourns,
        ),
        Scenario::new(
            "probe_overlay",
            "overlay MC",
            ParamGrid::paper().mu(vec![0.25]).d(vec![0.9]),
            OutputKind::OverlayMcValidation {
                n_clusters: 30,
                runs: 3,
                sample_points: vec![0, 200, 400],
                tol_safe: 1.0,
                tol_polluted: 1.0,
            },
        ),
    ];
    let one: Vec<String> = SweepRunner::new()
        .with_threads(1)
        .run_all(&scenarios)
        .expect("runs")
        .iter()
        .map(|r| r.to_tsv())
        .collect();
    let many: Vec<String> = SweepRunner::new()
        .with_threads(6)
        .run_all(&scenarios)
        .expect("runs")
        .iter()
        .map(|r| r.to_tsv())
        .collect();
    assert_eq!(one, many);
}

#[test]
fn des_validation_bytes_identical_across_thread_counts() {
    // A scaled-down twin of the registry's `des_validate` scenario
    // (same kind, same axes, smaller overlays) so debug-mode CI proves
    // the whole-overlay DES keeps the byte-identity contract.
    let scenario = Scenario::new(
        "des_probe",
        "DES validation grid for the determinism test",
        ParamGrid::paper().mu(vec![0.1, 0.25]).d(vec![0.8, 0.9]),
        OutputKind::DesValidation {
            cluster_bits: vec![5, 7],
            lambda: 1.0,
            max_events_per_cluster: 100,
            sigmas: 6.0,
        },
    );
    let base = SweepRunner::new()
        .with_threads(1)
        .run(&scenario)
        .expect("runs");
    assert_eq!(base.rows.len(), 8); // 4 cells x 2 overlay sizes
    for threads in [2, 8] {
        let report = SweepRunner::new()
            .with_threads(threads)
            .run(&scenario)
            .expect("runs");
        assert_eq!(report.to_tsv(), base.to_tsv(), "{threads} threads");
        assert_eq!(report.to_json(), base.to_json(), "{threads} threads");
    }
}

#[test]
fn registry_covers_every_paper_artefact() {
    // The paper's evaluation consists of these artefacts; each must be
    // reachable as a named scenario.
    for name in [
        "state_space", // Figure 1
        "fig3",        // Figure 3
        "table1",      // Table I
        "table2",      // Table II
        "fig4",        // Figure 4
        "fig5",        // Figure 5
        "ablation_k",  // the k-sweep lesson
        "ablation_rules",
        "ablation_nu",
        "validate_model",   // Figure 2 validation
        "validate_overlay", // Theorem 2 validation
    ] {
        let scenario = registry::find(name)
            .unwrap_or_else(|_| panic!("paper artefact '{name}' missing from registry"));
        assert!(
            !scenario.description.is_empty(),
            "'{name}' needs a description"
        );
        assert!(
            !scenario.cells().expect("expands").is_empty(),
            "'{name}' expands to zero cells"
        );
    }
    assert_eq!(registry::paper().len(), registry::PAPER_ARTEFACTS.len());
}

#[test]
fn registry_grids_match_the_papers_tables() {
    // Figure 3: 2 initials x 2 protocols x 4 d x 7 mu = 112 cells.
    assert_eq!(registry::find("fig3").unwrap().cells().unwrap().len(), 112);
    // Table I: 4 mu x 3 d.
    assert_eq!(registry::find("table1").unwrap().cells().unwrap().len(), 12);
    // Table II: one row per mu.
    assert_eq!(registry::find("table2").unwrap().cells().unwrap().len(), 4);
    // Figure 4: 2 initials x 4 d x 7 mu.
    assert_eq!(registry::find("fig4").unwrap().cells().unwrap().len(), 56);
    // The (7, 7) caption point of Figure 1 is on the state-space grid.
    assert!(registry::find("state_space")
        .unwrap()
        .cells()
        .unwrap()
        .iter()
        .any(|c| c.params.core_size() == 7 && c.params.max_spare() == 7));
}

#[test]
fn smoke_tiny_grid_end_to_end() {
    let scenario = Scenario::new(
        "smoke",
        "tiny end-to-end grid",
        ParamGrid::paper()
            .mu(vec![0.0, 0.2])
            .d(vec![0.9])
            .toggles(vec![ToggleSpec::full()]),
        OutputKind::Sojourns,
    );
    let report = SweepRunner::new()
        .with_threads(2)
        .run(&scenario)
        .expect("runs");

    // Two cells, one row each, key + measure columns.
    assert_eq!(report.rows.len(), 2);
    assert_eq!(report.columns.len(), 10);

    // The mu = 0 cell is the paper's attack-free anchor: E(T_S) = 12,
    // E(T_P) = 0.
    assert!((report.f64(0, "E_T_S").unwrap() - 12.0).abs() < 1e-6);
    assert!(report.f64(0, "E_T_P").unwrap().abs() < 1e-9);
    // Under attack the cluster spends time polluted.
    assert!(report.f64(1, "E_T_P").unwrap() > 0.0);

    // Artefacts land on disk and round-trip.
    let dir = std::env::temp_dir().join(format!("pollux-sweep-smoke-{}", std::process::id()));
    let paths = pollux_sweep::write_report(&report, &dir, OutputFormat::Both).expect("writes");
    assert_eq!(paths.len(), 2);
    let tsv = fs::read_to_string(&paths[0]).expect("readable");
    assert_eq!(tsv, report.to_tsv());
    assert_eq!(tsv.lines().count(), 3);
    let header = tsv.lines().next().unwrap();
    assert!(header.starts_with("C\tDelta\tk\tmu\td\tnu\tadversary\tinitial"));
    assert!(header.ends_with("E_T_S\tE_T_P"));
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn sweep_reproduces_the_legacy_experiments_module() {
    // The engine must agree exactly with the hand-rolled loops it
    // replaced: compare a fig3 panel cell against pollux::experiments.
    let cells = pollux::experiments::figure3_panel(1, &pollux::InitialCondition::Delta)
        .expect("legacy panel");
    let report = SweepRunner::new()
        .run(&registry::find("fig3").unwrap())
        .expect("runs");
    let (k_col, init_col) = (
        report.column("k").unwrap(),
        report.column("initial").unwrap(),
    );
    let (d_col, mu_col) = (report.column("d").unwrap(), report.column("mu").unwrap());
    for legacy in &cells {
        let row = report
            .rows
            .iter()
            .position(|r| {
                r[k_col].as_f64() == Some(1.0)
                    && r[init_col].to_string() == "delta"
                    && r[d_col].as_f64() == Some(legacy.d)
                    && r[mu_col].as_f64() == Some(legacy.mu)
            })
            .unwrap_or_else(|| panic!("missing cell d={} mu={}", legacy.d, legacy.mu));
        assert_eq!(report.f64(row, "E_T_S").unwrap(), legacy.expected_safe);
        assert_eq!(report.f64(row, "E_T_P").unwrap(), legacy.expected_polluted);
    }
}
