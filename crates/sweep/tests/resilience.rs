//! End-to-end resilience proof for the crash-safe sweep path.
//!
//! The property at the heart of `--resume`: for ANY scenario, ANY kill
//! point (simulated by truncating the journal at an entry boundary, with
//! or without the torn tail line a real `SIGKILL` leaves behind), ANY
//! retry budget and ANY thread count, the resumed run's artefacts are
//! **byte-identical** to an uninterrupted single-thread run. Proptest
//! drives that quantifier; the deterministic tests below it pin the loud
//! failure modes (corrupt journals must name the file and refuse).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use pollux_resilience::{FaultPlan, JournalError, RetryPolicy};
use pollux_sweep::{
    OutputKind, ParamGrid, Scenario, SweepError, SweepReport, SweepRunner, JOURNAL_FILE,
};
use proptest::prelude::*;

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A fresh per-case scratch directory (proptest reuses the process, so a
/// plain pid-based name would collide across cases).
fn scratch_dir() -> PathBuf {
    let id = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("pollux-resilience-it-{}-{id}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Small, fast scenarios covering an analytic kind, a second analytic
/// schema, and a seed-consuming Monte-Carlo kind.
fn scenario(index: usize) -> Scenario {
    match index {
        0 => Scenario::new(
            "tiny",
            "sojourn grid",
            ParamGrid::paper().mu(vec![0.0, 0.2]).d(vec![0.3, 0.9]),
            OutputKind::Sojourns,
        ),
        1 => Scenario::new(
            "abs",
            "absorption",
            ParamGrid::paper().mu(vec![0.0, 0.3]).d(vec![0.9]),
            OutputKind::Absorption,
        ),
        _ => Scenario::new(
            "mc",
            "monte-carlo",
            ParamGrid::paper().mu(vec![0.1]).d(vec![0.8]),
            OutputKind::McValidation {
                replications: 120,
                sigmas: 4.0,
            },
        ),
    }
}

/// Every artefact byte a run would emit, in one comparable string.
fn artefact_bytes(reports: &[SweepReport]) -> String {
    reports
        .iter()
        .map(|r| format!("{}\n{}", r.to_tsv(), r.to_json()))
        .collect()
}

/// Truncates the journal to its header plus `keep` entries, optionally
/// leaving the torn half-line a mid-append kill produces.
fn chop_journal(dir: &Path, keep: usize, torn_tail: bool) {
    let path = dir.join(JOURNAL_FILE);
    let text = fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let keep = keep.min(lines.len().saturating_sub(1));
    let mut out = String::new();
    for line in &lines[..=keep] {
        out.push_str(line);
        out.push('\n');
    }
    if torn_tail {
        if let Some(next) = lines.get(keep + 1) {
            out.push_str(&next[..next.len() / 2]);
        }
    }
    fs::write(&path, out).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn killed_and_resumed_runs_are_byte_identical(
        scenario_index in 0usize..3,
        kill_after in 0usize..5,
        torn_tail in any::<bool>(),
        retries in 0u32..3,
        threads in 1usize..4,
        seed in (0usize..3).prop_map(|i| [7u64, 42, 20_110_627][i]),
    ) {
        let s = scenario(scenario_index);

        // The oracle: an uninterrupted, unjournaled single-thread run.
        let clean = SweepRunner::new()
            .with_threads(1)
            .with_seed(seed)
            .run_all(std::slice::from_ref(&s))
            .unwrap();
        let want = artefact_bytes(&clean);

        // A journaled run writes the same bytes…
        let dir = scratch_dir();
        let journaled = SweepRunner::new()
            .with_threads(threads)
            .with_seed(seed)
            .with_journal_dir(&dir)
            .run_all(std::slice::from_ref(&s))
            .unwrap();
        prop_assert_eq!(&artefact_bytes(&journaled), &want);

        // …and after a kill at an arbitrary point (any completed-entry
        // count, with or without a torn tail line), resuming still does.
        chop_journal(&dir, kill_after, torn_tail);
        let resumed = SweepRunner::new()
            .with_threads(threads)
            .with_seed(seed)
            .with_journal_dir(&dir)
            .with_retry(RetryPolicy::new(retries + 1))
            .run_all(std::slice::from_ref(&s))
            .unwrap();
        prop_assert_eq!(&artefact_bytes(&resumed), &want);

        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn resume_replays_journaled_cells_without_recomputing() {
    // After a complete journaled run, every cell is on disk. Resuming
    // with a plan that panics EVERY slot on its only attempt can only
    // succeed if no cell is ever re-evaluated.
    let s = scenario(0);
    let dir = scratch_dir();
    let first = SweepRunner::new()
        .with_threads(2)
        .with_journal_dir(&dir)
        .run_all(std::slice::from_ref(&s))
        .unwrap();

    let sabotage = FaultPlan {
        panic_cells: (0..4).map(|slot| (slot, 1)).collect(),
        exit_after_cells: None,
    };
    let resumed = SweepRunner::new()
        .with_threads(2)
        .with_journal_dir(&dir)
        .with_retry(RetryPolicy::none())
        .with_fault_plan(sabotage)
        .run_all(std::slice::from_ref(&s))
        .unwrap();
    assert_eq!(artefact_bytes(&resumed), artefact_bytes(&first));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_journal_refuses_loudly_and_names_the_file() {
    let s = scenario(0);
    let dir = scratch_dir();
    SweepRunner::new()
        .with_threads(1)
        .with_journal_dir(&dir)
        .run_all(std::slice::from_ref(&s))
        .unwrap();

    // Flip a committed entry line into junk that is still a full line —
    // this is tampering/bit-rot, not a crash signature, and must refuse.
    let path = dir.join(JOURNAL_FILE);
    let text = fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    assert!(lines.len() >= 2, "journaled run produced no entries");
    lines[1] = lines[1].replacen('{', "[", 1);
    fs::write(&path, lines.join("\n") + "\n").unwrap();

    let err = SweepRunner::new()
        .with_threads(1)
        .with_journal_dir(&dir)
        .run_all(std::slice::from_ref(&s))
        .unwrap_err();
    match &err {
        SweepError::Journal(JournalError::Corrupt { path: p, line, .. }) => {
            assert_eq!(p, &path);
            assert_eq!(*line, 2);
        }
        other => panic!("expected a journal corruption error, got: {other}"),
    }
    let msg = err.to_string();
    assert!(
        msg.contains(JOURNAL_FILE) && msg.contains("refusing to resume"),
        "message must name the file and refuse: {msg}"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_transient_panic_heals_and_persistent_panic_reports() {
    let s = scenario(0);

    let clean = SweepRunner::new()
        .with_threads(1)
        .run_all(std::slice::from_ref(&s))
        .unwrap();

    // One first-attempt panic: deterministic retry absorbs it without
    // changing a byte.
    let healed = SweepRunner::new()
        .with_threads(2)
        .with_fault_plan(FaultPlan::parse("panic-cell=1@1").unwrap())
        .with_retry(RetryPolicy::new(2))
        .run_all(std::slice::from_ref(&s))
        .unwrap();
    assert_eq!(artefact_bytes(&healed), artefact_bytes(&clean));

    // Panic on every attempt: the run fails with a structured report
    // naming the cell, scenario and attempt count.
    let err = SweepRunner::new()
        .with_threads(2)
        .with_fault_plan(FaultPlan::parse("panic-cell=1@1,panic-cell=1@2").unwrap())
        .with_retry(RetryPolicy::new(2))
        .run_all(std::slice::from_ref(&s))
        .unwrap_err();
    let SweepError::Cell(failure) = &err else {
        panic!("expected a structured cell failure, got: {err}");
    };
    assert_eq!(failure.scenario, "tiny");
    assert_eq!(failure.cell_index, 1);
    assert_eq!(failure.attempts, 2);
}
