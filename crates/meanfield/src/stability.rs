//! Jacobian-eigenvalue stability classification of fluid equilibria.
//!
//! The dynamics Jacobian at a fixed point `π*` is
//! `J = λ·(P_regen(μ_eff)ᵀ − I + u·wᵀ)` (see the equilibrium module
//! for the rank-one coupling term). Mass conservation forces one
//! structural eigenvalue at zero — columns of `J` sum to zero, with or
//! without coupling, because both `P_regen` rows and the `C₁` rows sum
//! to their respective invariants. Classification therefore drops the
//! eigenvalue nearest zero and reads the spectral abscissa off the
//! rest: negative means the equilibrium attracts on the simplex,
//! positive means the adversary's feedback has destabilized it.
//!
//! Two paths, matching two cost regimes:
//!
//! * [`FluidModel::classify_equilibrium`] — full dense spectrum (the
//!   in-crate QR kernel), exact abscissa, used by sweep cells and the
//!   bifurcation scans.
//! * [`FluidModel::relaxation_gap`] — a capped, deflated power
//!   iteration on the lazy embedded chain `(P+I)/2`, giving a
//!   conservative lower bound on the decay rate in bounded
//!   deterministic time. This is what keeps the planet-scale what-if
//!   path under a millisecond.

use crate::eig::{eigenvalues, Complex};
use crate::error::MeanFieldError;
use crate::fluid::{Equilibrium, FluidModel};
use pollux_linalg::Matrix;

/// Verdict of the spectral test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stability {
    /// Spectral abscissa clearly negative: perturbations decay.
    Stable,
    /// Abscissa within tolerance of zero: at (or numerically at) a
    /// bifurcation.
    Marginal,
    /// Abscissa clearly positive: the equilibrium repels.
    Unstable,
}

/// Result of [`FluidModel::classify_equilibrium`].
#[derive(Debug, Clone)]
pub struct StabilityReport {
    /// The verdict.
    pub classification: Stability,
    /// Spectral abscissa (max real part over non-structural modes), in
    /// the model's rate units; `−abscissa` is the asymptotic decay
    /// rate when stable.
    pub abscissa: f64,
    /// Modulus of the dropped structural eigenvalue — a diagnostic
    /// that should sit at rounding level.
    pub structural_mode: f64,
    /// The full spectrum (rate units), structural mode included.
    pub eigenvalues: Vec<Complex>,
}

/// Relative tolerance (vs the event rate) for calling an abscissa zero.
const MARGINAL_REL_TOL: f64 = 1e-7;

impl FluidModel {
    /// Classifies an equilibrium by the spectrum of the dynamics
    /// Jacobian (dense QR path; exact up to the eigenvalue kernel's
    /// accuracy).
    ///
    /// # Errors
    ///
    /// Propagates [`MeanFieldError::NonConvergence`] from the QR
    /// kernel (not observed on this family of matrices in practice).
    pub fn classify_equilibrium(
        &self,
        eq: &Equilibrium,
    ) -> Result<StabilityReport, MeanFieldError> {
        let mut jac = self.coupled_embedded_jacobian(&eq.pi);
        scale_in_place(&mut jac, self.rate());
        let eigs = eigenvalues(&jac)?;
        self.obs().eig_solve();

        // Drop the structural zero mode (mass conservation).
        let structural_idx = eigs
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.abs().partial_cmp(&b.abs()).expect("finite eigenvalues"))
            .map(|(i, _)| i)
            .expect("non-empty spectrum");
        let structural_mode = eigs[structural_idx].abs();
        let abscissa = eigs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != structural_idx)
            .map(|(_, e)| e.re)
            .fold(f64::NEG_INFINITY, f64::max);

        let tol = MARGINAL_REL_TOL * self.rate();
        let classification = if abscissa < -tol {
            Stability::Stable
        } else if abscissa > tol {
            Stability::Unstable
        } else {
            Stability::Marginal
        };
        Ok(StabilityReport {
            classification,
            abscissa,
            structural_mode,
            eigenvalues: eigs,
        })
    }

    /// A conservative lower bound on the relaxation (decay) rate of
    /// the linearized dynamics at `eq`, from `iterations` deflated
    /// power-iteration steps on the lazy embedded chain `(P + I)/2`.
    ///
    /// The lazy chain's spectrum is `(1 + λ)/2`, so its subdominant
    /// growth factor `θ` bounds every non-structural eigenvalue of the
    /// original chain by `Re λ ≤ 2θ − 1`, giving the dynamics a decay
    /// rate of at least `2·rate·(1 − θ)`. Work is fixed (`iterations`
    /// sparse applies), so the what-if path stays on budget regardless
    /// of conditioning; the price is an estimate, not an exact
    /// abscissa.
    ///
    /// The per-step growth factors converge to θ geometrically in the
    /// subdominant spectral ratio, which sits near 1 for these chains;
    /// a plain tail average would need hundreds of applies to shed the
    /// transient bias. Instead the estimate applies Aitken Δ² to
    /// block-averaged log factors (blocks of 8 smooth complex-pair
    /// oscillation) and keeps the extrapolation only when it moves the
    /// raw tail estimate toward 1 while staying a valid growth factor —
    /// the direction monotone burn-off guarantees. Otherwise the raw
    /// second-half geometric mean is used unchanged.
    #[must_use]
    pub fn relaxation_gap(&self, eq: &Equilibrium, iterations: u32) -> f64 {
        let n = self.dim();
        let mu = eq.mu_eff;
        // Deterministic perturbation with zero total mass: regeneration
        // profile minus the equilibrium.
        let mut z: Vec<f64> = self
            .alpha()
            .iter()
            .zip(&eq.pi)
            .map(|(a, p)| a - p)
            .collect();
        let norm0 = sup(&z);
        if norm0 < 1e-280 {
            // α is (numerically) the equilibrium; perturb one
            // coordinate pair instead.
            z[0] = 1.0;
            z[n - 1] = -1.0;
        }
        normalize(&mut z);

        let mut out = vec![0.0; n];
        // z is re-normalized every step, so each post-apply norm is a
        // per-step growth factor.
        let mut log_norms = Vec::with_capacity(iterations as usize);
        for it in 0..iterations {
            // z ← z·(P+I)/2, deflating the conserved-mass direction.
            self.apply_embedded_at_mu(&z, mu, &mut out);
            for (o, &zi) in out.iter_mut().zip(&z) {
                *o = 0.5 * (*o + zi);
            }
            let drift: f64 = out.iter().sum();
            if drift != 0.0 {
                for (o, &p) in out.iter_mut().zip(&eq.pi) {
                    *o -= drift * p;
                }
            }
            std::mem::swap(&mut z, &mut out);
            let norm = sup(&z);
            if norm < 1e-280 {
                // Perturbation fully decayed: the gap is at least the
                // rate itself.
                self.obs().power_iterations(u64::from(it + 1));
                return self.rate();
            }
            normalize(&mut z);
            log_norms.push(norm.ln());
        }
        self.obs().power_iterations(u64::from(iterations));

        // Raw estimate: geometric mean over the second half.
        let half = log_norms.len() / 2;
        let tail = &log_norms[half..];
        if tail.is_empty() {
            return 0.0;
        }
        let raw = tail.iter().sum::<f64>() / tail.len() as f64;

        // Aitken Δ² on the last three blocks of 8 log factors. Burn-off
        // pushes block means up toward ln θ, so a trustworthy
        // extrapolation lands in [raw, 0]; anything else (oscillation,
        // a flat denominator) falls back to the raw mean.
        const BLOCK: usize = 8;
        let mut log_theta = raw;
        if log_norms.len() >= 3 * BLOCK {
            let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
            let m = log_norms.len();
            let a0 = mean(&log_norms[m - 3 * BLOCK..m - 2 * BLOCK]);
            let a1 = mean(&log_norms[m - 2 * BLOCK..m - BLOCK]);
            let a2 = mean(&log_norms[m - BLOCK..]);
            let denom = a2 - 2.0 * a1 + a0;
            if denom.abs() > 1e-12 {
                let extrapolated = a2 - (a2 - a1).powi(2) / denom;
                if extrapolated.is_finite() && extrapolated >= raw && extrapolated <= 0.0 {
                    log_theta = extrapolated;
                }
            }
        }
        let theta = log_theta.exp().clamp(0.0, 1.0);
        2.0 * self.rate() * (1.0 - theta)
    }
}

fn scale_in_place(m: &mut Matrix, s: f64) {
    let n = m.rows();
    for i in 0..n {
        for v in m.row_mut(i) {
            *v *= s;
        }
    }
}

fn sup(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, x| m.max(x.abs()))
}

fn normalize(v: &mut [f64]) {
    let s = sup(v);
    if s > 0.0 {
        for x in v.iter_mut() {
            *x /= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::Coupling;
    use pollux::{InitialCondition, ModelParams};

    /// Small space (Δ=3 → 50 states) keeps the dense QR fast in debug.
    fn small_model() -> FluidModel {
        let params = ModelParams::new(4, 3, 1).unwrap().with_mu(0.2).with_d(0.9);
        FluidModel::build(&params, &InitialCondition::Delta).unwrap()
    }

    #[test]
    fn open_equilibrium_is_stable_with_a_structural_zero_mode() {
        let model = small_model();
        let eq = model.open_equilibrium().unwrap();
        let report = model.classify_equilibrium(&eq).unwrap();
        assert_eq!(report.classification, Stability::Stable);
        assert!(report.abscissa < 0.0);
        assert!(
            report.structural_mode < 1e-8,
            "structural mode {}",
            report.structural_mode
        );
        assert_eq!(report.eigenvalues.len(), model.dim());
    }

    #[test]
    fn coupled_equilibria_classify_without_error() {
        let model = small_model()
            .with_coupling(Coupling::RoutingBias { amplification: 2.0 })
            .unwrap();
        for eq in model.equilibria().unwrap() {
            let report = model.classify_equilibrium(&eq).unwrap();
            assert!(report.structural_mode < 1e-8);
            assert!(report.abscissa.is_finite());
        }
    }

    #[test]
    fn relaxation_gap_is_a_lower_bound_on_the_exact_decay_rate() {
        let model = small_model();
        let eq = model.open_equilibrium().unwrap();
        let report = model.classify_equilibrium(&eq).unwrap();
        let exact_decay = -report.abscissa;
        let gap = model.relaxation_gap(&eq, 256);
        assert!(gap > 0.0, "gap {gap}");
        // Conservative bound with a small slack for the finite-sample
        // θ estimate; also sanity-check it lands in the right decade.
        assert!(
            gap <= exact_decay * 1.05 + 1e-9,
            "estimate {gap} exceeds exact decay {exact_decay}"
        );
        assert!(
            gap >= 0.05 * exact_decay,
            "estimate {gap} far below exact decay {exact_decay}"
        );
    }

    #[test]
    fn relaxation_gap_scales_linearly_with_the_event_rate() {
        let model = small_model();
        let eq = model.open_equilibrium().unwrap();
        let g1 = model.relaxation_gap(&eq, 128);
        let model2 = small_model().with_rate(3.0).unwrap();
        let eq2 = model2.open_equilibrium().unwrap();
        let g3 = model2.relaxation_gap(&eq2, 128);
        assert!((g3 - 3.0 * g1).abs() < 1e-9 * g3.max(1.0));
    }
}
