//! Control-theoretic defense tuning: minimal induced-churn rate.
//!
//! The `defense_frontier` question — "how much defensive churn is
//! enough to push the polluted fraction under a threshold?" — used to
//! be answered by evaluating the full exact-chain battery on a fixed
//! rate grid. The mean-field layer turns it into a one-dimensional
//! root-finding problem: the open-coupling fluid equilibrium prices a
//! candidate rate in one sparse solve, and bisection on the rate
//! brackets the frontier to any tolerance with ~log₂(range/tol)
//! evaluations. The returned rate is then verified once against the
//! exact chain, so the speedup costs no trust: the fluid stationary
//! fractions coincide with `ClusterAnalysis::steady_state_fractions`
//! by the renewal identity, making the verification a consistency
//! check rather than an approximation bound.
//!
//! Monotonicity (more induced churn → less pollution) is the paper's
//! Rule-2 mechanism and holds across the explored grids; the outcome
//! records the bracket endpoints so a non-monotone surprise would show
//! up as a failed verification, not a silent wrong answer.

use crate::error::MeanFieldError;
use crate::fluid::FluidModel;
use crate::obs::{MeanFieldObs, MeanFieldObsSnapshot};
use pollux::{ClusterAnalysis, ClusterChain, InitialCondition, ModelParams};
use pollux_defense::InducedChurn;
use std::sync::Arc;

/// Slack allowed when the exact chain re-checks the fluid answer; the
/// two paths agree to solver tolerance, so this is generous.
const VERIFY_TOL: f64 = 1e-7;
/// Hard cap on bisection steps (belt and braces; ~50 suffices for any
/// sane tolerance).
const MAX_BISECTIONS: u32 = 200;

/// Configuration of [`tune_induced_churn`].
#[derive(Debug, Clone, Copy)]
pub struct TuningConfig {
    /// Acceptable stationary polluted fraction.
    pub threshold: f64,
    /// Upper end of the searched rate range (must stay below 1, the
    /// domain bound of [`InducedChurn`]).
    pub max_rate: f64,
    /// Bracket width at which bisection stops.
    pub rate_tol: f64,
}

/// Result of [`tune_induced_churn`].
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// Stationary polluted fraction with no defense at all.
    pub baseline_polluted: f64,
    /// The threshold that was tuned against.
    pub threshold: f64,
    /// `true` when some rate in `[0, max_rate]` meets the threshold.
    pub found: bool,
    /// The tuned rate: minimal-to-tolerance when `found`, otherwise
    /// `max_rate` (whose prediction still fails the threshold).
    pub rate: f64,
    /// Mean-field polluted fraction at `rate`.
    pub polluted_at_rate: f64,
    /// Fluid-equilibrium evaluations spent (baseline + bracket +
    /// bisection).
    pub evaluations: u64,
    /// Exact-chain polluted fraction at `rate` (the verification).
    pub verified_polluted: f64,
    /// `true` when the exact chain agrees with the fluid prediction at
    /// `rate` to `VERIFY_TOL` (10⁻⁷) *and* confirms the threshold
    /// verdict.
    pub verified_ok: bool,
    /// Work counters aggregated across every probe solve (all zero
    /// unless the `metrics` cargo feature is enabled).
    pub obs: MeanFieldObsSnapshot,
}

/// Minimal induced-churn rate whose stationary polluted fraction meets
/// `cfg.threshold`, by mean-field-guided bisection, verified against
/// the exact chain at the returned rate.
///
/// # Errors
///
/// * [`MeanFieldError::InvalidConfig`] for a threshold outside (0, 1),
///   `max_rate` outside (0, 1), or a non-positive `rate_tol`.
/// * Propagated solver errors from the fluid or exact path.
pub fn tune_induced_churn(
    params: &ModelParams,
    initial: &InitialCondition,
    cfg: &TuningConfig,
) -> Result<TuningOutcome, MeanFieldError> {
    if !(cfg.threshold > 0.0 && cfg.threshold < 1.0) {
        return Err(MeanFieldError::InvalidConfig(format!(
            "threshold must lie in (0, 1), got {}",
            cfg.threshold
        )));
    }
    if !(cfg.max_rate > 0.0 && cfg.max_rate < 1.0) {
        return Err(MeanFieldError::InvalidConfig(format!(
            "max_rate must lie in (0, 1), got {}",
            cfg.max_rate
        )));
    }
    if !(cfg.rate_tol > 0.0 && cfg.rate_tol.is_finite()) {
        return Err(MeanFieldError::InvalidConfig(format!(
            "rate_tol must be positive, got {}",
            cfg.rate_tol
        )));
    }

    let obs = Arc::new(MeanFieldObs::new());
    let mut evaluations = 0u64;
    let mut probe = |rate: f64| -> Result<f64, MeanFieldError> {
        let defense =
            InducedChurn::new(rate).map_err(|e| MeanFieldError::InvalidConfig(e.to_string()))?;
        let model = FluidModel::build_with_defense(params, &defense, initial)?
            .sharing_obs(Arc::clone(&obs));
        model.obs().tuning_eval();
        evaluations += 1;
        Ok(model.open_equilibrium()?.polluted_fraction)
    };

    let baseline_polluted = probe(0.0)?;
    let (found, rate, polluted_at_rate) = if baseline_polluted <= cfg.threshold {
        (true, 0.0, baseline_polluted)
    } else {
        let at_max = probe(cfg.max_rate)?;
        if at_max > cfg.threshold {
            (false, cfg.max_rate, at_max)
        } else {
            // Invariant: polluted(lo) > threshold ≥ polluted(hi).
            let mut lo = 0.0f64;
            let mut hi = cfg.max_rate;
            let mut at_hi = at_max;
            let mut steps = 0u32;
            while hi - lo > cfg.rate_tol && steps < MAX_BISECTIONS {
                steps += 1;
                let mid = 0.5 * (lo + hi);
                let at_mid = probe(mid)?;
                if at_mid <= cfg.threshold {
                    hi = mid;
                    at_hi = at_mid;
                } else {
                    lo = mid;
                }
            }
            (true, hi, at_hi)
        }
    };

    // One exact-chain evaluation at the answer.
    let defense =
        InducedChurn::new(rate).map_err(|e| MeanFieldError::InvalidConfig(e.to_string()))?;
    let chain = ClusterChain::build_with_defense(params, &defense);
    let analysis = ClusterAnalysis::from_chain(chain, initial.clone())?;
    let (_, verified_polluted) = analysis.steady_state_fractions()?;
    let agrees = (verified_polluted - polluted_at_rate).abs() <= VERIFY_TOL;
    let verdict_holds = if found {
        verified_polluted <= cfg.threshold + VERIFY_TOL
    } else {
        verified_polluted > cfg.threshold - VERIFY_TOL
    };

    Ok(TuningOutcome {
        baseline_polluted,
        threshold: cfg.threshold,
        found,
        rate,
        polluted_at_rate,
        evaluations,
        verified_polluted,
        verified_ok: agrees && verdict_holds,
        obs: obs.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams::paper_defaults().with_mu(0.25).with_d(0.9)
    }

    #[test]
    fn bisection_finds_a_verified_frontier_rate() {
        let cfg = TuningConfig {
            threshold: 0.01,
            max_rate: 0.5,
            rate_tol: 0.005,
        };
        let out = tune_induced_churn(&params(), &InitialCondition::Delta, &cfg).unwrap();
        assert!(out.found, "no frontier inside [0, 0.5]: {out:?}");
        assert!(out.baseline_polluted > cfg.threshold);
        assert!(out.polluted_at_rate <= cfg.threshold);
        assert!(out.rate > 0.0 && out.rate <= cfg.max_rate);
        assert!(out.verified_ok, "exact chain disagrees: {out:?}");
        // log2(0.5 / 0.005) ≈ 7 bisections + baseline + bracket.
        assert!(
            out.evaluations <= 12,
            "bisection spent {} evaluations",
            out.evaluations
        );
    }

    #[test]
    fn minimality_rate_is_tight_to_tolerance() {
        let cfg = TuningConfig {
            threshold: 0.01,
            max_rate: 0.5,
            rate_tol: 0.005,
        };
        let out = tune_induced_churn(&params(), &InitialCondition::Delta, &cfg).unwrap();
        // A rate one tolerance below the answer must fail the threshold
        // (this is what "minimal to tolerance" means).
        let below = (out.rate - cfg.rate_tol).max(0.0);
        if below > 0.0 {
            let defense = InducedChurn::new(below).unwrap();
            let model =
                FluidModel::build_with_defense(&params(), &defense, &InitialCondition::Delta)
                    .unwrap();
            let polluted = model.open_equilibrium().unwrap().polluted_fraction;
            assert!(
                polluted > cfg.threshold,
                "rate {below} already meets the threshold ({polluted})"
            );
        }
    }

    #[test]
    fn trivial_and_impossible_thresholds_short_circuit() {
        // A threshold the undefended system already meets.
        let easy = TuningConfig {
            threshold: 0.9,
            max_rate: 0.5,
            rate_tol: 0.01,
        };
        let out = tune_induced_churn(&params(), &InitialCondition::Delta, &easy).unwrap();
        assert!(out.found);
        assert_eq!(out.rate, 0.0);
        assert_eq!(out.evaluations, 1);
        assert!(out.verified_ok);

        // A threshold nothing in range achieves.
        let hard = TuningConfig {
            threshold: 1e-12,
            max_rate: 0.05,
            rate_tol: 0.01,
        };
        let out = tune_induced_churn(&params(), &InitialCondition::Delta, &hard).unwrap();
        assert!(!out.found);
        assert_eq!(out.rate, 0.05);
        assert!(out.verified_ok);
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let bad = |threshold, max_rate, rate_tol| TuningConfig {
            threshold,
            max_rate,
            rate_tol,
        };
        for cfg in [
            bad(0.0, 0.5, 0.01),
            bad(1.5, 0.5, 0.01),
            bad(0.01, 1.5, 0.01),
            bad(0.01, 0.0, 0.01),
            bad(0.01, 0.5, 0.0),
        ] {
            assert!(tune_induced_churn(&params(), &InitialCondition::Delta, &cfg).is_err());
        }
    }
}
