//! `SolverObs`-style counters for the mean-field layer.
//!
//! Same contract as the rest of the workspace's instrumentation
//! (`pollux-obs`): recording is a constant no-op unless the `metrics`
//! cargo feature is enabled, counters never influence control flow, and
//! reading them back never perturbs results — so observed runs stay
//! byte-identical to unobserved ones.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counter slots of [`MeanFieldObs`], indexed by the constants below.
const SLOTS: usize = 9;

const EQUILIBRIUM_SOLVES: usize = 0;
const POWER_ITERATIONS: usize = 1;
const NEWTON_ITERATIONS: usize = 2;
const NEWTON_SOLVES: usize = 3;
const ODE_STEPS: usize = 4;
const ODE_REJECTED_STEPS: usize = 5;
const RHS_EVALS: usize = 6;
const EIG_SOLVES: usize = 7;
const TUNING_EVALS: usize = 8;

/// Monotonic counters over every mean-field solve issued through one
/// [`FluidModel`](crate::FluidModel) (clones share the instrument).
#[derive(Debug, Default)]
pub struct MeanFieldObs {
    counts: [AtomicU64; SLOTS],
}

impl MeanFieldObs {
    /// A fresh instrument with all counters at zero.
    pub fn new() -> Self {
        MeanFieldObs::default()
    }

    #[inline]
    fn add(&self, slot: usize, n: u64) {
        if !pollux_obs::METRICS_ENABLED {
            return;
        }
        self.counts[slot].fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn equilibrium_solve(&self) {
        self.add(EQUILIBRIUM_SOLVES, 1);
    }

    pub(crate) fn power_iterations(&self, n: u64) {
        self.add(POWER_ITERATIONS, n);
    }

    pub(crate) fn newton_iteration(&self) {
        self.add(NEWTON_ITERATIONS, 1);
    }

    pub(crate) fn newton_solve(&self) {
        self.add(NEWTON_SOLVES, 1);
    }

    pub(crate) fn ode_steps(&self, accepted: u64, rejected: u64) {
        self.add(ODE_STEPS, accepted);
        self.add(ODE_REJECTED_STEPS, rejected);
    }

    pub(crate) fn rhs_evals(&self, n: u64) {
        self.add(RHS_EVALS, n);
    }

    pub(crate) fn eig_solve(&self) {
        self.add(EIG_SOLVES, 1);
    }

    pub(crate) fn tuning_eval(&self) {
        self.add(TUNING_EVALS, 1);
    }

    /// A point-in-time copy of every counter (all zero unless the
    /// `metrics` cargo feature is on).
    pub fn snapshot(&self) -> MeanFieldObsSnapshot {
        let read = |slot: usize| self.counts[slot].load(Ordering::Relaxed);
        MeanFieldObsSnapshot {
            equilibrium_solves: read(EQUILIBRIUM_SOLVES),
            power_iterations: read(POWER_ITERATIONS),
            newton_iterations: read(NEWTON_ITERATIONS),
            newton_solves: read(NEWTON_SOLVES),
            ode_steps: read(ODE_STEPS),
            ode_rejected_steps: read(ODE_REJECTED_STEPS),
            rhs_evals: read(RHS_EVALS),
            eig_solves: read(EIG_SOLVES),
            tuning_evals: read(TUNING_EVALS),
        }
    }
}

/// A point-in-time copy of the [`MeanFieldObs`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeanFieldObsSnapshot {
    /// Equilibrium solves completed (any method).
    pub equilibrium_solves: u64,
    /// Total power-method iterations (stationary + spectral-gap).
    pub power_iterations: u64,
    /// Damped-Newton iterations across all equilibrium refinements.
    pub newton_iterations: u64,
    /// Dense LU solves issued by the Newton corrector.
    pub newton_solves: u64,
    /// Accepted ODE steps (fixed-step counts every step).
    pub ode_steps: u64,
    /// Steps the adaptive controller rejected and re-tried.
    pub ode_rejected_steps: u64,
    /// Right-hand-side evaluations across all integrations.
    pub rhs_evals: u64,
    /// Dense eigenvalue decompositions (stability classification).
    pub eig_solves: u64,
    /// Fluid evaluations spent inside defense-tuning bisection.
    pub tuning_evals: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_record_only_with_the_feature() {
        let obs = MeanFieldObs::new();
        obs.equilibrium_solve();
        obs.power_iterations(7);
        obs.ode_steps(3, 1);
        let snap = obs.snapshot();
        if pollux_obs::METRICS_ENABLED {
            assert_eq!(snap.equilibrium_solves, 1);
            assert_eq!(snap.power_iterations, 7);
            assert_eq!(snap.ode_steps, 3);
            assert_eq!(snap.ode_rejected_steps, 1);
        } else {
            assert_eq!(snap, MeanFieldObsSnapshot::default());
        }
    }
}
