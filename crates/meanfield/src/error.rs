//! Error type of the mean-field layer.

use pollux_linalg::LinalgError;
use pollux_markov::MarkovError;
use std::fmt;

/// Everything that can go wrong while building or solving a fluid model.
#[derive(Debug, Clone, PartialEq)]
pub enum MeanFieldError {
    /// A linear-algebra kernel failed (singular Jacobian, solver
    /// breakdown, dimension mismatch).
    Linalg(LinalgError),
    /// A chain-level operation failed (invalid initial distribution,
    /// malformed transition matrix).
    Markov(MarkovError),
    /// An iterative method (power iteration, damped Newton, adaptive
    /// integration) exhausted its budget before reaching tolerance.
    NonConvergence {
        /// Which method gave up.
        what: &'static str,
        /// Iterations / steps spent before giving up.
        iterations: u64,
        /// The residual (or error estimate) it stalled at.
        residual: f64,
    },
    /// A configuration value outside its documented domain.
    InvalidConfig(String),
}

impl fmt::Display for MeanFieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeanFieldError::Linalg(e) => write!(f, "linear algebra: {e}"),
            MeanFieldError::Markov(e) => write!(f, "markov chain: {e}"),
            MeanFieldError::NonConvergence {
                what,
                iterations,
                residual,
            } => write!(
                f,
                "{what} did not converge within {iterations} iterations (residual {residual:e})"
            ),
            MeanFieldError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for MeanFieldError {}

impl From<LinalgError> for MeanFieldError {
    fn from(e: LinalgError) -> Self {
        MeanFieldError::Linalg(e)
    }
}

impl From<MarkovError> for MeanFieldError {
    fn from(e: MarkovError) -> Self {
        MeanFieldError::Markov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MeanFieldError::NonConvergence {
            what: "power iteration",
            iterations: 10,
            residual: 1e-3,
        };
        let msg = e.to_string();
        assert!(msg.contains("power iteration") && msg.contains("10"));
        assert!(MeanFieldError::InvalidConfig("rate".into())
            .to_string()
            .contains("rate"));
    }
}
