//! Deterministic ODE integrators for the fluid system.
//!
//! Two options, both allocation-frugal and bit-reproducible:
//!
//! * [`rk4_fixed`] — classical fourth-order Runge–Kutta with a fixed
//!   step count. The workhorse for validation runs: byte-identical
//!   output for identical inputs, O(h⁴) global error (pinned by a
//!   step-halving test).
//! * [`bs32_adaptive`] — the Bogacki–Shampine 3(2) embedded pair with
//!   FSAL reuse and a deterministic PI-free step controller. Used when
//!   the trajectory has a fast transient followed by a long slow tail
//!   (e.g. settling into a near-degenerate equilibrium).
//!
//! The integrators are generic over the right-hand side so the unit
//! tests can drive them with scalar ODEs of known solution.

use crate::error::MeanFieldError;
use crate::fluid::FluidModel;

/// Result of one integration run.
#[derive(Debug, Clone)]
pub struct OdeRun {
    /// Final state at `t_end`.
    pub y: Vec<f64>,
    /// Accepted steps.
    pub steps: u64,
    /// Rejected (re-tried) steps; always 0 for the fixed-step path.
    pub rejected: u64,
    /// Right-hand-side evaluations.
    pub rhs_evals: u64,
}

/// Tolerances and budget for [`bs32_adaptive`].
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveOptions {
    /// Relative tolerance per component.
    pub rel_tol: f64,
    /// Absolute tolerance per component.
    pub abs_tol: f64,
    /// First step attempt (clipped to the interval).
    pub initial_dt: f64,
    /// Hard cap on attempted steps before giving up.
    pub max_steps: u64,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            rel_tol: 1e-8,
            abs_tol: 1e-10,
            initial_dt: 1e-2,
            max_steps: 1_000_000,
        }
    }
}

/// Classical RK4 with exactly `steps` equal steps from `0` to `t_end`.
///
/// # Panics
///
/// Panics when `steps == 0` or `t_end` is not finite and positive —
/// caller-side configuration errors, not data-dependent conditions.
pub fn rk4_fixed<F>(mut rhs: F, y0: &[f64], t_end: f64, steps: u64) -> OdeRun
where
    F: FnMut(&[f64], &mut [f64]),
{
    assert!(steps > 0, "rk4_fixed needs at least one step");
    assert!(
        t_end.is_finite() && t_end > 0.0,
        "rk4_fixed needs a finite positive horizon"
    );
    let n = y0.len();
    let h = t_end / steps as f64;
    let mut y = y0.to_vec();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut stage = vec![0.0; n];

    for _ in 0..steps {
        rhs(&y, &mut k1);
        for i in 0..n {
            stage[i] = y[i] + 0.5 * h * k1[i];
        }
        rhs(&stage, &mut k2);
        for i in 0..n {
            stage[i] = y[i] + 0.5 * h * k2[i];
        }
        rhs(&stage, &mut k3);
        for i in 0..n {
            stage[i] = y[i] + h * k3[i];
        }
        rhs(&stage, &mut k4);
        for i in 0..n {
            y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }

    OdeRun {
        y,
        steps,
        rejected: 0,
        rhs_evals: 4 * steps,
    }
}

/// Bogacki–Shampine 3(2) adaptive integration from `0` to `t_end`.
///
/// Third-order propagation with an embedded second-order error
/// estimate; the step controller is the standard
/// `h ← h · clamp(0.9·err^(−1/3), 0.2, 5)` with the final step clipped
/// to land exactly on `t_end`. Deterministic: no randomness, no
/// wall-clock input.
///
/// # Errors
///
/// * [`MeanFieldError::InvalidConfig`] for non-positive tolerances,
///   horizon, or initial step.
/// * [`MeanFieldError::NonConvergence`] when `max_steps` attempts do
///   not reach `t_end`.
pub fn bs32_adaptive<F>(
    mut rhs: F,
    y0: &[f64],
    t_end: f64,
    opts: &AdaptiveOptions,
) -> Result<OdeRun, MeanFieldError>
where
    F: FnMut(&[f64], &mut [f64]),
{
    if !(t_end.is_finite() && t_end > 0.0) {
        return Err(MeanFieldError::InvalidConfig(format!(
            "adaptive horizon must be finite and positive, got {t_end}"
        )));
    }
    if !(opts.rel_tol > 0.0 && opts.abs_tol > 0.0 && opts.initial_dt > 0.0) {
        return Err(MeanFieldError::InvalidConfig(
            "adaptive tolerances and initial step must be positive".into(),
        ));
    }

    let n = y0.len();
    let mut y = y0.to_vec();
    let mut t = 0.0;
    let mut h = opts.initial_dt.min(t_end);
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut stage = vec![0.0; n];
    let mut y_next = vec![0.0; n];

    let mut steps = 0u64;
    let mut rejected = 0u64;
    let mut rhs_evals = 1u64;
    rhs(&y, &mut k1); // FSAL seed

    let mut attempts = 0u64;
    while t < t_end {
        if attempts >= opts.max_steps {
            return Err(MeanFieldError::NonConvergence {
                what: "adaptive integration",
                iterations: attempts,
                residual: t_end - t,
            });
        }
        attempts += 1;
        let last = t + h >= t_end;
        let step = if last { t_end - t } else { h };

        for i in 0..n {
            stage[i] = y[i] + 0.5 * step * k1[i];
        }
        rhs(&stage, &mut k2);
        for i in 0..n {
            stage[i] = y[i] + 0.75 * step * k2[i];
        }
        rhs(&stage, &mut k3);
        for i in 0..n {
            y_next[i] = y[i] + step * (2.0 / 9.0 * k1[i] + 1.0 / 3.0 * k2[i] + 4.0 / 9.0 * k3[i]);
        }
        rhs(&y_next, &mut k4);
        rhs_evals += 3;

        // Embedded second-order solution; scaled max-norm error.
        let mut err: f64 = 0.0;
        for i in 0..n {
            let z = y[i]
                + step * (7.0 / 24.0 * k1[i] + 0.25 * k2[i] + 1.0 / 3.0 * k3[i] + 0.125 * k4[i]);
            let scale = opts.abs_tol + opts.rel_tol * y[i].abs().max(y_next[i].abs());
            err = err.max((y_next[i] - z).abs() / scale);
        }

        if err <= 1.0 {
            t = if last { t_end } else { t + step };
            std::mem::swap(&mut y, &mut y_next);
            std::mem::swap(&mut k1, &mut k4); // FSAL: k4 is f(y_next)
            steps += 1;
        } else {
            rejected += 1;
        }
        let factor = if err > 0.0 {
            (0.9 * err.powf(-1.0 / 3.0)).clamp(0.2, 5.0)
        } else {
            5.0
        };
        h = (step * factor).min(t_end);
    }

    Ok(OdeRun {
        y,
        steps,
        rejected,
        rhs_evals,
    })
}

impl FluidModel {
    /// Integrates the fluid ODE from `pi0` for `t_end` time units with
    /// `steps` fixed RK4 steps. Deterministic and byte-reproducible.
    ///
    /// # Panics
    ///
    /// As [`rk4_fixed`]; additionally if `pi0` has the wrong dimension.
    #[must_use]
    pub fn integrate_fixed(&self, pi0: &[f64], t_end: f64, steps: u64) -> OdeRun {
        let run = rk4_fixed(|y, out| self.rhs_into(y, out), pi0, t_end, steps);
        self.obs().ode_steps(run.steps, 0);
        run
    }

    /// Integrates the fluid ODE adaptively (Bogacki–Shampine 3(2)).
    ///
    /// # Errors
    ///
    /// As [`bs32_adaptive`].
    pub fn integrate_adaptive(
        &self,
        pi0: &[f64],
        t_end: f64,
        opts: &AdaptiveOptions,
    ) -> Result<OdeRun, MeanFieldError> {
        let run = bs32_adaptive(|y, out| self.rhs_into(y, out), pi0, t_end, opts)?;
        self.obs().ode_steps(run.steps, run.rejected);
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux::{InitialCondition, ModelParams};

    /// dy/dt = -y, y(0) = 1 → y(t) = e^{-t}.
    fn decay(y: &[f64], out: &mut [f64]) {
        out[0] = -y[0];
    }

    #[test]
    fn rk4_shows_fourth_order_convergence_under_step_halving() {
        let t_end: f64 = 2.0;
        let exact = (-t_end).exp();
        let err = |steps: u64| (rk4_fixed(decay, &[1.0], t_end, steps).y[0] - exact).abs();
        let e1 = err(20);
        let e2 = err(40);
        let e3 = err(80);
        // Halving the step must shrink the error by ~2⁴ = 16.
        let order12 = (e1 / e2).log2();
        let order23 = (e2 / e3).log2();
        assert!(
            order12 > 3.7 && order12 < 4.3,
            "observed order {order12} (errors {e1:e} -> {e2:e})"
        );
        assert!(
            order23 > 3.7 && order23 < 4.3,
            "observed order {order23} (errors {e2:e} -> {e3:e})"
        );
    }

    #[test]
    fn adaptive_matches_the_analytic_solution_and_counts_work() {
        let t_end: f64 = 3.0;
        let run = bs32_adaptive(decay, &[1.0], t_end, &AdaptiveOptions::default()).unwrap();
        assert!((run.y[0] - (-t_end).exp()).abs() < 1e-6);
        assert!(run.steps > 0);
        assert_eq!(run.rhs_evals, 1 + 3 * (run.steps + run.rejected));
    }

    #[test]
    fn adaptive_rejects_bad_configuration() {
        let bad = AdaptiveOptions {
            rel_tol: -1.0,
            ..AdaptiveOptions::default()
        };
        assert!(bs32_adaptive(decay, &[1.0], 1.0, &bad).is_err());
        assert!(bs32_adaptive(decay, &[1.0], f64::NAN, &AdaptiveOptions::default()).is_err());
    }

    #[test]
    fn adaptive_budget_exhaustion_reports_nonconvergence() {
        let opts = AdaptiveOptions {
            max_steps: 3,
            initial_dt: 1e-9,
            ..AdaptiveOptions::default()
        };
        let err = bs32_adaptive(decay, &[1.0], 1.0, &opts).unwrap_err();
        assert!(matches!(
            err,
            MeanFieldError::NonConvergence {
                what: "adaptive integration",
                ..
            }
        ));
    }

    #[test]
    fn fixed_step_fluid_runs_are_byte_deterministic_and_mass_conserving() {
        let params = ModelParams::paper_defaults().with_mu(0.2).with_d(0.9);
        let model = crate::FluidModel::build(&params, &InitialCondition::Delta).unwrap();
        let pi0 = model.alpha().to_vec();
        let a = model.integrate_fixed(&pi0, 50.0, 400);
        let b = model.integrate_fixed(&pi0, 50.0, 400);
        // Byte-level determinism, not approximate agreement.
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.y), bits(&b.y));
        let mass: f64 = a.y.iter().sum();
        assert!((mass - 1.0).abs() < 1e-10, "mass drifted to {mass}");
        // Long horizon converges to the renewal equilibrium.
        let eq = model.open_equilibrium().unwrap();
        let run = model.integrate_fixed(&pi0, 400.0, 4000);
        let dev = run
            .y
            .iter()
            .zip(&eq.pi)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(dev < 1e-6, "trajectory end vs equilibrium: {dev}");
    }
}
