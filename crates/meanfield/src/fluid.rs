//! The fluid-limit (N→∞) model of cluster-composition dynamics.
//!
//! # Derivation sketch
//!
//! The exact layer models one cluster as an absorbing Markov chain over
//! `(s, x, y)` and restarts it from the initial distribution whenever a
//! merge/split event absorbs it (the renewal argument behind
//! [`ClusterAnalysis::steady_state_fractions`](pollux::ClusterAnalysis::steady_state_fractions)).
//! With `m` clusters evolving independently, the empirical measure
//! `π(t) ∈ Δ(Ω)` (fraction of clusters in each state) is a density-
//! dependent population process; by Kurtz's theorem it converges, as
//! `m → ∞`, to the deterministic fluid limit
//!
//! ```text
//!     dπ/dt = λ · ( π · P_regen(μ_eff(π)) − π )
//! ```
//!
//! where `λ` is the per-cluster event rate and `P_regen` is the embedded
//! jump chain with every absorbing row (merge/split outcomes) replaced by
//! the regeneration distribution `α` — the chain the renewal argument
//! implicitly runs forever. Stationary points of the ODE are exactly the
//! stationary distributions of `P_regen`, so the fluid steady state
//! reproduces the exact per-cluster fractions; the O(1/m) gap to a
//! finite system is sampling noise, not model error.
//!
//! # Adversary coupling
//!
//! In the open model ([`Coupling::Open`]) clusters do not interact and
//! the ODE is linear: useful for validation and for answering what-ifs
//! with a single sparse solve. [`Coupling::RoutingBias`] adds the
//! system-level feedback the paper's targeted adversary induces: join
//! requests routed through polluted clusters are preferentially steered
//! by colluders, so the malicious-join probability seen by one cluster
//! grows with the polluted fraction of the whole system,
//! `μ_eff(π) = min(μ·(1 + a·ρ_P(π)), 0.995)` with `ρ_P` the mass on
//! polluted states. That makes the ODE nonlinear and opens the door to
//! multiple equilibria (see [`FluidModel::equilibria`]).
//!
//! The transition matrix enters only through an affine decomposition
//! `P(μ) = C₀ + μ·C₁`, which holds exactly because μ multiplies only the
//! join branch of the per-event outcome tree (verified by a unit test
//! against a third μ): two chain builds at probe values recover `C₀`
//! and `C₁`, and every later μ evaluation is a fused multiply-add.

use crate::error::MeanFieldError;
use crate::obs::{MeanFieldObs, MeanFieldObsSnapshot};
use pollux::{ClusterChain, InitialCondition, ModelParams, ModelSpace};
use pollux_defense::{Defense, NullDefense};
use pollux_linalg::sparse::CsrMatrix;
use pollux_linalg::{SolverOptions, TransientSolver};
use std::sync::Arc;

/// Hard ceiling on the amplified malicious-join probability. The model
/// caps `μ_eff` strictly below 1 so the join branch never degenerates
/// (an all-malicious join stream is outside the paper's regime anyway).
pub const MU_EFF_CAP: f64 = 0.995;

/// Second probe value used to recover the affine-μ decomposition.
const MU_PROBE: f64 = 0.5;

/// How the system-level adversary couples clusters in the fluid limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Coupling {
    /// Independent clusters: `μ_eff ≡ μ`. The ODE is linear and its
    /// unique equilibrium matches the exact renewal fractions.
    Open,
    /// Targeted routing feedback: the malicious-join probability seen
    /// by a cluster is amplified by the global polluted mass,
    /// `μ_eff(π) = min(μ·(1 + amplification·ρ_P(π)), MU_EFF_CAP)`.
    RoutingBias {
        /// Feedback gain `a ≥ 0`; `0` reduces to [`Coupling::Open`].
        amplification: f64,
    },
}

/// How an equilibrium was obtained (diagnostic, carried on the result).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EquilibriumMethod {
    /// Direct renewal-identity solve of the linear (open) system.
    Direct,
    /// Damped-Newton refinement of the nonlinear coupled system.
    Newton,
}

/// A fixed point of the fluid ODE together with solution diagnostics.
#[derive(Debug, Clone)]
pub struct Equilibrium {
    /// Stationary distribution over the full state space (sums to 1).
    pub pi: Vec<f64>,
    /// Effective malicious-join probability at this fixed point.
    pub mu_eff: f64,
    /// Stationary mass on transient-safe states (the paper's
    /// availability-style "fraction of time safe").
    pub safe_fraction: f64,
    /// Stationary mass on transient-polluted states.
    pub polluted_fraction: f64,
    /// `‖π·P_regen(μ_eff(π)) − π‖∞` at the returned point.
    pub residual: f64,
    /// Iterations spent (0 for the direct path).
    pub iterations: u64,
    /// Which solver produced it.
    pub method: EquilibriumMethod,
}

/// The fluid-limit model: affine-μ embedded chain with regeneration,
/// ready for integration, equilibrium solving, and stability analysis.
///
/// ```
/// use pollux::{InitialCondition, ModelParams};
/// use pollux_meanfield::FluidModel;
///
/// let params = ModelParams::paper_defaults().with_mu(0.2).with_d(0.9);
/// let model = FluidModel::build(&params, &InitialCondition::Delta)?;
/// let eq = model.open_equilibrium()?;
/// assert!(eq.safe_fraction > 0.0 && eq.polluted_fraction >= 0.0);
/// # Ok::<(), pollux_meanfield::MeanFieldError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FluidModel {
    space: ModelSpace,
    /// Regeneration distribution `α` (full space, sums to 1).
    alpha: Vec<f64>,
    /// CSR structure shared by `c0`/`c1`; absorbing rows are empty.
    row_ptr: Vec<usize>,
    cols: Vec<usize>,
    /// `P(μ)[i][j] = c0[e] + μ·c1[e]` for the entry `e` at `(i, j)`.
    c0: Vec<f64>,
    c1: Vec<f64>,
    /// `true` for merge/split rows, whose outflow regenerates to `α`.
    absorbing: Vec<bool>,
    /// `true` for every polluted class (transient or absorbing).
    polluted: Vec<bool>,
    mu_base: f64,
    rate: f64,
    coupling: Coupling,
    solver_options: SolverOptions,
    obs: Arc<MeanFieldObs>,
}

impl FluidModel {
    /// Builds the fluid model for `params` with no defense mechanism.
    ///
    /// # Errors
    ///
    /// Propagates [`MeanFieldError::Markov`] from an invalid initial
    /// distribution and [`MeanFieldError::Linalg`] from CSR assembly.
    pub fn build(params: &ModelParams, initial: &InitialCondition) -> Result<Self, MeanFieldError> {
        FluidModel::build_with_defense(params, &NullDefense::new(), initial)
    }

    /// Builds the fluid model with a defense folded into the per-event
    /// probabilities, exactly as
    /// [`ClusterChain::build_with_defense`] folds it into the exact
    /// chain. The defense hooks depend only on the cluster view, never
    /// on μ, so the affine-μ decomposition survives any defense.
    ///
    /// # Errors
    ///
    /// As [`FluidModel::build`].
    pub fn build_with_defense<D: Defense + ?Sized>(
        params: &ModelParams,
        defense: &D,
        initial: &InitialCondition,
    ) -> Result<Self, MeanFieldError> {
        let lo = ClusterChain::build_with_defense(&params.with_mu(0.0), defense);
        let hi = ClusterChain::build_with_defense(&params.with_mu(MU_PROBE), defense);
        let space = ModelSpace::new(params);
        let alpha = initial.distribution(&space)?;
        let n = space.len();

        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut c0 = Vec::new();
        let mut c1 = Vec::new();
        let mut absorbing = vec![false; n];
        let mut polluted = vec![false; n];

        row_ptr.push(0);
        for (i, state) in space.iter() {
            let class = state.classify(params);
            polluted[i] = class.is_polluted();
            if class.is_absorbing() {
                // Outflow of absorbing rows is the regeneration redirect,
                // applied analytically from `alpha`; keep the row empty.
                absorbing[i] = true;
                row_ptr.push(cols.len());
                continue;
            }
            // Merge the μ=0 and μ=MU_PROBE rows. Both chains push the
            // same entry set (zero-weight μ terms included), so the
            // union merge is belt and braces, not a correctness need.
            let mut it0 = lo.sparse_dtmc().successors(i).peekable();
            let mut it1 = hi.sparse_dtmc().successors(i).peekable();
            loop {
                let (j, p_lo, p_hi) = match (it0.peek().copied(), it1.peek().copied()) {
                    (Some((j0, v0)), Some((j1, v1))) => {
                        if j0 == j1 {
                            it0.next();
                            it1.next();
                            (j0, v0, v1)
                        } else if j0 < j1 {
                            it0.next();
                            (j0, v0, 0.0)
                        } else {
                            it1.next();
                            (j1, 0.0, v1)
                        }
                    }
                    (Some((j0, v0)), None) => {
                        it0.next();
                        (j0, v0, 0.0)
                    }
                    (None, Some((j1, v1))) => {
                        it1.next();
                        (j1, 0.0, v1)
                    }
                    (None, None) => break,
                };
                cols.push(j);
                c0.push(p_lo);
                c1.push((p_hi - p_lo) / MU_PROBE);
            }
            row_ptr.push(cols.len());
        }

        Ok(FluidModel {
            space,
            alpha,
            row_ptr,
            cols,
            c0,
            c1,
            absorbing,
            polluted,
            mu_base: params.mu(),
            rate: 1.0,
            coupling: Coupling::Open,
            solver_options: SolverOptions::default(),
            obs: Arc::new(MeanFieldObs::new()),
        })
    }

    /// Sets the per-cluster event rate `λ` (events per unit time).
    /// Defaults to 1, matching the DES convention.
    ///
    /// # Errors
    ///
    /// [`MeanFieldError::InvalidConfig`] unless `rate` is finite and
    /// positive.
    pub fn with_rate(mut self, rate: f64) -> Result<Self, MeanFieldError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(MeanFieldError::InvalidConfig(format!(
                "event rate must be finite and positive, got {rate}"
            )));
        }
        self.rate = rate;
        Ok(self)
    }

    /// Selects the adversary coupling (default: [`Coupling::Open`]).
    ///
    /// # Errors
    ///
    /// [`MeanFieldError::InvalidConfig`] for a negative or non-finite
    /// amplification.
    pub fn with_coupling(mut self, coupling: Coupling) -> Result<Self, MeanFieldError> {
        if let Coupling::RoutingBias { amplification } = coupling {
            if !amplification.is_finite() || amplification < 0.0 {
                return Err(MeanFieldError::InvalidConfig(format!(
                    "routing-bias amplification must be finite and >= 0, got {amplification}"
                )));
            }
        }
        self.coupling = coupling;
        Ok(self)
    }

    /// Overrides the linear-solver routing used by the direct
    /// equilibrium path. [`SolverOptions::force_sparse`] keeps the
    /// planet-scale what-if path in the tens-of-microseconds regime.
    #[must_use]
    pub fn with_solver_options(mut self, options: SolverOptions) -> Self {
        self.solver_options = options;
        self
    }

    /// The state space this model is defined over.
    #[must_use]
    pub fn space(&self) -> &ModelSpace {
        &self.space
    }

    /// Number of states (= dimension of the ODE).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.space.len()
    }

    /// The per-cluster event rate `λ`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The active coupling.
    #[must_use]
    pub fn coupling(&self) -> Coupling {
        self.coupling
    }

    /// The regeneration distribution `α`.
    #[must_use]
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// A point-in-time copy of the model's work counters (all zero
    /// unless the `metrics` cargo feature is enabled).
    #[must_use]
    pub fn obs_snapshot(&self) -> MeanFieldObsSnapshot {
        self.obs.snapshot()
    }

    pub(crate) fn obs(&self) -> &MeanFieldObs {
        &self.obs
    }

    /// Replaces the model's instrument with a shared one so counters
    /// aggregate across a family of probe models (tuning bisection).
    pub(crate) fn sharing_obs(mut self, obs: Arc<MeanFieldObs>) -> Self {
        self.obs = obs;
        self
    }

    /// The effective malicious-join probability induced by state `pi`.
    #[must_use]
    pub fn mu_eff(&self, pi: &[f64]) -> f64 {
        match self.coupling {
            Coupling::Open => self.mu_base,
            Coupling::RoutingBias { amplification } => {
                let rho = self.polluted_mass(pi);
                (self.mu_base * (1.0 + amplification * rho)).clamp(0.0, MU_EFF_CAP)
            }
        }
    }

    /// Total mass on polluted classes (transient and absorbing).
    #[must_use]
    pub fn polluted_mass(&self, pi: &[f64]) -> f64 {
        pi.iter()
            .zip(&self.polluted)
            .filter(|(_, &p)| p)
            .map(|(&w, _)| w)
            .sum()
    }

    /// `(transient-safe mass, transient-polluted mass)` of `pi` — the
    /// fluid analogue of
    /// [`ClusterAnalysis::steady_state_fractions`](pollux::ClusterAnalysis::steady_state_fractions).
    #[must_use]
    pub fn fractions(&self, pi: &[f64]) -> (f64, f64) {
        let sum_over = |idx: &[usize]| idx.iter().map(|&g| pi[g]).sum::<f64>();
        (
            sum_over(self.space.transient_safe()),
            sum_over(self.space.transient_polluted()),
        )
    }

    /// `out = π · P_regen(mu)`: one application of the embedded
    /// regeneration chain at an explicit μ (`out` is fully overwritten).
    pub(crate) fn apply_embedded_at_mu(&self, pi: &[f64], mu: f64, out: &mut [f64]) {
        out.fill(0.0);
        let mut regen_mass = 0.0;
        for (i, &w) in pi.iter().enumerate() {
            if self.absorbing[i] {
                regen_mass += w;
                continue;
            }
            if w == 0.0 {
                continue;
            }
            for e in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[self.cols[e]] += w * (self.c0[e] + mu * self.c1[e]);
            }
        }
        if regen_mass != 0.0 {
            for (o, &a) in out.iter_mut().zip(&self.alpha) {
                *o += regen_mass * a;
            }
        }
    }

    /// The fluid vector field: `out = λ·(π·P_regen(μ_eff(π)) − π)`.
    ///
    /// The components of `out` always sum to zero (both `P_regen` rows
    /// and the regeneration redirect are stochastic), so total mass is
    /// conserved along every trajectory.
    ///
    /// # Panics
    ///
    /// Panics if `pi` or `out` have a length other than [`FluidModel::dim`].
    pub fn rhs_into(&self, pi: &[f64], out: &mut [f64]) {
        assert_eq!(pi.len(), self.dim(), "state vector has wrong dimension");
        assert_eq!(out.len(), self.dim(), "output vector has wrong dimension");
        let mu = self.mu_eff(pi);
        self.apply_embedded_at_mu(pi, mu, out);
        for (o, &p) in out.iter_mut().zip(pi) {
            *o = self.rate * (*o - p);
        }
        self.obs.rhs_evals(1);
    }

    /// `‖π·P_regen(μ_eff(π)) − π‖∞`: how far `pi` is from stationarity
    /// of the embedded chain (rate-independent).
    #[must_use]
    pub fn stationarity_residual(&self, pi: &[f64]) -> f64 {
        let mu = self.mu_eff(pi);
        let mut out = vec![0.0; self.dim()];
        self.apply_embedded_at_mu(pi, mu, &mut out);
        out.iter()
            .zip(pi)
            .map(|(o, p)| (o - p).abs())
            .fold(0.0, f64::max)
    }

    /// The unique equilibrium of the open (linear) system, via the
    /// renewal identity: expected visit counts `v` solve
    /// `(I − Q(μ))ᵀ v = α_T`, the cycle length is `Σv + 1`, and
    /// `π = [v, α_A + vᵀR] / cycle`. One sparse transposed solve — no
    /// integration, no iteration — and it agrees with
    /// `ClusterAnalysis::steady_state_fractions` to solver tolerance.
    ///
    /// # Errors
    ///
    /// Propagates solver failures ([`MeanFieldError::Linalg`]).
    pub fn open_equilibrium(&self) -> Result<Equilibrium, MeanFieldError> {
        self.equilibrium_at_mu(self.mu_base)
    }

    /// Renewal-identity equilibrium of the linear chain frozen at an
    /// explicit μ. For [`Coupling::Open`] with `mu = μ_base` this is
    /// *the* equilibrium; the Newton path uses other values as warm
    /// starts.
    pub(crate) fn equilibrium_at_mu(&self, mu: f64) -> Result<Equilibrium, MeanFieldError> {
        let n = self.dim();
        let transient = self.space.transient();
        let tn = transient.len();
        let mut pos = vec![usize::MAX; n];
        for (t, &g) in transient.iter().enumerate() {
            pos[g] = t;
        }

        // Transient-to-transient block Q(μ). The affine interpolation
        // is exact in exact arithmetic; clamp the ~1e-18 rounding
        // negatives so the solver's substochasticity check passes.
        let mut triplets = Vec::with_capacity(self.cols.len());
        for (t, &g) in transient.iter().enumerate() {
            for e in self.row_ptr[g]..self.row_ptr[g + 1] {
                let j = self.cols[e];
                if pos[j] != usize::MAX {
                    let v = (self.c0[e] + mu * self.c1[e]).max(0.0);
                    triplets.push((t, pos[j], v));
                }
            }
        }
        let q = CsrMatrix::from_triplet_vec(tn, tn, triplets)?;
        let solver = TransientSolver::new(&q, self.solver_options)?;
        let alpha_t: Vec<f64> = transient.iter().map(|&g| self.alpha[g]).collect();
        let visits = solver.solve_transposed(&alpha_t)?;

        let cycle = visits.iter().sum::<f64>() + 1.0;
        let mut pi = vec![0.0; n];
        for (t, &g) in transient.iter().enumerate() {
            pi[g] = visits[t];
        }
        // Absorbing mass per cycle: direct regeneration hits plus the
        // transient-to-absorbing flow R weighted by the visit counts.
        for (j, &a) in self.alpha.iter().enumerate() {
            if self.absorbing[j] {
                pi[j] += a;
            }
        }
        for (t, &g) in transient.iter().enumerate() {
            if visits[t] == 0.0 {
                continue;
            }
            for e in self.row_ptr[g]..self.row_ptr[g + 1] {
                let j = self.cols[e];
                if self.absorbing[j] {
                    pi[j] += visits[t] * (self.c0[e] + mu * self.c1[e]).max(0.0);
                }
            }
        }
        for p in &mut pi {
            *p /= cycle;
        }

        let (safe_fraction, polluted_fraction) = self.fractions(&pi);
        let residual = residual_at_mu(self, &pi, mu);
        self.obs.equilibrium_solve();
        Ok(Equilibrium {
            pi,
            mu_eff: mu,
            safe_fraction,
            polluted_fraction,
            residual,
            iterations: 0,
            method: EquilibriumMethod::Direct,
        })
    }

    pub(crate) fn mu_base(&self) -> f64 {
        self.mu_base
    }

    pub(crate) fn is_absorbing_state(&self, i: usize) -> bool {
        self.absorbing[i]
    }

    pub(crate) fn is_polluted_state(&self, i: usize) -> bool {
        self.polluted[i]
    }

    pub(crate) fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        self.row_ptr[i]..self.row_ptr[i + 1]
    }

    pub(crate) fn entry(&self, e: usize) -> (usize, f64, f64) {
        (self.cols[e], self.c0[e], self.c1[e])
    }
}

/// `‖π·P_regen(mu) − π‖∞` at a frozen μ.
pub(crate) fn residual_at_mu(model: &FluidModel, pi: &[f64], mu: f64) -> f64 {
    let mut out = vec![0.0; model.dim()];
    model.apply_embedded_at_mu(pi, mu, &mut out);
    out.iter()
        .zip(pi)
        .map(|(o, p)| (o - p).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux::ClusterAnalysis;

    fn paper_small() -> ModelParams {
        ModelParams::paper_defaults().with_mu(0.2).with_d(0.9)
    }

    #[test]
    fn transition_matrix_is_affine_in_mu() {
        // Pin the decomposition at a third μ: P(0.3) from the exact
        // builder must match c0 + 0.3·c1 entrywise (the renormalization
        // inside SparseDtmc adds only ~1e-12).
        let mu = 0.3;
        let params = paper_small().with_mu(mu);
        let model = FluidModel::build(&params, &InitialCondition::Delta).unwrap();
        let exact = ClusterChain::build(&params);
        let n = model.dim();
        for i in 0..n {
            if model.is_absorbing_state(i) {
                continue;
            }
            let mut interp = vec![0.0; n];
            for e in model.row_range(i) {
                let (j, c0, c1) = model.entry(e);
                interp[j] = c0 + mu * c1;
            }
            for (j, &v) in interp.iter().enumerate() {
                let p = exact.sparse_dtmc().prob(i, j);
                assert!(
                    (p - v).abs() < 1e-10,
                    "P({mu})[{i}][{j}]: exact {p} vs affine {v}"
                );
            }
        }
    }

    #[test]
    fn open_equilibrium_matches_exact_renewal_fractions() {
        let params = paper_small();
        let model = FluidModel::build(&params, &InitialCondition::Delta).unwrap();
        let eq = model.open_equilibrium().unwrap();
        let analysis =
            ClusterAnalysis::from_chain(ClusterChain::build(&params), InitialCondition::Delta)
                .unwrap();
        let (safe, polluted) = analysis.steady_state_fractions().unwrap();
        assert!(
            (eq.safe_fraction - safe).abs() < 1e-9,
            "safe: fluid {} vs exact {safe}",
            eq.safe_fraction
        );
        assert!(
            (eq.polluted_fraction - polluted).abs() < 1e-9,
            "polluted: fluid {} vs exact {polluted}",
            eq.polluted_fraction
        );
        assert!(eq.residual < 1e-12, "residual {}", eq.residual);
        let total: f64 = eq.pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rhs_conserves_mass_and_vanishes_at_equilibrium() {
        let model = FluidModel::build(&paper_small(), &InitialCondition::Delta).unwrap();
        let n = model.dim();
        // Arbitrary distribution: regeneration profile.
        let pi = model.alpha().to_vec();
        let mut out = vec![0.0; n];
        model.rhs_into(&pi, &mut out);
        let drift: f64 = out.iter().sum();
        assert!(drift.abs() < 1e-14, "mass leak {drift}");

        let eq = model.open_equilibrium().unwrap();
        model.rhs_into(&eq.pi, &mut out);
        let speed = out.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(speed < 1e-11, "vector field at equilibrium: {speed}");
    }

    #[test]
    fn routing_bias_amplifies_mu_and_respects_the_cap() {
        let params = paper_small();
        let model = FluidModel::build(&params, &InitialCondition::Delta)
            .unwrap()
            .with_coupling(Coupling::RoutingBias { amplification: 3.0 })
            .unwrap();
        let eq_open = FluidModel::build(&params, &InitialCondition::Delta)
            .unwrap()
            .open_equilibrium()
            .unwrap();
        let mu = model.mu_eff(&eq_open.pi);
        assert!(mu >= params.mu());
        assert!(mu <= MU_EFF_CAP);
        // Fully polluted state hits the cap for a large enough gain.
        let model_hot = FluidModel::build(&params, &InitialCondition::Delta)
            .unwrap()
            .with_coupling(Coupling::RoutingBias { amplification: 1e6 })
            .unwrap();
        let mut hot = vec![0.0; model_hot.dim()];
        let tp = model_hot.space().transient_polluted()[0];
        hot[tp] = 1.0;
        assert_eq!(model_hot.mu_eff(&hot), MU_EFF_CAP);
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let model = FluidModel::build(&paper_small(), &InitialCondition::Delta).unwrap();
        assert!(model.clone().with_rate(0.0).is_err());
        assert!(model.clone().with_rate(f64::NAN).is_err());
        assert!(model
            .with_coupling(Coupling::RoutingBias {
                amplification: -1.0
            })
            .is_err());
    }
}
