//! Dense eigenvalue computation for stability classification.
//!
//! The workspace's linalg crate stops at LU and iterative linear
//! solves, so the mean-field layer brings its own spectral kernel:
//! a real Householder reduction to upper-Hessenberg form followed by a
//! complexified explicitly-shifted QR iteration (Wilkinson shift,
//! Givens rotations, aggressive 1×1/2×2 deflation). Eigenvalues only —
//! stability classification never needs eigenvectors — which keeps the
//! kernel compact and allocation-light.
//!
//! Deterministic by construction: no randomness, fixed exceptional-
//! shift schedule, and a hard sweep budget that converts the (in
//! practice unobserved) stagnation case into a typed error instead of
//! a hang.

use crate::error::MeanFieldError;
use pollux_linalg::Matrix;
use std::ops::{Add, Mul, Neg, Sub};

/// A complex number; the minimal arithmetic the QR kernel needs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Builds `re + i·im`.
    #[must_use]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Modulus `|z|`, overflow-safe.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Multiplication by a real scalar.
    #[must_use]
    pub fn scale(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }

    /// Principal square root.
    #[must_use]
    pub fn sqrt(self) -> Complex {
        if self.re == 0.0 && self.im == 0.0 {
            return Complex::ZERO;
        }
        let r = self.abs();
        let re = ((r + self.re) * 0.5).max(0.0).sqrt();
        let im_mag = ((r - self.re) * 0.5).max(0.0).sqrt();
        let im = if self.im < 0.0 { -im_mag } else { im_mag };
        Complex::new(re, im)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// QR sweeps allowed per matrix dimension before giving up.
const SWEEP_BUDGET_PER_DIM: usize = 100;
/// Exceptional-shift cadence: every this-many stagnant sweeps.
const EXCEPTIONAL_EVERY: usize = 16;

/// All eigenvalues of a real square matrix, in deflation order.
///
/// # Errors
///
/// * [`MeanFieldError::InvalidConfig`] for a non-square input.
/// * [`MeanFieldError::NonConvergence`] if the QR sweeps stagnate
///   (sweep budget `100·n`).
pub fn eigenvalues(a: &Matrix) -> Result<Vec<Complex>, MeanFieldError> {
    if !a.is_square() {
        return Err(MeanFieldError::InvalidConfig(format!(
            "eigenvalues need a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    if n == 1 {
        return Ok(vec![Complex::new(a[(0, 0)], 0.0)]);
    }

    let hess = hessenberg(a);
    let mut h: Vec<Complex> = hess.into_iter().map(|x| Complex::new(x, 0.0)).collect();
    qr_eigenvalues(&mut h, n)
}

/// Reduces `a` to upper-Hessenberg form by Householder similarity
/// transforms; returns the flat row-major result.
fn hessenberg(a: &Matrix) -> Vec<f64> {
    let n = a.rows();
    let mut m = vec![0.0; n * n];
    for i in 0..n {
        for (j, slot) in m[i * n..(i + 1) * n].iter_mut().enumerate() {
            *slot = a[(i, j)];
        }
    }
    let mut v = vec![0.0; n];
    for k in 0..n.saturating_sub(2) {
        let mut norm = 0.0f64;
        for i in k + 1..n {
            norm = norm.hypot(m[i * n + k]);
        }
        if norm == 0.0 {
            continue;
        }
        // Reflect column k below the subdiagonal onto ±norm·e₁; the
        // sign choice avoids cancellation in v[k+1].
        let alpha = if m[(k + 1) * n + k] >= 0.0 {
            -norm
        } else {
            norm
        };
        let mut vnorm2 = 0.0;
        for i in k + 1..n {
            v[i] = m[i * n + k];
        }
        v[k + 1] -= alpha;
        for &vi in &v[k + 1..n] {
            vnorm2 += vi * vi;
        }
        if vnorm2 == 0.0 {
            continue;
        }
        // Left: A ← (I − 2vvᵀ/‖v‖²) A.
        for j in 0..n {
            let mut dot = 0.0;
            for i in k + 1..n {
                dot += v[i] * m[i * n + j];
            }
            let f = 2.0 * dot / vnorm2;
            for i in k + 1..n {
                m[i * n + j] -= f * v[i];
            }
        }
        // Right: A ← A (I − 2vvᵀ/‖v‖²).
        for i in 0..n {
            let mut dot = 0.0;
            for j in k + 1..n {
                dot += m[i * n + j] * v[j];
            }
            let f = 2.0 * dot / vnorm2;
            for j in k + 1..n {
                m[i * n + j] -= f * v[j];
            }
        }
        // The transform zeroes the column below the subdiagonal
        // analytically; write the exact values over the rounding dust.
        m[(k + 1) * n + k] = alpha;
        for i in k + 2..n {
            m[i * n + k] = 0.0;
        }
    }
    m
}

/// Shifted QR on a complex Hessenberg matrix (flat row-major `h`).
fn qr_eigenvalues(h: &mut [Complex], n: usize) -> Result<Vec<Complex>, MeanFieldError> {
    let eps = f64::EPSILON;
    let mut eigs = Vec::with_capacity(n);
    let mut hi = n;
    let mut since_deflation = 0usize;
    let mut total = 0usize;
    let budget = SWEEP_BUDGET_PER_DIM * n;
    let mut rots: Vec<(f64, Complex)> = Vec::with_capacity(n);

    while hi > 0 {
        if hi == 1 {
            eigs.push(h[0]);
            break;
        }
        // Deflation scan: first negligible subdiagonal from the bottom
        // splits off the trailing block lo..hi.
        let mut lo = 0;
        for i in (1..hi).rev() {
            let off = h[i * n + i - 1].abs();
            let scale = h[(i - 1) * n + i - 1].abs() + h[i * n + i].abs();
            let thresh = eps * if scale > 0.0 { scale } else { 1.0 };
            if off <= thresh {
                h[i * n + i - 1] = Complex::ZERO;
                lo = i;
                break;
            }
        }
        if lo == hi - 1 {
            eigs.push(h[(hi - 1) * n + hi - 1]);
            hi -= 1;
            since_deflation = 0;
            continue;
        }
        if lo + 2 == hi {
            let (l1, l2) = eig2(
                h[lo * n + lo],
                h[lo * n + lo + 1],
                h[(lo + 1) * n + lo],
                h[(lo + 1) * n + lo + 1],
            );
            eigs.push(l1);
            eigs.push(l2);
            hi -= 2;
            since_deflation = 0;
            continue;
        }

        total += 1;
        since_deflation += 1;
        if total > budget {
            return Err(MeanFieldError::NonConvergence {
                what: "eigenvalue QR iteration",
                iterations: total as u64,
                residual: h[(hi - 1) * n + hi - 2].abs(),
            });
        }

        let sigma = if since_deflation.is_multiple_of(EXCEPTIONAL_EVERY) {
            // Exceptional shift: nudge off a symmetric stagnation orbit.
            let d = h[(hi - 1) * n + hi - 1];
            Complex::new(d.re + 0.75 * h[(hi - 1) * n + hi - 2].abs(), d.im)
        } else {
            wilkinson_shift(h, n, hi)
        };

        for d in lo..hi {
            h[d * n + d] = h[d * n + d] - sigma;
        }
        // QR via Givens: zero the subdiagonal top-down...
        rots.clear();
        for i in lo..hi - 1 {
            let (c, s) = givens(h[i * n + i], h[(i + 1) * n + i]);
            for j in i..hi {
                let x = h[i * n + j];
                let y = h[(i + 1) * n + j];
                h[i * n + j] = x.scale(c) + s * y;
                h[(i + 1) * n + j] = y.scale(c) - s.conj() * x;
            }
            h[(i + 1) * n + i] = Complex::ZERO;
            rots.push((c, s));
        }
        // ...then RQ: post-multiply by the adjoint rotations in order.
        for (idx, &(c, s)) in rots.iter().enumerate() {
            let i = lo + idx;
            for r in lo..(i + 2).min(hi) {
                let x = h[r * n + i];
                let y = h[r * n + i + 1];
                h[r * n + i] = x.scale(c) + s.conj() * y;
                h[r * n + i + 1] = y.scale(c) - s * x;
            }
        }
        for d in lo..hi {
            h[d * n + d] = h[d * n + d] + sigma;
        }
    }
    Ok(eigs)
}

/// Unitary Givens pair `(c, s)` (c real) with
/// `[[c, s], [−s̄, c]]·[a; b] = [r; 0]`.
fn givens(a: Complex, b: Complex) -> (f64, Complex) {
    let bn = b.abs();
    if bn == 0.0 {
        return (1.0, Complex::ZERO);
    }
    let an = a.abs();
    let r = an.hypot(bn);
    if an == 0.0 {
        return (0.0, b.conj().scale(1.0 / bn));
    }
    let c = an / r;
    let s = (a.scale(1.0 / an) * b.conj()).scale(1.0 / r);
    (c, s)
}

/// Both eigenvalues of `[[a, b], [c, d]]`.
fn eig2(a: Complex, b: Complex, c: Complex, d: Complex) -> (Complex, Complex) {
    let half_tr = (a + d).scale(0.5);
    let half_diff = (a - d).scale(0.5);
    let disc = (half_diff * half_diff + b * c).sqrt();
    (half_tr + disc, half_tr - disc)
}

/// Wilkinson shift: the eigenvalue of the trailing 2×2 block closest
/// to the bottom-right entry.
fn wilkinson_shift(h: &[Complex], n: usize, hi: usize) -> Complex {
    let d = h[(hi - 1) * n + hi - 1];
    let (l1, l2) = eig2(
        h[(hi - 2) * n + hi - 2],
        h[(hi - 2) * n + hi - 1],
        h[(hi - 1) * n + hi - 2],
        d,
    );
    if (l1 - d).abs() <= (l2 - d).abs() {
        l1
    } else {
        l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut eigs: Vec<Complex>) -> Vec<Complex> {
        eigs.sort_by(|a, b| {
            (a.re, a.im)
                .partial_cmp(&(b.re, b.im))
                .expect("finite eigenvalues")
        });
        eigs
    }

    fn assert_spectrum(a: &Matrix, expect: &[(f64, f64)], tol: f64) {
        let got = sorted(eigenvalues(a).unwrap());
        assert_eq!(got.len(), expect.len());
        let mut want: Vec<(f64, f64)> = expect.to_vec();
        want.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for (g, w) in got.iter().zip(&want) {
            assert!(
                (g.re - w.0).abs() < tol && (g.im - w.1).abs() < tol,
                "eigenvalue {g:?} vs expected {w:?}"
            );
        }
    }

    #[test]
    fn triangular_spectrum_is_the_diagonal() {
        let a = Matrix::from_rows(&[&[3.0, 1.0, -2.0][..], &[0.0, -1.5, 4.0], &[0.0, 0.0, 0.25]])
            .unwrap();
        assert_spectrum(&a, &[(3.0, 0.0), (-1.5, 0.0), (0.25, 0.0)], 1e-12);
    }

    #[test]
    fn rotation_matrix_has_imaginary_pair() {
        let a = Matrix::from_rows(&[&[0.0, -1.0][..], &[1.0, 0.0]]).unwrap();
        assert_spectrum(&a, &[(0.0, 1.0), (0.0, -1.0)], 1e-12);
    }

    #[test]
    fn companion_matrix_recovers_polynomial_roots() {
        // (λ−1)(λ−2)(λ−3)(λ+0.5) = λ⁴ − 5.5λ³ + 8λ² − 0.5λ − 3.
        let a = Matrix::from_rows(&[
            &[5.5, -8.0, 0.5, 3.0][..],
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
        ])
        .unwrap();
        assert_spectrum(&a, &[(1.0, 0.0), (2.0, 0.0), (3.0, 0.0), (-0.5, 0.0)], 1e-9);
    }

    #[test]
    fn stochastic_matrix_has_unit_eigenvalue_and_trace_identity() {
        let a =
            Matrix::from_rows(&[&[0.9, 0.1, 0.0][..], &[0.2, 0.5, 0.3], &[0.1, 0.4, 0.5]]).unwrap();
        let eigs = eigenvalues(&a).unwrap();
        let unit = eigs
            .iter()
            .map(|e| (e.re - 1.0).hypot(e.im))
            .fold(f64::INFINITY, f64::min);
        assert!(unit < 1e-10, "no unit eigenvalue: {eigs:?}");
        let trace_re: f64 = eigs.iter().map(|e| e.re).sum();
        let trace_im: f64 = eigs.iter().map(|e| e.im).sum();
        assert!((trace_re - 1.9).abs() < 1e-10);
        assert!(trace_im.abs() < 1e-10);
    }

    #[test]
    fn moderate_dense_matrix_satisfies_trace_and_conjugacy() {
        // Deterministic pseudo-random entries via an LCG; n = 24 keeps
        // this fast in debug builds while still exercising deflation.
        let n = 24;
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        let a = Matrix::from_fn(n, n, |_, _| next());
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let eigs = eigenvalues(&a).unwrap();
        assert_eq!(eigs.len(), n);
        let sum_re: f64 = eigs.iter().map(|e| e.re).sum();
        let sum_im: f64 = eigs.iter().map(|e| e.im).sum();
        assert!((sum_re - trace).abs() < 1e-8, "trace {trace} vs {sum_re}");
        assert!(sum_im.abs() < 1e-8);
        // Real matrix: complex eigenvalues come in conjugate pairs.
        let mut ims: Vec<f64> = eigs
            .iter()
            .map(|e| e.im)
            .filter(|i| i.abs() > 1e-9)
            .collect();
        ims.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert_eq!(ims.len() % 2, 0);
        for k in 0..ims.len() / 2 {
            assert!(
                (ims[k] + ims[ims.len() - 1 - k]).abs() < 1e-7,
                "unpaired imaginary parts"
            );
        }
    }

    #[test]
    fn non_square_input_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            eigenvalues(&a),
            Err(MeanFieldError::InvalidConfig(_))
        ));
    }
}
