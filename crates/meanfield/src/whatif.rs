//! Planet-scale what-if scenarios answered from the fluid limit.
//!
//! The exact chain tops out near Δ≈156 and the sharded DES near 10⁷
//! nodes; above that, the fluid limit is the only evaluation path —
//! and the natural one, since its O(1/M) finite-size error *shrinks*
//! with system scale. One what-if cell (10⁸–10⁹ nodes) costs a sparse
//! renewal solve plus a fixed number of power-iteration steps: well
//! under a millisecond, which `BENCH_meanfield.json` records.

use crate::error::MeanFieldError;
use crate::fluid::FluidModel;
use pollux::{InitialCondition, ModelParams};
use pollux_defense::{Defense, NullDefense};
use pollux_linalg::SolverOptions;

/// Fixed power-iteration budget for the spectral-gap estimate: with
/// the Aitken-accelerated tail this lands within a few percent of the
/// exact abscissa on paper-scale chains, while keeping the per-cell
/// cost inside the sub-millisecond budget and deterministic.
const GAP_ITERATIONS: u32 = 96;

/// Answer to one planet-scale what-if cell.
#[derive(Debug, Clone)]
pub struct WhatIfAnswer {
    /// Fluid cluster count `M = nodes / E[cluster size]`.
    pub n_clusters: f64,
    /// Expected stationary cluster size `Σ π_i (C + s_i)`.
    pub mean_cluster_size: f64,
    /// Stationary fraction of clusters in transient-safe states.
    pub safe_fraction: f64,
    /// Stationary fraction of clusters in transient-polluted states.
    pub polluted_fraction: f64,
    /// Stationary fraction of *nodes* residing in polluted clusters
    /// (size-weighted, which is what an end user samples).
    pub polluted_node_fraction: f64,
    /// `polluted_node_fraction · nodes`.
    pub expected_polluted_nodes: f64,
    /// Lower bound on the linearized decay rate at the equilibrium
    /// (per time unit; see `FluidModel::relaxation_gap`).
    pub spectral_gap: f64,
    /// Time for perturbations to decay by 100× at that gap.
    pub settling_time: f64,
    /// The documented O(1/M) finite-size band: `1 / n_clusters`.
    /// Finite-system fractions are expected within ~this of the fluid
    /// prediction (cross-validated by the DES pair at small M).
    pub finite_size_band: f64,
}

/// Answers a planet-scale what-if with no defense deployed.
///
/// # Errors
///
/// As [`planet_scale_what_if_with_defense`].
pub fn planet_scale_what_if(
    params: &ModelParams,
    initial: &InitialCondition,
    nodes: f64,
    events_per_cluster: f64,
) -> Result<WhatIfAnswer, MeanFieldError> {
    planet_scale_what_if_with_defense(
        params,
        &NullDefense::new(),
        initial,
        nodes,
        events_per_cluster,
    )
}

/// Answers "N nodes, this parameterization, this defense: how much of
/// the system is polluted at equilibrium, and how fast does it settle?"
///
/// Routing: the renewal solve is forced onto the sparse iterative path
/// (the dense LU would dominate the sub-millisecond budget) and the
/// stability check uses the capped power-iteration estimate rather
/// than a dense spectrum.
///
/// # Errors
///
/// * [`MeanFieldError::InvalidConfig`] when `nodes` is not enough for
///   one core (`< C`), or `events_per_cluster` is not positive.
/// * Propagated solver failures.
pub fn planet_scale_what_if_with_defense<D: Defense + ?Sized>(
    params: &ModelParams,
    defense: &D,
    initial: &InitialCondition,
    nodes: f64,
    events_per_cluster: f64,
) -> Result<WhatIfAnswer, MeanFieldError> {
    let core = params.core_size() as f64;
    if !nodes.is_finite() || nodes < core {
        return Err(MeanFieldError::InvalidConfig(format!(
            "node count {nodes} cannot host a single {core}-node core"
        )));
    }

    let model = FluidModel::build_with_defense(params, defense, initial)?
        .with_rate(events_per_cluster)?
        .with_solver_options(SolverOptions::force_sparse().with_jacobi(true));
    let eq = model.open_equilibrium()?;

    let space = model.space();
    let mut mean_cluster_size = 0.0;
    let mut polluted_node_mass = 0.0;
    for (i, state) in space.iter() {
        let size = core + state.s as f64;
        mean_cluster_size += eq.pi[i] * size;
        if state.classify(params).is_polluted() {
            polluted_node_mass += eq.pi[i] * size;
        }
    }
    let polluted_node_fraction = polluted_node_mass / mean_cluster_size;
    let n_clusters = nodes / mean_cluster_size;

    let spectral_gap = model.relaxation_gap(&eq, GAP_ITERATIONS);
    let settling_time = if spectral_gap > 0.0 {
        100f64.ln() / spectral_gap
    } else {
        f64::INFINITY
    };

    Ok(WhatIfAnswer {
        n_clusters,
        mean_cluster_size,
        safe_fraction: eq.safe_fraction,
        polluted_fraction: eq.polluted_fraction,
        polluted_node_fraction,
        expected_polluted_nodes: polluted_node_fraction * nodes,
        spectral_gap,
        settling_time,
        finite_size_band: 1.0 / n_clusters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_defense::InducedChurn;

    fn params() -> ModelParams {
        ModelParams::paper_defaults().with_mu(0.2).with_d(0.9)
    }

    #[test]
    fn a_billion_node_cell_is_internally_consistent() {
        let nodes = 1e9;
        let ans = planet_scale_what_if(&params(), &InitialCondition::Delta, nodes, 1.0).unwrap();
        assert!(ans.mean_cluster_size >= params().core_size() as f64);
        assert!(ans.mean_cluster_size <= (params().core_size() + params().max_spare()) as f64);
        assert!((ans.n_clusters * ans.mean_cluster_size - nodes).abs() < 1.0);
        assert!(ans.polluted_node_fraction >= 0.0 && ans.polluted_node_fraction <= 1.0);
        assert!((ans.expected_polluted_nodes - ans.polluted_node_fraction * nodes).abs() < 1e-3);
        assert!(ans.spectral_gap > 0.0);
        assert!(ans.settling_time.is_finite());
        assert!(ans.finite_size_band > 0.0 && ans.finite_size_band < 1e-7);
    }

    #[test]
    fn defense_reduces_the_polluted_node_count() {
        let nodes = 1e8;
        let open = planet_scale_what_if(&params(), &InitialCondition::Delta, nodes, 1.0).unwrap();
        let defended = planet_scale_what_if_with_defense(
            &params(),
            &InducedChurn::new(0.2).unwrap(),
            &InitialCondition::Delta,
            nodes,
            1.0,
        )
        .unwrap();
        assert!(
            defended.expected_polluted_nodes < open.expected_polluted_nodes,
            "defense did not help: {} vs {}",
            defended.expected_polluted_nodes,
            open.expected_polluted_nodes
        );
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(planet_scale_what_if(&params(), &InitialCondition::Delta, 1.0, 1.0).is_err());
        assert!(planet_scale_what_if(&params(), &InitialCondition::Delta, 1e9, 0.0).is_err());
    }
}
