//! # pollux-meanfield — the N→∞ fluid-limit evaluation path
//!
//! Third evaluation path of the workspace, alongside the exact
//! per-cluster Markov chain (`pollux`) and the discrete-event
//! simulator (`pollux-des`): the mean-field / fluid-limit ODE for the
//! empirical measure of cluster compositions. Where the exact chain
//! tops out near Δ≈156 and the DES near 10⁷ nodes, the fluid limit
//! answers planet-scale questions (10⁸–10⁹ nodes) in microseconds —
//! with an error that *shrinks* as O(1/M) in the cluster count M.
//!
//! The layer is organized as:
//!
//! * [`FluidModel`] ([`fluid`]) — the ODE
//!   `dπ/dt = λ(π·P_regen(μ_eff(π)) − π)`, built from
//!   [`ModelParams`](pollux::ModelParams) + the four
//!   [`Defense`](pollux_defense::Defense) hooks via an exact affine-μ
//!   decomposition of the transition matrix; [`Coupling`] selects the
//!   open (linear) model or the targeted-adversary routing feedback.
//! * [`ode`] — deterministic fixed-step RK4 ([`rk4_fixed`]) and an
//!   adaptive Bogacki–Shampine 3(2) pair ([`bs32_adaptive`]).
//! * [`equilibrium`] — the renewal-identity direct solve
//!   ([`FluidModel::open_equilibrium`]) and a damped-Newton solver
//!   with analytic Jacobian for the coupled system
//!   ([`FluidModel::equilibria`]), multi-started to detect
//!   bistability.
//! * [`stability`] — Jacobian-eigenvalue classification
//!   ([`FluidModel::classify_equilibrium`], backed by the in-crate
//!   dense QR kernel in [`eig`]) and a bounded-work spectral-gap
//!   estimate ([`FluidModel::relaxation_gap`]).
//! * [`tuning`] — control-theoretic defense tuning: bisection on the
//!   induced-churn rate replacing `defense_frontier`'s grid search,
//!   verified against the exact chain ([`tune_induced_churn`]).
//! * [`whatif`] — planet-scale what-if cells
//!   ([`planet_scale_what_if`]), each a sparse solve plus a capped
//!   power iteration: < 1 ms for 10⁹ nodes.
//!
//! Validation contract: the open-model stationary fractions coincide
//! with [`ClusterAnalysis::steady_state_fractions`](pollux::ClusterAnalysis::steady_state_fractions)
//! *exactly* (same renewal identity, agreeing to solver tolerance),
//! and with finite-N DES estimates within the renewal-Wilson band plus
//! the O(1/M) finite-size term — both enforced by tests, the fuzz
//! oracle pairs, and the CI sweep scenarios.
//!
//! ```
//! use pollux::{InitialCondition, ModelParams};
//! use pollux_meanfield::{planet_scale_what_if, FluidModel};
//!
//! let params = ModelParams::paper_defaults().with_mu(0.2).with_d(0.9);
//! // Stationary pollution of the open system: one sparse solve.
//! let model = FluidModel::build(&params, &InitialCondition::Delta)?;
//! let eq = model.open_equilibrium()?;
//! assert!(eq.polluted_fraction < 1.0);
//! // A billion-node what-if, microseconds later.
//! let answer = planet_scale_what_if(&params, &InitialCondition::Delta, 1e9, 1.0)?;
//! assert!(answer.expected_polluted_nodes >= 0.0);
//! # Ok::<(), pollux_meanfield::MeanFieldError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eig;
pub mod equilibrium;
mod error;
pub mod fluid;
mod obs;
pub mod ode;
pub mod stability;
pub mod tuning;
pub mod whatif;

pub use eig::{eigenvalues, Complex};
pub use error::MeanFieldError;
pub use fluid::{Coupling, Equilibrium, EquilibriumMethod, FluidModel, MU_EFF_CAP};
pub use obs::{MeanFieldObs, MeanFieldObsSnapshot};
pub use ode::{bs32_adaptive, rk4_fixed, AdaptiveOptions, OdeRun};
pub use stability::{Stability, StabilityReport};
pub use tuning::{tune_induced_churn, TuningConfig, TuningOutcome};
pub use whatif::{planet_scale_what_if, planet_scale_what_if_with_defense, WhatIfAnswer};
