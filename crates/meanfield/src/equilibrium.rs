//! Damped-Newton fixed-point solver for the coupled (nonlinear) fluid
//! system.
//!
//! The open system needs no iteration — its unique equilibrium falls
//! out of one renewal-identity solve
//! ([`FluidModel::open_equilibrium`]). Under
//! [`crate::Coupling::RoutingBias`] the
//! effective μ depends on the state, so fixed points solve the
//! nonlinear system
//!
//! ```text
//!     F(π) = π · P_regen(μ_eff(π)) − π = 0,    Σπ = 1.
//! ```
//!
//! Because `P(μ) = C₀ + μ·C₁` is affine and `μ_eff` is piecewise
//! affine in the polluted mass, the Jacobian has the closed form
//! `J = P(μ_eff)ᵀ − I + u·wᵀ` with `u_j = Σ_i π_i·C₁[i][j]` and
//! `w = s·1_polluted` (`s = μ·a` off the clamp, `0` on it) — a rank-one
//! correction to the frozen-μ linearization. One balance equation is
//! redundant (the components of `F` sum to zero identically), so the
//! last row is replaced by the mass constraint, making the system
//! square and generically nonsingular.
//!
//! Multiple equilibria are hunted by multi-starting Newton from the
//! frozen-μ equilibria at the two ends of the feedback range (base μ
//! and fully amplified μ) and deduplicating the converged points — the
//! standard continuation trick for detecting the bistable window.

use crate::error::MeanFieldError;
use crate::fluid::{residual_at_mu, Coupling, Equilibrium, EquilibriumMethod, FluidModel};
use pollux_linalg::{Lu, Matrix};

/// Newton convergence target on `‖F‖∞` (embedded-chain units).
const NEWTON_TOL: f64 = 1e-12;
/// Iteration budget per start.
const NEWTON_MAX_ITERS: u64 = 60;
/// Damping halvings per iteration before declaring the step failed.
const NEWTON_MAX_HALVINGS: u32 = 9;
/// Two equilibria closer than this (sup-norm) are the same point.
const DEDUP_TOL: f64 = 1e-7;

impl FluidModel {
    /// All equilibria of the fluid system under the active coupling.
    ///
    /// For [`Coupling::Open`] this is the single renewal-identity
    /// equilibrium. For [`Coupling::RoutingBias`] a damped-Newton
    /// solver is multi-started from the frozen-μ equilibria at base
    /// and fully-amplified μ; distinct converged points are returned
    /// sorted by polluted fraction (safe branch first). Two entries
    /// signal bistability: which one the finite system settles into
    /// depends on where it starts.
    ///
    /// # Errors
    ///
    /// * Propagates linear-solver failures.
    /// * [`MeanFieldError::NonConvergence`] when no start converges.
    pub fn equilibria(&self) -> Result<Vec<Equilibrium>, MeanFieldError> {
        let amplification = match self.coupling() {
            Coupling::Open => return Ok(vec![self.open_equilibrium()?]),
            Coupling::RoutingBias { amplification } => amplification,
        };
        if amplification == 0.0 {
            // Zero gain: the coupled system is the open one.
            let mut eq = self.open_equilibrium()?;
            eq.method = EquilibriumMethod::Newton;
            return Ok(vec![eq]);
        }

        let mu_lo = self.mu_base();
        let mu_hi = (self.mu_base() * (1.0 + amplification)).clamp(0.0, crate::MU_EFF_CAP);
        let mut found: Vec<Equilibrium> = Vec::new();
        let mut worst = (0u64, 0.0f64);
        for mu_start in [mu_lo, mu_hi] {
            let start = self.equilibrium_at_mu(mu_start)?;
            match self.newton_refine(start.pi)? {
                Some(eq) => {
                    if !found
                        .iter()
                        .any(|e| sup_distance(&e.pi, &eq.pi) < DEDUP_TOL)
                    {
                        found.push(eq);
                    }
                }
                None => worst = (NEWTON_MAX_ITERS, f64::NAN),
            }
        }
        if found.is_empty() {
            return Err(MeanFieldError::NonConvergence {
                what: "damped Newton",
                iterations: worst.0,
                residual: worst.1,
            });
        }
        found.sort_by(|a, b| {
            a.polluted_fraction
                .partial_cmp(&b.polluted_fraction)
                .expect("pollution fractions are finite")
        });
        Ok(found)
    }

    /// One damped-Newton run from `pi`. Returns `None` when the run
    /// stalls (line search fails or the budget runs out) — the caller
    /// treats that as "this start found nothing", not as an error.
    fn newton_refine(&self, mut pi: Vec<f64>) -> Result<Option<Equilibrium>, MeanFieldError> {
        let n = self.dim();
        let mut f = vec![0.0; n];
        let mut f_trial = vec![0.0; n];
        self.constrained_residual(&pi, &mut f);
        let mut fnorm = sup_norm(&f);
        let mut iterations = 0u64;

        while fnorm > NEWTON_TOL {
            if iterations >= NEWTON_MAX_ITERS {
                return Ok(None);
            }
            iterations += 1;
            self.obs().newton_iteration();

            let jac = self.constrained_jacobian(&pi);
            let lu = Lu::decompose(&jac)?;
            self.obs().newton_solve();
            let neg_f: Vec<f64> = f.iter().map(|v| -v).collect();
            let delta = lu.solve(&neg_f)?;

            // Armijo-style damping: accept the first step length that
            // shrinks ‖F‖∞ by a λ-proportional margin.
            let mut lambda = 1.0;
            let mut accepted = false;
            for _ in 0..NEWTON_MAX_HALVINGS {
                let trial: Vec<f64> = pi.iter().zip(&delta).map(|(p, d)| p + lambda * d).collect();
                self.constrained_residual(&trial, &mut f_trial);
                let trial_norm = sup_norm(&f_trial);
                if trial_norm <= NEWTON_TOL || trial_norm < (1.0 - 0.25 * lambda) * fnorm {
                    pi = trial;
                    std::mem::swap(&mut f, &mut f_trial);
                    fnorm = trial_norm;
                    accepted = true;
                    break;
                }
                lambda *= 0.5;
            }
            if !accepted {
                return Ok(None);
            }
        }

        // Project rounding dust off the simplex; reject genuine
        // negativity (a converged point outside the simplex is not a
        // distributional equilibrium).
        if pi.iter().any(|&p| p < -1e-9) {
            return Ok(None);
        }
        for p in &mut pi {
            *p = p.max(0.0);
        }
        let total: f64 = pi.iter().sum();
        for p in &mut pi {
            *p /= total;
        }

        let mu_eff = self.mu_eff(&pi);
        let (safe_fraction, polluted_fraction) = self.fractions(&pi);
        let residual = residual_at_mu(self, &pi, mu_eff);
        self.obs().equilibrium_solve();
        Ok(Some(Equilibrium {
            pi,
            mu_eff,
            safe_fraction,
            polluted_fraction,
            residual,
            iterations,
            method: EquilibriumMethod::Newton,
        }))
    }

    /// `F(π)` with the last balance equation replaced by `Σπ − 1`.
    fn constrained_residual(&self, pi: &[f64], out: &mut [f64]) {
        let mu = self.mu_eff(pi);
        self.apply_embedded_at_mu(pi, mu, out);
        let n = out.len();
        for (o, &p) in out.iter_mut().zip(pi) {
            *o -= p;
        }
        out[n - 1] = pi.iter().sum::<f64>() - 1.0;
    }

    /// Analytic Jacobian of the constrained residual (see module docs).
    fn constrained_jacobian(&self, pi: &[f64]) -> Matrix {
        let n = self.dim();
        let mut jac = self.coupled_embedded_jacobian(pi);
        // Replace the redundant last balance row with the constraint.
        for slot in jac.row_mut(n - 1) {
            *slot = 1.0;
        }
        jac
    }

    /// Jacobian of the embedded map `π ↦ π·P_regen(μ_eff(π)) − π`
    /// (unconstrained, embedded-chain units). The stability layer
    /// scales this by the event rate to get the dynamics Jacobian.
    pub(crate) fn coupled_embedded_jacobian(&self, pi: &[f64]) -> Matrix {
        let mu = self.mu_eff(pi);
        let mut jac = self.frozen_mu_jacobian(mu);

        let n = self.dim();
        // Rank-one coupling correction u·wᵀ where the clamp is inactive.
        if let Coupling::RoutingBias { amplification } = self.coupling() {
            let raw = self.mu_base() * (1.0 + amplification * self.polluted_mass(pi));
            let slope = if raw > 0.0 && raw < crate::MU_EFF_CAP {
                self.mu_base() * amplification
            } else {
                0.0
            };
            if slope != 0.0 {
                let mut u = vec![0.0; n];
                for (i, &w) in pi.iter().enumerate() {
                    if self.is_absorbing_state(i) || w == 0.0 {
                        continue;
                    }
                    for e in self.row_range(i) {
                        let (j, _, c1) = self.entry(e);
                        u[j] += w * c1;
                    }
                }
                for (jrow, &uj) in u.iter().enumerate() {
                    if uj == 0.0 {
                        continue;
                    }
                    let row = jac.row_mut(jrow);
                    for (m, slot) in row.iter_mut().enumerate() {
                        if self.is_polluted_state(m) {
                            *slot += uj * slope;
                        }
                    }
                }
            }
        }
        jac
    }

    /// `P_regen(mu)ᵀ − I` as a dense matrix (regeneration redirect
    /// included): the Jacobian of the frozen-μ embedded map.
    pub(crate) fn frozen_mu_jacobian(&self, mu: f64) -> Matrix {
        let n = self.dim();
        let mut jac = Matrix::zeros(n, n);
        for m in 0..n {
            if self.is_absorbing_state(m) {
                // d(π·P)_j / dπ_m = α_j for absorbing m.
                for (jrow, &a) in self.alpha().iter().enumerate() {
                    if a != 0.0 {
                        jac[(jrow, m)] += a;
                    }
                }
            } else {
                for e in self.row_range(m) {
                    let (j, c0, c1) = self.entry(e);
                    jac[(j, m)] += c0 + mu * c1;
                }
            }
        }
        for d in 0..n {
            jac[(d, d)] -= 1.0;
        }
        jac
    }
}

fn sup_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, x| m.max(x.abs()))
}

fn sup_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux::{InitialCondition, ModelParams};

    fn model(mu: f64, amplification: f64) -> FluidModel {
        let params = ModelParams::paper_defaults().with_mu(mu).with_d(0.9);
        FluidModel::build(&params, &InitialCondition::Delta)
            .unwrap()
            .with_coupling(Coupling::RoutingBias { amplification })
            .unwrap()
    }

    #[test]
    fn zero_gain_newton_reproduces_the_open_equilibrium() {
        let coupled = model(0.2, 0.0);
        let eqs = coupled.equilibria().unwrap();
        assert_eq!(eqs.len(), 1);
        let open = FluidModel::build(
            &ModelParams::paper_defaults().with_mu(0.2).with_d(0.9),
            &InitialCondition::Delta,
        )
        .unwrap()
        .open_equilibrium()
        .unwrap();
        assert!(sup_distance(&eqs[0].pi, &open.pi) < 1e-10);
    }

    #[test]
    fn coupled_equilibria_are_genuine_fixed_points() {
        let m = model(0.2, 2.0);
        let eqs = m.equilibria().unwrap();
        assert!(!eqs.is_empty());
        for eq in &eqs {
            assert!(
                eq.residual < 1e-10,
                "residual {} at mu_eff {}",
                eq.residual,
                eq.mu_eff
            );
            let total: f64 = eq.pi.iter().sum();
            assert!((total - 1.0).abs() < 1e-12);
            assert!(eq.pi.iter().all(|&p| p >= 0.0));
            assert!(eq.mu_eff >= 0.2 - 1e-12);
            // Self-consistency: μ_eff really is the feedback of π.
            assert!((m.mu_eff(&eq.pi) - eq.mu_eff).abs() < 1e-12);
        }
        // Sorted by pollution.
        for pair in eqs.windows(2) {
            assert!(pair[0].polluted_fraction <= pair[1].polluted_fraction);
        }
    }

    #[test]
    fn feedback_raises_pollution_relative_to_the_open_system() {
        let open = model(0.25, 0.0).equilibria().unwrap();
        let coupled = model(0.25, 4.0).equilibria().unwrap();
        let max_coupled = coupled
            .iter()
            .map(|e| e.polluted_fraction)
            .fold(0.0f64, f64::max);
        assert!(
            max_coupled > open[0].polluted_fraction,
            "amplified {} vs open {}",
            max_coupled,
            open[0].polluted_fraction
        );
    }

    #[test]
    fn jacobian_matches_finite_differences() {
        let m = model(0.2, 2.0);
        let n = m.dim();
        let pi = m.alpha().to_vec();
        let jac = m.constrained_jacobian(&pi);
        let h = 1e-7;
        let mut base = vec![0.0; n];
        m.constrained_residual(&pi, &mut base);
        // Probe a handful of columns (full n² probe is wastefully slow).
        for col in [0usize, 1, n / 3, n / 2, n - 2, n - 1] {
            let mut bumped = pi.clone();
            bumped[col] += h;
            let mut fb = vec![0.0; n];
            m.constrained_residual(&bumped, &mut fb);
            for row in 0..n {
                let fd = (fb[row] - base[row]) / h;
                let an = jac[(row, col)];
                assert!(
                    (fd - an).abs() < 1e-5,
                    "J[{row}][{col}]: fd {fd} vs analytic {an}"
                );
            }
        }
    }
}
