use std::fmt;

use crate::ModelParams;

/// A state of the cluster chain: `(s, x, y)` — spare size, malicious core
/// count, malicious spare count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterState {
    /// Spare-set size `s ∈ 0..=Δ`.
    pub s: usize,
    /// Malicious core members `x ∈ 0..=C`.
    pub x: usize,
    /// Malicious spare members `y ∈ 0..=s`.
    pub y: usize,
}

impl ClusterState {
    /// Creates a state (unchecked against any particular parameter set;
    /// use [`ClusterState::is_consistent`] to validate).
    pub fn new(s: usize, x: usize, y: usize) -> Self {
        ClusterState { s, x, y }
    }

    /// `true` when the state lies inside `Ω` for `params`.
    pub fn is_consistent(&self, params: &ModelParams) -> bool {
        self.s <= params.max_spare() && self.x <= params.core_size() && self.y <= self.s
    }

    /// Classifies the state per Figure 1.
    pub fn classify(&self, params: &ModelParams) -> StateClass {
        let polluted = self.x > params.quorum();
        if self.s == 0 {
            if polluted {
                StateClass::PollutedMerge
            } else {
                StateClass::SafeMerge
            }
        } else if self.s == params.max_spare() {
            if polluted {
                StateClass::PollutedSplit
            } else {
                StateClass::SafeSplit
            }
        } else if polluted {
            StateClass::TransientPolluted
        } else {
            StateClass::TransientSafe
        }
    }
}

impl fmt::Display for ClusterState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(s={}, x={}, y={})", self.s, self.x, self.y)
    }
}

/// The partition of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateClass {
    /// Transient safe: `0 < s < Δ`, `x ≤ c`.
    TransientSafe,
    /// Transient polluted: `0 < s < Δ`, `x > c`.
    TransientPolluted,
    /// Safe merge (absorbing): `s = 0`, `x ≤ c`.
    SafeMerge,
    /// Safe split (absorbing): `s = Δ`, `x ≤ c`.
    SafeSplit,
    /// Polluted merge (absorbing): `s = 0`, `x > c`.
    PollutedMerge,
    /// Polluted split: `s = Δ`, `x > c` — present in `Ω` but unreachable
    /// under Rule 2 (the adversary never lets a polluted cluster split).
    PollutedSplit,
}

impl StateClass {
    /// `true` for the transient classes.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StateClass::TransientSafe | StateClass::TransientPolluted
        )
    }

    /// `true` for the absorbing classes (including the unreachable
    /// polluted split).
    pub fn is_absorbing(&self) -> bool {
        !self.is_transient()
    }

    /// `true` when the core holds more than `c` malicious members.
    pub fn is_polluted(&self) -> bool {
        matches!(
            self,
            StateClass::TransientPolluted | StateClass::PollutedMerge | StateClass::PollutedSplit
        )
    }
}

impl fmt::Display for StateClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StateClass::TransientSafe => "S (transient safe)",
            StateClass::TransientPolluted => "P (transient polluted)",
            StateClass::SafeMerge => "AmS (safe merge)",
            StateClass::SafeSplit => "AlS (safe split)",
            StateClass::PollutedMerge => "AmP (polluted merge)",
            StateClass::PollutedSplit => "AlP (polluted split, unreachable)",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams::paper_defaults()
    }

    #[test]
    fn classification_follows_figure_1() {
        let p = params(); // C = 7, Δ = 7, c = 2
        assert_eq!(
            ClusterState::new(3, 0, 0).classify(&p),
            StateClass::TransientSafe
        );
        assert_eq!(
            ClusterState::new(3, 2, 0).classify(&p),
            StateClass::TransientSafe
        );
        assert_eq!(
            ClusterState::new(3, 3, 0).classify(&p),
            StateClass::TransientPolluted
        );
        assert_eq!(
            ClusterState::new(0, 2, 0).classify(&p),
            StateClass::SafeMerge
        );
        assert_eq!(
            ClusterState::new(0, 5, 0).classify(&p),
            StateClass::PollutedMerge
        );
        assert_eq!(
            ClusterState::new(7, 1, 3).classify(&p),
            StateClass::SafeSplit
        );
        assert_eq!(
            ClusterState::new(7, 4, 0).classify(&p),
            StateClass::PollutedSplit
        );
    }

    #[test]
    fn class_predicates() {
        assert!(StateClass::TransientSafe.is_transient());
        assert!(!StateClass::TransientSafe.is_polluted());
        assert!(StateClass::TransientPolluted.is_polluted());
        assert!(StateClass::SafeMerge.is_absorbing());
        assert!(StateClass::PollutedMerge.is_polluted());
        assert!(StateClass::PollutedSplit.is_absorbing());
    }

    #[test]
    fn consistency_bounds() {
        let p = params();
        assert!(ClusterState::new(7, 7, 7).is_consistent(&p));
        assert!(!ClusterState::new(8, 0, 0).is_consistent(&p));
        assert!(!ClusterState::new(3, 8, 0).is_consistent(&p));
        assert!(!ClusterState::new(3, 0, 4).is_consistent(&p));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ClusterState::new(1, 2, 0).to_string(), "(s=1, x=2, y=0)");
        assert!(StateClass::SafeMerge.to_string().contains("AmS"));
    }
}
