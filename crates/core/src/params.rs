use std::error::Error;
use std::fmt;

/// Ablation toggles for the adversary's optional behaviours.
///
/// The paper's adversary uses all three; switching one off yields the
/// ablations reported by `pollux-bench`'s `ablation_rules` harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdversaryToggles {
    /// Rule 1: voluntary core leaves when Relation (2) exceeds `1 − ν`.
    pub rule1: bool,
    /// Rule 2: polluted clusters suppress honest joins / dodge splits.
    pub rule2: bool,
    /// Biased core maintenance in polluted clusters.
    pub bias: bool,
}

impl AdversaryToggles {
    /// The paper's adversary: everything on.
    pub fn all() -> Self {
        AdversaryToggles {
            rule1: true,
            rule2: true,
            bias: true,
        }
    }

    /// A passive adversary: peers are present but never exploit the
    /// protocol.
    pub fn none() -> Self {
        AdversaryToggles {
            rule1: false,
            rule2: false,
            bias: false,
        }
    }
}

impl Default for AdversaryToggles {
    fn default() -> Self {
        AdversaryToggles::all()
    }
}

/// Validation errors for [`ModelParams`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParamsError {
    /// A numeric parameter was outside its domain.
    OutOfRange(String),
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::OutOfRange(msg) => write!(f, "parameter out of range: {msg}"),
        }
    }
}

impl Error for ParamsError {}

/// The model's full parameter set.
///
/// | symbol | field        | meaning                                            |
/// |--------|--------------|----------------------------------------------------|
/// | `C`    | `core_size`  | constant core-set size                             |
/// | `Δ`    | `max_spare`  | maximal spare-set size (`Smax = C + Δ`)            |
/// | `μ`    | `mu`         | adversarial fraction of the universe               |
/// | `d`    | `d`          | per-event identifier survival probability          |
/// | `k`    | `k`          | randomization amount of the leave maintenance      |
/// | `ν`    | `nu`         | Rule-1 confidence threshold                        |
///
/// The paper's evaluation fixes `C = 7, Δ = 7`; `ν` is never given a
/// numeric value there (it only matters for `k > 1`) and defaults to 0.1
/// here — see the "Choices the paper leaves open" note in the repository
/// README.
///
/// # Example
///
/// ```
/// use pollux::ModelParams;
///
/// let p = ModelParams::paper_defaults().with_mu(0.2).with_d(0.9);
/// assert_eq!(p.quorum(), 2);
/// assert_eq!(p.state_count(), 288);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    core_size: usize,
    max_spare: usize,
    mu: f64,
    d: f64,
    k: usize,
    nu: f64,
    toggles: AdversaryToggles,
}

impl ModelParams {
    /// The paper's evaluation setting: `C = 7`, `Δ = 7`, `k = 1`,
    /// `μ = 0`, `d = 0`, `ν = 0.1`, full adversary.
    pub fn paper_defaults() -> Self {
        ModelParams {
            core_size: 7,
            max_spare: 7,
            mu: 0.0,
            d: 0.0,
            k: 1,
            nu: 0.1,
            toggles: AdversaryToggles::all(),
        }
    }

    /// Creates a parameter set with explicit sizes.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError::OutOfRange`] when `C = 0`, `Δ < 2` or
    /// `k ∉ 1..=C`.
    pub fn new(core_size: usize, max_spare: usize, k: usize) -> Result<Self, ParamsError> {
        if core_size == 0 {
            return Err(ParamsError::OutOfRange("core size C must be ≥ 1".into()));
        }
        if max_spare < 2 {
            return Err(ParamsError::OutOfRange(
                "maximal spare size Δ must be ≥ 2 for a non-empty transient band".into(),
            ));
        }
        if k == 0 || k > core_size {
            return Err(ParamsError::OutOfRange(format!(
                "randomization amount k = {k} outside 1..={core_size}"
            )));
        }
        Ok(ModelParams {
            core_size,
            max_spare,
            mu: 0.0,
            d: 0.0,
            k,
            nu: 0.1,
            toggles: AdversaryToggles::all(),
        })
    }

    /// Sets the adversarial fraction `μ ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values (builder misuse is a programming
    /// error in experiment code).
    pub fn with_mu(mut self, mu: f64) -> Self {
        assert!((0.0..1.0).contains(&mu), "mu = {mu} outside [0, 1)");
        self.mu = mu;
        self
    }

    /// Sets the identifier survival probability `d ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values.
    pub fn with_d(mut self, d: f64) -> Self {
        assert!((0.0..1.0).contains(&d), "d = {d} outside [0, 1)");
        self.d = d;
        self
    }

    /// Sets the randomization amount `k`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamsError::OutOfRange`] when `k ∉ 1..=C`.
    pub fn with_k(mut self, k: usize) -> Result<Self, ParamsError> {
        if k == 0 || k > self.core_size {
            return Err(ParamsError::OutOfRange(format!(
                "randomization amount k = {k} outside 1..={}",
                self.core_size
            )));
        }
        self.k = k;
        Ok(self)
    }

    /// Sets the Rule-1 threshold `ν ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range values.
    pub fn with_nu(mut self, nu: f64) -> Self {
        assert!(0.0 < nu && nu < 1.0, "nu = {nu} outside (0, 1)");
        self.nu = nu;
        self
    }

    /// Sets the adversary ablation toggles.
    pub fn with_toggles(mut self, toggles: AdversaryToggles) -> Self {
        self.toggles = toggles;
        self
    }

    /// Core size `C`.
    pub fn core_size(&self) -> usize {
        self.core_size
    }

    /// Maximal spare size `Δ`.
    pub fn max_spare(&self) -> usize {
        self.max_spare
    }

    /// Adversarial fraction `μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Identifier survival probability `d`.
    pub fn d(&self) -> f64 {
        self.d
    }

    /// Randomization amount `k` (the protocol is `protocol_k`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Rule-1 threshold `ν`.
    pub fn nu(&self) -> f64 {
        self.nu
    }

    /// Ablation toggles.
    pub fn toggles(&self) -> &AdversaryToggles {
        &self.toggles
    }

    /// Quorum threshold `c = ⌊(C−1)/3⌋`.
    pub fn quorum(&self) -> usize {
        (self.core_size - 1) / 3
    }

    /// Size of the state space: `(C+1)·(Δ+1)(Δ+2)/2`.
    pub fn state_count(&self) -> usize {
        (self.core_size + 1) * (self.max_spare + 1) * (self.max_spare + 2) / 2
    }

    /// The incarnation lifetime `L` corresponding to `d` via the paper's
    /// calibration, or `None` when `d = 0` (no identifier ever survives an
    /// event — `L` is effectively zero).
    pub fn lifetime_l(&self) -> Option<f64> {
        if self.d <= 0.0 {
            return None;
        }
        Some(pollux_overlay::incarnation::lifetime_from_survival(self.d))
    }
}

impl fmt::Display for ModelParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "protocol_{} (C={}, Δ={}, μ={}, d={}, ν={})",
            self.k, self.core_size, self.max_spare, self.mu, self.d, self.nu
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_evaluation_section() {
        let p = ModelParams::paper_defaults();
        assert_eq!(p.core_size(), 7);
        assert_eq!(p.max_spare(), 7);
        assert_eq!(p.quorum(), 2);
        assert_eq!(p.k(), 1);
        // Figure 1's caption: 288 states for C = 7, Δ = 7.
        assert_eq!(p.state_count(), 288);
    }

    #[test]
    fn validation() {
        assert!(ModelParams::new(0, 7, 1).is_err());
        assert!(ModelParams::new(7, 1, 1).is_err());
        assert!(ModelParams::new(7, 7, 0).is_err());
        assert!(ModelParams::new(7, 7, 8).is_err());
        assert!(ModelParams::new(4, 4, 4).is_ok());
        let p = ModelParams::paper_defaults();
        assert!(p.with_k(8).is_err());
        assert!(p.with_k(7).is_ok());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn mu_out_of_range_panics() {
        let _ = ModelParams::paper_defaults().with_mu(1.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn d_out_of_range_panics() {
        let _ = ModelParams::paper_defaults().with_d(-0.1);
    }

    #[test]
    fn builder_chains() {
        let p = ModelParams::paper_defaults()
            .with_mu(0.3)
            .with_d(0.9)
            .with_nu(0.2)
            .with_toggles(AdversaryToggles::none());
        assert_eq!(p.mu(), 0.3);
        assert_eq!(p.d(), 0.9);
        assert_eq!(p.nu(), 0.2);
        assert!(!p.toggles().rule1);
        assert!(p.to_string().contains("protocol_1"));
    }

    #[test]
    fn lifetime_mapping() {
        let p = ModelParams::paper_defaults().with_d(0.9);
        let l = p.lifetime_l().unwrap();
        assert!((l - 46.09).abs() < 0.1, "L = {l}");
        assert_eq!(ModelParams::paper_defaults().lifetime_l(), None);
    }

    #[test]
    fn toggles_defaults() {
        assert_eq!(AdversaryToggles::default(), AdversaryToggles::all());
        let none = AdversaryToggles::none();
        assert!(!none.rule1 && !none.rule2 && !none.bias);
    }
}
