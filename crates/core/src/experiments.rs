//! Canned parameterizations reproducing the paper's evaluation
//! (Sections VII–VIII): one function per table/figure, returning
//! structured rows that the `pollux-bench` binaries print.
//!
//! The paper's grids:
//!
//! * Figure 3 — `E(T_S^{(k)})`, `E(T_P^{(k)})` for `k ∈ {1, 7}`,
//!   `d ∈ {0, 30 %, 80 %, 90 %}`, `μ ∈ {0, 5 %, …, 30 %}`, `α ∈ {δ, β}`.
//! * Table I — `E(T_S^{(1)})`, `E(T_P^{(1)})` for `μ ∈ {0, 10 %, 20 %, 30 %}`
//!   and `d ∈ {0.95, 0.99, 0.999}`, `α = δ`.
//! * Table II — `E(T_{S,n})`, `E(T_{P,n})` for `n ∈ {1, 2}`, `d = 90 %`,
//!   `α = δ`.
//! * Figure 4 — absorption probabilities for `k = 1`, both initial
//!   distributions, same `(d, μ)` grid as Figure 3.
//! * Figure 5 — `E(N_S(m))/n`, `E(N_P(m))/n` for `n ∈ {500, 1500}`,
//!   `d ∈ {30 %, 90 %}`, `m ≤ 10⁵`. The paper does not state `μ` for this
//!   figure; callers pick it explicitly (the harness sweeps 10–30 %).

use pollux_markov::MarkovError;

use crate::{
    AbsorptionSplit, ClusterAnalysis, ClusterChain, InitialCondition, ModelParams, OverlayModel,
    ProportionPoint,
};

/// The `d` grid of Figures 3 and 4.
pub const FIGURE_D_GRID: [f64; 4] = [0.0, 0.3, 0.8, 0.9];

/// The `μ` grid of Figures 3 and 4.
pub const FIGURE_MU_GRID: [f64; 7] = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30];

/// The `μ` grid of Tables I and II.
pub const TABLE_MU_GRID: [f64; 4] = [0.0, 0.10, 0.20, 0.30];

/// The `d` grid of Table I.
pub const TABLE1_D_GRID: [f64; 3] = [0.95, 0.99, 0.999];

/// One cell of a Figure-3 panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SojournCell {
    /// Identifier survival probability `d`.
    pub d: f64,
    /// Adversarial fraction `μ`.
    pub mu: f64,
    /// `E(T_S^{(k)})`.
    pub expected_safe: f64,
    /// `E(T_P^{(k)})`.
    pub expected_polluted: f64,
}

/// Computes one Figure-3 panel: the `(d, μ)` grid for `protocol_k` under
/// `initial`.
///
/// # Errors
///
/// Propagates model-construction failures.
pub fn figure3_panel(
    k: usize,
    initial: &InitialCondition,
) -> Result<Vec<SojournCell>, MarkovError> {
    let mut out = Vec::with_capacity(FIGURE_D_GRID.len() * FIGURE_MU_GRID.len());
    for &d in &FIGURE_D_GRID {
        for &mu in &FIGURE_MU_GRID {
            let params = ModelParams::paper_defaults()
                .with_mu(mu)
                .with_d(d)
                .with_k(k)
                .expect("k comes from the caller-validated grid");
            let analysis = ClusterAnalysis::new(&params, initial.clone())?;
            out.push(SojournCell {
                d,
                mu,
                expected_safe: analysis.expected_safe_events()?,
                expected_polluted: analysis.expected_polluted_events()?,
            });
        }
    }
    Ok(out)
}

/// Computes Table I: `protocol_1`, `α = δ`, high-survival regime.
///
/// # Errors
///
/// Propagates model-construction failures.
pub fn table1() -> Result<Vec<SojournCell>, MarkovError> {
    let mut out = Vec::new();
    for &mu in &TABLE_MU_GRID {
        for &d in &TABLE1_D_GRID {
            let params = ModelParams::paper_defaults().with_mu(mu).with_d(d);
            let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta)?;
            out.push(SojournCell {
                d,
                mu,
                expected_safe: analysis.expected_safe_events()?,
                expected_polluted: analysis.expected_polluted_events()?,
            });
        }
    }
    Ok(out)
}

/// One row of Table II: the first two successive sojourn expectations per
/// subset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuccessiveSojournRow {
    /// Adversarial fraction `μ`.
    pub mu: f64,
    /// `E(T_{S,1})`.
    pub safe_1: f64,
    /// `E(T_{S,2})`.
    pub safe_2: f64,
    /// `E(T_{P,1})`.
    pub polluted_1: f64,
    /// `E(T_{P,2})`.
    pub polluted_2: f64,
}

/// Computes Table II: `protocol_1`, `d = 90 %`, `α = δ`.
///
/// # Errors
///
/// Propagates model-construction failures.
pub fn table2() -> Result<Vec<SuccessiveSojournRow>, MarkovError> {
    let mut out = Vec::new();
    for &mu in &TABLE_MU_GRID {
        let params = ModelParams::paper_defaults().with_mu(mu).with_d(0.9);
        let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta)?;
        let s = analysis.successive_safe_sojourns(2);
        let p = analysis.successive_polluted_sojourns(2);
        out.push(SuccessiveSojournRow {
            mu,
            safe_1: s[0],
            safe_2: s[1],
            polluted_1: p[0],
            polluted_2: p[1],
        });
    }
    Ok(out)
}

/// One cell of a Figure-4 panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsorptionCell {
    /// Identifier survival probability `d`.
    pub d: f64,
    /// Adversarial fraction `μ`.
    pub mu: f64,
    /// The Figure-1 absorption split.
    pub split: AbsorptionSplit,
}

/// Computes one Figure-4 panel: absorption probabilities for `protocol_1`
/// under `initial`.
///
/// # Errors
///
/// Propagates model-construction failures.
pub fn figure4_panel(initial: &InitialCondition) -> Result<Vec<AbsorptionCell>, MarkovError> {
    let mut out = Vec::with_capacity(FIGURE_D_GRID.len() * FIGURE_MU_GRID.len());
    for &d in &FIGURE_D_GRID {
        for &mu in &FIGURE_MU_GRID {
            let params = ModelParams::paper_defaults().with_mu(mu).with_d(d);
            let analysis = ClusterAnalysis::new(&params, initial.clone())?;
            out.push(AbsorptionCell {
                d,
                mu,
                split: analysis.absorption_split()?,
            });
        }
    }
    Ok(out)
}

/// Computes one Figure-5 curve: `E(N_S(m))/n` and `E(N_P(m))/n` at the
/// given sample points.
///
/// # Errors
///
/// Propagates model-construction failures.
pub fn figure5_series(
    n: u64,
    d: f64,
    mu: f64,
    sample_points: &[u64],
) -> Result<Vec<ProportionPoint>, MarkovError> {
    let params = ModelParams::paper_defaults().with_mu(mu).with_d(d);
    let model = OverlayModel::new(&params, InitialCondition::Delta, n)?;
    model.proportion_series(sample_points)
}

/// The default Figure-5 sampling grid: 0 to 100 000 events in steps of
/// 2 000 (51 points), matching the paper's x-axis.
pub fn figure5_sample_points() -> Vec<u64> {
    (0..=50).map(|i| i * 2000).collect()
}

/// A `k`-sweep at fixed `(μ, d)`: the ablation behind the paper's
/// "protocol₁ outperforms protocol_C" lesson, extended to every `k`.
///
/// # Errors
///
/// Propagates model-construction failures.
pub fn k_sweep(
    mu: f64,
    d: f64,
    initial: &InitialCondition,
) -> Result<Vec<(usize, f64, f64)>, MarkovError> {
    let c_size = ModelParams::paper_defaults().core_size();
    let mut out = Vec::with_capacity(c_size);
    for k in 1..=c_size {
        let params = ModelParams::paper_defaults()
            .with_mu(mu)
            .with_d(d)
            .with_k(k)
            .expect("k ranges over 1..=C");
        let analysis = ClusterAnalysis::new(&params, initial.clone())?;
        out.push((
            k,
            analysis.expected_safe_events()?,
            analysis.expected_polluted_events()?,
        ));
    }
    Ok(out)
}

/// Builds a [`ClusterAnalysis`] on a pre-built chain for both paper initial
/// conditions (avoids rebuilding the matrix).
///
/// # Errors
///
/// Propagates analysis-construction failures.
pub fn both_initials(
    chain: &ClusterChain,
) -> Result<(ClusterAnalysis, ClusterAnalysis), MarkovError> {
    Ok((
        ClusterAnalysis::from_chain(chain.clone(), InitialCondition::Delta)?,
        ClusterAnalysis::from_chain(chain.clone(), InitialCondition::Beta)?,
    ))
}

/// Renders rows of labelled `f64` columns as an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    render_row(&header_cells, &widths, &mut out);
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        render_row(row, &widths, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_magnitudes_match_paper() {
        // Paper's Table I (k = 1, α = δ): at μ = 0 every column reads
        // E(T_S) = 12, E(T_P) = 0; pollution time explodes with d.
        let rows = table1().unwrap();
        assert_eq!(rows.len(), 12);
        for cell in rows.iter().filter(|c| c.mu == 0.0) {
            assert!((cell.expected_safe - 12.0).abs() < 1e-6);
            assert!(cell.expected_polluted.abs() < 1e-9);
        }
        // μ = 30 %, d = 0.999 is the paper's 9.3e9 corner.
        let corner = rows.iter().find(|c| c.mu == 0.30 && c.d == 0.999).unwrap();
        assert!(
            corner.expected_polluted > 1e8,
            "{}",
            corner.expected_polluted
        );
    }

    #[test]
    fn figure3_protocol1_dominates_protocol7() {
        // The paper's second lesson: E(T_S^{(1)}) ≥ E(T_S^{(7)}) and
        // E(T_P^{(1)}) ≤ E(T_P^{(7)}) cell by cell.
        let p1 = figure3_panel(1, &InitialCondition::Delta).unwrap();
        let p7 = figure3_panel(7, &InitialCondition::Delta).unwrap();
        for (a, b) in p1.iter().zip(p7.iter()) {
            assert_eq!((a.d, a.mu), (b.d, b.mu));
            assert!(
                a.expected_safe >= b.expected_safe - 1e-9,
                "d={} mu={}: {} < {}",
                a.d,
                a.mu,
                a.expected_safe,
                b.expected_safe
            );
            assert!(
                a.expected_polluted <= b.expected_polluted + 1e-9,
                "d={} mu={}: {} > {}",
                a.d,
                a.mu,
                a.expected_polluted,
                b.expected_polluted
            );
        }
    }

    #[test]
    fn table2_first_sojourn_dominates() {
        // Paper's Table II: E(T_{S}) ≈ E(T_{S,1}) — the chain does not
        // alternate.
        let rows = table2().unwrap();
        for row in &rows {
            assert!(row.safe_1 > 100.0 * row.safe_2.max(1e-12) || row.safe_2 < 0.1);
            assert!(row.polluted_1 >= row.polluted_2);
        }
        // μ = 0 row: T_{S,1} = 12 exactly.
        assert!((rows[0].safe_1 - 12.0).abs() < 1e-6);
        assert_eq!(rows[0].polluted_1, 0.0);
    }

    #[test]
    fn figure4_mu0_split_is_four_sevenths() {
        let cells = figure4_panel(&InitialCondition::Delta).unwrap();
        for cell in cells.iter().filter(|c| c.mu == 0.0) {
            assert!((cell.split.safe_merge - 4.0 / 7.0).abs() < 1e-9);
            assert!((cell.split.safe_split - 3.0 / 7.0).abs() < 1e-9);
        }
        // Polluted merge stays below 8 % everywhere on the δ panel
        // (Section VII-E).
        for cell in &cells {
            assert!(
                cell.split.polluted_merge < 0.08,
                "d={} mu={}: {}",
                cell.d,
                cell.mu,
                cell.split.polluted_merge
            );
        }
    }

    #[test]
    fn figure5_proportions_behave() {
        let points = vec![0, 20_000, 100_000];
        let series = figure5_series(500, 0.3, 0.2, &points).unwrap();
        assert_eq!(series.len(), 3);
        assert!((series[0].safe - 1.0).abs() < 1e-12);
        assert!(series[2].safe < series[1].safe);
        assert!(series.iter().all(|p| p.polluted < 0.025));
        let grid = figure5_sample_points();
        assert_eq!(grid.len(), 51);
        assert_eq!(grid[50], 100_000);
    }

    #[test]
    fn k_sweep_is_monotone_at_the_ends() {
        let sweep = k_sweep(0.2, 0.8, &InitialCondition::Delta).unwrap();
        assert_eq!(sweep.len(), 7);
        let (k1, s1, p1) = sweep[0];
        let (k7, s7, p7) = sweep[6];
        assert_eq!((k1, k7), (1, 7));
        assert!(s1 >= s7);
        assert!(p1 <= p7);
    }

    #[test]
    fn render_table_aligns() {
        let s = render_table(
            &["mu", "value"],
            &[
                vec!["0.1".into(), "12.0".into()],
                vec!["0.25".into(), "7.5".into()],
            ],
        );
        assert!(s.contains("mu"));
        assert!(s.lines().count() == 4);
    }
}
