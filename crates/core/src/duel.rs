//! Adversary-vs-defense duels: one countermeasure evaluated through both
//! model halves at once.
//!
//! A duel pits a [`pollux_adversary::Strategy`] against a
//! [`pollux_defense::Defense`] and answers one question — *what long-run
//! polluted fraction does the defended overlay sustain?* — twice:
//!
//! * **analytically**: the defense folds into the Figure-2 transition
//!   probabilities ([`crate::ClusterChain::build_with_defense`]), the
//!   sparse pipeline evaluates `E(T_S)`, `E(T_P)`, and the
//!   renewal–reward closed form
//!   [`crate::ClusterAnalysis::steady_state_fractions`] gives the exact
//!   long-run polluted fraction of the regenerating overlay;
//! * **empirically**: the regeneration-mode whole-overlay DES
//!   ([`crate::des_overlay::run_des_overlay_duel`]) measures the share
//!   of churn events landing on polluted clusters.
//!
//! The two estimates are tied together with a renewal-adjusted Wilson
//! interval ([`renewal_wilson`]): successive events of one cluster are
//! correlated over a renewal cycle, so the binomial interval is taken at
//! the number of completed cycles — the i.i.d. unit of the renewal
//! process — instead of the raw event count.
//!
//! # Example
//!
//! ```
//! use pollux::duel::{run_duel, DuelConfig};
//! use pollux::{InitialCondition, ModelParams};
//! use pollux_adversary::TargetedStrategy;
//! use pollux_defense::InducedChurn;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = ModelParams::paper_defaults().with_mu(0.25).with_d(0.9);
//! let strategy = TargetedStrategy::new(params.k(), params.nu()).unwrap();
//! let defense = InducedChurn::new(0.1)?;
//! let config = DuelConfig::new(8, 1.0, 600);
//! let outcome = run_duel(
//!     &params,
//!     &InitialCondition::Delta,
//!     &strategy,
//!     &defense,
//!     &config,
//!     2011,
//! )?;
//! assert!(outcome.agrees, "{outcome:?}");
//! assert!(outcome.analytic_polluted < outcome.baseline_polluted);
//! # Ok(())
//! # }
//! ```

use pollux_adversary::Strategy;
use pollux_defense::{Defense, DefenseOutcome};
use pollux_markov::MarkovError;
use pollux_prob::wilson_interval;

use crate::des_overlay::{run_des_overlay_duel, DesOverlayConfig};
use crate::{ClusterAnalysis, ClusterChain, InitialCondition, ModelParams};

/// Configuration of the measured (DES) half of a duel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DuelConfig {
    /// `2^cluster_bits` clusters are simulated.
    pub cluster_bits: u32,
    /// Per-cluster churn rate.
    pub lambda: f64,
    /// Event budget per cluster (the run processes
    /// `max_events_per_cluster · 2^cluster_bits` events).
    pub max_events_per_cluster: u64,
    /// Wilson z-quantile of the agreement interval.
    pub sigmas: f64,
    /// Worker shards of the DES half (see
    /// [`DesOverlayConfig::shards`]); byte-identical output at any value.
    pub shards: usize,
}

impl DuelConfig {
    /// A duel configuration with the default agreement quantile
    /// (`sigmas = 4`) and a single DES shard.
    pub fn new(cluster_bits: u32, lambda: f64, max_events_per_cluster: u64) -> Self {
        DuelConfig {
            cluster_bits,
            lambda,
            max_events_per_cluster,
            sigmas: 4.0,
            shards: 1,
        }
    }

    /// Overrides the agreement quantile.
    pub fn with_sigmas(mut self, sigmas: f64) -> Self {
        self.sigmas = sigmas;
        self
    }

    /// Sets the DES worker-shard count (min 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

/// The renewal-adjusted Wilson interval of a long-run fraction estimated
/// from `polluted_events / total_events` over `cycles` completed renewal
/// cycles.
///
/// Events within one cycle are dependent (a polluted event is typically
/// followed by more of them), so the i.i.d. sample count of the estimator
/// is the number of cycles, not the number of events: the interval is the
/// Wilson score interval at `cycles` trials with the fraction's success
/// count scaled accordingly. Returns `(0, 1)` when nothing was observed.
pub fn renewal_wilson(polluted_events: u64, total_events: u64, cycles: u64, z: f64) -> (f64, f64) {
    if total_events == 0 || cycles == 0 {
        return (0.0, 1.0);
    }
    let p_hat = polluted_events as f64 / total_events as f64;
    let successes = ((p_hat * cycles as f64).round() as u64).min(cycles);
    wilson_interval(successes, cycles, z)
}

/// Runs one duel: analytical and measured steady-state pollution of the
/// defended overlay, with the undefended ([`pollux_defense::NullDefense`])
/// analytical value as the baseline.
///
/// Deterministic in every argument (the DES half is seeded).
///
/// # Errors
///
/// Propagates analysis construction and linear-algebra failures.
pub fn run_duel<S: Strategy + Sync, D: Defense + Sync + ?Sized>(
    params: &ModelParams,
    initial: &InitialCondition,
    strategy: &S,
    defense: &D,
    config: &DuelConfig,
    seed: u64,
) -> Result<DefenseOutcome, MarkovError> {
    let baseline = ClusterAnalysis::new(params, initial.clone())?;
    let (_, baseline_polluted) = baseline.steady_state_fractions()?;
    run_duel_with_baseline(
        params,
        initial,
        strategy,
        defense,
        config,
        seed,
        baseline_polluted,
    )
}

/// As [`run_duel`] with a precomputed baseline (callers sweeping several
/// defenses over one cell compute the undefended analysis once).
///
/// # Errors
///
/// As [`run_duel`].
pub fn run_duel_with_baseline<S: Strategy + Sync, D: Defense + Sync + ?Sized>(
    params: &ModelParams,
    initial: &InitialCondition,
    strategy: &S,
    defense: &D,
    config: &DuelConfig,
    seed: u64,
    baseline_polluted: f64,
) -> Result<DefenseOutcome, MarkovError> {
    // Analytical half: defense-modified chain through the (sparse-first)
    // pipeline.
    let chain = ClusterChain::build_with_defense(params, defense);
    let analysis = ClusterAnalysis::from_chain(chain, initial.clone())?;
    let analytic_safe_events = analysis.expected_safe_events()?;
    let analytic_polluted_events = analysis.expected_polluted_events()?;
    let (analytic_safe, analytic_polluted) = analysis.steady_state_fractions()?;

    // Measured half: regeneration-mode whole-overlay DES.
    // Half of every cluster's budget is warm-up: the event-class process
    // regenerates at absorptions but mixes slowly on sticky parameter
    // corners, and the fresh-δ transient is safe-heavy — an unwarmed
    // share under-reports pollution by O(1/budget), which a z = 5
    // interval over 10⁵ cycles is narrow enough to expose.
    let des_config = DesOverlayConfig::new(
        config.cluster_bits,
        config.lambda,
        config.max_events_per_cluster << config.cluster_bits,
    )
    .with_regeneration()
    .with_warmup_events(config.max_events_per_cluster / 2)
    .with_shards(config.shards);
    let report = run_des_overlay_duel(params, initial, strategy, defense, &des_config, seed);
    let (_, des_polluted) = report.steady_state_fractions();
    let (des_lo, des_hi) = renewal_wilson(
        report.polluted_event_total,
        report.events - report.warmup_events,
        report.measured_cycles,
        config.sigmas,
    );

    Ok(DefenseOutcome {
        defense: defense.name().into(),
        analytic_safe_events,
        analytic_polluted_events,
        analytic_safe,
        analytic_polluted,
        des_polluted,
        des_lo,
        des_hi,
        baseline_polluted,
        events: report.events,
        cycles: report.absorbed,
        agrees: analytic_polluted >= des_lo && analytic_polluted <= des_hi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_adversary::TargetedStrategy;
    use pollux_defense::{IncarnationRefresh, NullDefense};

    fn setup() -> (ModelParams, TargetedStrategy) {
        let params = ModelParams::paper_defaults().with_mu(0.25).with_d(0.9);
        let strategy = TargetedStrategy::new(params.k(), params.nu()).unwrap();
        (params, strategy)
    }

    #[test]
    fn null_duel_matches_its_own_baseline_and_the_des() {
        let (params, strategy) = setup();
        let config = DuelConfig::new(8, 1.0, 800);
        let outcome = run_duel(
            &params,
            &InitialCondition::Delta,
            &strategy,
            &NullDefense::new(),
            &config,
            7,
        )
        .unwrap();
        assert_eq!(outcome.defense, "none");
        assert_eq!(outcome.analytic_polluted, outcome.baseline_polluted);
        assert_eq!(outcome.reduction(), 0.0);
        assert!(outcome.agrees, "{outcome:?}");
        assert!(outcome.cycles > 1000);
    }

    #[test]
    fn refresh_duel_reduces_pollution_and_agrees() {
        let (params, strategy) = setup();
        let config = DuelConfig::new(8, 1.0, 800);
        let outcome = run_duel(
            &params,
            &InitialCondition::Delta,
            &strategy,
            &IncarnationRefresh::new(5.0, 0.8).unwrap(),
            &config,
            11,
        )
        .unwrap();
        assert!(outcome.agrees, "{outcome:?}");
        assert!(outcome.reduction() > 0.3, "{outcome:?}");
        assert!(outcome.measurably_improves(), "{outcome:?}");
    }

    #[test]
    fn duel_is_deterministic_per_seed() {
        let (params, strategy) = setup();
        let config = DuelConfig::new(6, 1.0, 400);
        let defense = IncarnationRefresh::new(10.0, 0.5).unwrap();
        let a = run_duel(
            &params,
            &InitialCondition::Delta,
            &strategy,
            &defense,
            &config,
            3,
        )
        .unwrap();
        let b = run_duel(
            &params,
            &InitialCondition::Delta,
            &strategy,
            &defense,
            &config,
            3,
        )
        .unwrap();
        assert_eq!(a, b);
        let c = run_duel(
            &params,
            &InitialCondition::Delta,
            &strategy,
            &defense,
            &config,
            4,
        )
        .unwrap();
        assert_ne!(a.des_polluted, c.des_polluted);
    }

    #[test]
    fn renewal_wilson_degenerate_and_width() {
        assert_eq!(renewal_wilson(0, 0, 0, 4.0), (0.0, 1.0));
        assert_eq!(renewal_wilson(10, 100, 0, 4.0), (0.0, 1.0));
        let (lo, hi) = renewal_wilson(500, 10_000, 700, 4.0);
        assert!(lo < 0.05 && hi > 0.05);
        // More cycles tighten the interval.
        let (lo2, hi2) = renewal_wilson(5_000, 100_000, 7_000, 4.0);
        assert!(hi2 - lo2 < hi - lo);
    }
}
