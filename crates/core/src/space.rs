use pollux_markov::StateSpace;

use crate::{ClusterState, ModelParams, StateClass};

/// The enumerated state space `Ω` with its Figure-1 partition.
///
/// States are enumerated in lexicographic `(s, x, y)` order, which makes
/// index assignment deterministic and stable across runs.
///
/// # Example
///
/// ```
/// use pollux::{ModelParams, ModelSpace};
///
/// let space = ModelSpace::new(&ModelParams::paper_defaults());
/// assert_eq!(space.len(), 288);
/// assert_eq!(space.transient_safe().len() + space.transient_polluted().len(), 216);
/// ```
#[derive(Debug, Clone)]
pub struct ModelSpace {
    params: ModelParams,
    space: StateSpace<ClusterState>,
    transient_safe: Vec<usize>,
    transient_polluted: Vec<usize>,
    safe_merge: Vec<usize>,
    safe_split: Vec<usize>,
    polluted_merge: Vec<usize>,
    polluted_split: Vec<usize>,
}

impl ModelSpace {
    /// Enumerates `Ω` for `params`.
    pub fn new(params: &ModelParams) -> Self {
        let mut space = StateSpace::new();
        for s in 0..=params.max_spare() {
            for x in 0..=params.core_size() {
                for y in 0..=s {
                    space.insert(ClusterState::new(s, x, y));
                }
            }
        }
        let classify = |idx_class: StateClass| {
            space.indices_where(|st: &ClusterState| st.classify(params) == idx_class)
        };
        ModelSpace {
            params: *params,
            transient_safe: classify(StateClass::TransientSafe),
            transient_polluted: classify(StateClass::TransientPolluted),
            safe_merge: classify(StateClass::SafeMerge),
            safe_split: classify(StateClass::SafeSplit),
            polluted_merge: classify(StateClass::PollutedMerge),
            polluted_split: classify(StateClass::PollutedSplit),
            space,
        }
    }

    /// The parameters the space was built for.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Number of states `|Ω|`.
    pub fn len(&self) -> usize {
        self.space.len()
    }

    /// `true` when the space is empty (never: `Ω` always contains merge
    /// states).
    pub fn is_empty(&self) -> bool {
        self.space.is_empty()
    }

    /// Index of a state.
    ///
    /// # Panics
    ///
    /// Panics when the state lies outside `Ω` (programming error in model
    /// code — states are always produced by the transition builder).
    pub fn index(&self, state: &ClusterState) -> usize {
        self.space
            .index_of(state)
            .unwrap_or_else(|| panic!("state {state} outside Ω"))
    }

    /// State at an index.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn state(&self, index: usize) -> &ClusterState {
        self.space.state(index)
    }

    /// Iterates `(index, state)` in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &ClusterState)> {
        self.space.iter()
    }

    /// Indices of the transient safe subset `S`.
    pub fn transient_safe(&self) -> &[usize] {
        &self.transient_safe
    }

    /// Indices of the transient polluted subset `P`.
    pub fn transient_polluted(&self) -> &[usize] {
        &self.transient_polluted
    }

    /// Indices of the safe-merge absorbing class `AmS`.
    pub fn safe_merge(&self) -> &[usize] {
        &self.safe_merge
    }

    /// Indices of the safe-split absorbing class `AℓS`.
    pub fn safe_split(&self) -> &[usize] {
        &self.safe_split
    }

    /// Indices of the polluted-merge absorbing class `AmP`.
    pub fn polluted_merge(&self) -> &[usize] {
        &self.polluted_merge
    }

    /// Indices of the (unreachable) polluted-split states.
    pub fn polluted_split(&self) -> &[usize] {
        &self.polluted_split
    }

    /// All transient indices (`S ∪ P`), increasing.
    pub fn transient(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .transient_safe
            .iter()
            .chain(self.transient_polluted.iter())
            .copied()
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_partition_sizes() {
        let space = ModelSpace::new(&ModelParams::paper_defaults());
        // |Ω| = 288 (Figure 1 caption).
        assert_eq!(space.len(), 288);
        // s = 0: 8 x-values, y = 0 → 8 states split c+1 = 3 safe / 5 polluted… per x.
        assert_eq!(space.safe_merge().len(), 3);
        assert_eq!(space.polluted_merge().len(), 5);
        // s = 7: 8 x-values × 8 y-values.
        assert_eq!(space.safe_split().len(), 3 * 8);
        assert_eq!(space.polluted_split().len(), 5 * 8);
        // Transient band: s = 1..6 → Σ (s+1) = 27 y-combinations × 8 x.
        assert_eq!(space.transient_safe().len(), 27 * 3);
        assert_eq!(space.transient_polluted().len(), 27 * 5);
        // Everything accounted for.
        let total = space.transient_safe().len()
            + space.transient_polluted().len()
            + space.safe_merge().len()
            + space.safe_split().len()
            + space.polluted_merge().len()
            + space.polluted_split().len();
        assert_eq!(total, 288);
        assert!(!space.is_empty());
    }

    #[test]
    fn index_roundtrip() {
        let space = ModelSpace::new(&ModelParams::paper_defaults());
        for (i, st) in space.iter() {
            assert_eq!(space.index(st), i);
        }
        let st = ClusterState::new(3, 2, 1);
        assert_eq!(*space.state(space.index(&st)), st);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_space_state_panics() {
        let space = ModelSpace::new(&ModelParams::paper_defaults());
        space.index(&ClusterState::new(9, 0, 0));
    }

    #[test]
    fn transient_is_sorted_union() {
        let space = ModelSpace::new(&ModelParams::paper_defaults());
        let t = space.transient();
        assert_eq!(t.len(), 216);
        assert!(t.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn small_parameterization() {
        let params = ModelParams::new(4, 3, 1).unwrap();
        let space = ModelSpace::new(&params);
        // (C+1)(Δ+1)(Δ+2)/2 = 5 * 4 * 5 / 2 = 50.
        assert_eq!(space.len(), 50);
        assert_eq!(space.len(), params.state_count());
    }
}
