//! Event-level Monte-Carlo simulation of a single cluster under attack.
//!
//! This simulator is an *independent implementation* of the process whose
//! transition matrix [`crate::ClusterChain`] builds analytically: it plays
//! the join/leave events, the Property-1 expiries, the randomized
//! maintenance draws and the adversary's decisions (through a pluggable
//! [`Strategy`]) with explicit random draws. Agreement between the two is
//! the reproduction's main internal validity check (`validate_model`
//! binary and the integration suite).

use pollux_adversary::{ClusterView, JoinDecision, Strategy};
use pollux_des::replication;
use pollux_des::stats::{Summary, Welford};
use pollux_prob::{AliasTable, Hypergeometric};
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::{ClusterState, InitialCondition, ModelParams, ModelSpace, StateClass};

/// Where a simulated cluster ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbsorbedIn {
    /// Merged while safe (`AmS`).
    SafeMerge,
    /// Split while safe (`AℓS`).
    SafeSplit,
    /// Merged while polluted (`AmP`).
    PollutedMerge,
    /// Split while polluted — reachable only when Rule 2 is ablated.
    PollutedSplit,
    /// The event cap was reached before absorption.
    Censored,
}

/// Outcome of one replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Events observed in transient safe states (`T_S`).
    pub safe_events: u64,
    /// Events observed in transient polluted states (`T_P`).
    pub polluted_events: u64,
    /// Length of the first safe sojourn (`T_{S,1}`).
    pub first_safe_sojourn: u64,
    /// Length of the first polluted sojourn (`T_{P,1}`).
    pub first_polluted_sojourn: u64,
    /// Terminal class.
    pub absorbed: AbsorbedIn,
}

impl RunOutcome {
    /// Total transient events (`T_S + T_P`).
    pub fn total_events(&self) -> u64 {
        self.safe_events + self.polluted_events
    }
}

/// Simulates one cluster trajectory per replication.
#[derive(Debug, Clone)]
pub struct ClusterSimulator<'a, S: Strategy> {
    params: &'a ModelParams,
    strategy: &'a S,
    /// Safety cap on events per replication (absorption is almost sure but
    /// can be astronomically slow for `d` near 1 — see Table I).
    max_events: u64,
}

impl<'a, S: Strategy> ClusterSimulator<'a, S> {
    /// Creates a simulator with the default event cap of 10⁶ per
    /// replication.
    pub fn new(params: &'a ModelParams, strategy: &'a S) -> Self {
        ClusterSimulator {
            params,
            strategy,
            max_events: 1_000_000,
        }
    }

    /// Overrides the per-replication event cap.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Applies exactly one join/leave event to a transient `state` and
    /// returns the successor.
    ///
    /// # Panics
    ///
    /// Panics when `state` is absorbing or inconsistent with the
    /// parameters.
    pub fn step<R: rand::Rng + ?Sized>(&self, state: ClusterState, rng: &mut R) -> ClusterState {
        assert!(state.is_consistent(self.params), "state {state} outside Ω");
        assert!(
            state.classify(self.params).is_transient(),
            "cannot step an absorbed cluster ({state})"
        );
        let (s, x, y) = apply_event(self.params, self.strategy, state.s, state.x, state.y, rng);
        ClusterState::new(s, x, y)
    }

    /// Runs one trajectory from `start`.
    ///
    /// # Panics
    ///
    /// Panics when `start` is inconsistent with the parameters.
    pub fn run<R: rand::Rng + ?Sized>(&self, start: ClusterState, rng: &mut R) -> RunOutcome {
        assert!(
            start.is_consistent(self.params),
            "start state {start} outside Ω"
        );
        let p = self.params;
        let delta = p.max_spare();
        let quorum = p.quorum();

        let (mut s, mut x, mut y) = (start.s, start.x, start.y);
        let mut safe_events = 0u64;
        let mut polluted_events = 0u64;
        let mut first_safe = 0u64;
        let mut first_polluted = 0u64;
        let mut safe_sojourns_closed = false;
        let mut polluted_sojourns_closed = false;

        let absorbed = loop {
            // Classify the current state.
            if s == 0 {
                break if x > quorum {
                    AbsorbedIn::PollutedMerge
                } else {
                    AbsorbedIn::SafeMerge
                };
            }
            if s == delta {
                break if x > quorum {
                    AbsorbedIn::PollutedSplit
                } else {
                    AbsorbedIn::SafeSplit
                };
            }
            let polluted = x > quorum;
            if polluted {
                polluted_events += 1;
                if !polluted_sojourns_closed {
                    first_polluted += 1;
                }
                safe_sojourns_closed = safe_events > 0;
            } else {
                safe_events += 1;
                if !safe_sojourns_closed {
                    first_safe += 1;
                }
                polluted_sojourns_closed = polluted_events > 0;
            }
            if safe_events + polluted_events >= self.max_events {
                break AbsorbedIn::Censored;
            }

            let (ns, nx, ny) = apply_event(p, self.strategy, s, x, y, rng);
            s = ns;
            x = nx;
            y = ny;
        };

        RunOutcome {
            safe_events,
            polluted_events,
            first_safe_sojourn: first_safe,
            first_polluted_sojourn: first_polluted,
            absorbed,
        }
    }
}

/// Plays one join/leave event from transient state `(s, x, y)` and returns
/// the successor counts. This is the single source of truth for the event
/// semantics, shared by [`ClusterSimulator::run`], [`ClusterSimulator::step`]
/// and the overlay simulator.
fn apply_event<S: Strategy, R: rand::Rng + ?Sized>(
    p: &ModelParams,
    strategy: &S,
    s: usize,
    x: usize,
    y: usize,
    rng: &mut R,
) -> (usize, usize, usize) {
    let (c_size, delta) = (p.core_size(), p.max_spare());
    let (mu, d, k) = (p.mu(), p.d(), p.k());
    let toggles = p.toggles();
    let quorum = p.quorum();
    let polluted = x > quorum;
    let (mut s, mut x, mut y) = (s, x, y);

    if rng.random_bool(0.5) {
        // Join event.
        let malicious = mu > 0.0 && rng.random_bool(mu);
        let accept = if polluted && toggles.rule2 {
            let view =
                ClusterView::new(c_size, delta, s, x, y).expect("simulated states stay consistent");
            strategy.join_decision(&view, malicious) == JoinDecision::Accept
        } else {
            true
        };
        if accept {
            s += 1;
            if malicious {
                y += 1;
            }
        }
    } else {
        // Leave event.
        let hits_core = rng.random_range(0..c_size + s) < c_size;
        if !hits_core {
            // Spare selected.
            let malicious = rng.random_range(0..s) < y;
            if !malicious {
                s -= 1;
            } else if !survives(d, y, rng) {
                s -= 1;
                y -= 1;
            }
        } else {
            // Core selected.
            let malicious = rng.random_range(0..c_size) < x;
            if !malicious {
                // Honest core member leaves.
                if polluted && toggles.bias {
                    if y > 0 {
                        x += 1;
                        y -= 1;
                    }
                    s -= 1;
                } else {
                    let (nx, ny) = maintenance(c_size, k, s, x, y, rng);
                    x = nx;
                    y = ny;
                    s -= 1;
                }
            } else if !survives(d, x, rng) {
                // Forced out by Property 1.
                if x - 1 > quorum && toggles.bias {
                    if y > 0 {
                        y -= 1; // malicious replacement keeps x
                    } else {
                        x -= 1; // honest replacement
                    }
                    s -= 1;
                } else {
                    let (nx, ny) = maintenance(c_size, k, s, x - 1, y, rng);
                    x = nx;
                    y = ny;
                    s -= 1;
                }
            } else if !polluted && toggles.rule1 {
                // Valid malicious core member: Rule 1?
                let view = ClusterView::new(c_size, delta, s, x, y)
                    .expect("simulated states stay consistent");
                if strategy.voluntary_core_leave(&view) {
                    let (nx, ny) = maintenance(c_size, k, s, x - 1, y, rng);
                    x = nx;
                    y = ny;
                    s -= 1;
                }
            }
        }
    }
    (s, x, y)
}

/// `true` when none of the `count` malicious identifiers expired at this
/// event (probability `d^count`).
fn survives<R: rand::Rng + ?Sized>(d: f64, count: usize, rng: &mut R) -> bool {
    if d <= 0.0 {
        return false;
    }
    rng.random_bool(d.powi(count as i32).clamp(0.0, 1.0))
}

/// Plays the `protocol_k` maintenance draw after a core departure left
/// `x_rem` malicious members in the core: demote `k−1` of `C−1`, promote
/// `k` from the pool of `s+k−1`. Returns the new `(x, y)`; the caller
/// shrinks `s`.
fn maintenance<R: rand::Rng + ?Sized>(
    c_size: usize,
    k: usize,
    s: usize,
    x_rem: usize,
    y: usize,
    rng: &mut R,
) -> (usize, usize) {
    debug_assert!(s >= 1);
    let a = Hypergeometric::new(c_size as u64 - 1, x_rem as u64, k as u64 - 1)
        .expect("parameters bounded by C")
        .sample(rng) as usize;
    let pool_mal = y + a;
    let b = Hypergeometric::new((s + k - 1) as u64, pool_mal as u64, k as u64)
        .expect("pool holds at least k members when s >= 1")
        .sample(rng) as usize;
    (x_rem - a + b, pool_mal - b)
}

/// Aggregated Monte-Carlo estimates over many replications.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Estimate of `E(T_S)`.
    pub safe_events: Summary,
    /// Estimate of `E(T_P)`.
    pub polluted_events: Summary,
    /// Estimate of `E(T_{S,1})`.
    pub first_safe_sojourn: Summary,
    /// Estimate of `E(T_{P,1})`.
    pub first_polluted_sojourn: Summary,
    /// Empirical absorption frequencies
    /// `(AmS, AℓS, AmP, AℓP)`.
    pub absorption: (f64, f64, f64, f64),
    /// Replications that hit the event cap (excluded from the absorption
    /// frequencies, included in the sojourn estimates as censored values).
    pub censored: u64,
    /// Total replications.
    pub replications: u64,
}

/// Runs `replications` independent trajectories (parallel over `threads`)
/// with starts drawn from `initial`, and aggregates the estimates.
///
/// # Panics
///
/// Panics on an invalid initial condition for these parameters, or when
/// `replications == 0`.
pub fn estimate<S: Strategy + Sync>(
    params: &ModelParams,
    initial: &InitialCondition,
    strategy: &S,
    replications: usize,
    master_seed: u64,
    threads: usize,
) -> SimReport {
    assert!(replications > 0, "need at least one replication");
    let space = ModelSpace::new(params);
    let alpha = initial
        .distribution(&space)
        .expect("initial condition must be valid for the parameters");
    let start_table = AliasTable::new(&alpha).expect("alpha is a distribution");
    let start_states: Vec<ClusterState> = space.iter().map(|(_, st)| *st).collect();

    let outcomes: Vec<RunOutcome> =
        replication::run_parallel(replications, master_seed, threads, |_, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let start = start_states[start_table.sample(&mut rng)];
            // A start on an absorbing state is legal (β never produces one,
            // δ never either, but Custom may): it absorbs immediately.
            if start.classify(params).is_absorbing() {
                return RunOutcome {
                    safe_events: 0,
                    polluted_events: 0,
                    first_safe_sojourn: 0,
                    first_polluted_sojourn: 0,
                    absorbed: match start.classify(params) {
                        StateClass::SafeMerge => AbsorbedIn::SafeMerge,
                        StateClass::SafeSplit => AbsorbedIn::SafeSplit,
                        StateClass::PollutedMerge => AbsorbedIn::PollutedMerge,
                        _ => AbsorbedIn::PollutedSplit,
                    },
                };
            }
            ClusterSimulator::new(params, strategy).run(start, &mut rng)
        });

    let mut safe = Welford::new();
    let mut polluted = Welford::new();
    let mut first_s = Welford::new();
    let mut first_p = Welford::new();
    let mut counts = [0u64; 4];
    let mut censored = 0u64;
    for o in &outcomes {
        safe.push(o.safe_events as f64);
        polluted.push(o.polluted_events as f64);
        first_s.push(o.first_safe_sojourn as f64);
        first_p.push(o.first_polluted_sojourn as f64);
        match o.absorbed {
            AbsorbedIn::SafeMerge => counts[0] += 1,
            AbsorbedIn::SafeSplit => counts[1] += 1,
            AbsorbedIn::PollutedMerge => counts[2] += 1,
            AbsorbedIn::PollutedSplit => counts[3] += 1,
            AbsorbedIn::Censored => censored += 1,
        }
    }
    let absorbed_total = (replications as u64 - censored).max(1) as f64;
    SimReport {
        safe_events: safe.summary(1.96),
        polluted_events: polluted.summary(1.96),
        first_safe_sojourn: first_s.summary(1.96),
        first_polluted_sojourn: first_p.summary(1.96),
        absorption: (
            counts[0] as f64 / absorbed_total,
            counts[1] as f64 / absorbed_total,
            counts[2] as f64 / absorbed_total,
            counts[3] as f64 / absorbed_total,
        ),
        censored,
        replications: replications as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_adversary::TargetedStrategy;

    fn params(mu: f64, d: f64, k: usize) -> ModelParams {
        ModelParams::paper_defaults()
            .with_mu(mu)
            .with_d(d)
            .with_k(k)
            .unwrap()
    }

    #[test]
    fn mu_zero_matches_random_walk_closed_form() {
        let p = params(0.0, 0.9, 1);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let report = estimate(&p, &InitialCondition::Delta, &strategy, 20_000, 1, 4);
        // E(T_S) = 12, split 4/7 merge vs 3/7 split.
        assert!(
            (report.safe_events.mean - 12.0).abs() < 0.3,
            "{}",
            report.safe_events
        );
        assert_eq!(report.polluted_events.mean, 0.0);
        assert!((report.absorption.0 - 4.0 / 7.0).abs() < 0.02);
        assert!((report.absorption.1 - 3.0 / 7.0).abs() < 0.02);
        assert_eq!(report.absorption.2, 0.0);
        assert_eq!(report.censored, 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = params(0.2, 0.8, 1);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let a = estimate(&p, &InitialCondition::Delta, &strategy, 500, 7, 4);
        let b = estimate(&p, &InitialCondition::Delta, &strategy, 500, 7, 2);
        assert_eq!(a.safe_events.mean, b.safe_events.mean);
        assert_eq!(a.absorption, b.absorption);
    }

    #[test]
    fn pollution_appears_with_adversary() {
        let p = params(0.3, 0.9, 1);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let report = estimate(&p, &InitialCondition::Beta, &strategy, 4000, 3, 4);
        assert!(
            report.polluted_events.mean > 0.5,
            "{}",
            report.polluted_events
        );
        assert!(report.absorption.2 > 0.05);
    }

    #[test]
    fn event_cap_censors() {
        let p = params(0.3, 0.99, 1);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let sim = ClusterSimulator::new(&p, &strategy).with_max_events(50);
        let mut rng = StdRng::seed_from_u64(5);
        let mut censored = 0;
        for _ in 0..200 {
            let out = sim.run(ClusterState::new(3, 0, 0), &mut rng);
            if out.absorbed == AbsorbedIn::Censored {
                censored += 1;
                assert_eq!(out.total_events(), 50);
            }
        }
        assert!(censored > 0);
    }

    #[test]
    fn first_sojourns_bounded_by_totals() {
        let p = params(0.25, 0.9, 1);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let sim = ClusterSimulator::new(&p, &strategy);
        for _ in 0..500 {
            let o = sim.run(ClusterState::new(3, 0, 0), &mut rng);
            assert!(o.first_safe_sojourn <= o.safe_events);
            assert!(o.first_polluted_sojourn <= o.polluted_events);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn inconsistent_start_panics() {
        let p = params(0.1, 0.5, 1);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        ClusterSimulator::new(&p, &strategy).run(ClusterState::new(9, 0, 0), &mut rng);
    }
}
