use pollux_markov::{CompetingChains, MarkovError};

use crate::{ClusterChain, InitialCondition, ModelParams};

/// One point of the overlay-level trajectories of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionPoint {
    /// Number of overlay events `m`.
    pub m: u64,
    /// `E(N_S(m))/n` — expected proportion of safe (transient) clusters.
    pub safe: f64,
    /// `E(N_P(m))/n` — expected proportion of polluted (transient)
    /// clusters.
    pub polluted: f64,
}

/// The overlay-level model of Section VIII: `n` clusters evolving as
/// competing Markov chains (each overlay event hits one uniformly chosen
/// cluster).
///
/// # Example
///
/// ```
/// use pollux::{InitialCondition, ModelParams, OverlayModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let params = ModelParams::paper_defaults().with_mu(0.2).with_d(0.9);
/// let model = OverlayModel::new(&params, InitialCondition::Delta, 500)?;
/// let series = model.proportion_series(&[0, 1000, 10_000])?;
/// assert!((series[0].safe - 1.0).abs() < 1e-12);
/// assert!(series[2].safe < series[1].safe);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OverlayModel {
    chain: ClusterChain,
    competing: CompetingChains,
    alpha: Vec<f64>,
    n: u64,
}

impl OverlayModel {
    /// Builds the model for `n` clusters under `params` and `initial`.
    ///
    /// # Errors
    ///
    /// Propagates chain-construction and distribution failures; `n` must
    /// be at least 1.
    pub fn new(
        params: &ModelParams,
        initial: InitialCondition,
        n: u64,
    ) -> Result<Self, MarkovError> {
        let chain = ClusterChain::build(params);
        let alpha = initial.distribution(chain.space())?;
        let competing = CompetingChains::new(chain.dtmc(), n)?;
        Ok(OverlayModel {
            chain,
            competing,
            alpha,
            n,
        })
    }

    /// Number of clusters `n`.
    pub fn n_clusters(&self) -> u64 {
        self.n
    }

    /// The per-cluster chain.
    pub fn chain(&self) -> &ClusterChain {
        &self.chain
    }

    /// The parameters of the model.
    pub fn params(&self) -> &ModelParams {
        self.chain.space().params()
    }

    /// Theorem 2 evaluated at the given (sorted, increasing) event counts.
    ///
    /// # Errors
    ///
    /// Propagates validation failures of the competing-chain evaluation.
    pub fn proportion_series(
        &self,
        sample_points: &[u64],
    ) -> Result<Vec<ProportionPoint>, MarkovError> {
        let space = self.chain.space();
        let safe: Vec<usize> = space.transient_safe().to_vec();
        let polluted: Vec<usize> = space.transient_polluted().to_vec();
        let rows =
            self.competing
                .proportion_series(&self.alpha, &[&safe, &polluted], sample_points)?;
        Ok(sample_points
            .iter()
            .zip(rows)
            .map(|(&m, row)| ProportionPoint {
                m,
                safe: row[0],
                polluted: row[1],
            })
            .collect())
    }

    /// The maximum of `E(N_P(m))/n` over the given sample points, with its
    /// arg-max.
    ///
    /// # Errors
    ///
    /// Propagates the series evaluation failures.
    pub fn peak_polluted(&self, sample_points: &[u64]) -> Result<(u64, f64), MarkovError> {
        let series = self.proportion_series(sample_points)?;
        let best = series
            .iter()
            .max_by(|a, b| {
                a.polluted
                    .partial_cmp(&b.polluted)
                    .expect("proportions are finite")
            })
            .expect("series is nonempty for nonempty sample points");
        Ok((best.m, best.polluted))
    }

    /// Theorem-1 cross-check: the marginal probability that a designated
    /// cluster sits in a given global state after `m` events.
    ///
    /// # Errors
    ///
    /// Propagates validation failures.
    pub fn theorem1_state_probability(
        &self,
        state_index: usize,
        m: u64,
    ) -> Result<f64, MarkovError> {
        self.competing
            .theorem1_state_probability(&self.alpha, state_index, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(mu: f64, d: f64, n: u64) -> OverlayModel {
        let params = ModelParams::paper_defaults().with_mu(mu).with_d(d);
        OverlayModel::new(&params, InitialCondition::Delta, n).unwrap()
    }

    #[test]
    fn starts_fully_safe_and_decays() {
        let m = model(0.2, 0.9, 100);
        let series = m.proportion_series(&[0, 100, 1000, 50_000]).unwrap();
        assert!((series[0].safe - 1.0).abs() < 1e-12);
        assert_eq!(series[0].polluted, 0.0);
        assert!(series[1].safe <= 1.0);
        assert!(series[3].safe < series[2].safe);
        // Everything is eventually absorbed.
        let tail = m.proportion_series(&[2_000_000]).unwrap();
        assert!(tail[0].safe < 1e-3);
        assert!(tail[0].polluted < 1e-3);
    }

    #[test]
    fn polluted_proportion_is_small_for_delta_start() {
        // Figure 5's headline: the expected proportion of polluted
        // clusters stays low (the paper reports < 2.2 % for its settings).
        let m = model(0.3, 0.9, 500);
        let points: Vec<u64> = (0..=40).map(|i| i * 2500).collect();
        let (_, peak) = m.peak_polluted(&points).unwrap();
        assert!(peak < 0.05, "peak polluted proportion {peak}");
        assert!(peak > 0.0);
    }

    #[test]
    fn larger_n_stretches_time() {
        let small = model(0.2, 0.9, 500);
        let large = model(0.2, 0.9, 1500);
        let at = [30_000u64];
        let s = small.proportion_series(&at).unwrap();
        let l = large.proportion_series(&at).unwrap();
        assert!(l[0].safe > s[0].safe);
    }

    #[test]
    fn theorem1_cross_check() {
        let m = model(0.2, 0.8, 7);
        let space = m.chain().space();
        let idx = space.transient_safe()[0];
        let via_t2 = {
            let series = m
                .competing
                .proportion_series(&m.alpha, &[&[idx]], &[25])
                .unwrap();
            series[0][0]
        };
        let via_t1 = m.theorem1_state_probability(idx, 25).unwrap();
        assert!((via_t1 - via_t2).abs() < 1e-10, "{via_t1} vs {via_t2}");
    }

    #[test]
    fn accessors() {
        let m = model(0.1, 0.5, 42);
        assert_eq!(m.n_clusters(), 42);
        assert_eq!(m.params().mu(), 0.1);
    }
}
