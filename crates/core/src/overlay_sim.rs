//! Monte-Carlo simulation of the overlay level: `n` clusters competing
//! for transitions (Section VIII).
//!
//! Each overlay event hits one uniformly chosen cluster, which then plays
//! the same event semantics as [`crate::simulation`]. In the paper's
//! semantics an absorbed cluster stays absorbed (its chain has reached a
//! closed state); this simulator validates Theorem 2 under exactly those
//! semantics, and additionally offers a *regeneration* mode — absorbed
//! clusters are replaced by fresh ones drawn from the initial condition,
//! modelling the new clusters that split/merge create — which the paper
//! leaves as future work.

use pollux_adversary::Strategy;
use pollux_prob::AliasTable;
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::simulation::ClusterSimulator;
use crate::{ClusterState, InitialCondition, ModelParams, ModelSpace, StateClass};

/// Configuration of an overlay-level run.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlaySimConfig {
    /// Number of clusters `n`.
    pub n_clusters: usize,
    /// Event counts at which to record the safe/polluted proportions
    /// (sorted, increasing).
    pub sample_points: Vec<u64>,
    /// When `true`, an absorbed cluster is immediately replaced by a fresh
    /// cluster drawn from the initial condition (beyond-paper extension).
    pub regenerate: bool,
}

/// One recorded trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlayTrajectory {
    /// `(m, safe proportion, polluted proportion)` at each sample point.
    pub points: Vec<(u64, f64, f64)>,
    /// Cumulative count of polluted-merge absorptions observed (the
    /// pollution-propagation events).
    pub polluted_merges: u64,
    /// Cumulative count of all absorptions observed.
    pub absorptions: u64,
}

/// Runs one overlay trajectory.
///
/// # Panics
///
/// Panics when the configuration is degenerate (`n_clusters == 0` or
/// unsorted sample points) or the initial condition is invalid.
pub fn run_overlay<S: Strategy>(
    params: &ModelParams,
    initial: &InitialCondition,
    strategy: &S,
    config: &OverlaySimConfig,
    seed: u64,
) -> OverlayTrajectory {
    assert!(config.n_clusters > 0, "need at least one cluster");
    assert!(
        config.sample_points.windows(2).all(|w| w[0] <= w[1]),
        "sample points must be sorted"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let space = ModelSpace::new(params);
    let alpha = initial
        .distribution(&space)
        .expect("initial condition must be valid for the parameters");
    let table = AliasTable::new(&alpha).expect("alpha is a distribution");
    let states: Vec<ClusterState> = space.iter().map(|(_, st)| *st).collect();

    let mut clusters: Vec<ClusterState> = (0..config.n_clusters)
        .map(|_| states[table.sample(&mut rng)])
        .collect();

    let sim = ClusterSimulator::new(params, strategy);
    let mut points = Vec::with_capacity(config.sample_points.len());
    let mut polluted_merges = 0u64;
    let mut absorptions = 0u64;
    let mut m: u64 = 0;

    let record = |clusters: &[ClusterState], m: u64, points: &mut Vec<(u64, f64, f64)>| {
        let mut safe = 0usize;
        let mut polluted = 0usize;
        for st in clusters {
            match st.classify(params) {
                StateClass::TransientSafe => safe += 1,
                StateClass::TransientPolluted => polluted += 1,
                _ => {}
            }
        }
        let n = clusters.len() as f64;
        points.push((m, safe as f64 / n, polluted as f64 / n));
    };

    for &target in &config.sample_points {
        while m < target {
            let idx = rng.random_range(0..clusters.len());
            let st = clusters[idx];
            m += 1;
            if st.classify(params).is_absorbing() {
                // The chain sits in a closed state: the event is a
                // self-loop (paper semantics), or the cluster regenerates.
                if config.regenerate {
                    clusters[idx] = states[table.sample(&mut rng)];
                }
                continue;
            }
            let next = sim.step(st, &mut rng);
            let class = next.classify(params);
            if class.is_absorbing() {
                absorptions += 1;
                if class == StateClass::PollutedMerge {
                    polluted_merges += 1;
                }
            }
            clusters[idx] = next;
        }
        record(&clusters, m, &mut points);
    }

    OverlayTrajectory {
        points,
        polluted_merges,
        absorptions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OverlayModel;
    use pollux_adversary::TargetedStrategy;

    fn params(mu: f64, d: f64) -> ModelParams {
        ModelParams::paper_defaults().with_mu(mu).with_d(d)
    }

    #[test]
    fn trajectory_matches_theorem2_in_expectation() {
        let p = params(0.25, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let sample_points = vec![0, 2000, 8000, 20_000];
        let config = OverlaySimConfig {
            n_clusters: 400,
            sample_points: sample_points.clone(),
            regenerate: false,
        };
        // Average several runs to shrink Monte-Carlo noise.
        let runs = 12;
        let mut mean_safe = vec![0.0; sample_points.len()];
        let mut mean_polluted = vec![0.0; sample_points.len()];
        for seed in 0..runs {
            let tr = run_overlay(&p, &InitialCondition::Delta, &strategy, &config, seed);
            for (i, &(_, s, pol)) in tr.points.iter().enumerate() {
                mean_safe[i] += s / runs as f64;
                mean_polluted[i] += pol / runs as f64;
            }
        }
        let model = OverlayModel::new(&p, InitialCondition::Delta, 400).unwrap();
        let expect = model.proportion_series(&sample_points).unwrap();
        for (i, e) in expect.iter().enumerate() {
            assert!(
                (mean_safe[i] - e.safe).abs() < 0.03,
                "safe at m={}: sim {} vs model {}",
                e.m,
                mean_safe[i],
                e.safe
            );
            assert!(
                (mean_polluted[i] - e.polluted).abs() < 0.02,
                "polluted at m={}: sim {} vs model {}",
                e.m,
                mean_polluted[i],
                e.polluted
            );
        }
    }

    #[test]
    fn regeneration_keeps_the_overlay_alive() {
        let p = params(0.2, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let config = OverlaySimConfig {
            n_clusters: 100,
            sample_points: vec![50_000],
            regenerate: true,
        };
        let tr = run_overlay(&p, &InitialCondition::Delta, &strategy, &config, 9);
        let (_, safe, polluted) = tr.points[0];
        // With regeneration the transient mass never drains.
        assert!(safe + polluted > 0.5, "safe {safe} polluted {polluted}");
        assert!(tr.absorptions > 100);
    }

    #[test]
    fn without_regeneration_everything_absorbs() {
        let p = params(0.2, 0.5);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let config = OverlaySimConfig {
            n_clusters: 50,
            sample_points: vec![200_000],
            regenerate: false,
        };
        let tr = run_overlay(&p, &InitialCondition::Delta, &strategy, &config, 11);
        let (_, safe, polluted) = tr.points[0];
        assert!(safe + polluted < 0.05, "safe {safe} polluted {polluted}");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = params(0.2, 0.8);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let config = OverlaySimConfig {
            n_clusters: 30,
            sample_points: vec![1000, 5000],
            regenerate: false,
        };
        let a = run_overlay(&p, &InitialCondition::Beta, &strategy, &config, 123);
        let b = run_overlay(&p, &InitialCondition::Beta, &strategy, &config, 123);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_panics() {
        let p = params(0.1, 0.5);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let config = OverlaySimConfig {
            n_clusters: 0,
            sample_points: vec![],
            regenerate: false,
        };
        run_overlay(&p, &InitialCondition::Delta, &strategy, &config, 1);
    }
}
