//! `pollux-des`-driven whole-overlay simulation at production scale.
//!
//! [`crate::simulation`] replays one cluster per replication and
//! [`crate::overlay_sim`] steps `n` abstract chain states round-robin;
//! this module runs the **actual overlay** — every node of every cluster —
//! as a continuous-time discrete-event simulation on the
//! [`pollux_des`] engine, at 10⁵–10⁶ nodes:
//!
//! * every cluster owns an independent Poisson arrival stream whose
//!   arrivals flip the paper's balanced join/leave coin
//!   ([`pollux_des::churn::EventMix`]); the superposition of `n`
//!   equal-rate streams delivers events to uniformly random clusters,
//!   exactly the competing-chains semantics of Section VIII;
//! * nodes are concrete: each cluster's core/spare membership slots
//!   carry one malicious flag per node, packed into u64 bitsets (one
//!   *bit* per membership — the only node attribute the dynamics ever
//!   read back). Joins draw fresh 256-bit [`pollux_overlay::NodeId`]s
//!   inside the cluster's prefix region ([`pollux_overlay::Label`]) and
//!   validate the prefix routing invariant (the identifiers are
//!   *write-only* for the dynamics, so nothing retains them),
//!   departures clear slots, and the `protocol_k` maintenance procedure
//!   moves real nodes between the core and spare sets (the
//!   hypergeometric kernel `τ(x, a, b)` of the analytical chain emerges
//!   from the uniform draws rather than being sampled directly);
//! * the adversary is pluggable: any [`pollux_adversary::Strategy`]
//!   drives Rule 1, Rule 2 and the maintenance bias, gated by the
//!   [`crate::AdversaryToggles`] carried in [`ModelParams`];
//! * the defense is pluggable too: [`run_des_overlay_duel`] consults a
//!   [`pollux_defense::Defense`] inside the event loop — induced-churn
//!   preemptions, join-admission shaping (including the cluster-size
//!   taper) and incarnation-refresh evictions — turning a one-sided
//!   attack run into an adversary-vs-defense duel. A
//!   [`pollux_defense::NullDefense`] consumes no randomness, so its runs
//!   are bit-identical to plain [`run_des_overlay`] calls;
//! * **regeneration mode** ([`DesOverlayConfig::regenerate`]) re-seeds an
//!   absorbed cluster from the initial condition on its next arrival
//!   (mirroring `overlay_sim`'s flag: the arrival that performs the
//!   re-seed is the renewal–reward "+1" event), so the overlay runs
//!   forever and the share of events landing on polluted clusters
//!   estimates the long-run polluted fraction that
//!   [`crate::ClusterAnalysis::steady_state_fractions`] predicts in
//!   closed form; live safe/polluted cluster fractions are additionally
//!   sampled on the fixed time grid of
//!   [`DesOverlayConfig::sample_times`].
//!
//! # The RNG-stream determinism contract
//!
//! Every cluster owns its **own counter-seeded random stream**: cluster
//! `c` of a run seeded with `seed` draws exclusively from a
//! [`rand::rngs::StdRng`] seeded with the SplitMix64 derivation
//! [`pollux_des::replication::replication_seed`]`(seed, c)` — the same
//! scheme the sweep pool uses per grid cell. The stream drives, in a
//! fixed cluster-local order, the cluster's initial-state draw, its node
//! identifiers, its Poisson inter-arrival gaps and every churn outcome.
//! Clusters are probabilistically independent in the model, so giving
//! each one a private stream changes no distribution — but it makes every
//! cluster's entire sample path a function of `(seed, c)` **alone**,
//! independent of how cluster events interleave in wall-clock or
//! simulated time. Event interleaving, shard assignment and shard count
//! therefore cannot affect results: a run is *shard-invariant by
//! construction*, and the engine exploits exactly that.
//!
//! # The sharded engine
//!
//! [`DesOverlayConfig::shards`] partitions the clusters into contiguous
//! ranges, one per worker shard (`std::thread::scope`, as in the
//! `pollux-sweep` pool). Each shard runs its own event loop over its
//! cluster subset with a **local** future-event list holding one pending
//! arrival per cluster — either the index-based 4-ary heap
//! ([`pollux_des::EventQueue`]) or the O(1)-amortized calendar queue
//! ([`pollux_des::CalendarQueue`]), selected per run by
//! [`DesOverlayConfig::queue`]; both implement the same strict
//! `(time, seq)` dispatch contract, so the backends are byte-identical
//! (test- and CI-enforced). The shard then reports per-cluster
//! statistics that the caller merges **in cluster order** — integer
//! tallies by summation, sojourn and lifetime moments by ordered Welford
//! merges, occupancy-grid counts by summation. Because the merge order
//! is cluster order regardless of the partition, `shards = 1` and
//! `shards = 64` produce byte-identical [`DesOverlayReport`]s
//! (test-enforced, like the sweep pool's thread-count invariance).
//! [`DesOverlayConfig::with_work_stealing`] swaps the static one-range-
//! per-worker plan for a finer blocked partition that workers claim off
//! a shared cursor in a seed-derived order — rebalancing wall-clock
//! without touching report bytes, since block outcomes still merge in
//! cluster order.
//!
//! The event budget is likewise defined shard-invariantly:
//! [`DesOverlayConfig::max_events`] is distributed over the clusters as
//! fixed per-cluster budgets (`⌈max_events / n⌉` for the first
//! `max_events mod n` clusters, `⌊max_events / n⌋` for the rest), so
//! which events a run processes never depends on a global, order-coupled
//! cutoff. In regeneration mode every budget is consumed exactly, so a
//! run processes exactly `max_events` events; without regeneration a
//! cluster also stops at absorption, and a cluster still transient when
//! its budget runs out is censored with its partial counts, as in
//! [`crate::simulation::estimate`].
//!
//! The hot event loop is allocation-free: each shard's future-event list
//! is pre-sized to one pending arrival per cluster and popped/refilled
//! with the fused `replace_earliest` (one queue operation per event on
//! either backend), the event payload is a bare `u32` cluster index (no
//! boxing), per-cluster hot state lives in structure-of-arrays columns
//! grouped by access phase — one 64-byte *draw line* per cluster (the
//! RNG state plus the batch of exponential gaps drawn through
//! [`pollux_prob::exponential::fill`]) and one 64-byte *bookkeeping
//! line* (six-byte counter pack, cycle tallies, budget, warm-up, sample
//! cursor), so an event's whole footprint is a handful of prefetchable
//! lines — membership flags are packed bitsets, and the maintenance
//! draw uses two reusable scratch buffers. A 10⁶-node overlay processes 10⁶ events in well
//! under a second per shard.
//!
//! Per-cluster sojourn counts (`T_S`, `T_P` in events) and the absorption
//! split are accumulated with Welford statistics, so one run yields `n`
//! independent samples of the quantities the cluster-level Markov chain
//! predicts analytically (Relations 5–6 and 9) — the cross-validation
//! consumed by `pollux-sweep`'s `DesValidation` scenarios far beyond the
//! state-space sizes the matrix can enumerate.
//!
//! # Example
//!
//! ```
//! use pollux::des_overlay::{run_des_overlay, DesOverlayConfig};
//! use pollux::{ClusterAnalysis, InitialCondition, ModelParams};
//! use pollux_adversary::TargetedStrategy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = ModelParams::paper_defaults().with_mu(0.2).with_d(0.8);
//! let strategy = TargetedStrategy::new(params.k(), params.nu()).unwrap();
//! // 2^8 = 256 clusters ≈ 2 500 nodes.
//! let config = DesOverlayConfig::new(8, 1.0, 200_000);
//! let report = run_des_overlay(&params, &InitialCondition::Delta, &strategy, &config, 42);
//! assert_eq!(report.n_clusters, 256);
//! assert!(report.initial_nodes >= 2_500);
//!
//! // Sharding never changes the bytes, only the wall clock.
//! let sharded = config.clone().with_shards(4);
//! let report4 = run_des_overlay(&params, &InitialCondition::Delta, &strategy, &sharded, 42);
//! assert_eq!(report, report4);
//!
//! // The measured mean sojourn agrees with the Markov prediction.
//! let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta)?;
//! let predicted = analysis.expected_safe_events()?;
//! let measured = report.safe_events;
//! assert!((measured.mean - predicted).abs() < 5.0 * measured.ci_half_width);
//! # Ok(())
//! # }
//! ```

use pollux_adversary::{ClusterView, JoinDecision, Strategy};
use pollux_defense::{effective_join_admission, effective_survival, Defense, NullDefense};
use pollux_des::churn::{ChurnKind, EventMix};
use pollux_des::replication::replication_seed;
use pollux_des::stats::{Summary, Welford};
use pollux_des::{CalendarQueue, EventQueue, FutureEventList, SimTime};
use pollux_obs::mem::MemoryAudit;
use pollux_obs::{
    DesEventKind, MetricsRecorder, NullRecorder, Recorder, Registry, TraceRecord, TraceRing,
};
#[cfg(debug_assertions)]
use pollux_overlay::Label;
use pollux_overlay::NodeId;
use pollux_prob::{exponential, AliasTable};
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::{
    AdversaryToggles, ClusterState, InitialCondition, ModelParams, ModelSpace, StateClass,
};

pub use pollux_des::QueueBackend;

/// Configuration of a whole-overlay discrete-event run.
#[derive(Debug, Clone, PartialEq)]
pub struct DesOverlayConfig {
    /// The overlay holds `n = 2^cluster_bits` clusters (a power of two so
    /// cluster labels tile the identifier space evenly). `10` is ~10⁴
    /// nodes, `14` is ~1.6·10⁵, `17` is ~1.3·10⁶ at the paper's sizes.
    pub cluster_bits: u32,
    /// Per-cluster churn rate (events per simulated time unit); the
    /// overlay-wide arrival rate is `n · lambda`.
    pub lambda: f64,
    /// Global cap on churn events, distributed over the clusters as fixed
    /// per-cluster budgets (see the module docs): cluster `c` processes at
    /// most `⌊max_events / n⌋ + (c < max_events mod n)` events before it
    /// is censored (or, in regeneration mode, before its stream ends). In
    /// regeneration mode a run therefore processes exactly `max_events`
    /// events; without it, at most.
    pub max_events: u64,
    /// When `true`, an absorbed cluster is re-seeded from the initial
    /// condition by its **next arrival** (the event is consumed by the
    /// regeneration, counting toward neither sojourn — the "+1" of the
    /// renewal–reward cycle), so the overlay never drains and long-run
    /// fractions are measurable.
    pub regenerate: bool,
    /// Fixed time grid (sorted, increasing) at which the live
    /// safe/polluted cluster fractions are recorded into
    /// [`DesOverlayReport::occupancy`]. Points beyond the end of the run
    /// (no cluster processed an event at or after them) are dropped.
    pub sample_times: Vec<f64>,
    /// Per-cluster warm-up: each cluster's first `warmup_events` events
    /// are processed normally (they drive the dynamics, sojourns and
    /// occupancy exactly like any other event) but are excluded from the
    /// steady-state event tallies, so the safe-heavy transient of the
    /// fresh-start initial condition cannot bias the long-run fractions.
    /// Steady-state scenarios typically spend half the budget here.
    pub warmup_events: u64,
    /// Worker shards the clusters are partitioned across (contiguous
    /// ranges, one OS thread each when > 1). Affects wall-clock time
    /// only, never output bytes; clamped to the cluster count.
    pub shards: usize,
    /// Which future-event list the shards run on. Both backends obey the
    /// same dispatch contract, so this choice — like the shard count —
    /// affects wall-clock time only, never output bytes (test-enforced).
    /// [`QueueBackend::Auto`] resolves via the `POLLUX_DES_QUEUE`
    /// environment variable (CI's zero-plumbing diff lever), defaulting
    /// to the heap.
    pub queue: QueueBackend,
    /// When `true` (and `shards > 1`), workers claim whole contiguous
    /// *cluster blocks* from a shared queue instead of owning one fixed
    /// range each, so a worker whose clusters absorb early steals the
    /// remaining blocks of a slow one. Clusters never migrate mid-block:
    /// stealing moves work only at block (epoch) boundaries, the claim
    /// schedule is seed-derived, and outcomes are merged in block =
    /// cluster order — byte identity at any shard count is preserved by
    /// construction.
    pub steal: bool,
    /// Deterministic skew of the stolen block sizes (0 = even blocks).
    /// Larger values make the block lengths progressively uneven, which
    /// stresses the stealing scheduler (and the fuzz oracle's shard-
    /// identity pair) without affecting output bytes.
    pub steal_skew: u32,
}

impl DesOverlayConfig {
    /// The historical one-shot configuration: no regeneration, no time
    /// grid, a single shard.
    pub fn new(cluster_bits: u32, lambda: f64, max_events: u64) -> Self {
        DesOverlayConfig {
            cluster_bits,
            lambda,
            max_events,
            regenerate: false,
            sample_times: Vec::new(),
            warmup_events: 0,
            shards: 1,
            queue: QueueBackend::Auto,
            steal: false,
            steal_skew: 0,
        }
    }

    /// Switches regeneration mode on.
    pub fn with_regeneration(mut self) -> Self {
        self.regenerate = true;
        self
    }

    /// Sets the occupancy sample grid.
    ///
    /// # Panics
    ///
    /// Panics when the grid is not sorted increasing.
    pub fn with_sample_times(mut self, sample_times: Vec<f64>) -> Self {
        assert!(
            sample_times.windows(2).all(|w| w[0] <= w[1]),
            "sample times must be sorted"
        );
        self.sample_times = sample_times;
        self
    }

    /// Sets the per-cluster warm-up (events excluded from the
    /// steady-state tallies).
    pub fn with_warmup_events(mut self, warmup_events: u64) -> Self {
        self.warmup_events = warmup_events;
        self
    }

    /// Sets the worker-shard count (min 1). Thread parallelism over
    /// contiguous cluster ranges; byte-identical output at any value.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Selects the future-event-list backend (byte-identical output
    /// either way; see [`DesOverlayConfig::queue`]).
    pub fn with_queue_backend(mut self, queue: QueueBackend) -> Self {
        self.queue = queue;
        self
    }

    /// Switches deterministic work-stealing on with the given block-size
    /// skew (0 = even blocks; see [`DesOverlayConfig::steal`]).
    pub fn with_work_stealing(mut self, steal_skew: u32) -> Self {
        self.steal = true;
        self.steal_skew = steal_skew;
        self
    }
}

/// Aggregated results of one whole-overlay run.
#[derive(Debug, Clone, PartialEq)]
pub struct DesOverlayReport {
    /// Number of clusters simulated.
    pub n_clusters: usize,
    /// Nodes alive at `t = 0` (core plus spares over all clusters).
    pub initial_nodes: u64,
    /// Sum of per-cluster peak concurrent node counts — the arena
    /// capacity the run actually touched (each cluster's peak is reached
    /// at its own time, so this bounds the instantaneous overlay-wide
    /// peak from above).
    pub peak_nodes: u64,
    /// Churn events processed.
    pub events: u64,
    /// Simulation clock at the end of the run (the latest event time over
    /// all clusters).
    pub end_time: f64,
    /// Per-cluster safe sojourn `T_S` (events; censored clusters included
    /// with their partial counts, as in [`crate::simulation::estimate`]).
    pub safe_events: Summary,
    /// Per-cluster polluted sojourn `T_P` (events).
    pub polluted_events: Summary,
    /// Per-cluster lifetime to absorption in simulated time units
    /// (absorbed clusters only).
    pub lifetime: Summary,
    /// Empirical absorption frequencies `(AmS, AℓS, AmP, AℓP)` over the
    /// absorbed clusters.
    pub absorption: (f64, f64, f64, f64),
    /// Raw absorption counts `[AmS, AℓS, AmP, AℓP]` (for exact binomial
    /// confidence intervals on the frequencies).
    pub absorption_counts: [u64; 4],
    /// Completed absorptions. Without regeneration this is the number of
    /// absorbed clusters; with it, the number of completed renewal cycles
    /// over all clusters.
    pub absorbed: u64,
    /// Clusters still transient when their event budget ran out. In
    /// regeneration mode these are mid-cycle clusters (their partial
    /// sojourns are **not** pushed into the per-cycle summaries).
    pub censored: u64,
    /// Events that found their cluster in a safe transient state.
    pub safe_event_total: u64,
    /// Events that found their cluster in a polluted transient state.
    pub polluted_event_total: u64,
    /// Events discarded as per-cluster warm-up (see
    /// [`DesOverlayConfig::warmup_events`]); they are processed normally
    /// but excluded from the steady-state tallies above.
    pub warmup_events: u64,
    /// Completed cycles whose absorption fell **after** their cluster's
    /// warm-up window — the independent-trial count behind the
    /// renewal-adjusted Wilson interval on the steady-state fractions.
    pub measured_cycles: u64,
    /// Events consumed by regenerations (regeneration mode only; the
    /// renewal–reward "+1" per cycle).
    pub regen_events: u64,
    /// `(t, safe fraction, polluted fraction)` of **live** clusters at
    /// each reached point of [`DesOverlayConfig::sample_times`].
    pub occupancy: Vec<(f64, f64, f64)>,
}

impl DesOverlayReport {
    /// Measured long-run `(safe, polluted)` event fractions: the share of
    /// post-warm-up events that found their cluster safe resp. polluted —
    /// the regeneration-mode estimator of
    /// [`crate::ClusterAnalysis::steady_state_fractions`].
    ///
    /// The event-indexed class process regenerates at every absorption,
    /// so it converges geometrically to its long-run law — but from a
    /// fresh δ start the transient is *safe-heavy* and, on slowly-mixing
    /// parameter corners, biases an unwarmed share low by `O(1/budget)`.
    /// Validation scenarios therefore discard each cluster's first
    /// [`DesOverlayConfig::warmup_events`] events (typically half the
    /// budget), after which the residual bias is exponentially small.
    pub fn steady_state_fractions(&self) -> (f64, f64) {
        let total = (self.events - self.warmup_events).max(1) as f64;
        (
            self.safe_event_total as f64 / total,
            self.polluted_event_total as f64 / total,
        )
    }

    /// Mean events per completed renewal cycle (the decorrelation length
    /// of the steady-state estimator).
    pub fn mean_cycle_events(&self) -> f64 {
        self.events as f64 / self.absorbed.max(1) as f64
    }
}

/// Per-shard execution statistics of a sharded run (wall-clock only —
/// deliberately **not** part of [`DesOverlayReport`], whose bytes must be
/// identical across shard counts).
#[derive(Debug, Clone, PartialEq)]
pub struct DesShardStats {
    /// Events processed by each shard, in shard order.
    pub shard_events: Vec<u64>,
    /// Wall-clock seconds each shard's event loop ran.
    pub shard_seconds: Vec<f64>,
}

impl DesShardStats {
    /// Number of shards that ran.
    pub fn shards(&self) -> usize {
        self.shard_events.len()
    }

    /// Per-shard throughput in events per second, in shard order.
    pub fn shard_events_per_sec(&self) -> Vec<f64> {
        self.shard_events
            .iter()
            .zip(&self.shard_seconds)
            .map(|(&e, &s)| if s > 0.0 { e as f64 / s } else { 0.0 })
            .collect()
    }
}

/// Where an absorbed cluster ended up (compact per-cluster status).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum ClusterStatus {
    Transient,
    SafeMerge,
    SafeSplit,
    PollutedMerge,
    PollutedSplit,
}

/// Batched inter-arrival gaps kept per cluster: one
/// [`exponential::fill`] refill covers this many arrivals.
const GAP_BATCH: usize = 4;

/// The per-cluster membership counters and loop-control bytes — the
/// fields *every* event reads — packed into six bytes so ten clusters'
/// worth fit one cache line. One column of the SoA hot-record split: the
/// old 128-byte-aligned AoS record forced every event to pull two cache
/// lines of cluster state even when it only needed the counters; the
/// split lets each phase of the dispatch loop stream just the column it
/// touches (counters here, RNG + gap buffers only on draws, cycle
/// tallies only on class accounting and absorption).
#[derive(Debug, Clone, Copy)]
struct HotCounters {
    /// Spare-set size `s`.
    s: u8,
    /// Malicious core count `x` (cached; ground truth is the flag bits).
    x: u8,
    /// Malicious spare count `y`.
    y: u8,
    /// Largest `s` the cluster ever held (peak-residency accounting).
    peak_s: u8,
    /// Next unconsumed gap-buffer slot (`GAP_BATCH` forces a refill).
    gap_idx: u8,
    status: ClusterStatus,
}

impl Default for HotCounters {
    fn default() -> Self {
        HotCounters {
            s: 0,
            x: 0,
            y: 0,
            peak_s: 0,
            // An empty gap buffer: the first draw forces a refill.
            gap_idx: GAP_BATCH as u8,
            status: ClusterStatus::Transient,
        }
    }
}

/// Per-cycle tallies: touched once per event (one class increment) and
/// read out at absorption. 16 bytes.
#[derive(Debug, Clone, Copy, Default)]
struct CycleTallies {
    /// Birth time of the current cycle (0 for the initial population).
    birth: f64,
    /// Events observed in transient safe states this cycle.
    safe_ev: u32,
    /// Events observed in transient polluted states this cycle.
    poll_ev: u32,
}

/// Per-cluster draw state: the private counter-seeded stream and its
/// batch of pre-drawn exponential gaps. Exactly one cache line (32 + 32
/// bytes, 64-aligned), so the draw side of an event costs one line fill
/// — and one prefetch hint covers it.
#[derive(Debug)]
#[repr(align(64))]
struct DrawState {
    /// The cluster's private counter-seeded stream.
    rng: StdRng,
    /// Buffered exponential inter-arrival gaps (front to back).
    gaps: [f64; GAP_BATCH],
}

/// Per-cluster accounting, one 64-aligned line per cluster: the
/// membership counters, cycle tallies, event budget, warm-up window and
/// occupancy cursor that a single event's bookkeeping touches. These
/// started as five separate SoA columns; profiling the 2²⁰-cluster
/// ladder rung (where the working set is ~10× L3) showed the dispatch
/// loop stalling on ~6 random line fills per event — one per column —
/// so the always-touched-together bookkeeping now shares one line and
/// one prefetch hint, while the phase-specific columns (draw state,
/// flag bitsets, Welford accumulators) stay split.
#[derive(Debug, Clone, Default)]
#[repr(align(64))]
struct ClusterAcct {
    /// Per-cycle class tallies.
    cycle: CycleTallies,
    /// Remaining event budget.
    budget: u64,
    /// Remaining warm-up events.
    warmup: u64,
    /// Membership counters + loop-control bytes.
    ctr: HotCounters,
    /// Next unrecorded occupancy-grid index.
    next_sample: u32,
}

/// Reads bit `i` of a packed-u64 bitset.
#[inline]
fn bit_get(words: &[u64], i: usize) -> bool {
    (words[i >> 6] >> (i & 63)) & 1 == 1
}

/// Writes bit `i` of a packed-u64 bitset.
#[inline]
fn bit_set(words: &mut [u64], i: usize, v: bool) {
    let mask = 1u64 << (i & 63);
    let w = &mut words[i >> 6];
    if v {
        *w |= mask;
    } else {
        *w &= !mask;
    }
}

/// Number of `u64` words a bitset of `bits` bits needs.
#[inline]
fn bitset_words(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// What one shard hands back for merging: integer tallies plus
/// per-cluster moment accumulators in cluster order (so the caller's
/// ordered merge is identical for every partition of the same overlay).
struct ShardOutcome {
    events: u64,
    safe_event_total: u64,
    poll_event_total: u64,
    warmup_total: u64,
    measured_cycles: u64,
    regen_events: u64,
    absorption_counts: [u64; 4],
    censored: u64,
    initial_nodes: u64,
    peak_nodes: u64,
    end_time: f64,
    /// Per-cluster accumulators, local cluster order (= global order for
    /// contiguous shards).
    safe_w: Vec<Welford>,
    poll_w: Vec<Welford>,
    life_w: Vec<Welford>,
    /// Per-grid-point counts of clusters observed transient-safe /
    /// transient-polluted (exact integers: summable in any order).
    occ_safe: Vec<u64>,
    occ_poll: Vec<u64>,
    /// Wall-clock seconds of the shard's event loop.
    seconds: f64,
}

/// One worker shard: clusters `[lo, lo + count)` of the overlay,
/// structure-of-arrays, with a local future-event list. Generic over a
/// [`Recorder`] so the observed and unobserved hot loops are separate
/// monomorphizations: with [`NullRecorder`] every recording call inlines
/// to nothing and the loop is the uninstrumented machine code — and over
/// a [`FutureEventList`] so each queue backend gets its own fully inlined
/// hot loop.
///
/// Per-cluster state is split into SoA columns by access pattern (see
/// [`HotCounters`]), and node state is two packed-u64 **malicious-flag
/// bitsets**: a node's only attribute the dynamics ever read is its
/// flag (identifiers are drawn, prefix-checked and discarded — see
/// [`ShardSim::draw_id`]), so the old handle arena + membership tables
/// (9 bytes/node) collapse into one bit per core/spare *slot*
/// (~0.125 bytes/node). Set membership is positional: core slot `r` of
/// local cluster `l` is bit `l·C + r` of `core_mal`, spare slot `j` is
/// bit `l·Δ + j` of `spare_mal`, and only slots below the cached sizes
/// are alive. Every uniform draw over members/slots is unchanged, so
/// per-cluster RNG streams — and therefore all reports — are
/// bit-identical to the arena engine's.
struct ShardSim<'a, S: Strategy, D: Defense + ?Sized, R: Recorder, Q: FutureEventList<u32>> {
    params: &'a ModelParams,
    strategy: &'a S,
    defense: &'a D,
    mix: EventMix,
    lambda: f64,
    /// First global cluster index of the shard.
    lo: usize,
    cluster_bits: u32,
    regenerate: bool,
    /// The initial distribution's sampler and the state table (shared,
    /// read-only).
    table: &'a AliasTable,
    states: &'a [ClusterState],
    sample_times: &'a [f64],
    /// SoA columns, local cluster index, grouped by access phase: the
    /// draw line (RNG + gap batch)…
    draw: Vec<DrawState>,
    /// …and the bookkeeping line (counters, cycle tallies, budget,
    /// warm-up, occupancy cursor).
    acct: Vec<ClusterAcct>,
    /// Malicious flags of the core slots: bit `l * C + r`.
    core_mal: Vec<u64>,
    /// Malicious flags of the spare slots: bit `l * Δ + j` (alive below
    /// `ctr[l].s` only).
    spare_mal: Vec<u64>,
    /// Prefix label of each cluster (depth `cluster_bits`). Read only by
    /// the prefix-routing debug assertions, so release builds skip the
    /// per-cluster allocations entirely.
    #[cfg(debug_assertions)]
    labels: Vec<Label>,
    queue: Q,
    /// Reusable maintenance scratch: demotion slot indices, then the
    /// candidate pool as 0/1 malicious flags (pool members carry no
    /// other identity).
    pool: Vec<u32>,
    /// Reusable maintenance scratch: core slots awaiting promotion.
    empty_slots: Vec<usize>,
    // Accumulators.
    events: u64,
    safe_event_total: u64,
    poll_event_total: u64,
    warmup_total: u64,
    measured_cycles: u64,
    regen_events: u64,
    absorption_counts: [u64; 4],
    end_time: f64,
    safe_w: Vec<Welford>,
    poll_w: Vec<Welford>,
    life_w: Vec<Welford>,
    occ_safe: Vec<u64>,
    occ_poll: Vec<u64>,
    /// The shard's private recorder — consulted only *after* an event's
    /// effects are committed, never drawing randomness (the inertness
    /// contract of `pollux-obs`).
    rec: R,
}

impl<S: Strategy, D: Defense + ?Sized, R: Recorder, Q: FutureEventList<u32>>
    ShardSim<'_, S, D, R, Q>
{
    fn c_size(&self) -> usize {
        self.params.core_size()
    }

    fn delta(&self) -> usize {
        self.params.max_spare()
    }

    /// The next buffered inter-arrival gap of cluster `l`, refilling the
    /// batch from the cluster's stream when it runs dry.
    fn next_gap(&mut self, l: usize) -> f64 {
        let mut gi = self.acct[l].ctr.gap_idx as usize;
        if gi == GAP_BATCH {
            let d = &mut self.draw[l];
            exponential::fill(&mut d.rng, self.lambda, &mut d.gaps);
            gi = 0;
        }
        let g = self.draw[l].gaps[gi];
        self.acct[l].ctr.gap_idx = gi as u8 + 1;
        g
    }

    /// Draws a fresh 256-bit identifier uniformly inside cluster `l`'s
    /// prefix region: random bits with the first `cluster_bits` bits
    /// forced to the global cluster index (PeerCube routes a joiner to
    /// the unique cluster whose label prefixes its identifier, so
    /// conditioning on "this join reached cluster c" is conditioning on
    /// the prefix). The prefix is blended into the leading four bytes in
    /// one masked word operation (`cluster_bits ≤ 24`), not bit by bit.
    fn draw_id(&mut self, l: usize) -> NodeId {
        let mut bytes = [0u8; 32];
        self.draw[l].rng.fill(&mut bytes);
        if self.cluster_bits > 0 {
            let c = (self.lo + l) as u32;
            let shift = 32 - self.cluster_bits;
            let mask = u32::MAX << shift;
            let head = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
            let blended = (head & !mask) | (c << shift);
            bytes[..4].copy_from_slice(&blended.to_be_bytes());
        }
        NodeId::from_bytes(bytes)
    }

    /// `true` when none of `count` malicious identifiers expired at this
    /// event (probability `d_eff^count`), as in the analytical chain.
    /// `d_eff` is the defense-shaped survival probability of the current
    /// cluster (exactly `d` under a neutral defense).
    fn survives(&mut self, l: usize, d_eff: f64, count: usize) -> bool {
        if d_eff <= 0.0 {
            return false;
        }
        self.draw[l]
            .rng
            .random_bool(d_eff.powi(count as i32).clamp(0.0, 1.0))
    }

    /// Removes spare slot `j` of cluster `l` (swap-remove; slot selection
    /// is uniform, so the arrangement never biases the dynamics) and
    /// returns the departing member's malicious flag.
    fn take_spare(&mut self, l: usize, j: usize) -> bool {
        let base = l * self.delta();
        let s = self.acct[l].ctr.s as usize;
        debug_assert!(j < s);
        let mal = bit_get(&self.spare_mal, base + j);
        let last = bit_get(&self.spare_mal, base + s - 1);
        bit_set(&mut self.spare_mal, base + j, last);
        mal
    }

    /// Picks a uniformly random malicious (or, with `malicious == false`,
    /// honest) spare of cluster `l`; returns its slot index.
    fn pick_spare_by_kind(&mut self, l: usize, malicious: bool) -> usize {
        let base = l * self.delta();
        let s = self.acct[l].ctr.s as usize;
        let y = self.acct[l].ctr.y as usize;
        let want = if malicious { y } else { s - y };
        debug_assert!(want > 0);
        let target = self.draw[l].rng.random_range(0..want);
        let mut seen = 0usize;
        for j in 0..s {
            if bit_get(&self.spare_mal, base + j) == malicious {
                if seen == target {
                    return j;
                }
                seen += 1;
            }
        }
        unreachable!("cached y count matches the flag bits");
    }

    /// The `protocol_k` maintenance procedure after the core member in
    /// `leaver_slot` departed (its node already released, the cached `x`
    /// already reflecting the departure): demote `k − 1` uniformly chosen
    /// remaining core members into the candidate pool (the `s` spares
    /// plus the demoted), promote `k` uniformly chosen pool members into
    /// the vacant core slots, and keep the remaining `s − 1` candidates
    /// as the new spare set. The cached malicious counts are updated
    /// incrementally from the demoted/promoted members (no full rescan of
    /// the core).
    fn maintenance(&mut self, l: usize, leaver_slot: usize) {
        let c_size = self.c_size();
        let delta = self.delta();
        let k = self.params.k();
        let s = self.acct[l].ctr.s as usize;
        debug_assert!(s >= 1);

        self.pool.clear();
        self.empty_slots.clear();
        self.empty_slots.push(leaver_slot);
        let mut mal_demoted = 0usize;

        // Demote k − 1 of the C − 1 remaining core members: partial
        // Fisher–Yates over the slot indices, skipping the leaver.
        if k > 1 {
            // `pool` temporarily holds candidate *slots* for demotion.
            for slot in 0..c_size {
                if slot != leaver_slot {
                    self.pool.push(slot as u32);
                }
            }
            for i in 0..k - 1 {
                let j = self.draw[l].rng.random_range(i..self.pool.len());
                self.pool.swap(i, j);
            }
            for i in 0..k - 1 {
                self.empty_slots.push(self.pool[i] as usize);
            }
            self.pool.truncate(k - 1);
            // Replace the demoted slots with their members' malicious
            // flags (the only identity a pool member carries), counting
            // the malicious ones on the way through.
            for entry in self.pool.iter_mut() {
                let mal = bit_get(&self.core_mal, l * c_size + *entry as usize);
                mal_demoted += usize::from(mal);
                *entry = u32::from(mal);
            }
        }

        // The candidate pool: every spare plus the demoted members.
        let base = l * delta;
        for j in 0..s {
            self.pool
                .push(u32::from(bit_get(&self.spare_mal, base + j)));
        }
        debug_assert_eq!(self.pool.len(), s + k - 1);

        // Promote k uniformly chosen candidates into the vacant slots.
        for i in 0..k {
            let j = self.draw[l].rng.random_range(i..self.pool.len());
            self.pool.swap(i, j);
        }
        let mut mal_promoted = 0usize;
        for (i, &slot) in self.empty_slots.iter().enumerate() {
            let mal = self.pool[i] == 1;
            mal_promoted += usize::from(mal);
            bit_set(&mut self.core_mal, l * c_size + slot, mal);
        }
        // The rest of the pool is the new spare set (s − 1 members).
        for (j, &flag) in self.pool[k..].iter().enumerate() {
            bit_set(&mut self.spare_mal, base + j, flag == 1);
        }

        // Incremental count update: the pool held every spare (y
        // malicious) plus the demoted (mal_demoted), of which
        // mal_promoted moved into the core.
        let ctr = &mut self.acct[l].ctr;
        let x_new = ctr.x as usize - mal_demoted + mal_promoted;
        let y_new = ctr.y as usize + mal_demoted - mal_promoted;
        ctr.x = x_new as u8;
        ctr.y = y_new as u8;
        debug_assert_eq!(
            x_new,
            (0..c_size)
                .filter(|&r| bit_get(&self.core_mal, l * c_size + r))
                .count()
        );
        debug_assert_eq!(y_new, self.pool[k..].iter().filter(|&&f| f == 1).count());
    }

    /// Plays one churn event on (transient) cluster `l`, mirroring the
    /// probabilities of the analytical chain at node granularity. The
    /// defense hooks gate in exactly the chain builder's three places;
    /// neutral hooks consume no randomness, so a [`NullDefense`] run's
    /// RNG streams are bit-identical to a defense-free run's.
    ///
    /// Returns what happened, for the event-kind tallies and the tracer;
    /// the return value never feeds back into the dynamics.
    fn churn_event(&mut self, l: usize) -> DesEventKind {
        let c_size = self.c_size();
        let delta = self.delta();
        let quorum = self.params.quorum();
        let mu = self.params.mu();
        let toggles = *self.params.toggles();
        let s = self.acct[l].ctr.s as usize;
        let x = self.acct[l].ctr.x as usize;
        let y = self.acct[l].ctr.y as usize;
        let polluted = x > quorum;

        let view =
            ClusterView::new(c_size, delta, s, x, y).expect("simulated clusters stay inside Ω");
        // Induced churn preempts the event with a forced eviction.
        let eta = self.defense.induced_churn(&view);
        if eta > 0.0 && self.draw[l].rng.random_bool(eta.clamp(0.0, 1.0)) {
            self.induced_eviction(l, polluted, toggles);
            return DesEventKind::InducedEviction;
        }
        let d_eff = effective_survival(self.defense, &view, self.params.d());

        let mix = self.mix;
        match mix.sample(&mut self.draw[l].rng) {
            ChurnKind::Join => {
                // Join-rate shaping (plus the cluster-size taper): the
                // defense may drop the join before the cluster sees it.
                let g = effective_join_admission(self.defense, &view);
                if g < 1.0 && !self.draw[l].rng.random_bool(g.clamp(0.0, 1.0)) {
                    return DesEventKind::JoinRejected;
                }
                let malicious = mu > 0.0 && self.draw[l].rng.random_bool(mu);
                let accept = if polluted && toggles.rule2 {
                    self.strategy.join_decision(&view, malicious) == JoinDecision::Accept
                } else {
                    true
                };
                if accept {
                    let id = self.draw_id(l);
                    #[cfg(debug_assertions)]
                    debug_assert!(self.labels[l].is_prefix_of(&id));
                    let _ = id; // drawn and checked, deliberately not stored
                    bit_set(&mut self.spare_mal, l * delta + s, malicious);
                    let ctr = &mut self.acct[l].ctr;
                    ctr.s += 1;
                    ctr.peak_s = ctr.peak_s.max(ctr.s);
                    if malicious {
                        ctr.y += 1;
                    }
                    DesEventKind::Join
                } else {
                    DesEventKind::JoinRejected
                }
            }
            ChurnKind::Leave => {
                // One uniformly selected member of the C + s present.
                let r = self.draw[l].rng.random_range(0..c_size + s);
                if r >= c_size {
                    // A spare was selected (slot r − C is uniform).
                    let j = r - c_size;
                    let malicious = bit_get(&self.spare_mal, l * delta + j);
                    if !malicious {
                        let _ = self.take_spare(l, j);
                        self.acct[l].ctr.s -= 1;
                        DesEventKind::Leave
                    } else if !self.survives(l, d_eff, y) {
                        // Property 1 (or the defense's incarnation
                        // refresh) forces the expired identifier out.
                        let _ = self.take_spare(l, j);
                        let ctr = &mut self.acct[l].ctr;
                        ctr.s -= 1;
                        ctr.y -= 1;
                        DesEventKind::Leave
                    } else {
                        // A valid malicious spare refuses to leave.
                        DesEventKind::SelfLoop
                    }
                } else {
                    self.core_leave(l, r, polluted, toggles, d_eff)
                }
            }
        }
    }

    /// Handles a leave event that selected core slot `r`, reporting
    /// whether a member actually departed or the event self-looped.
    fn core_leave(
        &mut self,
        l: usize,
        r: usize,
        polluted: bool,
        toggles: AdversaryToggles,
        d_eff: f64,
    ) -> DesEventKind {
        let c_size = self.c_size();
        let delta = self.delta();
        let quorum = self.params.quorum();
        let s = self.acct[l].ctr.s as usize;
        let x = self.acct[l].ctr.x as usize;
        let y = self.acct[l].ctr.y as usize;
        let malicious = bit_get(&self.core_mal, l * c_size + r);

        if !malicious {
            // An honest core member leaves.
            if polluted && toggles.bias {
                // The adversary refills the slot with a malicious spare
                // when it has one (x grows), an honest one otherwise.
                let j = self.pick_spare_by_kind(l, y > 0);
                let promoted = self.take_spare(l, j);
                bit_set(&mut self.core_mal, l * c_size + r, promoted);
                if y > 0 {
                    let ctr = &mut self.acct[l].ctr;
                    ctr.x += 1;
                    ctr.y -= 1;
                }
            } else {
                self.maintenance(l, r);
            }
            self.acct[l].ctr.s -= 1;
            DesEventKind::Leave
        } else if !self.survives(l, d_eff, x) {
            // A malicious core member whose identifier expired is forced
            // out by Property 1.
            let x_rem = x - 1;
            if x_rem > quorum && toggles.bias {
                let j = self.pick_spare_by_kind(l, y > 0);
                let promoted = self.take_spare(l, j);
                bit_set(&mut self.core_mal, l * c_size + r, promoted);
                let ctr = &mut self.acct[l].ctr;
                if y > 0 {
                    ctr.y -= 1; // malicious replacement keeps x
                } else {
                    ctr.x -= 1; // honest replacement
                }
            } else {
                self.acct[l].ctr.x -= 1;
                self.maintenance(l, r);
            }
            self.acct[l].ctr.s -= 1;
            DesEventKind::Leave
        } else if !polluted && toggles.rule1 {
            // A valid malicious core member of a safe cluster may leave
            // voluntarily (Rule 1) to re-roll the maintenance dice.
            let view =
                ClusterView::new(c_size, delta, s, x, y).expect("simulated clusters stay inside Ω");
            if self.strategy.voluntary_core_leave(&view) {
                self.acct[l].ctr.x -= 1;
                self.maintenance(l, r);
                self.acct[l].ctr.s -= 1;
                DesEventKind::Leave
            } else {
                DesEventKind::SelfLoop
            }
        } else {
            // A valid malicious core member otherwise stays: self-loop.
            DesEventKind::SelfLoop
        }
    }

    /// The defense's forced eviction of a uniformly chosen member of
    /// cluster `l` — the DES mirror of the chain builder's induced-churn
    /// kernel. Unlike a voluntary leave, a valid malicious member cannot
    /// refuse (the protocol revokes the membership), so no survival roll
    /// happens; the replacement machinery is the usual one.
    fn induced_eviction(&mut self, l: usize, polluted: bool, toggles: AdversaryToggles) {
        let c_size = self.c_size();
        let quorum = self.params.quorum();
        let s = self.acct[l].ctr.s as usize;
        let x = self.acct[l].ctr.x as usize;
        let y = self.acct[l].ctr.y as usize;

        let r = self.draw[l].rng.random_range(0..c_size + s);
        if r >= c_size {
            // Evicted spare (slot r − C is uniform).
            let j = r - c_size;
            let malicious = self.take_spare(l, j);
            let ctr = &mut self.acct[l].ctr;
            ctr.s -= 1;
            if malicious {
                ctr.y -= 1;
            }
        } else {
            let malicious = bit_get(&self.core_mal, l * c_size + r);
            if malicious {
                // The defense expels a captured seat.
                if x - 1 > quorum && toggles.bias {
                    let j = self.pick_spare_by_kind(l, y > 0);
                    let promoted = self.take_spare(l, j);
                    bit_set(&mut self.core_mal, l * c_size + r, promoted);
                    let ctr = &mut self.acct[l].ctr;
                    if y > 0 {
                        ctr.y -= 1; // malicious replacement keeps x
                    } else {
                        ctr.x -= 1; // honest replacement
                    }
                } else {
                    self.acct[l].ctr.x -= 1;
                    self.maintenance(l, r);
                }
            } else if polluted && toggles.bias {
                // The adversary exploits the vacancy like any other.
                let j = self.pick_spare_by_kind(l, y > 0);
                let promoted = self.take_spare(l, j);
                bit_set(&mut self.core_mal, l * c_size + r, promoted);
                if y > 0 {
                    let ctr = &mut self.acct[l].ctr;
                    ctr.x += 1;
                    ctr.y -= 1;
                }
            } else {
                self.maintenance(l, r);
            }
            self.acct[l].ctr.s -= 1;
        }
    }

    /// Records the absorption of cluster `l` at time `t` (ending the
    /// current renewal cycle in regeneration mode).
    fn absorb(&mut self, l: usize, t: SimTime) {
        let ctr = self.acct[l].ctr;
        let polluted = ctr.x as usize > self.params.quorum();
        let (status, slot) = if ctr.s == 0 {
            if polluted {
                (ClusterStatus::PollutedMerge, 2)
            } else {
                (ClusterStatus::SafeMerge, 0)
            }
        } else if polluted {
            (ClusterStatus::PollutedSplit, 3)
        } else {
            (ClusterStatus::SafeSplit, 1)
        };
        self.absorption_counts[slot] += 1;
        if self.acct[l].warmup == 0 {
            // A cycle completing after the warm-up window: one
            // independent trial of the steady-state measurement.
            self.measured_cycles += 1;
        }
        let cy = self.acct[l].cycle;
        self.safe_w[l].push(f64::from(cy.safe_ev));
        self.poll_w[l].push(f64::from(cy.poll_ev));
        self.life_w[l].push(t.value() - cy.birth);
        // The cluster's chain reached a closed state; the overlay would
        // merge or split it, retiring these memberships. The flag bits
        // need no clearing: slots are dead once the sizes reset, and
        // every re-seed rewrites the bits it uses before reading them.
        self.acct[l].ctr.status = status;
    }

    /// Materializes cluster `l` from a freshly drawn initial state at
    /// time `t` — the initial population (`t = 0`) and every
    /// regeneration go through here. A start state with absorbing mass
    /// (legal for `Custom` initial distributions) absorbs immediately: a
    /// zero-event cycle.
    fn seed_cluster(&mut self, l: usize, t: SimTime) {
        let c_size = self.c_size();
        let delta = self.delta();
        let start = self.states[{
            let table = self.table;
            table.sample(&mut self.draw[l].rng)
        }];
        {
            let ctr = &mut self.acct[l].ctr;
            ctr.s = start.s as u8;
            ctr.x = start.x as u8;
            ctr.y = start.y as u8;
            ctr.peak_s = ctr.peak_s.max(start.s as u8);
            ctr.status = ClusterStatus::Transient;
        }
        self.acct[l].cycle = CycleTallies {
            birth: t.value(),
            safe_ev: 0,
            poll_ev: 0,
        };
        for slot in 0..c_size {
            let malicious = slot < start.x;
            let id = self.draw_id(l);
            #[cfg(debug_assertions)]
            debug_assert!(self.labels[l].is_prefix_of(&id));
            let _ = id;
            bit_set(&mut self.core_mal, l * c_size + slot, malicious);
        }
        for j in 0..start.s {
            let malicious = j < start.y;
            let id = self.draw_id(l);
            #[cfg(debug_assertions)]
            debug_assert!(self.labels[l].is_prefix_of(&id));
            let _ = id;
            bit_set(&mut self.spare_mal, l * delta + j, malicious);
        }
        if !matches!(
            start.classify(self.params),
            StateClass::TransientSafe | StateClass::TransientPolluted
        ) {
            self.absorb(l, t);
        }
    }

    /// Records every sample-grid point of cluster `l` reached strictly
    /// before its event about to be processed at `t` (the recorded class
    /// is the one left by the cluster's previous event); absorbed
    /// clusters contribute to neither count.
    fn sample_to(&mut self, l: usize, t: f64) {
        let mut idx = self.acct[l].next_sample as usize;
        if idx >= self.sample_times.len() || self.sample_times[idx] > t {
            return;
        }
        let ctr = self.acct[l].ctr;
        let transient = ctr.status == ClusterStatus::Transient;
        let polluted = ctr.x as usize > self.params.quorum();
        while idx < self.sample_times.len() && self.sample_times[idx] <= t {
            if transient {
                if polluted {
                    self.occ_poll[idx] += 1;
                } else {
                    self.occ_safe[idx] += 1;
                }
            }
            idx += 1;
        }
        self.acct[l].next_sample = idx as u32;
    }

    /// Best-effort prefetch of cluster `l`'s hot state — issued for the
    /// queue's runner-up events, so the memory latency of the *next*
    /// event's cluster record overlaps with processing the current one
    /// (above ~4k clusters the per-cluster columns outgrow L2, and an
    /// unhinted loop stalls on random line fills per event). The
    /// access-phase grouping puts everything an event touches on four
    /// lines — the draw line (RNG + gaps), the bookkeeping line
    /// (counters/tallies/budget), and the cluster's core/spare flag
    /// words — so four hints cover the whole event. A no-op on
    /// non-x86_64 targets.
    #[inline]
    fn prefetch_cluster(&self, l: usize) {
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let core_w = (l * self.params.core_size()) >> 6;
            let spare_w = (l * self.params.max_spare()) >> 6;
            // SAFETY: prefetch is a pure hint — it performs no memory
            // access and cannot fault even for a bad address; the
            // pointers here are derived from live in-bounds references.
            unsafe {
                _mm_prefetch(std::ptr::from_ref(&self.draw[l]).cast::<i8>(), _MM_HINT_T0);
                _mm_prefetch(std::ptr::from_ref(&self.acct[l]).cast::<i8>(), _MM_HINT_T0);
                _mm_prefetch(
                    std::ptr::from_ref(&self.core_mal[core_w]).cast::<i8>(),
                    _MM_HINT_T0,
                );
                _mm_prefetch(
                    std::ptr::from_ref(&self.spare_mal[spare_w]).cast::<i8>(),
                    _MM_HINT_T0,
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = l;
    }

    /// The shard's event loop: pops the earliest local arrival, plays it
    /// on its cluster, and reschedules the cluster's next arrival through
    /// the fused earliest-replacement — one queue operation per event on
    /// either backend.
    fn run(&mut self) {
        let delta = self.delta();
        let quorum = self.params.quorum();
        let sampling = !self.sample_times.is_empty();
        while let Some((t, l)) = self.queue.peek().map(|(t, &l)| (t, l)) {
            // Hint the clusters that could fire next while this event is
            // being processed.
            let mut runners = [0u32; 4];
            let n_runners = self.queue.prefetch_hints(&mut runners);
            for &r in &runners[..n_runners] {
                self.prefetch_cluster(r as usize);
            }
            let li = l as usize;
            let tv = t.value();
            if tv > self.end_time {
                self.end_time = tv;
            }
            if sampling {
                self.sample_to(li, tv);
            }
            self.events += 1;
            self.acct[li].budget -= 1;

            let kind = if self.acct[li].ctr.status != ClusterStatus::Transient {
                // Only regeneration mode schedules absorbed clusters:
                // this arrival is consumed by the re-seed (the
                // renewal–reward "+1" event, counted toward neither
                // sojourn).
                debug_assert!(self.regenerate);
                if self.acct[li].warmup > 0 {
                    self.acct[li].warmup -= 1;
                    self.warmup_total += 1;
                } else {
                    self.regen_events += 1;
                }
                self.seed_cluster(li, t);
                DesEventKind::Regeneration
            } else {
                // The event counts toward the sojourn of the class it
                // lands in (the same accounting as the single-cluster
                // simulator); the steady-state tallies additionally skip
                // each cluster's warm-up window.
                {
                    let polluted = self.acct[li].ctr.x as usize > quorum;
                    if polluted {
                        self.acct[li].cycle.poll_ev += 1;
                    } else {
                        self.acct[li].cycle.safe_ev += 1;
                    }
                    if self.acct[li].warmup > 0 {
                        self.acct[li].warmup -= 1;
                        self.warmup_total += 1;
                    } else if polluted {
                        self.poll_event_total += 1;
                    } else {
                        self.safe_event_total += 1;
                    }
                }
                let kind = self.churn_event(li);
                let s = self.acct[li].ctr.s as usize;
                if s == 0 || s == delta {
                    self.absorb(li, t);
                }
                kind
            };

            // Observation — strictly after the event's effects committed
            // (the inertness contract): tally the kind, trace the
            // post-event state, and tally an absorption when this event
            // closed the cluster. With `NullRecorder` every line below
            // compiles away.
            {
                let c = (self.lo + li) as u32;
                let ctr = self.acct[li].ctr;
                let (x, y, absorbed_now) = (
                    u32::from(ctr.x),
                    u32::from(ctr.y),
                    ctr.status != ClusterStatus::Transient,
                );
                self.rec.add(kind.counter_key(), 1);
                self.rec.trace(tv, c, kind, x, y);
                if absorbed_now {
                    self.rec.add(DesEventKind::Absorption.counter_key(), 1);
                    self.rec.trace(tv, c, DesEventKind::Absorption, x, y);
                }
            }

            // Reschedule the cluster's next arrival unless its stream
            // ended: budget exhausted, or absorbed without regeneration
            // (an absorbed chain sits in a closed state forever; its
            // arrivals carry no further information).
            if self.acct[li].budget > 0
                && (self.regenerate || self.acct[li].ctr.status == ClusterStatus::Transient)
            {
                let gap = self.next_gap(li);
                let _ = self.queue.replace_earliest(t + gap, l);
            } else {
                let _ = self.queue.pop();
            }
        }
    }

    /// Finishes the shard: censors still-transient clusters, freezes the
    /// occupancy contribution of clusters whose stream ended before the
    /// grid did, and packages the outcome together with the shard's
    /// recorder (returned separately — observation data never enters the
    /// byte-stable outcome).
    fn into_outcome(mut self, seconds: f64) -> (ShardOutcome, R) {
        let grid_len = self.sample_times.len();
        let quorum = self.params.quorum();
        let mut censored = 0u64;
        let mut peak_nodes = 0u64;
        let c_size = self.c_size() as u64;
        for l in 0..self.acct.len() {
            let ctr = self.acct[l].ctr;
            let transient = ctr.status == ClusterStatus::Transient;
            if transient {
                censored += 1;
                if !self.regenerate {
                    // Partial sojourns of censored clusters enter the
                    // estimates, exactly as in `simulation::estimate`;
                    // regeneration-mode mid-cycle counts do not.
                    self.safe_w[l].push(f64::from(self.acct[l].cycle.safe_ev));
                    self.poll_w[l].push(f64::from(self.acct[l].cycle.poll_ev));
                }
            }
            peak_nodes += c_size + u64::from(ctr.peak_s);
            // A cluster whose stream ended keeps contributing its final
            // class to the rest of the grid (points past the global end
            // of the run are dropped at merge time).
            if (self.acct[l].next_sample as usize) < grid_len {
                if transient {
                    let polluted = ctr.x as usize > quorum;
                    for g in self.acct[l].next_sample as usize..grid_len {
                        if polluted {
                            self.occ_poll[g] += 1;
                        } else {
                            self.occ_safe[g] += 1;
                        }
                    }
                }
                self.acct[l].next_sample = grid_len as u32;
            }
        }
        // Per-shard utilization: busy seconds and the shard's share of
        // the event total — the data the ROADMAP's work-stealing item
        // needs to decide whether shard imbalance is worth stealing.
        self.rec.span("des.shard.busy_s", seconds);
        self.rec.observe("des.shard.events", self.events);
        let outcome = ShardOutcome {
            events: self.events,
            safe_event_total: self.safe_event_total,
            poll_event_total: self.poll_event_total,
            warmup_total: self.warmup_total,
            measured_cycles: self.measured_cycles,
            regen_events: self.regen_events,
            absorption_counts: self.absorption_counts,
            censored,
            initial_nodes: 0, // filled by the caller right after init
            peak_nodes,
            end_time: self.end_time,
            safe_w: self.safe_w,
            poll_w: self.poll_w,
            life_w: self.life_w,
            occ_safe: self.occ_safe,
            occ_poll: self.occ_poll,
            seconds,
        };
        (outcome, self.rec)
    }
}

/// Builds, runs and packages one shard covering global clusters
/// `[lo, lo + count)`, observing through `rec`. Generic over the
/// future-event list so both backends compile to monomorphic hot loops
/// with no per-event dispatch.
#[allow(clippy::too_many_arguments)]
fn run_shard<S: Strategy, D: Defense + ?Sized, R: Recorder, Q: FutureEventList<u32>>(
    params: &ModelParams,
    strategy: &S,
    defense: &D,
    config: &DesOverlayConfig,
    table: &AliasTable,
    states: &[ClusterState],
    seed: u64,
    lo: usize,
    count: usize,
    n_total: usize,
    rec: R,
) -> (ShardOutcome, R) {
    let c_size = params.core_size();
    let delta = params.max_spare();
    let base_budget = config.max_events / n_total as u64;
    let budget_rem = (config.max_events % n_total as u64) as usize;

    let mut shard: ShardSim<'_, S, D, R, Q> = ShardSim {
        params,
        strategy,
        defense,
        mix: EventMix::balanced(),
        lambda: config.lambda,
        lo,
        cluster_bits: config.cluster_bits,
        regenerate: config.regenerate,
        table,
        states,
        sample_times: &config.sample_times,
        draw: Vec::with_capacity(count),
        acct: Vec::with_capacity(count),
        core_mal: vec![0; bitset_words(count * c_size)],
        spare_mal: vec![0; bitset_words(count * delta)],
        #[cfg(debug_assertions)]
        labels: Vec::with_capacity(count),
        queue: Q::with_profile(count, config.lambda),
        pool: Vec::with_capacity(c_size + delta),
        empty_slots: Vec::with_capacity(c_size),
        events: 0,
        safe_event_total: 0,
        poll_event_total: 0,
        warmup_total: 0,
        measured_cycles: 0,
        regen_events: 0,
        absorption_counts: [0; 4],
        end_time: 0.0,
        safe_w: vec![Welford::new(); count],
        poll_w: vec![Welford::new(); count],
        life_w: vec![Welford::new(); count],
        occ_safe: vec![0; config.sample_times.len()],
        occ_poll: vec![0; config.sample_times.len()],
        rec,
    };
    for l in 0..count {
        let c = lo + l;
        #[cfg(debug_assertions)]
        {
            let bits: Vec<bool> = (0..config.cluster_bits)
                .map(|bit| (c >> (config.cluster_bits - 1 - bit)) & 1 == 1)
                .collect();
            shard.labels.push(Label::from_bits(bits));
        }
        shard.draw.push(DrawState {
            rng: StdRng::seed_from_u64(replication_seed(seed, c as u64)),
            gaps: [0.0; GAP_BATCH],
        });
        shard.acct.push(ClusterAcct {
            budget: base_budget + u64::from(c < budget_rem),
            warmup: config.warmup_events,
            ..ClusterAcct::default()
        });
    }

    // Populate the shard's clusters: each draws its start state from the
    // initial distribution (first draw of its stream) and materializes
    // concrete members for it.
    for l in 0..count {
        shard.seed_cluster(l, SimTime::ZERO);
    }
    // The overlay's population at t = 0: every cluster still open after
    // seeding holds C core members plus its spares (a cluster born
    // absorbed retired its memberships on the spot, exactly as the old
    // arena accounting had it).
    let initial_nodes: u64 = shard
        .acct
        .iter()
        .filter(|a| a.ctr.status == ClusterStatus::Transient)
        .map(|a| c_size as u64 + u64::from(a.ctr.s))
        .sum();

    // Every cluster with a positive budget gets its first arrival, unless
    // it was born absorbed without regeneration (in regeneration mode
    // absorbed-at-birth clusters are scheduled too — their first arrival
    // performs the re-seed, upholding the "overlay never drains" contract
    // for Custom initial distributions with absorbing mass). One pending
    // arrival per scheduled cluster is the queue's invariant, so `count`
    // capacity keeps the hot loop reallocation-free.
    for l in 0..count {
        if shard.acct[l].budget > 0
            && (config.regenerate || shard.acct[l].ctr.status == ClusterStatus::Transient)
        {
            let gap = shard.next_gap(l);
            shard.queue.push(SimTime::ZERO + gap, l as u32);
        }
    }
    // The future-event list holds one pending arrival per scheduled
    // cluster and only ever shrinks, so its post-init length *is* the
    // depth high-water mark of the whole run. The bytes key keeps its
    // historical name on both backends so dashboards line up.
    let depth = shard.queue.len() as u64;
    shard.rec.high_water("des.queue.depth_high_water", depth);
    shard
        .rec
        .high_water("des.queue.heap_bytes", shard.queue.queue_bytes() as u64);

    let start = std::time::Instant::now();
    shard.run();
    let seconds = start.elapsed().as_secs_f64();
    let (mut outcome, rec) = shard.into_outcome(seconds);
    outcome.initial_nodes = initial_nodes;
    (outcome, rec)
}

/// Runs one whole-overlay discrete-event simulation (no defense).
///
/// Deterministic in `(params, initial, strategy, config, seed)` and
/// **byte-identical across [`DesOverlayConfig::shards`] values**: every
/// cluster's sample path is a function of its own counter-seeded stream
/// (see the module docs), so shard assignment affects wall-clock time
/// only. Equivalent to [`run_des_overlay_duel`] with a [`NullDefense`] —
/// bit-identically so, because neutral defense hooks consume no
/// randomness.
///
/// # Panics
///
/// As [`run_des_overlay_duel`].
pub fn run_des_overlay<S: Strategy + Sync>(
    params: &ModelParams,
    initial: &InitialCondition,
    strategy: &S,
    config: &DesOverlayConfig,
    seed: u64,
) -> DesOverlayReport {
    run_des_overlay_duel(params, initial, strategy, &NullDefense::new(), config, seed)
}

/// Runs one whole-overlay discrete-event simulation with a [`Defense`]
/// consulted inside the event loop — the measured half of an
/// adversary-vs-defense duel.
///
/// Deterministic in `(params, initial, strategy, defense, config, seed)`
/// and byte-identical across shard counts. The hot path stays
/// allocation-free: defense hooks are evaluated against a stack
/// [`ClusterView`], and a hook returning its neutral element costs no
/// random draw.
///
/// # Panics
///
/// Panics when `cluster_bits > 24` (16.7M clusters — past any sensible
/// memory budget), when `C + Δ > 255` (membership counters are `u8`),
/// when `lambda` is not a positive finite rate, when the sample grid is
/// unsorted, or when the initial condition is invalid for the parameters.
pub fn run_des_overlay_duel<S: Strategy + Sync, D: Defense + Sync + ?Sized>(
    params: &ModelParams,
    initial: &InitialCondition,
    strategy: &S,
    defense: &D,
    config: &DesOverlayConfig,
    seed: u64,
) -> DesOverlayReport {
    run_des_overlay_duel_with_stats(params, initial, strategy, defense, config, seed).0
}

/// As [`run_des_overlay_duel`], additionally reporting per-shard
/// wall-clock statistics (events and seconds per shard) — the
/// measurement hook behind `examples/des_at_scale` and the
/// `des_overlay` bench. The stats are timing-dependent and deliberately
/// kept out of the byte-stable [`DesOverlayReport`].
///
/// # Panics
///
/// As [`run_des_overlay_duel`].
pub fn run_des_overlay_duel_with_stats<S: Strategy + Sync, D: Defense + Sync + ?Sized>(
    params: &ModelParams,
    initial: &InitialCondition,
    strategy: &S,
    defense: &D,
    config: &DesOverlayConfig,
    seed: u64,
) -> (DesOverlayReport, DesShardStats) {
    let (report, stats, _) =
        run_duel_core(params, initial, strategy, defense, config, seed, |_| {
            NullRecorder
        });
    (report, stats)
}

/// The merged observation data of one observed DES run — everything the
/// recorders captured, kept strictly **outside** the byte-stable
/// [`DesOverlayReport`] (sidecar data only).
#[derive(Debug, Clone, Default)]
pub struct DesObs {
    /// Per-shard registries merged in shard order (= cluster order):
    /// event-kind counters, queue depth/bytes high-water marks, per-shard
    /// busy-time spans and event-share histogram.
    pub registry: Registry,
    /// The ring-buffer traces of all shards merged chronologically (ties
    /// broken by shard order). Each shard keeps its *own* last
    /// `trace_capacity` events, so the merged view is the tail of every
    /// shard's stream, not of the global stream.
    pub trace: Vec<TraceRecord>,
}

impl DesObs {
    /// Writes the merged trace as JSONL (one record per line, oldest
    /// first) — the post-mortem export knob.
    ///
    /// # Errors
    /// Propagates I/O errors from `w`.
    pub fn write_trace_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        for rec in &self.trace {
            writeln!(w, "{}", rec.to_jsonl())?;
        }
        Ok(())
    }
}

/// As [`run_des_overlay_duel_with_stats`], but observed: every shard
/// runs with a [`MetricsRecorder`] holding a `trace_capacity`-deep event
/// ring (0 = no tracer), and the merged observation data comes back as a
/// [`DesObs`] alongside the untouched report.
///
/// The report and stats are **byte-identical** to the unobserved run's —
/// recorders draw no randomness and never reorder events (test-enforced).
/// Without the `metrics` cargo feature the recorders are inert and the
/// returned [`DesObs`] is empty.
///
/// # Panics
///
/// As [`run_des_overlay_duel`].
pub fn run_des_overlay_duel_observed<S: Strategy + Sync, D: Defense + Sync + ?Sized>(
    params: &ModelParams,
    initial: &InitialCondition,
    strategy: &S,
    defense: &D,
    config: &DesOverlayConfig,
    seed: u64,
    trace_capacity: usize,
) -> (DesOverlayReport, DesShardStats, DesObs) {
    let (report, stats, recorders) =
        run_duel_core(params, initial, strategy, defense, config, seed, |_| {
            MetricsRecorder::with_trace(trace_capacity)
        });
    let mut registry = Registry::new();
    let mut rings = Vec::new();
    for rec in recorders {
        let (reg, ring) = rec.into_parts();
        registry.merge(&reg);
        if let Some(ring) = ring {
            rings.push(ring);
        }
    }
    let ring_refs: Vec<&TraceRing> = rings.iter().collect();
    let trace = TraceRing::merge_in_order(&ring_refs);
    (report, stats, DesObs { registry, trace })
}

/// The exact byte audit of a [`run_des_overlay_duel`] run's simulation
/// state, computed from the allocation formulas (never sampled), plus
/// the slot-capacity node count it normalizes by. Computed for the
/// single-shard layout; sharding adds at most one 8-byte rounding word
/// per bitset per extra shard and is otherwise a pure partition of the
/// same columns.
///
/// Structure keys: `des.flags` (the packed core/spare malicious
/// bitsets — one *bit* per membership slot, all a node's identity the
/// simulation ever reads back), `des.cluster_hot` (the SoA per-cluster
/// columns, two 64-byte lines per cluster: the draw line — RNG state +
/// gap batch — and the bookkeeping line — counter pack, cycle tallies,
/// budget, warm-up, sample cursor), `des.event_queue` (the future-event
/// list of the configured backend, resolved as the run would resolve
/// it) and `des.accumulators` (per-cluster Welford triples).
pub fn des_memory_audit(params: &ModelParams, config: &DesOverlayConfig) -> MemoryAudit {
    let n = 1u64 << config.cluster_bits;
    let c_size = params.core_size() as u64;
    let delta = params.max_spare() as u64;
    let capacity = n * (c_size + delta);
    let mut audit = MemoryAudit::new(capacity);
    // One bit per core slot + one per spare slot, packed into u64 words.
    let words = |bits: u64| bits.div_ceil(64);
    audit.record("des.flags", (words(n * c_size) + words(n * delta)) * 8);
    // The SoA hot columns: one draw line + one bookkeeping line per
    // cluster (both 64-aligned; the padding is the audit's to count).
    let hot_stride = (std::mem::size_of::<DrawState>() + std::mem::size_of::<ClusterAcct>()) as u64;
    audit.record("des.cluster_hot", n * hot_stride);
    // One pending arrival per cluster on either backend; the calendar
    // additionally carries its bucket-head table (a power of two, at
    // least the minimum geometry, never resized above the population).
    let queue_bytes = match config.queue.resolve() {
        QueueBackend::Heap => n * EventQueue::<u32>::entry_bytes() as u64,
        QueueBackend::Calendar => {
            let nbuckets = (n as usize).next_power_of_two().max(4) as u64;
            n * CalendarQueue::<u32>::entry_bytes() as u64 + nbuckets * 4
        }
        QueueBackend::Auto => unreachable!(),
    };
    audit.record("des.event_queue", queue_bytes);
    // Three Welford accumulators (count, mean, M2) per cluster.
    audit.record(
        "des.accumulators",
        n * 3 * std::mem::size_of::<Welford>() as u64,
    );
    audit
}

/// The recorder-generic driver behind every public entry point: resolves
/// the queue backend once and dispatches to the monomorphic core, so the
/// hot loop never branches on the backend.
#[allow(clippy::too_many_arguments)]
fn run_duel_core<S, D, R, F>(
    params: &ModelParams,
    initial: &InitialCondition,
    strategy: &S,
    defense: &D,
    config: &DesOverlayConfig,
    seed: u64,
    make_rec: F,
) -> (DesOverlayReport, DesShardStats, Vec<R>)
where
    S: Strategy + Sync,
    D: Defense + Sync + ?Sized,
    R: Recorder + Send,
    F: Fn(usize) -> R + Sync,
{
    match config.queue.resolve() {
        QueueBackend::Heap => run_duel_core_q::<S, D, R, F, EventQueue<u32>>(
            params, initial, strategy, defense, config, seed, make_rec,
        ),
        QueueBackend::Calendar => run_duel_core_q::<S, D, R, F, CalendarQueue<u32>>(
            params, initial, strategy, defense, config, seed, make_rec,
        ),
        // `resolve` always returns a concrete backend.
        QueueBackend::Auto => unreachable!(),
    }
}

/// The backend-monomorphic driver: builds the cluster partition, runs
/// the shards (each with its own recorder from `make_rec`), and merges
/// outcomes in cluster order. Returns the recorders in partition order
/// so observed callers can merge them; the unobserved path passes
/// [`NullRecorder`] and the compiler erases every observation site from
/// the hot loop.
///
/// Two execution plans share the merge path:
///
/// * **Static** (default): shard `i` owns the contiguous clusters
///   `[i·n/S, (i+1)·n/S)` — one worker thread per shard.
/// * **Work-stealing** (`config.steal`, with `shards > 1`): the overlay
///   is cut into ~4·S contiguous blocks (optionally skewed in size by
///   `steal_skew` to emulate imbalance) and S workers claim blocks off a
///   shared cursor in a seed-derived order. Because every cluster's
///   sample path depends only on `(seed, cluster)` and block outcomes
///   are merged in block (= cluster) order after all workers finish,
///   the claim interleaving — and the schedule permutation itself —
///   cannot reach the report bytes; only wall-clock balance changes.
#[allow(clippy::too_many_arguments)]
fn run_duel_core_q<S, D, R, F, Q>(
    params: &ModelParams,
    initial: &InitialCondition,
    strategy: &S,
    defense: &D,
    config: &DesOverlayConfig,
    seed: u64,
    make_rec: F,
) -> (DesOverlayReport, DesShardStats, Vec<R>)
where
    S: Strategy + Sync,
    D: Defense + Sync + ?Sized,
    R: Recorder + Send,
    F: Fn(usize) -> R + Sync,
    Q: FutureEventList<u32>,
{
    assert!(
        config.cluster_bits <= 24,
        "cluster_bits = {} exceeds the 2^24-cluster ceiling",
        config.cluster_bits
    );
    let c_size = params.core_size();
    let delta = params.max_spare();
    assert!(
        c_size + delta <= u8::MAX as usize,
        "C + Δ = {} overflows the per-cluster u8 counters",
        c_size + delta
    );
    assert!(
        config.lambda > 0.0 && config.lambda.is_finite(),
        "lambda must be a positive rate, got {}",
        config.lambda
    );
    assert!(
        config.sample_times.windows(2).all(|w| w[0] <= w[1]),
        "sample times must be sorted"
    );
    let n = 1usize << config.cluster_bits;
    let shards = config.shards.clamp(1, n);

    let space = ModelSpace::new(params);
    let alpha = initial
        .distribution(&space)
        .expect("initial condition must be valid for the parameters");
    let table = AliasTable::new(&alpha).expect("alpha is a distribution");
    let states: Vec<ClusterState> = space.iter().map(|(_, st)| *st).collect();

    // Both plans produce `outcomes` in cluster order plus per-worker
    // wall-clock stats; everything below the partition is shared.
    let (outcomes, shard_events, shard_seconds): (Vec<(ShardOutcome, R)>, Vec<u64>, Vec<f64>) =
        if config.steal && shards > 1 {
            // Work-stealing plan: ~4 blocks per worker so a worker that
            // drew cheap blocks can claim more, with optional size skew
            // to provoke the imbalance the plan exists to absorb.
            let nblocks = (shards * 4).clamp(shards, n);
            let skew = u64::from(config.steal_skew);
            let weights: Vec<u64> = (0..nblocks as u64).map(|i| 1 + skew * (i % 4)).collect();
            let total: u64 = weights.iter().sum();
            let mut bounds = Vec::with_capacity(nblocks + 1);
            bounds.push(0usize);
            let mut cum = 0u64;
            for w in &weights {
                cum += w;
                // Monotone cumulative rounding: never overflows, never
                // regresses, and lands exactly on n at the last block.
                bounds.push(((n as u128 * u128::from(cum)) / u128::from(total)) as usize);
            }
            // Seed-derived claim order (Fisher–Yates off a schedule-only
            // stream at the reserved counter u64::MAX — no cluster uses
            // it). The order decides which worker runs which block and
            // nothing else, so it is free to vary without touching
            // report bytes; deriving it from the seed keeps wall-clock
            // behaviour reproducible run-to-run.
            let mut order: Vec<usize> = (0..nblocks).collect();
            let mut sched_rng = StdRng::seed_from_u64(replication_seed(seed, u64::MAX));
            for i in (1..nblocks).rev() {
                let j = sched_rng.random_range(0..i + 1);
                order.swap(i, j);
            }
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            let per_worker: Vec<Vec<(usize, ShardOutcome, R)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..shards)
                    .map(|_| {
                        let cursor = &cursor;
                        let order = &order[..];
                        let bounds = &bounds[..];
                        let table = &table;
                        let states = &states[..];
                        let make_rec = &make_rec;
                        scope.spawn(move || {
                            let mut claimed = Vec::new();
                            loop {
                                let k = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if k >= order.len() {
                                    break;
                                }
                                let b = order[k];
                                let (lo, hi) = (bounds[b], bounds[b + 1]);
                                let (outcome, rec) = run_shard::<S, D, R, Q>(
                                    params,
                                    strategy,
                                    defense,
                                    config,
                                    table,
                                    states,
                                    seed,
                                    lo,
                                    hi - lo,
                                    n,
                                    make_rec(b),
                                );
                                claimed.push((b, outcome, rec));
                            }
                            claimed
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("DES shard panicked"))
                    .collect()
            });
            // Per-worker stats show the balance the cursor achieved;
            // outcomes re-sort into block (= cluster) order for the
            // merge, which is what makes the claim interleaving
            // unobservable in the report.
            let mut events_by_worker = Vec::with_capacity(shards);
            let mut seconds_by_worker = Vec::with_capacity(shards);
            let mut tagged: Vec<(usize, ShardOutcome, R)> = Vec::with_capacity(nblocks);
            for claimed in per_worker {
                events_by_worker.push(claimed.iter().map(|(_, o, _)| o.events).sum());
                seconds_by_worker.push(claimed.iter().map(|(_, o, _)| o.seconds).sum());
                tagged.extend(claimed);
            }
            tagged.sort_by_key(|&(b, _, _)| b);
            (
                tagged.into_iter().map(|(_, o, r)| (o, r)).collect(),
                events_by_worker,
                seconds_by_worker,
            )
        } else {
            // Static plan — contiguous partition: shard i owns clusters
            // [i·n/S, (i+1)·n/S), so concatenating shard outcomes in
            // shard order is cluster order for every shard count.
            let bounds: Vec<usize> = (0..=shards).map(|i| i * n / shards).collect();
            let outcomes: Vec<(ShardOutcome, R)> = if shards == 1 {
                vec![run_shard::<S, D, R, Q>(
                    params,
                    strategy,
                    defense,
                    config,
                    &table,
                    &states,
                    seed,
                    0,
                    n,
                    n,
                    make_rec(0),
                )]
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..shards)
                        .map(|i| {
                            let (lo, hi) = (bounds[i], bounds[i + 1]);
                            let table = &table;
                            let states = &states[..];
                            let rec = make_rec(i);
                            scope.spawn(move || {
                                run_shard::<S, D, R, Q>(
                                    params,
                                    strategy,
                                    defense,
                                    config,
                                    table,
                                    states,
                                    seed,
                                    lo,
                                    hi - lo,
                                    n,
                                    rec,
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("DES shard panicked"))
                        .collect()
                })
            };
            let events = outcomes.iter().map(|(o, _)| o.events).collect();
            let seconds = outcomes.iter().map(|(o, _)| o.seconds).collect();
            (outcomes, events, seconds)
        };

    // Merge in cluster order: integer tallies sum (order-free), the
    // moment accumulators merge cluster by cluster (ordered, so the
    // floating-point result is identical for every contiguous partition).
    let mut safe_w = Welford::new();
    let mut poll_w = Welford::new();
    let mut life_w = Welford::new();
    let mut events = 0u64;
    let mut safe_event_total = 0u64;
    let mut poll_event_total = 0u64;
    let mut warmup_events = 0u64;
    let mut measured_cycles = 0u64;
    let mut regen_events = 0u64;
    let mut absorption_counts = [0u64; 4];
    let mut censored = 0u64;
    let mut initial_nodes = 0u64;
    let mut peak_nodes = 0u64;
    let mut end_time = 0.0f64;
    let mut occ_safe = vec![0u64; config.sample_times.len()];
    let mut occ_poll = vec![0u64; config.sample_times.len()];
    for (o, _) in &outcomes {
        for w in &o.safe_w {
            safe_w.merge(w);
        }
        for w in &o.poll_w {
            poll_w.merge(w);
        }
        for w in &o.life_w {
            life_w.merge(w);
        }
        events += o.events;
        safe_event_total += o.safe_event_total;
        poll_event_total += o.poll_event_total;
        warmup_events += o.warmup_total;
        measured_cycles += o.measured_cycles;
        regen_events += o.regen_events;
        for (acc, &c) in absorption_counts.iter_mut().zip(&o.absorption_counts) {
            *acc += c;
        }
        censored += o.censored;
        initial_nodes += o.initial_nodes;
        peak_nodes += o.peak_nodes;
        end_time = end_time.max(o.end_time);
        for (acc, &c) in occ_safe.iter_mut().zip(&o.occ_safe) {
            *acc += c;
        }
        for (acc, &c) in occ_poll.iter_mut().zip(&o.occ_poll) {
            *acc += c;
        }
    }

    // Grid points the run never reached are dropped, exactly as the
    // single-queue engine dropped points past its last processed event.
    let occupancy: Vec<(f64, f64, f64)> = config
        .sample_times
        .iter()
        .enumerate()
        .take_while(|&(_, &t)| t <= end_time && events > 0)
        .map(|(g, &t)| {
            (
                t,
                occ_safe[g] as f64 / n as f64,
                occ_poll[g] as f64 / n as f64,
            )
        })
        .collect();

    let absorbed: u64 = absorption_counts.iter().sum();
    let denom = absorbed.max(1) as f64;
    let report = DesOverlayReport {
        n_clusters: n,
        initial_nodes,
        peak_nodes,
        events,
        end_time,
        safe_events: safe_w.summary(1.96),
        polluted_events: poll_w.summary(1.96),
        lifetime: life_w.summary(1.96),
        absorption: (
            absorption_counts[0] as f64 / denom,
            absorption_counts[1] as f64 / denom,
            absorption_counts[2] as f64 / denom,
            absorption_counts[3] as f64 / denom,
        ),
        absorption_counts,
        absorbed,
        censored,
        safe_event_total,
        polluted_event_total: poll_event_total,
        warmup_events,
        measured_cycles,
        regen_events,
        occupancy,
    };
    let recorders = outcomes.into_iter().map(|(_, r)| r).collect();
    (
        report,
        DesShardStats {
            shard_events,
            shard_seconds,
        },
        recorders,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterAnalysis;
    use pollux_adversary::baselines::{PassiveAdversary, RecklessAdversary};
    use pollux_adversary::TargetedStrategy;

    fn params(mu: f64, d: f64) -> ModelParams {
        ModelParams::paper_defaults().with_mu(mu).with_d(d)
    }

    fn config(bits: u32) -> DesOverlayConfig {
        DesOverlayConfig::new(bits, 1.0, 5_000_000)
    }

    #[test]
    fn deterministic_per_seed() {
        let p = params(0.2, 0.8);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let a = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(6), 11);
        let b = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(6), 11);
        assert_eq!(a, b);
        let c = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(6), 12);
        assert_ne!(a.safe_events.mean, c.safe_events.mean);
    }

    #[test]
    fn sharded_runs_are_byte_identical() {
        // The tentpole contract: shard count changes wall-clock only.
        let p = params(0.25, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        for cfg in [
            config(6),
            config(6).with_regeneration(),
            config(6)
                .with_regeneration()
                .with_sample_times(vec![0.0, 5.0, 25.0, 1e9]),
        ] {
            let one = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &cfg, 5);
            for shards in [2usize, 3, 8, 64] {
                let sharded = run_des_overlay(
                    &p,
                    &InitialCondition::Delta,
                    &strategy,
                    &cfg.clone().with_shards(shards),
                    5,
                );
                assert_eq!(one, sharded, "shards = {shards}");
            }
        }
        // Shard counts past the cluster count clamp.
        let tiny = DesOverlayConfig::new(2, 1.0, 400).with_shards(64);
        let a = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &tiny, 1);
        assert_eq!(a.n_clusters, 4);
    }

    #[test]
    fn shard_stats_partition_the_events() {
        let p = params(0.25, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let cfg = config(7).with_shards(4);
        let (report, stats) = run_des_overlay_duel_with_stats(
            &p,
            &InitialCondition::Delta,
            &strategy,
            &NullDefense::new(),
            &cfg,
            3,
        );
        assert_eq!(stats.shards(), 4);
        assert_eq!(stats.shard_events.iter().sum::<u64>(), report.events);
        assert_eq!(stats.shard_events_per_sec().len(), 4);
    }

    #[test]
    fn observed_run_is_byte_identical_to_plain_run() {
        // The inertness contract: attaching recorders (with or without
        // the metrics feature, at any shard count) changes neither the
        // report nor the shard partition of the events.
        let p = params(0.25, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        for cfg in [
            config(6),
            config(6).with_regeneration().with_warmup_events(10),
            config(6).with_shards(8),
        ] {
            let (plain, plain_stats) = run_des_overlay_duel_with_stats(
                &p,
                &InitialCondition::Delta,
                &strategy,
                &pollux_defense::NullDefense::new(),
                &cfg,
                9,
            );
            let (observed, obs_stats, obs) = run_des_overlay_duel_observed(
                &p,
                &InitialCondition::Delta,
                &strategy,
                &pollux_defense::NullDefense::new(),
                &cfg,
                9,
                64,
            );
            assert_eq!(plain, observed);
            assert_eq!(plain_stats.shard_events, obs_stats.shard_events);
            if pollux_obs::METRICS_ENABLED {
                // Every processed event was tallied under exactly one
                // churn kind (absorption tallies ride on top).
                let churn: u64 = [
                    DesEventKind::Join,
                    DesEventKind::JoinRejected,
                    DesEventKind::Leave,
                    DesEventKind::SelfLoop,
                    DesEventKind::InducedEviction,
                    DesEventKind::Regeneration,
                ]
                .iter()
                .filter_map(|k| obs.registry.counter(k.counter_key()))
                .sum();
                assert_eq!(churn, observed.events);
                assert_eq!(
                    obs.registry.counter(DesEventKind::Absorption.counter_key()),
                    Some(observed.absorbed).filter(|&a| a > 0)
                );
                // Queues are shard-local: the merged high-water is the
                // deepest *local* future-event list (64 clusters split
                // over the shards).
                assert_eq!(
                    obs.registry.high_water_mark("des.queue.depth_high_water"),
                    Some(64 / cfg.shards as u64)
                );
                assert!(!obs.trace.is_empty());
                assert!(obs.trace.windows(2).all(|w| w[0].time <= w[1].time));
            } else {
                assert!(obs.registry.is_empty());
                assert!(obs.trace.is_empty());
            }
        }
    }

    #[test]
    fn memory_audit_matches_allocation_formulas() {
        let p = params(0.2, 0.8);
        let cfg = config(6).with_queue_backend(QueueBackend::Heap);
        let audit = des_memory_audit(&p, &cfg);
        let n = 64u64;
        let c_size = p.core_size() as u64;
        let delta = p.max_spare() as u64;
        assert_eq!(audit.nodes(), n * (c_size + delta));
        // One bit per membership slot, rounded up to whole u64 words per
        // bitset.
        assert_eq!(
            audit.get("des.flags"),
            Some(((n * c_size).div_ceil(64) + (n * delta).div_ceil(64)) * 8)
        );
        // The SoA strides: one 64 B draw line (32 B RNG + 32 B gap
        // batch) plus one 64 B bookkeeping line (6 B counters + 16 B
        // cycle tallies + 8 B budget + 8 B warm-up + 4 B cursor,
        // 64-aligned) per cluster.
        assert_eq!(audit.get("des.cluster_hot"), Some(n * 128));
        assert_eq!(
            audit.get("des.event_queue"),
            Some(n * EventQueue::<u32>::entry_bytes() as u64)
        );
        // The calendar adds only its bucket-head table (u32 heads, one
        // per bucket, n already a power of two).
        let cal = des_memory_audit(&p, &cfg.clone().with_queue_backend(QueueBackend::Calendar));
        assert_eq!(
            cal.get("des.event_queue"),
            Some(n * CalendarQueue::<u32>::entry_bytes() as u64 + n * 4)
        );
        // The headline number the scaling ladder asserts on: the packed
        // layout sits well under the pre-refactor 25.0 B/node.
        assert!(
            audit.bytes_per_node() < 25.0 && cal.bytes_per_node() < 25.0,
            "bytes/node regressed: heap {} calendar {}",
            audit.bytes_per_node(),
            cal.bytes_per_node()
        );
        // Shard count never changes the audit's inputs.
        assert_eq!(audit, des_memory_audit(&p, &cfg.clone().with_shards(8)));
    }

    #[test]
    fn queue_backends_are_byte_identical_end_to_end() {
        // The backend contract at the report level: same seeds, same
        // bytes, on plain, regenerating, sampled and sharded runs.
        let p = params(0.25, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        for cfg in [
            config(6),
            config(6).with_regeneration().with_warmup_events(20),
            config(6)
                .with_regeneration()
                .with_sample_times(vec![0.0, 5.0, 25.0, 1e9])
                .with_shards(4),
        ] {
            let heap = run_des_overlay(
                &p,
                &InitialCondition::Delta,
                &strategy,
                &cfg.clone().with_queue_backend(QueueBackend::Heap),
                5,
            );
            let calendar = run_des_overlay(
                &p,
                &InitialCondition::Delta,
                &strategy,
                &cfg.clone().with_queue_backend(QueueBackend::Calendar),
                5,
            );
            assert_eq!(heap, calendar);
        }
    }

    #[test]
    fn work_stealing_is_byte_identical_at_any_skew_and_shard_count() {
        // The stealing contract: the blocked claim-order plan — at every
        // skew and worker count, on both backends — reproduces the
        // single-shard bytes exactly.
        let p = params(0.25, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            let base = config(6)
                .with_regeneration()
                .with_sample_times(vec![0.0, 5.0, 25.0])
                .with_queue_backend(backend);
            let one = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &base, 5);
            for shards in [2usize, 3, 8] {
                for skew in [0u32, 1, 3] {
                    let cfg = base.clone().with_shards(shards).with_work_stealing(skew);
                    let stolen = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &cfg, 5);
                    assert_eq!(
                        one, stolen,
                        "backend {backend:?} shards {shards} skew {skew}"
                    );
                }
            }
        }
    }

    #[test]
    fn work_stealing_stats_are_per_worker_and_partition_the_events() {
        let p = params(0.25, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let cfg = config(7).with_shards(4).with_work_stealing(2);
        let (report, stats) = run_des_overlay_duel_with_stats(
            &p,
            &InitialCondition::Delta,
            &strategy,
            &NullDefense::new(),
            &cfg,
            3,
        );
        // One stats row per worker (not per block), jointly covering
        // every processed event.
        assert_eq!(stats.shards(), 4);
        assert_eq!(stats.shard_events.iter().sum::<u64>(), report.events);
    }

    #[test]
    fn mu_zero_matches_random_walk_closed_form() {
        // Attack-free overlay from δ: E(T_S) = 12, merge:split = 4:7 vs
        // 3:7, no pollution anywhere (closed forms from the paper).
        let p = params(0.0, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(11), 1);
        assert_eq!(r.censored, 0);
        assert_eq!(r.absorbed, 2048);
        assert!(
            (r.safe_events.mean - 12.0).abs() < 4.0 * r.safe_events.ci_half_width,
            "E(T_S) {} vs 12",
            r.safe_events
        );
        assert_eq!(r.polluted_events.mean, 0.0);
        assert!((r.absorption.0 - 4.0 / 7.0).abs() < 0.04);
        assert!((r.absorption.1 - 3.0 / 7.0).abs() < 0.04);
        assert_eq!(r.absorption.2, 0.0);
    }

    #[test]
    fn sojourns_and_absorption_match_the_markov_chain() {
        let p = params(0.25, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(11), 7);
        assert_eq!(r.censored, 0, "d = 0.9 absorbs well before the cap");

        let a = ClusterAnalysis::new(&p, InitialCondition::Delta).unwrap();
        let e_ts = a.expected_safe_events().unwrap();
        let e_tp = a.expected_polluted_events().unwrap();
        let split = a.absorption_split().unwrap();
        assert!(
            (r.safe_events.mean - e_ts).abs() < 4.0 * r.safe_events.ci_half_width,
            "T_S: des {} vs markov {e_ts}",
            r.safe_events
        );
        assert!(
            (r.polluted_events.mean - e_tp).abs() < 4.0 * r.polluted_events.ci_half_width.max(0.01),
            "T_P: des {} vs markov {e_tp}",
            r.polluted_events
        );
        assert!(
            (r.absorption.2 - split.polluted_merge).abs() < 0.02,
            "AmP: des {} vs markov {}",
            r.absorption.2,
            split.polluted_merge
        );
        // Time layer consistent with the event layer: mean lifetime ≈
        // mean per-cluster events / λ.
        let per_cluster_events = r.safe_events.mean + r.polluted_events.mean;
        assert!(
            (r.lifetime.mean - per_cluster_events).abs() < 5.0 * r.lifetime.ci_half_width + 1.0,
            "lifetime {} vs events-per-cluster {per_cluster_events}",
            r.lifetime.mean
        );
    }

    #[test]
    fn beta_initial_and_k7_run_under_all_strategies() {
        let p = params(0.3, 0.8).with_k(7).unwrap();
        let cfg = config(7);
        let targeted = TargetedStrategy::new(7, 0.1).unwrap();
        let t = run_des_overlay(&p, &InitialCondition::Beta, &targeted, &cfg, 3);
        let passive = PassiveAdversary::new();
        let pa = run_des_overlay(&p, &InitialCondition::Beta, &passive, &cfg, 3);
        let reckless = RecklessAdversary::new();
        let re = run_des_overlay(&p, &InitialCondition::Beta, &reckless, &cfg, 3);
        for r in [&t, &pa, &re] {
            assert_eq!(r.absorbed + r.censored, 128);
            let total = r.absorption.0 + r.absorption.1 + r.absorption.2 + r.absorption.3;
            assert!((total - 1.0).abs() < 1e-9);
        }
        // β starts polluted with positive probability, so the targeted
        // adversary accrues polluted sojourn mass.
        assert!(t.polluted_events.mean > 0.0);
    }

    #[test]
    fn event_budgets_censor_and_bound_the_run() {
        let p = params(0.2, 0.99);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        // ~6 events per cluster: far too few for most clusters to absorb,
        // so the budgets censor the run.
        let cfg = DesOverlayConfig::new(5, 2.0, 200);
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &cfg, 9);
        // Budgets bound the total exactly from above; clusters absorbing
        // early return part of theirs.
        assert!(r.events <= 200, "budget overrun: {}", r.events);
        assert!(r.censored > 0);
        assert_eq!(r.absorbed + r.censored, 32);
        assert!(r.end_time > 0.0);
        // In regeneration mode no budget is ever returned: the run
        // processes exactly max_events.
        let r = run_des_overlay(
            &p,
            &InitialCondition::Delta,
            &strategy,
            &cfg.clone().with_regeneration(),
            9,
        );
        assert_eq!(r.events, 200, "regeneration consumes every budget");
    }

    #[test]
    fn node_accounting_balances() {
        let p = params(0.2, 0.8);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(8), 21);
        // δ start: every cluster has C + ⌊Δ/2⌋ = 10 members.
        assert_eq!(r.initial_nodes, 256 * 10);
        assert!(r.peak_nodes >= r.initial_nodes);
        // Peak is bounded by the arena's worst case.
        assert!(r.peak_nodes <= 256 * 14);
    }

    #[test]
    fn null_defense_run_is_bit_identical_to_defense_free() {
        use pollux_defense::NullDefense;
        let p = params(0.25, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        for cfg in [
            config(7),
            config(6).with_regeneration(),
            config(6)
                .with_regeneration()
                .with_sample_times(vec![5.0, 10.0, 20.0])
                .with_shards(4),
        ] {
            let plain = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &cfg, 5);
            let duel = run_des_overlay_duel(
                &p,
                &InitialCondition::Delta,
                &strategy,
                &NullDefense::new(),
                &cfg,
                5,
            );
            assert_eq!(plain, duel);
        }
    }

    #[test]
    fn regeneration_keeps_the_overlay_alive_and_measures_steady_state() {
        let p = params(0.25, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let cfg = DesOverlayConfig::new(9, 1.0, 800 << 9).with_regeneration();
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &cfg, 13);
        // The budgets (not drain-out) end the run, with every cluster
        // live or awaiting regeneration.
        assert_eq!(r.events, 800 << 9);
        assert!(r.absorbed > 10_000, "cycles: {}", r.absorbed);
        assert!(r.regen_events > 0);
        assert_eq!(
            r.safe_event_total + r.polluted_event_total + r.regen_events,
            r.events
        );
        // The event fractions match the renewal–reward closed form (this
        // run has no warm-up, so measured cycles = all cycles).
        let a = ClusterAnalysis::new(&p, InitialCondition::Delta).unwrap();
        let (want_safe, want_poll) = a.steady_state_fractions().unwrap();
        let (got_safe, got_poll) = r.steady_state_fractions();
        assert_eq!(r.measured_cycles, r.absorbed);
        let (lo, hi) = crate::duel::renewal_wilson(
            r.polluted_event_total,
            r.events - r.warmup_events,
            r.measured_cycles,
            4.0,
        );
        assert!(
            (lo..=hi).contains(&want_poll),
            "polluted: des {got_poll} ∉ [{lo}, {hi}] around analytic {want_poll}"
        );
        assert!(
            (got_safe - want_safe).abs() < 0.02,
            "{got_safe} vs {want_safe}"
        );
        // Mean cycle length is E(T_S) + E(T_P) + 1.
        let want_cycle =
            a.expected_safe_events().unwrap() + a.expected_polluted_events().unwrap() + 1.0;
        assert!(
            (r.mean_cycle_events() - want_cycle).abs() < 0.5,
            "cycle {} vs {want_cycle}",
            r.mean_cycle_events()
        );
    }

    #[test]
    fn occupancy_sampling_tracks_the_time_grid() {
        let p = params(0.2, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let grid: Vec<f64> = (0..20).map(|i| i as f64 * 5.0).collect();
        let cfg = DesOverlayConfig::new(7, 1.0, 200 << 7)
            .with_regeneration()
            .with_sample_times(grid.clone());
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &cfg, 17);
        // The run lasts ~200 time units (λ = 1), so the whole grid is hit.
        assert_eq!(r.occupancy.len(), grid.len());
        for (i, &(t, safe, poll)) in r.occupancy.iter().enumerate() {
            assert_eq!(t, grid[i]);
            assert!((0.0..=1.0).contains(&safe) && (0.0..=1.0).contains(&poll));
            assert!(safe + poll <= 1.0 + 1e-12);
        }
        // t = 0 (before any event): everything transient from δ.
        assert_eq!(r.occupancy[0].1, 1.0);
        assert_eq!(r.occupancy[0].2, 0.0);
        // In steady state most clusters stay live (regeneration wait is
        // one event of ~14 per cycle).
        let last = r.occupancy.last().unwrap();
        assert!(last.1 + last.2 > 0.8, "live fraction {}", last.1 + last.2);
        // A truncated run drops unreached grid points.
        let short = DesOverlayConfig::new(5, 1.0, 50)
            .with_regeneration()
            .with_sample_times(vec![0.0, 1e6]);
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &short, 17);
        assert_eq!(r.occupancy.len(), 1);
    }

    #[test]
    fn regeneration_revives_clusters_born_absorbed() {
        // A Custom initial with mass on an absorbing state: in
        // regeneration mode those clusters must be scheduled at t = 0 so
        // their first arrival re-seeds them — the overlay never drains.
        let p = params(0.2, 0.8);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let space = ModelSpace::new(&p);
        let mut alpha = vec![0.0; space.len()];
        // Half the mass born absorbed (safe merge, s = 0), half at δ.
        alpha[space.index(&ClusterState::new(0, 0, 0))] = 0.5;
        alpha[space.index(&ClusterState::new(3, 0, 0))] = 0.5;
        let initial = InitialCondition::Custom(alpha);
        let cfg = DesOverlayConfig::new(6, 1.0, 100 << 6).with_regeneration();
        let r = run_des_overlay(&p, &initial, &strategy, &cfg, 31);
        // Every cluster keeps cycling: far more completed cycles than the
        // 64 clusters, and regeneration events from both birth paths.
        assert_eq!(r.events, 100 << 6);
        assert!(r.absorbed > 64, "cycles: {}", r.absorbed);
        assert!(r.regen_events >= r.absorbed / 2);
        // The event fractions match the renewal closed form under the
        // same Custom initial (cycles born absorbed contribute length-1
        // cycles: T_S = T_P = 0 plus the regeneration event).
        let a = ClusterAnalysis::new(&p, InitialCondition::Custom(r2_alpha(&space))).unwrap();
        let (_, want_poll) = a.steady_state_fractions().unwrap();
        let (lo, hi) = crate::duel::renewal_wilson(
            r.polluted_event_total,
            r.events - r.warmup_events,
            r.measured_cycles,
            5.0,
        );
        assert!(
            (lo..=hi).contains(&want_poll),
            "polluted ∉ [{lo}, {hi}] around {want_poll}"
        );
    }

    /// The same half-absorbed/half-δ Custom distribution as above.
    fn r2_alpha(space: &ModelSpace) -> Vec<f64> {
        let mut alpha = vec![0.0; space.len()];
        alpha[space.index(&ClusterState::new(0, 0, 0))] = 0.5;
        alpha[space.index(&ClusterState::new(3, 0, 0))] = 0.5;
        alpha
    }

    #[test]
    fn warmup_excludes_early_events_without_changing_the_dynamics() {
        let p = params(0.25, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let base = DesOverlayConfig::new(7, 1.0, 400 << 7).with_regeneration();
        let warmed = base.clone().with_warmup_events(200);
        let r0 = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &base, 29);
        let rw = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &warmed, 29);
        // Warm-up is pure bookkeeping: the sample paths are identical —
        // same events, sojourn summaries, absorptions and end time.
        assert_eq!(r0.events, rw.events);
        assert_eq!(r0.safe_events, rw.safe_events);
        assert_eq!(r0.absorption_counts, rw.absorption_counts);
        assert_eq!(r0.end_time, rw.end_time);
        // Exactly 200 events per cluster moved into the warm-up bucket,
        // and the event-accounting identity holds on both sides.
        assert_eq!(rw.warmup_events, 200 << 7);
        assert_eq!(r0.warmup_events, 0);
        for r in [&r0, &rw] {
            assert_eq!(
                r.safe_event_total + r.polluted_event_total + r.regen_events + r.warmup_events,
                r.events
            );
        }
        // Measured cycles shrink accordingly but stay plentiful, and the
        // warmed estimator still matches the closed form.
        assert!(rw.measured_cycles < r0.measured_cycles);
        assert_eq!(r0.measured_cycles, r0.absorbed);
        let a = ClusterAnalysis::new(&p, InitialCondition::Delta).unwrap();
        let (_, want_poll) = a.steady_state_fractions().unwrap();
        let (lo, hi) = crate::duel::renewal_wilson(
            rw.polluted_event_total,
            rw.events - rw.warmup_events,
            rw.measured_cycles,
            5.0,
        );
        assert!(
            (lo..=hi).contains(&want_poll),
            "[{lo}, {hi}] vs {want_poll}"
        );
        // Sharding invariance holds with warm-up in play.
        let rw8 = run_des_overlay(
            &p,
            &InitialCondition::Delta,
            &strategy,
            &warmed.clone().with_shards(8),
            29,
        );
        assert_eq!(rw, rw8);
    }

    #[test]
    fn induced_churn_defense_suppresses_pollution_in_the_loop() {
        use pollux_defense::InducedChurn;
        let p = params(0.25, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let cfg = DesOverlayConfig::new(9, 1.0, 500 << 9).with_regeneration();
        let plain = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &cfg, 23);
        let defended = run_des_overlay_duel(
            &p,
            &InitialCondition::Delta,
            &strategy,
            &InducedChurn::new(0.2).unwrap(),
            &cfg,
            23,
        );
        let (_, poll_plain) = plain.steady_state_fractions();
        let (_, poll_defended) = defended.steady_state_fractions();
        assert!(
            poll_defended < 0.6 * poll_plain,
            "induced churn: {poll_defended} vs undefended {poll_plain}"
        );
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_sample_grid_panics() {
        let _ = DesOverlayConfig::new(5, 1.0, 10).with_sample_times(vec![3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "ceiling")]
    fn oversized_cluster_bits_panics() {
        let p = params(0.1, 0.5);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let cfg = DesOverlayConfig::new(25, 1.0, 10);
        run_des_overlay(&p, &InitialCondition::Delta, &strategy, &cfg, 1);
    }
}
