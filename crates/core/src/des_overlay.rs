//! `pollux-des`-driven whole-overlay simulation at production scale.
//!
//! [`crate::simulation`] replays one cluster per replication and
//! [`crate::overlay_sim`] steps `n` abstract chain states round-robin;
//! this module runs the **actual overlay** — every node of every cluster —
//! as a continuous-time discrete-event simulation on the
//! [`pollux_des`] engine, at 10⁵–10⁶ nodes:
//!
//! * every cluster owns an independent Poisson arrival stream
//!   ([`pollux_des::churn::PoissonProcess`]) whose arrivals flip the
//!   paper's balanced join/leave coin ([`pollux_des::churn::EventMix`]);
//!   the superposition of `n` equal-rate streams delivers events to
//!   uniformly random clusters, exactly the competing-chains semantics of
//!   Section VIII;
//! * nodes are concrete: an index-based arena stores one malicious flag
//!   and one 256-bit [`pollux_overlay::NodeId`] per node, and each
//!   cluster's core/spare membership lists hold arena indices. Joins draw
//!   fresh identifiers inside the cluster's prefix region
//!   ([`pollux_overlay::Label`]), departures free slots back to the
//!   arena, and the `protocol_k` maintenance procedure moves real nodes
//!   between the core and spare sets (the hypergeometric kernel
//!   `τ(x, a, b)` of the analytical chain emerges from the uniform
//!   draws rather than being sampled directly);
//! * the adversary is pluggable: any [`pollux_adversary::Strategy`]
//!   drives Rule 1, Rule 2 and the maintenance bias, gated by the
//!   [`crate::AdversaryToggles`] carried in [`ModelParams`];
//! * the defense is pluggable too: [`run_des_overlay_duel`] consults a
//!   [`pollux_defense::Defense`] inside the event loop — induced-churn
//!   preemptions, join-admission shaping (including the cluster-size
//!   taper) and incarnation-refresh evictions — turning a one-sided
//!   attack run into an adversary-vs-defense duel. A
//!   [`pollux_defense::NullDefense`] consumes no randomness, so its runs
//!   are bit-identical to plain [`run_des_overlay`] calls;
//! * **regeneration mode** ([`DesOverlayConfig::regenerate`]) re-seeds an
//!   absorbed cluster from the initial condition on its next arrival
//!   (mirroring `overlay_sim`'s flag: the arrival that performs the
//!   re-seed is the renewal–reward "+1" event), so the overlay runs
//!   forever and the share of events landing on polluted clusters
//!   estimates the long-run polluted fraction that
//!   [`crate::ClusterAnalysis::steady_state_fractions`] predicts in
//!   closed form; live safe/polluted cluster fractions are additionally
//!   sampled on the fixed time grid of
//!   [`DesOverlayConfig::sample_times`].
//!
//! The hot event loop is allocation-free: the future-event list is
//! pre-sized to one pending arrival per cluster, the event payload is a
//! bare `u32` cluster index (no boxing), membership updates touch flat
//! pre-allocated tables, and the maintenance draw uses two reusable
//! scratch buffers. A 10⁶-node overlay processes 10⁶ events in seconds.
//!
//! Per-cluster sojourn counts (`T_S`, `T_P` in events) and the absorption
//! split are accumulated with Welford statistics, so one run yields `n`
//! independent samples of the quantities the cluster-level Markov chain
//! predicts analytically (Relations 5–6 and 9) — the cross-validation
//! consumed by `pollux-sweep`'s `DesValidation` scenarios far beyond the
//! state-space sizes the matrix can enumerate.
//!
//! # Example
//!
//! ```
//! use pollux::des_overlay::{run_des_overlay, DesOverlayConfig};
//! use pollux::{ClusterAnalysis, InitialCondition, ModelParams};
//! use pollux_adversary::TargetedStrategy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = ModelParams::paper_defaults().with_mu(0.2).with_d(0.8);
//! let strategy = TargetedStrategy::new(params.k(), params.nu()).unwrap();
//! // 2^8 = 256 clusters ≈ 2 500 nodes.
//! let config = DesOverlayConfig::new(8, 1.0, 200_000);
//! let report = run_des_overlay(&params, &InitialCondition::Delta, &strategy, &config, 42);
//! assert_eq!(report.n_clusters, 256);
//! assert!(report.initial_nodes >= 2_500);
//!
//! // The measured mean sojourn agrees with the Markov prediction.
//! let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta)?;
//! let predicted = analysis.expected_safe_events()?;
//! let measured = report.safe_events;
//! assert!((measured.mean - predicted).abs() < 5.0 * measured.ci_half_width);
//! # Ok(())
//! # }
//! ```

use pollux_adversary::{ClusterView, JoinDecision, Strategy};
use pollux_defense::{effective_join_admission, effective_survival, Defense, NullDefense};
use pollux_des::churn::{ChurnKind, EventMix, PoissonProcess};
use pollux_des::stats::{Summary, Welford};
use pollux_des::{EventHandler, Scheduler, SimTime, Simulation};
use pollux_overlay::{Label, NodeId};
use pollux_prob::AliasTable;
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::{
    AdversaryToggles, ClusterState, InitialCondition, ModelParams, ModelSpace, StateClass,
};

/// Configuration of a whole-overlay discrete-event run.
#[derive(Debug, Clone, PartialEq)]
pub struct DesOverlayConfig {
    /// The overlay holds `n = 2^cluster_bits` clusters (a power of two so
    /// cluster labels tile the identifier space evenly). `10` is ~10⁴
    /// nodes, `14` is ~1.6·10⁵, `17` is ~1.3·10⁶ at the paper's sizes.
    pub cluster_bits: u32,
    /// Per-cluster churn rate (events per simulated time unit); the
    /// overlay-wide arrival rate is `n · lambda`.
    pub lambda: f64,
    /// Global cap on churn events; the run stops when it is reached
    /// (censoring still-transient clusters, or ending the steady-state
    /// measurement in regeneration mode).
    pub max_events: u64,
    /// When `true`, an absorbed cluster is re-seeded from the initial
    /// condition by its **next arrival** (the event is consumed by the
    /// regeneration, counting toward neither sojourn — the "+1" of the
    /// renewal–reward cycle), so the overlay never drains and long-run
    /// fractions are measurable.
    pub regenerate: bool,
    /// Fixed time grid (sorted, increasing) at which the live
    /// safe/polluted cluster fractions are recorded into
    /// [`DesOverlayReport::occupancy`]. Points the run never reaches
    /// (event cap hit first) are dropped.
    pub sample_times: Vec<f64>,
}

impl DesOverlayConfig {
    /// The historical one-shot configuration: no regeneration, no time
    /// grid.
    pub fn new(cluster_bits: u32, lambda: f64, max_events: u64) -> Self {
        DesOverlayConfig {
            cluster_bits,
            lambda,
            max_events,
            regenerate: false,
            sample_times: Vec::new(),
        }
    }

    /// Switches regeneration mode on.
    pub fn with_regeneration(mut self) -> Self {
        self.regenerate = true;
        self
    }

    /// Sets the occupancy sample grid.
    ///
    /// # Panics
    ///
    /// Panics when the grid is not sorted increasing.
    pub fn with_sample_times(mut self, sample_times: Vec<f64>) -> Self {
        assert!(
            sample_times.windows(2).all(|w| w[0] <= w[1]),
            "sample times must be sorted"
        );
        self.sample_times = sample_times;
        self
    }
}

/// Aggregated results of one whole-overlay run.
#[derive(Debug, Clone, PartialEq)]
pub struct DesOverlayReport {
    /// Number of clusters simulated.
    pub n_clusters: usize,
    /// Nodes alive at `t = 0` (core plus spares over all clusters).
    pub initial_nodes: u64,
    /// Peak concurrent node count over the run.
    pub peak_nodes: u64,
    /// Churn events processed.
    pub events: u64,
    /// Simulation clock at the end of the run.
    pub end_time: f64,
    /// Per-cluster safe sojourn `T_S` (events; censored clusters included
    /// with their partial counts, as in [`crate::simulation::estimate`]).
    pub safe_events: Summary,
    /// Per-cluster polluted sojourn `T_P` (events).
    pub polluted_events: Summary,
    /// Per-cluster lifetime to absorption in simulated time units
    /// (absorbed clusters only).
    pub lifetime: Summary,
    /// Empirical absorption frequencies `(AmS, AℓS, AmP, AℓP)` over the
    /// absorbed clusters.
    pub absorption: (f64, f64, f64, f64),
    /// Raw absorption counts `[AmS, AℓS, AmP, AℓP]` (for exact binomial
    /// confidence intervals on the frequencies).
    pub absorption_counts: [u64; 4],
    /// Completed absorptions. Without regeneration this is the number of
    /// absorbed clusters; with it, the number of completed renewal cycles
    /// over all clusters.
    pub absorbed: u64,
    /// Clusters still transient when the event cap hit. In regeneration
    /// mode these are mid-cycle clusters (their partial sojourns are
    /// **not** pushed into the per-cycle summaries).
    pub censored: u64,
    /// Events that found their cluster in a safe transient state.
    pub safe_event_total: u64,
    /// Events that found their cluster in a polluted transient state.
    pub polluted_event_total: u64,
    /// Events consumed by regenerations (regeneration mode only; the
    /// renewal–reward "+1" per cycle).
    pub regen_events: u64,
    /// `(t, safe fraction, polluted fraction)` of **live** clusters at
    /// each reached point of [`DesOverlayConfig::sample_times`].
    pub occupancy: Vec<(f64, f64, f64)>,
}

impl DesOverlayReport {
    /// Measured long-run `(safe, polluted)` event fractions: the share of
    /// processed events that found their cluster safe resp. polluted —
    /// the regeneration-mode estimator of
    /// [`crate::ClusterAnalysis::steady_state_fractions`].
    pub fn steady_state_fractions(&self) -> (f64, f64) {
        let total = self.events.max(1) as f64;
        (
            self.safe_event_total as f64 / total,
            self.polluted_event_total as f64 / total,
        )
    }

    /// Mean events per completed renewal cycle (the decorrelation length
    /// of the steady-state estimator).
    pub fn mean_cycle_events(&self) -> f64 {
        self.events as f64 / self.absorbed.max(1) as f64
    }
}

/// Where an absorbed cluster ended up (compact per-cluster status).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClusterStatus {
    Transient,
    SafeMerge,
    SafeSplit,
    PollutedMerge,
    PollutedSplit,
}

/// The node arena: flat per-node attributes plus a free list, indexed by
/// `u32` handles so membership tables stay dense.
struct NodeArena {
    malicious: Vec<bool>,
    ids: Vec<NodeId>,
    free: Vec<u32>,
    live: u64,
    peak: u64,
}

impl NodeArena {
    fn with_capacity(capacity: usize) -> Self {
        NodeArena {
            malicious: vec![false; capacity],
            ids: vec![NodeId::from_bytes([0; 32]); capacity],
            free: (0..capacity as u32).rev().collect(),
            live: 0,
            peak: 0,
        }
    }

    /// Claims a slot for a fresh node. The arena is sized for the worst
    /// case (`n · (C + Δ)` nodes), so exhaustion is a logic error.
    fn alloc(&mut self, malicious: bool, id: NodeId) -> u32 {
        let slot = self
            .free
            .pop()
            .expect("node arena sized for Smax per cluster");
        self.malicious[slot as usize] = malicious;
        self.ids[slot as usize] = id;
        self.live += 1;
        self.peak = self.peak.max(self.live);
        slot
    }

    fn release(&mut self, slot: u32) {
        self.free.push(slot);
        self.live -= 1;
    }
}

/// The event handler: the whole overlay, structure-of-arrays.
struct OverlayDes<'a, S: Strategy, D: Defense + ?Sized> {
    params: &'a ModelParams,
    strategy: &'a S,
    defense: &'a D,
    rng: StdRng,
    process: PoissonProcess,
    mix: EventMix,
    nodes: NodeArena,
    /// Flat core membership: `core[c * C .. (c + 1) * C]`.
    core: Vec<u32>,
    /// Flat spare membership: `spare[c * Δ ..][..s[c]]`.
    spare: Vec<u32>,
    /// Spare-set size `s` per cluster.
    s: Vec<u8>,
    /// Malicious core count `x` per cluster (cached; ground truth is the
    /// arena's flags).
    x: Vec<u8>,
    /// Malicious spare count `y` per cluster.
    y: Vec<u8>,
    status: Vec<ClusterStatus>,
    /// Events observed in transient safe / polluted states, per cluster.
    safe_ev: Vec<u32>,
    poll_ev: Vec<u32>,
    /// Prefix label of each cluster (depth `cluster_bits`).
    labels: Vec<Label>,
    cluster_bits: u32,
    /// Reusable maintenance scratch: candidate pool of node handles.
    pool: Vec<u32>,
    /// Reusable maintenance scratch: core slots awaiting promotion.
    empty_slots: Vec<usize>,
    events: u64,
    max_events: u64,
    transient_left: usize,
    // Regeneration mode.
    regenerate: bool,
    /// The initial distribution's sampler and the state table, kept for
    /// re-seeding absorbed clusters.
    table: AliasTable,
    states: Vec<ClusterState>,
    /// Birth time of the current cycle per cluster (0 for the initial
    /// population).
    birth: Vec<f64>,
    // Occupancy sampling.
    sample_times: Vec<f64>,
    next_sample: usize,
    live_safe: usize,
    live_polluted: usize,
    occupancy: Vec<(f64, f64, f64)>,
    // Accumulators.
    safe_w: Welford,
    poll_w: Welford,
    lifetime_w: Welford,
    absorption_counts: [u64; 4],
    safe_event_total: u64,
    poll_event_total: u64,
    regen_events: u64,
}

impl<S: Strategy, D: Defense + ?Sized> OverlayDes<'_, S, D> {
    fn c_size(&self) -> usize {
        self.params.core_size()
    }

    fn delta(&self) -> usize {
        self.params.max_spare()
    }

    /// Draws a fresh 256-bit identifier uniformly inside cluster `c`'s
    /// prefix region: random bits with the first `cluster_bits` bits
    /// forced to the cluster index (PeerCube routes a joiner to the unique
    /// cluster whose label prefixes its identifier, so conditioning on
    /// "this join reached cluster c" is conditioning on the prefix).
    fn draw_id(&mut self, c: usize) -> NodeId {
        let mut bytes = [0u8; 32];
        self.rng.fill(&mut bytes);
        for bit in 0..self.cluster_bits {
            let value = (c >> (self.cluster_bits - 1 - bit)) & 1 == 1;
            let byte = (bit / 8) as usize;
            let mask = 0x80u8 >> (bit % 8);
            if value {
                bytes[byte] |= mask;
            } else {
                bytes[byte] &= !mask;
            }
        }
        NodeId::from_bytes(bytes)
    }

    /// `true` when none of `count` malicious identifiers expired at this
    /// event (probability `d_eff^count`), as in the analytical chain.
    /// `d_eff` is the defense-shaped survival probability of the current
    /// cluster (exactly `d` under a neutral defense).
    fn survives(&mut self, d_eff: f64, count: usize) -> bool {
        if d_eff <= 0.0 {
            return false;
        }
        self.rng
            .random_bool(d_eff.powi(count as i32).clamp(0.0, 1.0))
    }

    /// Removes spare slot `j` of cluster `c` (swap-remove; slot selection
    /// is uniform, so the arrangement never biases the dynamics) and
    /// returns the node handle.
    fn take_spare(&mut self, c: usize, j: usize) -> u32 {
        let base = c * self.delta();
        let s = self.s[c] as usize;
        debug_assert!(j < s);
        let node = self.spare[base + j];
        self.spare[base + j] = self.spare[base + s - 1];
        node
    }

    /// Picks a uniformly random malicious (or, with `malicious == false`,
    /// honest) spare of cluster `c`; returns its slot index.
    fn pick_spare_by_kind(&mut self, c: usize, malicious: bool) -> usize {
        let base = c * self.delta();
        let s = self.s[c] as usize;
        let want = if malicious {
            self.y[c] as usize
        } else {
            s - self.y[c] as usize
        };
        debug_assert!(want > 0);
        let target = self.rng.random_range(0..want);
        let mut seen = 0usize;
        for j in 0..s {
            if self.nodes.malicious[self.spare[base + j] as usize] == malicious {
                if seen == target {
                    return j;
                }
                seen += 1;
            }
        }
        unreachable!("cached y count matches arena flags");
    }

    /// The `protocol_k` maintenance procedure after the core member in
    /// `leaver_slot` departed (its node already released): demote `k − 1`
    /// uniformly chosen remaining core members into the candidate pool
    /// (the `s` spares plus the demoted), promote `k` uniformly chosen
    /// pool members into the vacant core slots, and keep the remaining
    /// `s − 1` candidates as the new spare set.
    fn maintenance(&mut self, c: usize, leaver_slot: usize) {
        let c_size = self.c_size();
        let delta = self.delta();
        let k = self.params.k();
        let s = self.s[c] as usize;
        debug_assert!(s >= 1);

        self.pool.clear();
        self.empty_slots.clear();
        self.empty_slots.push(leaver_slot);

        // Demote k − 1 of the C − 1 remaining core members: partial
        // Fisher–Yates over the slot indices, skipping the leaver.
        if k > 1 {
            // `pool` temporarily holds candidate *slots* for demotion.
            for slot in 0..c_size {
                if slot != leaver_slot {
                    self.pool.push(slot as u32);
                }
            }
            for i in 0..k - 1 {
                let j = self.rng.random_range(i..self.pool.len());
                self.pool.swap(i, j);
            }
            for i in 0..k - 1 {
                self.empty_slots.push(self.pool[i] as usize);
            }
            self.pool.truncate(k - 1);
            // Replace the demoted slots with their node handles.
            for entry in self.pool.iter_mut() {
                *entry = self.core[c * c_size + *entry as usize];
            }
        }

        // The candidate pool: every spare plus the demoted members.
        let base = c * delta;
        for j in 0..s {
            self.pool.push(self.spare[base + j]);
        }
        debug_assert_eq!(self.pool.len(), s + k - 1);

        // Promote k uniformly chosen candidates into the vacant slots.
        for i in 0..k {
            let j = self.rng.random_range(i..self.pool.len());
            self.pool.swap(i, j);
        }
        for (i, &slot) in self.empty_slots.iter().enumerate() {
            self.core[c * c_size + slot] = self.pool[i];
        }
        // The rest of the pool is the new spare set (s − 1 members).
        for (j, &node) in self.pool[k..].iter().enumerate() {
            self.spare[base + j] = node;
        }

        // Re-derive the cached malicious counts from the arena flags.
        let x_new = self.core[c * c_size..(c + 1) * c_size]
            .iter()
            .filter(|&&n| self.nodes.malicious[n as usize])
            .count();
        let y_new = self.pool[k..]
            .iter()
            .filter(|&&n| self.nodes.malicious[n as usize])
            .count();
        self.x[c] = x_new as u8;
        self.y[c] = y_new as u8;
    }

    /// Plays one churn event on (transient) cluster `c`, mirroring the
    /// probabilities of the analytical chain at node granularity. The
    /// defense hooks gate in exactly the chain builder's three places;
    /// neutral hooks consume no randomness, so a [`NullDefense`] run's
    /// RNG stream is bit-identical to a defense-free run's.
    fn churn_event(&mut self, c: usize) {
        let c_size = self.c_size();
        let delta = self.delta();
        let quorum = self.params.quorum();
        let mu = self.params.mu();
        let toggles = *self.params.toggles();
        let s = self.s[c] as usize;
        let x = self.x[c] as usize;
        let y = self.y[c] as usize;
        let polluted = x > quorum;

        let view =
            ClusterView::new(c_size, delta, s, x, y).expect("simulated clusters stay inside Ω");
        // Induced churn preempts the event with a forced eviction.
        let eta = self.defense.induced_churn(&view);
        if eta > 0.0 && self.rng.random_bool(eta.clamp(0.0, 1.0)) {
            self.induced_eviction(c, polluted, toggles);
            return;
        }
        let d_eff = effective_survival(self.defense, &view, self.params.d());

        match self.mix.sample(&mut self.rng) {
            ChurnKind::Join => {
                // Join-rate shaping (plus the cluster-size taper): the
                // defense may drop the join before the cluster sees it.
                let g = effective_join_admission(self.defense, &view);
                if g < 1.0 && !self.rng.random_bool(g.clamp(0.0, 1.0)) {
                    return;
                }
                let malicious = mu > 0.0 && self.rng.random_bool(mu);
                let accept = if polluted && toggles.rule2 {
                    self.strategy.join_decision(&view, malicious) == JoinDecision::Accept
                } else {
                    true
                };
                if accept {
                    let id = self.draw_id(c);
                    debug_assert!(self.labels[c].is_prefix_of(&id));
                    let node = self.nodes.alloc(malicious, id);
                    self.spare[c * delta + s] = node;
                    self.s[c] += 1;
                    if malicious {
                        self.y[c] += 1;
                    }
                }
            }
            ChurnKind::Leave => {
                // One uniformly selected member of the C + s present.
                let r = self.rng.random_range(0..c_size + s);
                if r >= c_size {
                    // A spare was selected (slot r − C is uniform).
                    let j = r - c_size;
                    let node = self.spare[c * delta + j];
                    let malicious = self.nodes.malicious[node as usize];
                    if !malicious {
                        let node = self.take_spare(c, j);
                        self.nodes.release(node);
                        self.s[c] -= 1;
                    } else if !self.survives(d_eff, y) {
                        // Property 1 (or the defense's incarnation
                        // refresh) forces the expired identifier out.
                        let node = self.take_spare(c, j);
                        self.nodes.release(node);
                        self.s[c] -= 1;
                        self.y[c] -= 1;
                    }
                    // A valid malicious spare refuses to leave: self-loop.
                } else {
                    self.core_leave(c, r, polluted, toggles, d_eff);
                }
            }
        }
    }

    /// Handles a leave event that selected core slot `r`.
    fn core_leave(
        &mut self,
        c: usize,
        r: usize,
        polluted: bool,
        toggles: AdversaryToggles,
        d_eff: f64,
    ) {
        let c_size = self.c_size();
        let delta = self.delta();
        let quorum = self.params.quorum();
        let s = self.s[c] as usize;
        let x = self.x[c] as usize;
        let y = self.y[c] as usize;
        let node = self.core[c * c_size + r];
        let malicious = self.nodes.malicious[node as usize];

        if !malicious {
            // An honest core member leaves.
            self.nodes.release(node);
            if polluted && toggles.bias {
                // The adversary refills the slot with a malicious spare
                // when it has one (x grows), an honest one otherwise.
                let j = self.pick_spare_by_kind(c, y > 0);
                let promoted = self.take_spare(c, j);
                self.core[c * c_size + r] = promoted;
                if y > 0 {
                    self.x[c] += 1;
                    self.y[c] -= 1;
                }
            } else {
                self.maintenance(c, r);
            }
            self.s[c] -= 1;
        } else if !self.survives(d_eff, x) {
            // A malicious core member whose identifier expired is forced
            // out by Property 1.
            self.nodes.release(node);
            let x_rem = x - 1;
            if x_rem > quorum && toggles.bias {
                let j = self.pick_spare_by_kind(c, y > 0);
                let promoted = self.take_spare(c, j);
                self.core[c * c_size + r] = promoted;
                if y > 0 {
                    self.y[c] -= 1; // malicious replacement keeps x
                } else {
                    self.x[c] -= 1; // honest replacement
                }
            } else {
                self.x[c] -= 1;
                self.maintenance(c, r);
            }
            self.s[c] -= 1;
        } else if !polluted && toggles.rule1 {
            // A valid malicious core member of a safe cluster may leave
            // voluntarily (Rule 1) to re-roll the maintenance dice.
            let view =
                ClusterView::new(c_size, delta, s, x, y).expect("simulated clusters stay inside Ω");
            if self.strategy.voluntary_core_leave(&view) {
                self.nodes.release(node);
                self.x[c] -= 1;
                self.maintenance(c, r);
                self.s[c] -= 1;
            }
        }
        // A valid malicious core member otherwise stays: self-loop.
    }

    /// The defense's forced eviction of a uniformly chosen member of
    /// cluster `c` — the DES mirror of the chain builder's induced-churn
    /// kernel. Unlike a voluntary leave, a valid malicious member cannot
    /// refuse (the protocol revokes the membership), so no survival roll
    /// happens; the replacement machinery is the usual one.
    fn induced_eviction(&mut self, c: usize, polluted: bool, toggles: AdversaryToggles) {
        let c_size = self.c_size();
        let delta = self.delta();
        let quorum = self.params.quorum();
        let s = self.s[c] as usize;
        let x = self.x[c] as usize;
        let y = self.y[c] as usize;

        let r = self.rng.random_range(0..c_size + s);
        if r >= c_size {
            // Evicted spare (slot r − C is uniform).
            let j = r - c_size;
            let node = self.spare[c * delta + j];
            let malicious = self.nodes.malicious[node as usize];
            let node = self.take_spare(c, j);
            self.nodes.release(node);
            self.s[c] -= 1;
            if malicious {
                self.y[c] -= 1;
            }
        } else {
            let node = self.core[c * c_size + r];
            let malicious = self.nodes.malicious[node as usize];
            self.nodes.release(node);
            if malicious {
                // The defense expels a captured seat.
                if x - 1 > quorum && toggles.bias {
                    let j = self.pick_spare_by_kind(c, y > 0);
                    let promoted = self.take_spare(c, j);
                    self.core[c * c_size + r] = promoted;
                    if y > 0 {
                        self.y[c] -= 1; // malicious replacement keeps x
                    } else {
                        self.x[c] -= 1; // honest replacement
                    }
                } else {
                    self.x[c] -= 1;
                    self.maintenance(c, r);
                }
            } else if polluted && toggles.bias {
                // The adversary exploits the vacancy like any other.
                let j = self.pick_spare_by_kind(c, y > 0);
                let promoted = self.take_spare(c, j);
                self.core[c * c_size + r] = promoted;
                if y > 0 {
                    self.x[c] += 1;
                    self.y[c] -= 1;
                }
            } else {
                self.maintenance(c, r);
            }
            self.s[c] -= 1;
        }
    }

    /// Frees every node of cluster `c` (called on absorption — the
    /// cluster's chain has reached a closed state; the overlay would
    /// merge or split it, retiring these memberships).
    fn release_cluster_nodes(&mut self, c: usize) {
        let c_size = self.c_size();
        let delta = self.delta();
        for slot in 0..c_size {
            self.nodes.release(self.core[c * c_size + slot]);
        }
        for j in 0..self.s[c] as usize {
            self.nodes.release(self.spare[c * delta + j]);
        }
    }

    /// Records the absorption of cluster `c` at time `t` (ending the
    /// current renewal cycle in regeneration mode).
    fn absorb(&mut self, c: usize, t: SimTime) {
        let polluted = self.x[c] as usize > self.params.quorum();
        let (status, slot) = if self.s[c] == 0 {
            if polluted {
                (ClusterStatus::PollutedMerge, 2)
            } else {
                (ClusterStatus::SafeMerge, 0)
            }
        } else if polluted {
            (ClusterStatus::PollutedSplit, 3)
        } else {
            (ClusterStatus::SafeSplit, 1)
        };
        self.status[c] = status;
        self.absorption_counts[slot] += 1;
        self.safe_w.push(f64::from(self.safe_ev[c]));
        self.poll_w.push(f64::from(self.poll_ev[c]));
        self.lifetime_w.push(t.value() - self.birth[c]);
        self.release_cluster_nodes(c);
        self.transient_left -= 1;
    }

    /// Re-seeds an absorbed cluster from the initial condition (the
    /// regeneration event of the renewal process): a fresh start state is
    /// drawn, concrete members are materialized, and the per-cycle
    /// counters restart.
    fn regenerate_cluster(&mut self, c: usize, t: SimTime) {
        let c_size = self.c_size();
        let delta = self.delta();
        let start = self.states[self.table.sample(&mut self.rng)];
        self.s[c] = start.s as u8;
        self.x[c] = start.x as u8;
        self.y[c] = start.y as u8;
        for slot in 0..c_size {
            let malicious = slot < start.x;
            let id = self.draw_id(c);
            let node = self.nodes.alloc(malicious, id);
            self.core[c * c_size + slot] = node;
        }
        for j in 0..start.s {
            let malicious = j < start.y;
            let id = self.draw_id(c);
            let node = self.nodes.alloc(malicious, id);
            self.spare[c * delta + j] = node;
        }
        self.safe_ev[c] = 0;
        self.poll_ev[c] = 0;
        self.birth[c] = t.value();
        self.status[c] = ClusterStatus::Transient;
        self.transient_left += 1;
        match start.classify(self.params) {
            StateClass::TransientSafe => self.live_safe += 1,
            StateClass::TransientPolluted => self.live_polluted += 1,
            // A Custom initial distribution may re-seed straight into an
            // absorbing state: a zero-event cycle, as at t = 0.
            _ => self.absorb(c, t),
        }
    }

    /// Records every sample-grid point reached strictly before the event
    /// about to be processed at `t` (the recorded fractions are the
    /// overlay's state left by the previous event).
    fn sample_until(&mut self, t: SimTime) {
        while self.next_sample < self.sample_times.len()
            && self.sample_times[self.next_sample] <= t.value()
        {
            let n = self.status.len() as f64;
            self.occupancy.push((
                self.sample_times[self.next_sample],
                self.live_safe as f64 / n,
                self.live_polluted as f64 / n,
            ));
            self.next_sample += 1;
        }
    }
}

impl<S: Strategy, D: Defense + ?Sized> EventHandler for OverlayDes<'_, S, D> {
    type Event = u32;

    fn handle(&mut self, t: SimTime, cluster: u32, sched: &mut Scheduler<u32>) {
        self.sample_until(t);
        let c = cluster as usize;

        if self.status[c] != ClusterStatus::Transient {
            // Only regeneration mode reschedules absorbed clusters: this
            // arrival is consumed by the re-seed (the renewal–reward "+1"
            // event, counted toward neither sojourn).
            debug_assert!(self.regenerate);
            self.events += 1;
            self.regen_events += 1;
            self.regenerate_cluster(c, t);
            let next = self.process.next_after(t, &mut self.rng);
            sched.schedule(next, cluster);
            if self.events >= self.max_events {
                sched.stop();
            }
            return;
        }

        // The event counts toward the sojourn of the class it lands in
        // (the same accounting as the single-cluster simulator).
        let polluted_before = self.x[c] as usize > self.params.quorum();
        if polluted_before {
            self.poll_ev[c] += 1;
            self.poll_event_total += 1;
        } else {
            self.safe_ev[c] += 1;
            self.safe_event_total += 1;
        }
        self.events += 1;

        self.churn_event(c);

        if polluted_before {
            self.live_polluted -= 1;
        } else {
            self.live_safe -= 1;
        }
        let s = self.s[c] as usize;
        if s == 0 || s == self.delta() {
            self.absorb(c, t);
            if self.regenerate {
                // The next arrival will regenerate the cluster.
                let next = self.process.next_after(t, &mut self.rng);
                sched.schedule(next, cluster);
            }
            // Otherwise an absorbed chain sits in a closed state forever:
            // its arrival stream carries no further information, so it is
            // simply not rescheduled (the self-loops are implicit).
        } else {
            if self.x[c] as usize > self.params.quorum() {
                self.live_polluted += 1;
            } else {
                self.live_safe += 1;
            }
            let next = self.process.next_after(t, &mut self.rng);
            sched.schedule(next, cluster);
        }

        if self.events >= self.max_events || (!self.regenerate && self.transient_left == 0) {
            sched.stop();
        }
    }
}

/// Runs one whole-overlay discrete-event simulation (no defense).
///
/// Deterministic in `(params, initial, strategy, config, seed)`: a single
/// RNG stream drives every draw and the engine's event ordering is total,
/// so two identical calls return identical reports. Equivalent to
/// [`run_des_overlay_duel`] with a [`NullDefense`] — bit-identically so,
/// because neutral defense hooks consume no randomness.
///
/// # Panics
///
/// As [`run_des_overlay_duel`].
pub fn run_des_overlay<S: Strategy>(
    params: &ModelParams,
    initial: &InitialCondition,
    strategy: &S,
    config: &DesOverlayConfig,
    seed: u64,
) -> DesOverlayReport {
    run_des_overlay_duel(params, initial, strategy, &NullDefense::new(), config, seed)
}

/// Runs one whole-overlay discrete-event simulation with a [`Defense`]
/// consulted inside the event loop — the measured half of an
/// adversary-vs-defense duel.
///
/// Deterministic in `(params, initial, strategy, defense, config, seed)`.
/// The hot path stays allocation-free: defense hooks are evaluated
/// against a stack [`ClusterView`], and a hook returning its neutral
/// element costs no random draw.
///
/// # Panics
///
/// Panics when `cluster_bits > 24` (16.7M clusters — past any sensible
/// memory budget), when `C + Δ > 255` (membership counters are `u8`),
/// when `lambda` is not a positive finite rate, when the sample grid is
/// unsorted, or when the initial condition is invalid for the parameters.
pub fn run_des_overlay_duel<S: Strategy, D: Defense + ?Sized>(
    params: &ModelParams,
    initial: &InitialCondition,
    strategy: &S,
    defense: &D,
    config: &DesOverlayConfig,
    seed: u64,
) -> DesOverlayReport {
    assert!(
        config.cluster_bits <= 24,
        "cluster_bits = {} exceeds the 2^24-cluster ceiling",
        config.cluster_bits
    );
    let c_size = params.core_size();
    let delta = params.max_spare();
    assert!(
        c_size + delta <= u8::MAX as usize,
        "C + Δ = {} overflows the per-cluster u8 counters",
        c_size + delta
    );
    assert!(
        config.sample_times.windows(2).all(|w| w[0] <= w[1]),
        "sample times must be sorted"
    );
    let n = 1usize << config.cluster_bits;
    let process = PoissonProcess::new(config.lambda).expect("lambda must be a positive rate");

    let rng = StdRng::seed_from_u64(seed);
    let space = ModelSpace::new(params);
    let alpha = initial
        .distribution(&space)
        .expect("initial condition must be valid for the parameters");
    let table = AliasTable::new(&alpha).expect("alpha is a distribution");
    let states: Vec<ClusterState> = space.iter().map(|(_, st)| *st).collect();

    let mut des = OverlayDes {
        params,
        strategy,
        defense,
        rng,
        process,
        mix: EventMix::balanced(),
        nodes: NodeArena::with_capacity(n * (c_size + delta)),
        core: vec![0; n * c_size],
        spare: vec![0; n * delta],
        s: vec![0; n],
        x: vec![0; n],
        y: vec![0; n],
        status: vec![ClusterStatus::Transient; n],
        safe_ev: vec![0; n],
        poll_ev: vec![0; n],
        labels: Vec::with_capacity(n),
        cluster_bits: config.cluster_bits,
        pool: Vec::with_capacity(c_size + delta),
        empty_slots: Vec::with_capacity(c_size),
        events: 0,
        max_events: config.max_events.max(1),
        transient_left: 0,
        regenerate: config.regenerate,
        table,
        states,
        birth: vec![0.0; n],
        sample_times: config.sample_times.clone(),
        next_sample: 0,
        live_safe: 0,
        live_polluted: 0,
        occupancy: Vec::with_capacity(config.sample_times.len()),
        safe_w: Welford::new(),
        poll_w: Welford::new(),
        lifetime_w: Welford::new(),
        absorption_counts: [0; 4],
        safe_event_total: 0,
        poll_event_total: 0,
        regen_events: 0,
    };
    for c in 0..n {
        let bits: Vec<bool> = (0..config.cluster_bits)
            .map(|bit| (c >> (config.cluster_bits - 1 - bit)) & 1 == 1)
            .collect();
        des.labels.push(Label::from_bits(bits));
    }

    // Populate the overlay: each cluster draws its start state from the
    // initial distribution and materializes concrete members for it.
    for c in 0..n {
        let start = des.states[des.table.sample(&mut des.rng)];
        des.s[c] = start.s as u8;
        des.x[c] = start.x as u8;
        des.y[c] = start.y as u8;
        for slot in 0..c_size {
            let malicious = slot < start.x;
            let id = des.draw_id(c);
            let node = des.nodes.alloc(malicious, id);
            des.core[c * c_size + slot] = node;
        }
        for j in 0..start.s {
            let malicious = j < start.y;
            let id = des.draw_id(c);
            let node = des.nodes.alloc(malicious, id);
            des.spare[c * delta + j] = node;
        }
        des.transient_left += 1;
        match start.classify(params) {
            StateClass::TransientSafe => des.live_safe += 1,
            StateClass::TransientPolluted => des.live_polluted += 1,
            // Legal only for Custom initial distributions: the cluster
            // is born absorbed, with zero transient events.
            _ => des.absorb(c, SimTime::ZERO),
        }
    }
    let initial_nodes = des.nodes.live;

    // Every still-transient cluster gets its first arrival. Without
    // regeneration, absorbed-at-birth clusters never enter the event
    // list; with it, they are scheduled too — their first arrival
    // performs the regeneration, upholding the "overlay never drains"
    // contract for Custom initial distributions with absorbing mass.
    // One pending arrival per scheduled cluster is the queue's
    // invariant, so `n + 1` capacity keeps the hot loop
    // reallocation-free.
    let mut sim = Simulation::with_queue_capacity(des, n + 1);
    for c in 0..n {
        if sim.handler().regenerate || sim.handler().status[c] == ClusterStatus::Transient {
            let h = sim.handler_mut();
            let t0 = h.process.next_after(SimTime::ZERO, &mut h.rng);
            sim.schedule(t0, c as u32);
        }
    }

    sim.run();
    let end_time = sim.now().value();
    let mut des = sim.into_handler();

    // Clusters still transient at the event cap are censored: without
    // regeneration their partial sojourn counts enter the estimates,
    // exactly as in `simulation::estimate`; with it they are mid-cycle
    // and the per-cycle summaries keep completed cycles only.
    let mut censored = 0u64;
    for c in 0..n {
        if des.status[c] == ClusterStatus::Transient {
            if !des.regenerate {
                des.safe_w.push(f64::from(des.safe_ev[c]));
                des.poll_w.push(f64::from(des.poll_ev[c]));
            }
            censored += 1;
        }
    }
    let absorbed: u64 = des.absorption_counts.iter().sum();
    let denom = absorbed.max(1) as f64;

    DesOverlayReport {
        n_clusters: n,
        initial_nodes,
        peak_nodes: des.nodes.peak,
        events: des.events,
        end_time,
        safe_events: des.safe_w.summary(1.96),
        polluted_events: des.poll_w.summary(1.96),
        lifetime: des.lifetime_w.summary(1.96),
        absorption: (
            des.absorption_counts[0] as f64 / denom,
            des.absorption_counts[1] as f64 / denom,
            des.absorption_counts[2] as f64 / denom,
            des.absorption_counts[3] as f64 / denom,
        ),
        absorption_counts: des.absorption_counts,
        absorbed,
        censored,
        safe_event_total: des.safe_event_total,
        polluted_event_total: des.poll_event_total,
        regen_events: des.regen_events,
        occupancy: des.occupancy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterAnalysis;
    use pollux_adversary::baselines::{PassiveAdversary, RecklessAdversary};
    use pollux_adversary::TargetedStrategy;

    fn params(mu: f64, d: f64) -> ModelParams {
        ModelParams::paper_defaults().with_mu(mu).with_d(d)
    }

    fn config(bits: u32) -> DesOverlayConfig {
        DesOverlayConfig::new(bits, 1.0, 5_000_000)
    }

    #[test]
    fn deterministic_per_seed() {
        let p = params(0.2, 0.8);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let a = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(6), 11);
        let b = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(6), 11);
        assert_eq!(a, b);
        let c = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(6), 12);
        assert_ne!(a.safe_events.mean, c.safe_events.mean);
    }

    #[test]
    fn mu_zero_matches_random_walk_closed_form() {
        // Attack-free overlay from δ: E(T_S) = 12, merge:split = 4:7 vs
        // 3:7, no pollution anywhere (closed forms from the paper).
        let p = params(0.0, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(11), 1);
        assert_eq!(r.censored, 0);
        assert_eq!(r.absorbed, 2048);
        assert!(
            (r.safe_events.mean - 12.0).abs() < 4.0 * r.safe_events.ci_half_width,
            "E(T_S) {} vs 12",
            r.safe_events
        );
        assert_eq!(r.polluted_events.mean, 0.0);
        assert!((r.absorption.0 - 4.0 / 7.0).abs() < 0.04);
        assert!((r.absorption.1 - 3.0 / 7.0).abs() < 0.04);
        assert_eq!(r.absorption.2, 0.0);
    }

    #[test]
    fn sojourns_and_absorption_match_the_markov_chain() {
        let p = params(0.25, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(11), 7);
        assert_eq!(r.censored, 0, "d = 0.9 absorbs well before the cap");

        let a = ClusterAnalysis::new(&p, InitialCondition::Delta).unwrap();
        let e_ts = a.expected_safe_events().unwrap();
        let e_tp = a.expected_polluted_events().unwrap();
        let split = a.absorption_split().unwrap();
        assert!(
            (r.safe_events.mean - e_ts).abs() < 4.0 * r.safe_events.ci_half_width,
            "T_S: des {} vs markov {e_ts}",
            r.safe_events
        );
        assert!(
            (r.polluted_events.mean - e_tp).abs() < 4.0 * r.polluted_events.ci_half_width.max(0.01),
            "T_P: des {} vs markov {e_tp}",
            r.polluted_events
        );
        assert!(
            (r.absorption.2 - split.polluted_merge).abs() < 0.02,
            "AmP: des {} vs markov {}",
            r.absorption.2,
            split.polluted_merge
        );
        // Time layer consistent with the event layer: mean lifetime ≈
        // mean per-cluster events / λ.
        let per_cluster_events = r.safe_events.mean + r.polluted_events.mean;
        assert!(
            (r.lifetime.mean - per_cluster_events).abs() < 5.0 * r.lifetime.ci_half_width + 1.0,
            "lifetime {} vs events-per-cluster {per_cluster_events}",
            r.lifetime.mean
        );
    }

    #[test]
    fn beta_initial_and_k7_run_under_all_strategies() {
        let p = params(0.3, 0.8).with_k(7).unwrap();
        let cfg = config(7);
        let targeted = TargetedStrategy::new(7, 0.1).unwrap();
        let t = run_des_overlay(&p, &InitialCondition::Beta, &targeted, &cfg, 3);
        let passive = PassiveAdversary::new();
        let pa = run_des_overlay(&p, &InitialCondition::Beta, &passive, &cfg, 3);
        let reckless = RecklessAdversary::new();
        let re = run_des_overlay(&p, &InitialCondition::Beta, &reckless, &cfg, 3);
        for r in [&t, &pa, &re] {
            assert_eq!(r.absorbed + r.censored, 128);
            let total = r.absorption.0 + r.absorption.1 + r.absorption.2 + r.absorption.3;
            assert!((total - 1.0).abs() < 1e-9);
        }
        // β starts polluted with positive probability, so the targeted
        // adversary accrues polluted sojourn mass.
        assert!(t.polluted_events.mean > 0.0);
    }

    #[test]
    fn event_cap_censors_and_stops() {
        let p = params(0.2, 0.99);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        // ~6 events per cluster on average: far too few for most clusters
        // to absorb, so the cap truncates the run.
        let cfg = DesOverlayConfig::new(5, 2.0, 200);
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &cfg, 9);
        assert_eq!(r.events, 200, "the cap stops the run exactly");
        assert!(r.censored > 0);
        assert_eq!(r.absorbed + r.censored, 32);
        assert!(r.end_time > 0.0);
    }

    #[test]
    fn node_accounting_balances() {
        let p = params(0.2, 0.8);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(8), 21);
        // δ start: every cluster has C + ⌊Δ/2⌋ = 10 members.
        assert_eq!(r.initial_nodes, 256 * 10);
        assert!(r.peak_nodes >= r.initial_nodes);
        // Peak is bounded by the arena's worst case.
        assert!(r.peak_nodes <= 256 * 14);
    }

    #[test]
    fn null_defense_run_is_bit_identical_to_defense_free() {
        use pollux_defense::NullDefense;
        let p = params(0.25, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        for cfg in [
            config(7),
            config(6).with_regeneration(),
            config(6)
                .with_regeneration()
                .with_sample_times(vec![5.0, 10.0, 20.0]),
        ] {
            let plain = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &cfg, 5);
            let duel = run_des_overlay_duel(
                &p,
                &InitialCondition::Delta,
                &strategy,
                &NullDefense::new(),
                &cfg,
                5,
            );
            assert_eq!(plain, duel);
        }
    }

    #[test]
    fn regeneration_keeps_the_overlay_alive_and_measures_steady_state() {
        let p = params(0.25, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let cfg = DesOverlayConfig::new(9, 1.0, 800 << 9).with_regeneration();
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &cfg, 13);
        // The cap (not drain-out) ends the run, with every cluster live or
        // awaiting regeneration.
        assert_eq!(r.events, 800 << 9);
        assert!(r.absorbed > 10_000, "cycles: {}", r.absorbed);
        assert!(r.regen_events > 0);
        assert_eq!(
            r.safe_event_total + r.polluted_event_total + r.regen_events,
            r.events
        );
        // The event fractions match the renewal–reward closed form.
        let a = ClusterAnalysis::new(&p, InitialCondition::Delta).unwrap();
        let (want_safe, want_poll) = a.steady_state_fractions().unwrap();
        let (got_safe, got_poll) = r.steady_state_fractions();
        let (lo, hi) =
            crate::duel::renewal_wilson(r.polluted_event_total, r.events, r.absorbed, 4.0);
        assert!(
            (lo..=hi).contains(&want_poll),
            "polluted: des {got_poll} ∉ [{lo}, {hi}] around analytic {want_poll}"
        );
        assert!(
            (got_safe - want_safe).abs() < 0.02,
            "{got_safe} vs {want_safe}"
        );
        // Mean cycle length is E(T_S) + E(T_P) + 1.
        let want_cycle =
            a.expected_safe_events().unwrap() + a.expected_polluted_events().unwrap() + 1.0;
        assert!(
            (r.mean_cycle_events() - want_cycle).abs() < 0.5,
            "cycle {} vs {want_cycle}",
            r.mean_cycle_events()
        );
    }

    #[test]
    fn occupancy_sampling_tracks_the_time_grid() {
        let p = params(0.2, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let grid: Vec<f64> = (0..20).map(|i| i as f64 * 5.0).collect();
        let cfg = DesOverlayConfig::new(7, 1.0, 200 << 7)
            .with_regeneration()
            .with_sample_times(grid.clone());
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &cfg, 17);
        // The run lasts ~200 time units (λ = 1), so the whole grid is hit.
        assert_eq!(r.occupancy.len(), grid.len());
        for (i, &(t, safe, poll)) in r.occupancy.iter().enumerate() {
            assert_eq!(t, grid[i]);
            assert!((0.0..=1.0).contains(&safe) && (0.0..=1.0).contains(&poll));
            assert!(safe + poll <= 1.0 + 1e-12);
        }
        // t = 0 (before any event): everything transient from δ.
        assert_eq!(r.occupancy[0].1, 1.0);
        assert_eq!(r.occupancy[0].2, 0.0);
        // In steady state most clusters stay live (regeneration wait is
        // one event of ~14 per cycle).
        let last = r.occupancy.last().unwrap();
        assert!(last.1 + last.2 > 0.8, "live fraction {}", last.1 + last.2);
        // A truncated run drops unreached grid points.
        let short = DesOverlayConfig::new(5, 1.0, 50)
            .with_regeneration()
            .with_sample_times(vec![0.0, 1e6]);
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &short, 17);
        assert_eq!(r.occupancy.len(), 1);
    }

    #[test]
    fn regeneration_revives_clusters_born_absorbed() {
        // A Custom initial with mass on an absorbing state: in
        // regeneration mode those clusters must be scheduled at t = 0 so
        // their first arrival re-seeds them — the overlay never drains.
        let p = params(0.2, 0.8);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let space = ModelSpace::new(&p);
        let mut alpha = vec![0.0; space.len()];
        // Half the mass born absorbed (safe merge, s = 0), half at δ.
        alpha[space.index(&ClusterState::new(0, 0, 0))] = 0.5;
        alpha[space.index(&ClusterState::new(3, 0, 0))] = 0.5;
        let initial = InitialCondition::Custom(alpha);
        let cfg = DesOverlayConfig::new(6, 1.0, 100 << 6).with_regeneration();
        let r = run_des_overlay(&p, &initial, &strategy, &cfg, 31);
        // Every cluster keeps cycling: far more completed cycles than the
        // 64 clusters, and regeneration events from both birth paths.
        assert_eq!(r.events, 100 << 6);
        assert!(r.absorbed > 64, "cycles: {}", r.absorbed);
        assert!(r.regen_events >= r.absorbed / 2);
        // The event fractions match the renewal closed form under the
        // same Custom initial (cycles born absorbed contribute length-1
        // cycles: T_S = T_P = 0 plus the regeneration event).
        let a = ClusterAnalysis::new(&p, InitialCondition::Custom(r2_alpha(&space))).unwrap();
        let (_, want_poll) = a.steady_state_fractions().unwrap();
        let (lo, hi) =
            crate::duel::renewal_wilson(r.polluted_event_total, r.events, r.absorbed, 5.0);
        assert!(
            (lo..=hi).contains(&want_poll),
            "polluted ∉ [{lo}, {hi}] around {want_poll}"
        );
    }

    /// The same half-absorbed/half-δ Custom distribution as above.
    fn r2_alpha(space: &ModelSpace) -> Vec<f64> {
        let mut alpha = vec![0.0; space.len()];
        alpha[space.index(&ClusterState::new(0, 0, 0))] = 0.5;
        alpha[space.index(&ClusterState::new(3, 0, 0))] = 0.5;
        alpha
    }

    #[test]
    fn induced_churn_defense_suppresses_pollution_in_the_loop() {
        use pollux_defense::InducedChurn;
        let p = params(0.25, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let cfg = DesOverlayConfig::new(9, 1.0, 500 << 9).with_regeneration();
        let plain = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &cfg, 23);
        let defended = run_des_overlay_duel(
            &p,
            &InitialCondition::Delta,
            &strategy,
            &InducedChurn::new(0.2).unwrap(),
            &cfg,
            23,
        );
        let (_, poll_plain) = plain.steady_state_fractions();
        let (_, poll_defended) = defended.steady_state_fractions();
        assert!(
            poll_defended < 0.6 * poll_plain,
            "induced churn: {poll_defended} vs undefended {poll_plain}"
        );
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_sample_grid_panics() {
        let _ = DesOverlayConfig::new(5, 1.0, 10).with_sample_times(vec![3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "ceiling")]
    fn oversized_cluster_bits_panics() {
        let p = params(0.1, 0.5);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let cfg = DesOverlayConfig::new(25, 1.0, 10);
        run_des_overlay(&p, &InitialCondition::Delta, &strategy, &cfg, 1);
    }
}
