//! `pollux-des`-driven whole-overlay simulation at production scale.
//!
//! [`crate::simulation`] replays one cluster per replication and
//! [`crate::overlay_sim`] steps `n` abstract chain states round-robin;
//! this module runs the **actual overlay** — every node of every cluster —
//! as a continuous-time discrete-event simulation on the
//! [`pollux_des`] engine, at 10⁵–10⁶ nodes:
//!
//! * every cluster owns an independent Poisson arrival stream
//!   ([`pollux_des::churn::PoissonProcess`]) whose arrivals flip the
//!   paper's balanced join/leave coin ([`pollux_des::churn::EventMix`]);
//!   the superposition of `n` equal-rate streams delivers events to
//!   uniformly random clusters, exactly the competing-chains semantics of
//!   Section VIII;
//! * nodes are concrete: an index-based arena stores one malicious flag
//!   and one 256-bit [`pollux_overlay::NodeId`] per node, and each
//!   cluster's core/spare membership lists hold arena indices. Joins draw
//!   fresh identifiers inside the cluster's prefix region
//!   ([`pollux_overlay::Label`]), departures free slots back to the
//!   arena, and the `protocol_k` maintenance procedure moves real nodes
//!   between the core and spare sets (the hypergeometric kernel
//!   `τ(x, a, b)` of the analytical chain emerges from the uniform
//!   draws rather than being sampled directly);
//! * the adversary is pluggable: any [`pollux_adversary::Strategy`]
//!   drives Rule 1, Rule 2 and the maintenance bias, gated by the
//!   [`crate::AdversaryToggles`] carried in [`ModelParams`].
//!
//! The hot event loop is allocation-free: the future-event list is
//! pre-sized to one pending arrival per cluster, the event payload is a
//! bare `u32` cluster index (no boxing), membership updates touch flat
//! pre-allocated tables, and the maintenance draw uses two reusable
//! scratch buffers. A 10⁶-node overlay processes 10⁶ events in seconds.
//!
//! Per-cluster sojourn counts (`T_S`, `T_P` in events) and the absorption
//! split are accumulated with Welford statistics, so one run yields `n`
//! independent samples of the quantities the cluster-level Markov chain
//! predicts analytically (Relations 5–6 and 9) — the cross-validation
//! consumed by `pollux-sweep`'s `DesValidation` scenarios far beyond the
//! state-space sizes the matrix can enumerate.
//!
//! # Example
//!
//! ```
//! use pollux::des_overlay::{run_des_overlay, DesOverlayConfig};
//! use pollux::{ClusterAnalysis, InitialCondition, ModelParams};
//! use pollux_adversary::TargetedStrategy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = ModelParams::paper_defaults().with_mu(0.2).with_d(0.8);
//! let strategy = TargetedStrategy::new(params.k(), params.nu()).unwrap();
//! let config = DesOverlayConfig {
//!     cluster_bits: 8, // 256 clusters ≈ 2 500 nodes
//!     lambda: 1.0,
//!     max_events: 200_000,
//! };
//! let report = run_des_overlay(&params, &InitialCondition::Delta, &strategy, &config, 42);
//! assert_eq!(report.n_clusters, 256);
//! assert!(report.initial_nodes >= 2_500);
//!
//! // The measured mean sojourn agrees with the Markov prediction.
//! let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta)?;
//! let predicted = analysis.expected_safe_events()?;
//! let measured = report.safe_events;
//! assert!((measured.mean - predicted).abs() < 5.0 * measured.ci_half_width);
//! # Ok(())
//! # }
//! ```

use pollux_adversary::{ClusterView, JoinDecision, Strategy};
use pollux_des::churn::{ChurnKind, EventMix, PoissonProcess};
use pollux_des::stats::{Summary, Welford};
use pollux_des::{EventHandler, Scheduler, SimTime, Simulation};
use pollux_overlay::{Label, NodeId};
use pollux_prob::AliasTable;
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::{AdversaryToggles, ClusterState, InitialCondition, ModelParams, ModelSpace};

/// Configuration of a whole-overlay discrete-event run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesOverlayConfig {
    /// The overlay holds `n = 2^cluster_bits` clusters (a power of two so
    /// cluster labels tile the identifier space evenly). `10` is ~10⁴
    /// nodes, `14` is ~1.6·10⁵, `17` is ~1.3·10⁶ at the paper's sizes.
    pub cluster_bits: u32,
    /// Per-cluster churn rate (events per simulated time unit); the
    /// overlay-wide arrival rate is `n · lambda`.
    pub lambda: f64,
    /// Global cap on churn events; the run stops early (censoring any
    /// still-transient clusters) when it is reached.
    pub max_events: u64,
}

/// Aggregated results of one whole-overlay run.
#[derive(Debug, Clone, PartialEq)]
pub struct DesOverlayReport {
    /// Number of clusters simulated.
    pub n_clusters: usize,
    /// Nodes alive at `t = 0` (core plus spares over all clusters).
    pub initial_nodes: u64,
    /// Peak concurrent node count over the run.
    pub peak_nodes: u64,
    /// Churn events processed.
    pub events: u64,
    /// Simulation clock at the end of the run.
    pub end_time: f64,
    /// Per-cluster safe sojourn `T_S` (events; censored clusters included
    /// with their partial counts, as in [`crate::simulation::estimate`]).
    pub safe_events: Summary,
    /// Per-cluster polluted sojourn `T_P` (events).
    pub polluted_events: Summary,
    /// Per-cluster lifetime to absorption in simulated time units
    /// (absorbed clusters only).
    pub lifetime: Summary,
    /// Empirical absorption frequencies `(AmS, AℓS, AmP, AℓP)` over the
    /// absorbed clusters.
    pub absorption: (f64, f64, f64, f64),
    /// Raw absorption counts `[AmS, AℓS, AmP, AℓP]` (for exact binomial
    /// confidence intervals on the frequencies).
    pub absorption_counts: [u64; 4],
    /// Clusters absorbed before the event cap.
    pub absorbed: u64,
    /// Clusters still transient when the event cap hit.
    pub censored: u64,
}

/// Where an absorbed cluster ended up (compact per-cluster status).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClusterStatus {
    Transient,
    SafeMerge,
    SafeSplit,
    PollutedMerge,
    PollutedSplit,
}

/// The node arena: flat per-node attributes plus a free list, indexed by
/// `u32` handles so membership tables stay dense.
struct NodeArena {
    malicious: Vec<bool>,
    ids: Vec<NodeId>,
    free: Vec<u32>,
    live: u64,
    peak: u64,
}

impl NodeArena {
    fn with_capacity(capacity: usize) -> Self {
        NodeArena {
            malicious: vec![false; capacity],
            ids: vec![NodeId::from_bytes([0; 32]); capacity],
            free: (0..capacity as u32).rev().collect(),
            live: 0,
            peak: 0,
        }
    }

    /// Claims a slot for a fresh node. The arena is sized for the worst
    /// case (`n · (C + Δ)` nodes), so exhaustion is a logic error.
    fn alloc(&mut self, malicious: bool, id: NodeId) -> u32 {
        let slot = self
            .free
            .pop()
            .expect("node arena sized for Smax per cluster");
        self.malicious[slot as usize] = malicious;
        self.ids[slot as usize] = id;
        self.live += 1;
        self.peak = self.peak.max(self.live);
        slot
    }

    fn release(&mut self, slot: u32) {
        self.free.push(slot);
        self.live -= 1;
    }
}

/// The event handler: the whole overlay, structure-of-arrays.
struct OverlayDes<'a, S: Strategy> {
    params: &'a ModelParams,
    strategy: &'a S,
    rng: StdRng,
    process: PoissonProcess,
    mix: EventMix,
    nodes: NodeArena,
    /// Flat core membership: `core[c * C .. (c + 1) * C]`.
    core: Vec<u32>,
    /// Flat spare membership: `spare[c * Δ ..][..s[c]]`.
    spare: Vec<u32>,
    /// Spare-set size `s` per cluster.
    s: Vec<u8>,
    /// Malicious core count `x` per cluster (cached; ground truth is the
    /// arena's flags).
    x: Vec<u8>,
    /// Malicious spare count `y` per cluster.
    y: Vec<u8>,
    status: Vec<ClusterStatus>,
    /// Events observed in transient safe / polluted states, per cluster.
    safe_ev: Vec<u32>,
    poll_ev: Vec<u32>,
    /// Prefix label of each cluster (depth `cluster_bits`).
    labels: Vec<Label>,
    cluster_bits: u32,
    /// Reusable maintenance scratch: candidate pool of node handles.
    pool: Vec<u32>,
    /// Reusable maintenance scratch: core slots awaiting promotion.
    empty_slots: Vec<usize>,
    events: u64,
    max_events: u64,
    transient_left: usize,
    // Accumulators.
    safe_w: Welford,
    poll_w: Welford,
    lifetime_w: Welford,
    absorption_counts: [u64; 4],
}

impl<S: Strategy> OverlayDes<'_, S> {
    fn c_size(&self) -> usize {
        self.params.core_size()
    }

    fn delta(&self) -> usize {
        self.params.max_spare()
    }

    /// Draws a fresh 256-bit identifier uniformly inside cluster `c`'s
    /// prefix region: random bits with the first `cluster_bits` bits
    /// forced to the cluster index (PeerCube routes a joiner to the unique
    /// cluster whose label prefixes its identifier, so conditioning on
    /// "this join reached cluster c" is conditioning on the prefix).
    fn draw_id(&mut self, c: usize) -> NodeId {
        let mut bytes = [0u8; 32];
        self.rng.fill(&mut bytes);
        for bit in 0..self.cluster_bits {
            let value = (c >> (self.cluster_bits - 1 - bit)) & 1 == 1;
            let byte = (bit / 8) as usize;
            let mask = 0x80u8 >> (bit % 8);
            if value {
                bytes[byte] |= mask;
            } else {
                bytes[byte] &= !mask;
            }
        }
        NodeId::from_bytes(bytes)
    }

    /// `true` when none of `count` malicious identifiers expired at this
    /// event (probability `d^count`), as in the analytical chain.
    fn survives(&mut self, count: usize) -> bool {
        let d = self.params.d();
        if d <= 0.0 {
            return false;
        }
        self.rng.random_bool(d.powi(count as i32).clamp(0.0, 1.0))
    }

    /// Removes spare slot `j` of cluster `c` (swap-remove; slot selection
    /// is uniform, so the arrangement never biases the dynamics) and
    /// returns the node handle.
    fn take_spare(&mut self, c: usize, j: usize) -> u32 {
        let base = c * self.delta();
        let s = self.s[c] as usize;
        debug_assert!(j < s);
        let node = self.spare[base + j];
        self.spare[base + j] = self.spare[base + s - 1];
        node
    }

    /// Picks a uniformly random malicious (or, with `malicious == false`,
    /// honest) spare of cluster `c`; returns its slot index.
    fn pick_spare_by_kind(&mut self, c: usize, malicious: bool) -> usize {
        let base = c * self.delta();
        let s = self.s[c] as usize;
        let want = if malicious {
            self.y[c] as usize
        } else {
            s - self.y[c] as usize
        };
        debug_assert!(want > 0);
        let target = self.rng.random_range(0..want);
        let mut seen = 0usize;
        for j in 0..s {
            if self.nodes.malicious[self.spare[base + j] as usize] == malicious {
                if seen == target {
                    return j;
                }
                seen += 1;
            }
        }
        unreachable!("cached y count matches arena flags");
    }

    /// The `protocol_k` maintenance procedure after the core member in
    /// `leaver_slot` departed (its node already released): demote `k − 1`
    /// uniformly chosen remaining core members into the candidate pool
    /// (the `s` spares plus the demoted), promote `k` uniformly chosen
    /// pool members into the vacant core slots, and keep the remaining
    /// `s − 1` candidates as the new spare set.
    fn maintenance(&mut self, c: usize, leaver_slot: usize) {
        let c_size = self.c_size();
        let delta = self.delta();
        let k = self.params.k();
        let s = self.s[c] as usize;
        debug_assert!(s >= 1);

        self.pool.clear();
        self.empty_slots.clear();
        self.empty_slots.push(leaver_slot);

        // Demote k − 1 of the C − 1 remaining core members: partial
        // Fisher–Yates over the slot indices, skipping the leaver.
        if k > 1 {
            // `pool` temporarily holds candidate *slots* for demotion.
            for slot in 0..c_size {
                if slot != leaver_slot {
                    self.pool.push(slot as u32);
                }
            }
            for i in 0..k - 1 {
                let j = self.rng.random_range(i..self.pool.len());
                self.pool.swap(i, j);
            }
            for i in 0..k - 1 {
                self.empty_slots.push(self.pool[i] as usize);
            }
            self.pool.truncate(k - 1);
            // Replace the demoted slots with their node handles.
            for entry in self.pool.iter_mut() {
                *entry = self.core[c * c_size + *entry as usize];
            }
        }

        // The candidate pool: every spare plus the demoted members.
        let base = c * delta;
        for j in 0..s {
            self.pool.push(self.spare[base + j]);
        }
        debug_assert_eq!(self.pool.len(), s + k - 1);

        // Promote k uniformly chosen candidates into the vacant slots.
        for i in 0..k {
            let j = self.rng.random_range(i..self.pool.len());
            self.pool.swap(i, j);
        }
        for (i, &slot) in self.empty_slots.iter().enumerate() {
            self.core[c * c_size + slot] = self.pool[i];
        }
        // The rest of the pool is the new spare set (s − 1 members).
        for (j, &node) in self.pool[k..].iter().enumerate() {
            self.spare[base + j] = node;
        }

        // Re-derive the cached malicious counts from the arena flags.
        let x_new = self.core[c * c_size..(c + 1) * c_size]
            .iter()
            .filter(|&&n| self.nodes.malicious[n as usize])
            .count();
        let y_new = self.pool[k..]
            .iter()
            .filter(|&&n| self.nodes.malicious[n as usize])
            .count();
        self.x[c] = x_new as u8;
        self.y[c] = y_new as u8;
    }

    /// Plays one churn event on (transient) cluster `c`, mirroring the
    /// probabilities of the analytical chain at node granularity.
    fn churn_event(&mut self, c: usize) {
        let c_size = self.c_size();
        let delta = self.delta();
        let quorum = self.params.quorum();
        let mu = self.params.mu();
        let toggles = *self.params.toggles();
        let s = self.s[c] as usize;
        let x = self.x[c] as usize;
        let y = self.y[c] as usize;
        let polluted = x > quorum;

        match self.mix.sample(&mut self.rng) {
            ChurnKind::Join => {
                let malicious = mu > 0.0 && self.rng.random_bool(mu);
                let accept = if polluted && toggles.rule2 {
                    let view = ClusterView::new(c_size, delta, s, x, y)
                        .expect("simulated clusters stay inside Ω");
                    self.strategy.join_decision(&view, malicious) == JoinDecision::Accept
                } else {
                    true
                };
                if accept {
                    let id = self.draw_id(c);
                    debug_assert!(self.labels[c].is_prefix_of(&id));
                    let node = self.nodes.alloc(malicious, id);
                    self.spare[c * delta + s] = node;
                    self.s[c] += 1;
                    if malicious {
                        self.y[c] += 1;
                    }
                }
            }
            ChurnKind::Leave => {
                // One uniformly selected member of the C + s present.
                let r = self.rng.random_range(0..c_size + s);
                if r >= c_size {
                    // A spare was selected (slot r − C is uniform).
                    let j = r - c_size;
                    let node = self.spare[c * delta + j];
                    let malicious = self.nodes.malicious[node as usize];
                    if !malicious {
                        let node = self.take_spare(c, j);
                        self.nodes.release(node);
                        self.s[c] -= 1;
                    } else if !self.survives(y) {
                        // Property 1 forces the expired identifier out.
                        let node = self.take_spare(c, j);
                        self.nodes.release(node);
                        self.s[c] -= 1;
                        self.y[c] -= 1;
                    }
                    // A valid malicious spare refuses to leave: self-loop.
                } else {
                    self.core_leave(c, r, polluted, toggles);
                }
            }
        }
    }

    /// Handles a leave event that selected core slot `r`.
    fn core_leave(&mut self, c: usize, r: usize, polluted: bool, toggles: AdversaryToggles) {
        let c_size = self.c_size();
        let delta = self.delta();
        let quorum = self.params.quorum();
        let s = self.s[c] as usize;
        let x = self.x[c] as usize;
        let y = self.y[c] as usize;
        let node = self.core[c * c_size + r];
        let malicious = self.nodes.malicious[node as usize];

        if !malicious {
            // An honest core member leaves.
            self.nodes.release(node);
            if polluted && toggles.bias {
                // The adversary refills the slot with a malicious spare
                // when it has one (x grows), an honest one otherwise.
                let j = self.pick_spare_by_kind(c, y > 0);
                let promoted = self.take_spare(c, j);
                self.core[c * c_size + r] = promoted;
                if y > 0 {
                    self.x[c] += 1;
                    self.y[c] -= 1;
                }
            } else {
                self.maintenance(c, r);
            }
            self.s[c] -= 1;
        } else if !self.survives(x) {
            // A malicious core member whose identifier expired is forced
            // out by Property 1.
            self.nodes.release(node);
            let x_rem = x - 1;
            if x_rem > quorum && toggles.bias {
                let j = self.pick_spare_by_kind(c, y > 0);
                let promoted = self.take_spare(c, j);
                self.core[c * c_size + r] = promoted;
                if y > 0 {
                    self.y[c] -= 1; // malicious replacement keeps x
                } else {
                    self.x[c] -= 1; // honest replacement
                }
            } else {
                self.x[c] -= 1;
                self.maintenance(c, r);
            }
            self.s[c] -= 1;
        } else if !polluted && toggles.rule1 {
            // A valid malicious core member of a safe cluster may leave
            // voluntarily (Rule 1) to re-roll the maintenance dice.
            let view =
                ClusterView::new(c_size, delta, s, x, y).expect("simulated clusters stay inside Ω");
            if self.strategy.voluntary_core_leave(&view) {
                self.nodes.release(node);
                self.x[c] -= 1;
                self.maintenance(c, r);
                self.s[c] -= 1;
            }
        }
        // A valid malicious core member otherwise stays: self-loop.
    }

    /// Frees every node of cluster `c` (called on absorption — the
    /// cluster's chain has reached a closed state; the overlay would
    /// merge or split it, retiring these memberships).
    fn release_cluster_nodes(&mut self, c: usize) {
        let c_size = self.c_size();
        let delta = self.delta();
        for slot in 0..c_size {
            self.nodes.release(self.core[c * c_size + slot]);
        }
        for j in 0..self.s[c] as usize {
            self.nodes.release(self.spare[c * delta + j]);
        }
    }

    /// Records the absorption of cluster `c` at time `t`.
    fn absorb(&mut self, c: usize, t: SimTime) {
        let polluted = self.x[c] as usize > self.params.quorum();
        let (status, slot) = if self.s[c] == 0 {
            if polluted {
                (ClusterStatus::PollutedMerge, 2)
            } else {
                (ClusterStatus::SafeMerge, 0)
            }
        } else if polluted {
            (ClusterStatus::PollutedSplit, 3)
        } else {
            (ClusterStatus::SafeSplit, 1)
        };
        self.status[c] = status;
        self.absorption_counts[slot] += 1;
        self.safe_w.push(f64::from(self.safe_ev[c]));
        self.poll_w.push(f64::from(self.poll_ev[c]));
        self.lifetime_w.push(t.value());
        self.release_cluster_nodes(c);
        self.transient_left -= 1;
    }
}

impl<S: Strategy> EventHandler for OverlayDes<'_, S> {
    type Event = u32;

    fn handle(&mut self, t: SimTime, cluster: u32, sched: &mut Scheduler<u32>) {
        let c = cluster as usize;
        debug_assert_eq!(self.status[c], ClusterStatus::Transient);

        // The event counts toward the sojourn of the class it lands in
        // (the same accounting as the single-cluster simulator).
        if self.x[c] as usize > self.params.quorum() {
            self.poll_ev[c] += 1;
        } else {
            self.safe_ev[c] += 1;
        }
        self.events += 1;

        self.churn_event(c);

        let s = self.s[c] as usize;
        if s == 0 || s == self.delta() {
            self.absorb(c, t);
            // An absorbed chain sits in a closed state forever: its
            // arrival stream carries no further information, so it is
            // simply not rescheduled (the self-loops are implicit).
        } else {
            let next = self.process.next_after(t, &mut self.rng);
            sched.schedule(next, cluster);
        }

        if self.events >= self.max_events || self.transient_left == 0 {
            sched.stop();
        }
    }
}

/// Runs one whole-overlay discrete-event simulation.
///
/// Deterministic in `(params, initial, strategy, config, seed)`: a single
/// RNG stream drives every draw and the engine's event ordering is total,
/// so two identical calls return identical reports.
///
/// # Panics
///
/// Panics when `cluster_bits > 24` (16.7M clusters — past any sensible
/// memory budget), when `C + Δ > 255` (membership counters are `u8`),
/// when `lambda` is not a positive finite rate, or when the initial
/// condition is invalid for the parameters.
pub fn run_des_overlay<S: Strategy>(
    params: &ModelParams,
    initial: &InitialCondition,
    strategy: &S,
    config: &DesOverlayConfig,
    seed: u64,
) -> DesOverlayReport {
    assert!(
        config.cluster_bits <= 24,
        "cluster_bits = {} exceeds the 2^24-cluster ceiling",
        config.cluster_bits
    );
    let c_size = params.core_size();
    let delta = params.max_spare();
    assert!(
        c_size + delta <= u8::MAX as usize,
        "C + Δ = {} overflows the per-cluster u8 counters",
        c_size + delta
    );
    let n = 1usize << config.cluster_bits;
    let process = PoissonProcess::new(config.lambda).expect("lambda must be a positive rate");

    let rng = StdRng::seed_from_u64(seed);
    let space = ModelSpace::new(params);
    let alpha = initial
        .distribution(&space)
        .expect("initial condition must be valid for the parameters");
    let table = AliasTable::new(&alpha).expect("alpha is a distribution");
    let states: Vec<ClusterState> = space.iter().map(|(_, st)| *st).collect();

    let mut des = OverlayDes {
        params,
        strategy,
        rng,
        process,
        mix: EventMix::balanced(),
        nodes: NodeArena::with_capacity(n * (c_size + delta)),
        core: vec![0; n * c_size],
        spare: vec![0; n * delta],
        s: vec![0; n],
        x: vec![0; n],
        y: vec![0; n],
        status: vec![ClusterStatus::Transient; n],
        safe_ev: vec![0; n],
        poll_ev: vec![0; n],
        labels: Vec::with_capacity(n),
        cluster_bits: config.cluster_bits,
        pool: Vec::with_capacity(c_size + delta),
        empty_slots: Vec::with_capacity(c_size),
        events: 0,
        max_events: config.max_events.max(1),
        transient_left: 0,
        safe_w: Welford::new(),
        poll_w: Welford::new(),
        lifetime_w: Welford::new(),
        absorption_counts: [0; 4],
    };
    for c in 0..n {
        let bits: Vec<bool> = (0..config.cluster_bits)
            .map(|bit| (c >> (config.cluster_bits - 1 - bit)) & 1 == 1)
            .collect();
        des.labels.push(Label::from_bits(bits));
    }

    // Populate the overlay: each cluster draws its start state from the
    // initial distribution and materializes concrete members for it.
    for c in 0..n {
        let start = states[table.sample(&mut des.rng)];
        des.s[c] = start.s as u8;
        des.x[c] = start.x as u8;
        des.y[c] = start.y as u8;
        for slot in 0..c_size {
            let malicious = slot < start.x;
            let id = des.draw_id(c);
            let node = des.nodes.alloc(malicious, id);
            des.core[c * c_size + slot] = node;
        }
        for j in 0..start.s {
            let malicious = j < start.y;
            let id = des.draw_id(c);
            let node = des.nodes.alloc(malicious, id);
            des.spare[c * delta + j] = node;
        }
        des.transient_left += 1;
        if start.classify(params).is_absorbing() {
            // Legal only for Custom initial distributions: the cluster
            // is born absorbed, with zero transient events.
            des.absorb(c, SimTime::ZERO);
        }
    }
    let initial_nodes = des.nodes.live;

    // Every still-transient cluster gets its first arrival; absorbed-at-
    // birth clusters never enter the event list. One pending arrival per
    // transient cluster is the queue's invariant, so `n + 1` capacity
    // keeps the hot loop reallocation-free.
    let mut sim = Simulation::with_queue_capacity(des, n + 1);
    for c in 0..n {
        if sim.handler().status[c] == ClusterStatus::Transient {
            let h = sim.handler_mut();
            let t0 = h.process.next_after(SimTime::ZERO, &mut h.rng);
            sim.schedule(t0, c as u32);
        }
    }

    sim.run();
    let end_time = sim.now().value();
    let mut des = sim.into_handler();

    // Clusters still transient at the event cap are censored: their
    // partial sojourn counts enter the estimates, exactly as in
    // `simulation::estimate`.
    let mut censored = 0u64;
    for c in 0..n {
        if des.status[c] == ClusterStatus::Transient {
            des.safe_w.push(f64::from(des.safe_ev[c]));
            des.poll_w.push(f64::from(des.poll_ev[c]));
            censored += 1;
        }
    }
    let absorbed: u64 = des.absorption_counts.iter().sum();
    let denom = absorbed.max(1) as f64;

    DesOverlayReport {
        n_clusters: n,
        initial_nodes,
        peak_nodes: des.nodes.peak,
        events: des.events,
        end_time,
        safe_events: des.safe_w.summary(1.96),
        polluted_events: des.poll_w.summary(1.96),
        lifetime: des.lifetime_w.summary(1.96),
        absorption: (
            des.absorption_counts[0] as f64 / denom,
            des.absorption_counts[1] as f64 / denom,
            des.absorption_counts[2] as f64 / denom,
            des.absorption_counts[3] as f64 / denom,
        ),
        absorption_counts: des.absorption_counts,
        absorbed,
        censored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterAnalysis;
    use pollux_adversary::baselines::{PassiveAdversary, RecklessAdversary};
    use pollux_adversary::TargetedStrategy;

    fn params(mu: f64, d: f64) -> ModelParams {
        ModelParams::paper_defaults().with_mu(mu).with_d(d)
    }

    fn config(bits: u32) -> DesOverlayConfig {
        DesOverlayConfig {
            cluster_bits: bits,
            lambda: 1.0,
            max_events: 5_000_000,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = params(0.2, 0.8);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let a = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(6), 11);
        let b = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(6), 11);
        assert_eq!(a, b);
        let c = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(6), 12);
        assert_ne!(a.safe_events.mean, c.safe_events.mean);
    }

    #[test]
    fn mu_zero_matches_random_walk_closed_form() {
        // Attack-free overlay from δ: E(T_S) = 12, merge:split = 4:7 vs
        // 3:7, no pollution anywhere (closed forms from the paper).
        let p = params(0.0, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(11), 1);
        assert_eq!(r.censored, 0);
        assert_eq!(r.absorbed, 2048);
        assert!(
            (r.safe_events.mean - 12.0).abs() < 4.0 * r.safe_events.ci_half_width,
            "E(T_S) {} vs 12",
            r.safe_events
        );
        assert_eq!(r.polluted_events.mean, 0.0);
        assert!((r.absorption.0 - 4.0 / 7.0).abs() < 0.04);
        assert!((r.absorption.1 - 3.0 / 7.0).abs() < 0.04);
        assert_eq!(r.absorption.2, 0.0);
    }

    #[test]
    fn sojourns_and_absorption_match_the_markov_chain() {
        let p = params(0.25, 0.9);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(11), 7);
        assert_eq!(r.censored, 0, "d = 0.9 absorbs well before the cap");

        let a = ClusterAnalysis::new(&p, InitialCondition::Delta).unwrap();
        let e_ts = a.expected_safe_events().unwrap();
        let e_tp = a.expected_polluted_events().unwrap();
        let split = a.absorption_split().unwrap();
        assert!(
            (r.safe_events.mean - e_ts).abs() < 4.0 * r.safe_events.ci_half_width,
            "T_S: des {} vs markov {e_ts}",
            r.safe_events
        );
        assert!(
            (r.polluted_events.mean - e_tp).abs() < 4.0 * r.polluted_events.ci_half_width.max(0.01),
            "T_P: des {} vs markov {e_tp}",
            r.polluted_events
        );
        assert!(
            (r.absorption.2 - split.polluted_merge).abs() < 0.02,
            "AmP: des {} vs markov {}",
            r.absorption.2,
            split.polluted_merge
        );
        // Time layer consistent with the event layer: mean lifetime ≈
        // mean per-cluster events / λ.
        let per_cluster_events = r.safe_events.mean + r.polluted_events.mean;
        assert!(
            (r.lifetime.mean - per_cluster_events).abs() < 5.0 * r.lifetime.ci_half_width + 1.0,
            "lifetime {} vs events-per-cluster {per_cluster_events}",
            r.lifetime.mean
        );
    }

    #[test]
    fn beta_initial_and_k7_run_under_all_strategies() {
        let p = params(0.3, 0.8).with_k(7).unwrap();
        let cfg = config(7);
        let targeted = TargetedStrategy::new(7, 0.1).unwrap();
        let t = run_des_overlay(&p, &InitialCondition::Beta, &targeted, &cfg, 3);
        let passive = PassiveAdversary::new();
        let pa = run_des_overlay(&p, &InitialCondition::Beta, &passive, &cfg, 3);
        let reckless = RecklessAdversary::new();
        let re = run_des_overlay(&p, &InitialCondition::Beta, &reckless, &cfg, 3);
        for r in [&t, &pa, &re] {
            assert_eq!(r.absorbed + r.censored, 128);
            let total = r.absorption.0 + r.absorption.1 + r.absorption.2 + r.absorption.3;
            assert!((total - 1.0).abs() < 1e-9);
        }
        // β starts polluted with positive probability, so the targeted
        // adversary accrues polluted sojourn mass.
        assert!(t.polluted_events.mean > 0.0);
    }

    #[test]
    fn event_cap_censors_and_stops() {
        let p = params(0.2, 0.99);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        // ~6 events per cluster on average: far too few for most clusters
        // to absorb, so the cap truncates the run.
        let cfg = DesOverlayConfig {
            cluster_bits: 5,
            lambda: 2.0,
            max_events: 200,
        };
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &cfg, 9);
        assert_eq!(r.events, 200, "the cap stops the run exactly");
        assert!(r.censored > 0);
        assert_eq!(r.absorbed + r.censored, 32);
        assert!(r.end_time > 0.0);
    }

    #[test]
    fn node_accounting_balances() {
        let p = params(0.2, 0.8);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let r = run_des_overlay(&p, &InitialCondition::Delta, &strategy, &config(8), 21);
        // δ start: every cluster has C + ⌊Δ/2⌋ = 10 members.
        assert_eq!(r.initial_nodes, 256 * 10);
        assert!(r.peak_nodes >= r.initial_nodes);
        // Peak is bounded by the arena's worst case.
        assert!(r.peak_nodes <= 256 * 14);
    }

    #[test]
    #[should_panic(expected = "ceiling")]
    fn oversized_cluster_bits_panics() {
        let p = params(0.1, 0.5);
        let strategy = TargetedStrategy::new(1, 0.1).unwrap();
        let cfg = DesOverlayConfig {
            cluster_bits: 25,
            lambda: 1.0,
            max_events: 10,
        };
        run_des_overlay(&p, &InitialCondition::Delta, &strategy, &cfg, 1);
    }
}
