//! The transition matrix of Figure 2.
//!
//! From a transient state `(s, x, y)` (with `0 < s < Δ`) the chain moves
//! according to the protocol (`protocol_k`) and the adversary's strategy:
//!
//! **Join event** (probability `p_j = 1/2`; joiner malicious w.p. `μ`):
//! safe clusters always execute the join (into the spare set); polluted
//! clusters apply Rule 2 — discard everything at `s = Δ − 1`, discard
//! honest joins while `s > 1`, accept everyone at `s = 1`.
//!
//! **Leave event** (probability `p_ℓ = 1/2`): the event hits a core member
//! w.p. `C/(C+s)`, a spare otherwise; within a set the member is malicious
//! proportionally to its composition. Honest members comply; malicious
//! members leave only when forced by Property 1 (an identifier of the set
//! expired, probability `1 − d^x` resp. `1 − d^y`) or when Rule 1 makes a
//! voluntary departure profitable. A core departure triggers maintenance:
//! the honest randomized procedure with kernel
//! `τ(x, a, b) = q(k−1, C−1, a, x) · q(k, s+k−1, b, y+a)`
//! in safe clusters, the adversary-biased replacement in polluted ones.

use std::sync::OnceLock;

use pollux_adversary::{rules, ClusterView};
use pollux_defense::{effective_join_admission, effective_survival, Defense, NullDefense};
use pollux_markov::{Dtmc, SparseDtmc};
use pollux_prob::hypergeometric_q;

use crate::{ClusterState, ModelParams, ModelSpace, StateClass};

/// The cluster chain: the enumerated space `Ω` plus the validated
/// transition matrix `M` of Figure 2.
///
/// The matrix is built and stored **sparse-first**: the builder emits
/// `(state, successor, probability)` triplets straight into a
/// [`SparseDtmc`] (each state reaches a handful of successors, so the
/// chain holds O(n) non-zeros). The dense [`Dtmc`] bridge is materialized
/// lazily, only for consumers that genuinely need the O(n²)
/// representation (per-row alias samplers, the Theorem-1 competing-chain
/// construction) — the analytical pipeline never does.
///
/// # Example
///
/// ```
/// use pollux::{ClusterChain, ModelParams};
///
/// let chain = ClusterChain::build(&ModelParams::paper_defaults().with_mu(0.2).with_d(0.8));
/// assert!(chain.dtmc().matrix().is_stochastic_default());
/// assert!(chain.sparse_dtmc().matrix().nnz() < 288 * 16);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterChain {
    space: ModelSpace,
    sparse: SparseDtmc,
    dense: OnceLock<Dtmc>,
}

impl ClusterChain {
    /// Builds the chain for `params`.
    ///
    /// # Panics
    ///
    /// Panics if the constructed matrix fails stochasticity validation —
    /// that would be a bug in the builder, not a user error, and the
    /// builder is exhaustively tested against closed forms.
    pub fn build(params: &ModelParams) -> Self {
        Self::build_with_defense(params, &NullDefense::new())
    }

    /// Builds the chain for `params` with a [`Defense`] folded into the
    /// transition probabilities — the analytical half of an
    /// adversary-vs-defense duel.
    ///
    /// The defense's hooks are Markovian (per-event probabilities against
    /// the `(s, x, y)` view), so they compose with Figure 2 exactly:
    ///
    /// * a fraction [`Defense::induced_churn`] of every transient row's
    ///   mass moves to the forced-eviction kernel (a uniformly chosen
    ///   member is expelled; valid malicious members cannot refuse, so
    ///   the honest maintenance redraw runs unless the cluster stays
    ///   polluted and biased);
    /// * join outcomes are scaled by the
    ///   [`effective_join_admission`] probability (join-rate shaping and
    ///   the cluster-size-adaptation taper), the remainder self-looping;
    /// * every survival probability `d^count` uses
    ///   [`effective_survival`]'s `d_eff` instead of `d` (incarnation
    ///   refresh shortens the adversary's lifetimes).
    ///
    /// With [`NullDefense`] every fold is the exact neutral element and
    /// the matrix is **bit-identical** to [`ClusterChain::build`]
    /// (test-enforced), so defended and undefended analyses share one
    /// code path. The triplets still go straight into the [`SparseDtmc`],
    /// so duels ride the sparse pipeline at 10⁴–10⁵-state spaces.
    ///
    /// # Panics
    ///
    /// As [`ClusterChain::build`]; a defense hook returning values
    /// outside its documented range surfaces here as a stochasticity
    /// failure.
    pub fn build_with_defense<D: Defense + ?Sized>(params: &ModelParams, defense: &D) -> Self {
        let space = ModelSpace::new(params);
        let n = space.len();
        let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(n * 16);

        for (i, state) in space.iter() {
            if state.classify(params).is_absorbing() {
                triplets.push((i, i, 1.0));
                continue;
            }
            for (target, prob) in transitions_from(params, state, defense) {
                debug_assert!(
                    target.is_consistent(params),
                    "builder produced {target} outside Ω from {state}"
                );
                triplets.push((i, space.index(&target), prob));
            }
        }

        let sparse =
            SparseDtmc::from_triplets(n, triplets).expect("Figure-2 rows must be stochastic");
        ClusterChain {
            space,
            sparse,
            dense: OnceLock::new(),
        }
    }

    /// The enumerated state space.
    pub fn space(&self) -> &ModelSpace {
        &self.space
    }

    /// The validated chain in sparse (CSR) form — the representation the
    /// analytical pipeline runs on.
    pub fn sparse_dtmc(&self) -> &SparseDtmc {
        &self.sparse
    }

    /// The validated chain in dense form, materialized on first use (an
    /// O(n²) bridge kept for simulation samplers and the dense analyses;
    /// carries bit-identical probabilities to [`ClusterChain::sparse_dtmc`]).
    pub fn dtmc(&self) -> &Dtmc {
        self.dense.get_or_init(|| self.sparse.to_dense())
    }

    /// Convenience: transition probability between explicit states.
    ///
    /// # Panics
    ///
    /// Panics when either state lies outside `Ω`.
    pub fn prob(&self, from: &ClusterState, to: &ClusterState) -> f64 {
        self.sparse
            .prob(self.space.index(from), self.space.index(to))
    }
}

/// Enumerates the outgoing transitions of one transient state as
/// `(target, probability)` pairs (targets may repeat; the builder sums).
///
/// The defense folds enter exactly three places: the per-event induced-
/// churn preemption (weight `eta`), the join-admission scaling `g`, and
/// the effective survival probability `d_eff`. All three are neutral
/// no-ops (bit-identical weights) under [`NullDefense`].
fn transitions_from<D: Defense + ?Sized>(
    params: &ModelParams,
    st: &ClusterState,
    defense: &D,
) -> Vec<(ClusterState, f64)> {
    let mut out = Vec::with_capacity(32);
    let (s, x, y) = (st.s, st.x, st.y);
    let c_size = params.core_size();
    let delta = params.max_spare();
    let quorum = params.quorum();
    let mu = params.mu();
    let k = params.k();
    let toggles = params.toggles();
    let polluted = x > quorum;

    let view =
        ClusterView::new(c_size, delta, s, x, y).expect("transient states are consistent views");
    let eta = defense.induced_churn(&view);
    debug_assert!((0.0..1.0).contains(&eta), "induced_churn = {eta}");
    let g = effective_join_admission(defense, &view);
    let d = effective_survival(defense, &view, params.d());

    // The normal join/leave event carries the mass the defense does not
    // preempt; `1 − 0 = 1` and `0.5 · 1 = 0.5` exactly, so the undefended
    // weights are reproduced bit-for-bit.
    let p_join = 0.5 * (1.0 - eta);
    let p_leave = 0.5 * (1.0 - eta);

    // ---- Induced churn: forced eviction of a uniform member ------------
    if eta > 0.0 {
        let p_core = c_size as f64 / (c_size + s) as f64;
        let p_spare = 1.0 - p_core;
        let p_mal_spare = y as f64 / s as f64;
        // Evicted spare (honest or malicious — no survival roll: the
        // protocol revokes the membership).
        let w = eta * p_spare * (1.0 - p_mal_spare);
        if w > 0.0 {
            out.push((ClusterState::new(s - 1, x, y), w));
        }
        let w = eta * p_spare * p_mal_spare;
        if w > 0.0 {
            out.push((ClusterState::new(s - 1, x, y - 1), w));
        }
        let p_mal_core = x as f64 / c_size as f64;
        // Evicted honest core member: the usual replacement machinery.
        let w = eta * p_core * (1.0 - p_mal_core);
        if w > 0.0 {
            if polluted && toggles.bias {
                if y > 0 {
                    out.push((ClusterState::new(s - 1, x + 1, y - 1), w));
                } else {
                    out.push((ClusterState::new(s - 1, x, y), w));
                }
            } else {
                push_maintenance(&mut out, params, s, x, y, w);
            }
        }
        // Evicted malicious core member: expelled regardless of identifier
        // validity — this is the channel that drains captured cores.
        let w = eta * p_core * p_mal_core;
        if w > 0.0 {
            if x - 1 > quorum && toggles.bias {
                if y > 0 {
                    out.push((ClusterState::new(s - 1, x, y - 1), w));
                } else {
                    out.push((ClusterState::new(s - 1, x - 1, y), w));
                }
            } else {
                push_maintenance(&mut out, params, s, x - 1, y, w);
            }
        }
    }

    // ---- Join event ----------------------------------------------------
    // Join-rate shaping: only a `g` share of join events reaches the
    // cluster; the rest are dropped by the defense (self-loop).
    let p_adm = p_join * g;
    if g < 1.0 {
        out.push((*st, p_join - p_adm));
    }
    if polluted && toggles.rule2 {
        if s == delta - 1 {
            // Rule 2: dodge the split — discard every join.
            out.push((*st, p_adm));
        } else {
            // Malicious joins always execute.
            out.push((ClusterState::new(s + 1, x, y + 1), p_adm * mu));
            if s > 1 {
                // Honest joins are silently discarded.
                out.push((*st, p_adm * (1.0 - mu)));
            } else {
                // s = 1: keep a merge buffer — accept the honest join.
                out.push((ClusterState::new(s + 1, x, y), p_adm * (1.0 - mu)));
            }
        }
    } else {
        // Safe cluster (or Rule 2 ablated): joins always execute.
        out.push((ClusterState::new(s + 1, x, y + 1), p_adm * mu));
        out.push((ClusterState::new(s + 1, x, y), p_adm * (1.0 - mu)));
    }

    // ---- Leave event ---------------------------------------------------
    let p_core = c_size as f64 / (c_size + s) as f64;
    let p_spare = 1.0 - p_core;

    // Spare member selected.
    let p_mal_spare = y as f64 / s as f64;
    // Honest spare: leaves.
    let w = p_leave * p_spare * (1.0 - p_mal_spare);
    if w > 0.0 {
        out.push((ClusterState::new(s - 1, x, y), w));
    }
    // Malicious spare: only an expiry forces it out (Property 1).
    let w = p_leave * p_spare * p_mal_spare;
    if w > 0.0 {
        let survive = d.powi(y as i32);
        out.push((*st, w * survive));
        out.push((ClusterState::new(s - 1, x, y - 1), w * (1.0 - survive)));
    }

    // Core member selected.
    let p_mal_core = x as f64 / c_size as f64;
    // Honest core member: leaves; maintenance runs.
    let w = p_leave * p_core * (1.0 - p_mal_core);
    if w > 0.0 {
        if polluted && toggles.bias {
            // Adversary-biased replacement.
            if y > 0 {
                out.push((ClusterState::new(s - 1, x + 1, y - 1), w));
            } else {
                out.push((ClusterState::new(s - 1, x, y), w));
            }
        } else {
            push_maintenance(&mut out, params, s, x, y, w);
        }
    }
    // Malicious core member: Property 1 / Rule 1.
    let w = p_leave * p_core * p_mal_core;
    if w > 0.0 {
        let survive = d.powi(x as i32);
        // Forced departure: some malicious core identifier expired.
        let w_expired = w * (1.0 - survive);
        if w_expired > 0.0 {
            if x - 1 > quorum && toggles.bias {
                if y > 0 {
                    out.push((ClusterState::new(s - 1, x, y - 1), w_expired));
                } else {
                    out.push((ClusterState::new(s - 1, x - 1, y), w_expired));
                }
            } else {
                push_maintenance(&mut out, params, s, x - 1, y, w_expired);
            }
        }
        // Still valid: leave only when Rule 1 says the gamble pays.
        let w_valid = w * survive;
        if w_valid > 0.0 {
            let voluntary = toggles.rule1 && rules::rule1_triggers(&view, k, params.nu());
            if voluntary {
                push_maintenance(&mut out, params, s, x - 1, y, w_valid);
            } else {
                out.push((*st, w_valid));
            }
        }
    }

    out
}

/// Adds the randomized-maintenance outcomes: from a core now holding
/// `x_rem` malicious members (after the departure) and a spare set with
/// `y` malicious of `s`, `protocol_k` demotes `a` malicious (of `k − 1`
/// drawn from `C − 1`) and promotes `b` malicious (of `k` drawn from the
/// pool of `s + k − 1` with `y + a` malicious), landing in
/// `(s − 1, x_rem − a + b, y + a − b)` with probability `weight · τ`.
fn push_maintenance(
    out: &mut Vec<(ClusterState, f64)>,
    params: &ModelParams,
    s: usize,
    x_rem: usize,
    y: usize,
    weight: f64,
) {
    let c_size = params.core_size();
    let k = params.k();
    debug_assert!(s >= 1, "maintenance requires a non-empty spare pool");

    let a_lo = (k as i64 - 1 - (c_size as i64 - 1 - x_rem as i64)).max(0) as usize;
    let a_hi = (k - 1).min(x_rem);
    for a in a_lo..=a_hi {
        let p_demote = hypergeometric_q(k as u64 - 1, c_size as u64 - 1, a as u64, x_rem as u64);
        if p_demote == 0.0 {
            continue;
        }
        let pool_mal = y + a;
        let pool_size = s + k - 1;
        let b_lo = (k as i64 - (pool_size as i64 - pool_mal as i64)).max(0) as usize;
        let b_hi = k.min(pool_mal);
        for b in b_lo..=b_hi {
            let p_promote = hypergeometric_q(k as u64, pool_size as u64, b as u64, pool_mal as u64);
            if p_promote == 0.0 {
                continue;
            }
            let target = ClusterState::new(s - 1, x_rem - a + b, pool_mal - b);
            out.push((target, weight * p_demote * p_promote));
        }
    }
}

/// `true` when no transition in the chain enters a polluted-split state
/// (the Rule-2 guarantee the paper notes below Figure 1).
pub fn polluted_split_unreachable(chain: &ClusterChain) -> bool {
    let mut is_target = vec![false; chain.space().len()];
    for &j in chain.space().polluted_split() {
        is_target[j] = true;
    }
    for (i, state) in chain.space().iter() {
        if state.classify(chain.space().params()) == StateClass::PollutedSplit {
            continue; // its own self-loop does not count as entering
        }
        if chain
            .sparse_dtmc()
            .successors(i)
            .any(|(j, p)| is_target[j] && p > 0.0)
        {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdversaryToggles;

    fn chain(mu: f64, d: f64, k: usize) -> ClusterChain {
        ClusterChain::build(
            &ModelParams::paper_defaults()
                .with_mu(mu)
                .with_d(d)
                .with_k(k)
                .unwrap(),
        )
    }

    #[test]
    fn rows_are_stochastic_across_parameter_grid() {
        for &mu in &[0.0, 0.1, 0.3] {
            for &d in &[0.0, 0.5, 0.99] {
                for &k in &[1usize, 3, 7] {
                    let ch = chain(mu, d, k);
                    assert!(
                        ch.dtmc().matrix().is_stochastic(1e-9),
                        "mu={mu} d={d} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn absorbing_states_self_loop() {
        let ch = chain(0.2, 0.8, 1);
        for (i, st) in ch.space().iter() {
            if st.classify(ch.space().params()).is_absorbing() {
                assert_eq!(ch.dtmc().prob(i, i), 1.0, "state {st}");
            }
        }
    }

    #[test]
    fn polluted_split_states_unreachable() {
        for &k in &[1usize, 7] {
            let ch = chain(0.3, 0.9, k);
            assert!(polluted_split_unreachable(&ch), "k={k}");
        }
    }

    #[test]
    fn polluted_split_reachable_when_rule2_ablated() {
        let params = ModelParams::paper_defaults()
            .with_mu(0.3)
            .with_d(0.9)
            .with_toggles(AdversaryToggles {
                rule2: false,
                ..AdversaryToggles::all()
            });
        let ch = ClusterChain::build(&params);
        assert!(!polluted_split_unreachable(&ch));
    }

    #[test]
    fn mu_zero_reduces_to_simple_random_walk() {
        let ch = chain(0.0, 0.9, 1);
        for s in 1..7usize {
            let from = ClusterState::new(s, 0, 0);
            assert!((ch.prob(&from, &ClusterState::new(s + 1, 0, 0)) - 0.5).abs() < 1e-12);
            assert!((ch.prob(&from, &ClusterState::new(s - 1, 0, 0)) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn join_transitions_from_safe_state() {
        let ch = chain(0.25, 0.5, 1);
        let from = ClusterState::new(3, 1, 1);
        assert!((ch.prob(&from, &ClusterState::new(4, 1, 2)) - 0.5 * 0.25).abs() < 1e-12);
        assert!((ch.prob(&from, &ClusterState::new(4, 1, 1)) - 0.5 * 0.75).abs() < 1e-12);
    }

    #[test]
    fn rule2_blocks_honest_joins_in_polluted_midband() {
        let ch = chain(0.25, 0.5, 1);
        // Polluted: x = 3 > c = 2; s = 3 (1 < s < Δ-1).
        let from = ClusterState::new(3, 3, 1);
        // Malicious join accepted.
        assert!((ch.prob(&from, &ClusterState::new(4, 3, 2)) - 0.5 * 0.25).abs() < 1e-12);
        // Honest join discarded: no mass on (4, 3, 1) from the join branch.
        assert_eq!(ch.prob(&from, &ClusterState::new(4, 3, 1)), 0.0);
    }

    #[test]
    fn rule2_blocks_all_joins_near_split() {
        let ch = chain(0.25, 0.5, 1);
        let from = ClusterState::new(6, 3, 1); // s = Δ - 1
        assert_eq!(ch.prob(&from, &ClusterState::new(7, 3, 2)), 0.0);
        assert_eq!(ch.prob(&from, &ClusterState::new(7, 3, 1)), 0.0);
        // The join mass sits on the self-loop (plus valid-malicious stay
        // from the leave branch).
        assert!(ch.prob(&from, &from) >= 0.5);
    }

    #[test]
    fn rule2_accepts_honest_join_at_merge_boundary() {
        let ch = chain(0.25, 0.5, 1);
        let from = ClusterState::new(1, 3, 0); // polluted, s = 1
        assert!((ch.prob(&from, &ClusterState::new(2, 3, 0)) - 0.5 * 0.75).abs() < 1e-12);
        assert!((ch.prob(&from, &ClusterState::new(2, 3, 1)) - 0.5 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn honest_spare_leave_probability() {
        let ch = chain(0.2, 0.5, 1);
        let from = ClusterState::new(4, 0, 1);
        // Two branches land on (3, 0, 1): the honest spare leave,
        // 1/2 · 4/11 · (1 − 1/4), and the honest core leave whose k = 1
        // maintenance promotes an honest spare, 1/2 · 7/11 · (3/4).
        let want = 0.5 * (4.0 / 11.0) * 0.75 + 0.5 * (7.0 / 11.0) * 0.75;
        assert!((ch.prob(&from, &ClusterState::new(3, 0, 1)) - want).abs() < 1e-12);
    }

    #[test]
    fn malicious_spare_needs_expiry() {
        // d = 1 would keep malicious spares forever; with d close to 1 the
        // departure mass shrinks accordingly.
        let ch = chain(0.2, 0.9, 1);
        let from = ClusterState::new(4, 0, 2);
        // P = 1/2 · 4/11 · (2/4) · (1 - 0.9²).
        let want = 0.5 * (4.0 / 11.0) * 0.5 * (1.0 - 0.81);
        assert!((ch.prob(&from, &ClusterState::new(3, 0, 1)) - want).abs() < 1e-12);
    }

    #[test]
    fn biased_maintenance_in_polluted_cluster() {
        let ch = chain(0.2, 0.5, 1);
        // Polluted with a malicious spare available: honest core leave
        // promotes it.
        let from = ClusterState::new(3, 3, 2);
        // P(honest core selected) = 1/2 · 7/10 · (1 - 3/7) = 1/2 · 4/10.
        let want = 0.5 * (7.0 / 10.0) * (4.0 / 7.0);
        assert!((ch.prob(&from, &ClusterState::new(2, 4, 1)) - want).abs() < 1e-12);
    }

    #[test]
    fn k1_maintenance_kernel_from_safe_state() {
        // For k = 1 no core member is demoted and exactly one pool member
        // is promoted: from (s, x, y) after an honest core leave the new
        // core has x (+1 iff a malicious spare was drawn, w.p. y/s).
        let ch = chain(0.2, 0.5, 1);
        let from = ClusterState::new(4, 1, 2);
        // Honest core leave weight: 1/2 · 7/11 · 6/7 = 3/11.
        let w = 0.5 * (7.0 / 11.0) * (6.0 / 7.0);
        // (3, 2, 1) is reached only by promoting a malicious spare
        // (w.p. 2/4).
        assert!((ch.prob(&from, &ClusterState::new(3, 2, 1)) - w * 0.5).abs() < 1e-12);
        // (3, 1, 2) is reached by promoting an honest spare OR by the
        // honest spare leave branch, 1/2 · 4/11 · (1 − 2/4).
        let want = w * 0.5 + 0.5 * (4.0 / 11.0) * 0.5;
        assert!((ch.prob(&from, &ClusterState::new(3, 1, 2)) - want).abs() < 1e-12);
    }

    #[test]
    fn expired_malicious_core_in_polluted_cluster_is_replaced_in_kind() {
        let ch = chain(0.2, 0.8, 1);
        // x = 4: after the expiry x - 1 = 3 > c, bias still applies.
        let from = ClusterState::new(3, 4, 1);
        // Expired malicious core member replaced by the malicious spare:
        // 1/2 · 7/10 · 4/7 · (1 − 0.8⁴) → (2, 4, 0); the expired malicious
        // spare branch, 1/2 · 3/10 · 1/3 · (1 − 0.8), lands there too.
        let want = 0.5 * (7.0 / 10.0) * (4.0 / 7.0) * (1.0 - 0.8f64.powi(4))
            + 0.5 * (3.0 / 10.0) * (1.0 / 3.0) * (1.0 - 0.8);
        assert!((ch.prob(&from, &ClusterState::new(2, 4, 0)) - want).abs() < 1e-12);
    }

    #[test]
    fn rule1_changes_k7_transitions_only() {
        // In the favourable state (s=3, x=1, y=3), Rule 1 triggers for
        // k = 7 (Relation 2 = 11/12 > 0.9): the valid-malicious-core mass
        // moves from the self-loop into maintenance outcomes.
        let with_rule1 = chain(0.2, 0.9, 7);
        let params_no_r1 = ModelParams::paper_defaults()
            .with_mu(0.2)
            .with_d(0.9)
            .with_k(7)
            .unwrap()
            .with_toggles(AdversaryToggles {
                rule1: false,
                ..AdversaryToggles::all()
            });
        let without_rule1 = ClusterChain::build(&params_no_r1);
        let from = ClusterState::new(3, 1, 3);
        let self_with = with_rule1.prob(&from, &from);
        let self_without = without_rule1.prob(&from, &from);
        assert!(
            self_with < self_without,
            "Rule 1 should drain the self-loop: {self_with} vs {self_without}"
        );
        // For k = 1 the two chains coincide.
        let a = chain(0.2, 0.9, 1);
        let params_b = ModelParams::paper_defaults()
            .with_mu(0.2)
            .with_d(0.9)
            .with_toggles(AdversaryToggles {
                rule1: false,
                ..AdversaryToggles::all()
            });
        let b = ClusterChain::build(&params_b);
        for (i, _) in a.space().iter() {
            for j in 0..a.space().len() {
                assert!((a.dtmc().prob(i, j) - b.dtmc().prob(i, j)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn nu_is_inert_for_k1() {
        // Relation (2) can never hold for k = 1, so the whole matrix must
        // be bit-identical across nu.
        let a = ClusterChain::build(
            &ModelParams::paper_defaults()
                .with_mu(0.3)
                .with_d(0.9)
                .with_nu(0.01),
        );
        let b = ClusterChain::build(
            &ModelParams::paper_defaults()
                .with_mu(0.3)
                .with_d(0.9)
                .with_nu(0.5),
        );
        assert_eq!(a.dtmc().matrix().as_slice(), b.dtmc().matrix().as_slice());
    }

    #[test]
    fn join_mass_is_exactly_half_everywhere() {
        // Every transient row must allocate exactly p_j = 1/2 to the join
        // event (however it resolves) and 1/2 to the leave event.
        let ch = chain(0.25, 0.9, 3);
        for (i, st) in ch.space().iter() {
            if !st.classify(ch.space().params()).is_transient() {
                continue;
            }
            // Join outcomes either grow s by one or self-loop; leave
            // outcomes shrink s by one or self-loop. Identify the join
            // share as mass on s+1 targets plus the join part of the
            // self-loop; easier: total mass on s-1 targets must be <= 1/2
            // and mass on s+1 targets <= 1/2.
            let mut up = 0.0;
            let mut down = 0.0;
            for j in 0..ch.space().len() {
                let p = ch.dtmc().prob(i, j);
                if p == 0.0 {
                    continue;
                }
                let tgt = ch.space().state(j);
                if tgt.s == st.s + 1 {
                    up += p;
                } else if tgt.s + 1 == st.s {
                    down += p;
                }
            }
            assert!(up <= 0.5 + 1e-12, "state {st}: up mass {up}");
            assert!(down <= 0.5 + 1e-12, "state {st}: down mass {down}");
        }
    }

    #[test]
    fn null_defense_chain_is_bit_identical() {
        use pollux_defense::NullDefense;
        for &(mu, d, k) in &[(0.0, 0.9, 1usize), (0.3, 0.9, 7), (0.2, 0.5, 3)] {
            let plain = chain(mu, d, k);
            let defended = ClusterChain::build_with_defense(
                &ModelParams::paper_defaults()
                    .with_mu(mu)
                    .with_d(d)
                    .with_k(k)
                    .unwrap(),
                &NullDefense::new(),
            );
            // Same sparsity structure and the same bits in every entry.
            assert_eq!(
                plain.sparse_dtmc().matrix().nnz(),
                defended.sparse_dtmc().matrix().nnz(),
                "mu={mu} d={d} k={k}"
            );
            for (i, _) in plain.space().iter() {
                let a: Vec<(usize, u64)> = plain
                    .sparse_dtmc()
                    .successors(i)
                    .map(|(j, p)| (j, p.to_bits()))
                    .collect();
                let b: Vec<(usize, u64)> = defended
                    .sparse_dtmc()
                    .successors(i)
                    .map(|(j, p)| (j, p.to_bits()))
                    .collect();
                assert_eq!(a, b, "row {i} differs at mu={mu} d={d} k={k}");
            }
        }
    }

    #[test]
    fn defended_chains_stay_stochastic() {
        use pollux_defense::{
            AdaptiveClusterSize, Defense, IncarnationRefresh, InducedChurn, NullDefense,
        };
        let params = ModelParams::paper_defaults()
            .with_mu(0.3)
            .with_d(0.9)
            .with_k(3)
            .unwrap();
        let defenses: Vec<Box<dyn Defense>> = vec![
            Box::new(NullDefense::new()),
            Box::new(InducedChurn::new(0.15).unwrap()),
            Box::new(IncarnationRefresh::new(5.0, 0.8).unwrap()),
            Box::new(AdaptiveClusterSize::new(0.5).unwrap()),
        ];
        for defense in &defenses {
            let ch = ClusterChain::build_with_defense(&params, defense.as_ref());
            assert!(
                ch.dtmc().matrix().is_stochastic(1e-9),
                "defense {}",
                defense.name()
            );
        }
    }

    #[test]
    fn induced_churn_drains_the_valid_malicious_self_loop() {
        use pollux_defense::InducedChurn;
        let params = ModelParams::paper_defaults().with_mu(0.3).with_d(0.9);
        let plain = ClusterChain::build(&params);
        let defended = ClusterChain::build_with_defense(&params, &InducedChurn::new(0.2).unwrap());
        // A fully captured core at d = 0.9 self-loops heavily without the
        // defense; induced churn moves 20% of that row's mass into forced
        // evictions.
        let from = ClusterState::new(3, 7, 0);
        assert!(defended.prob(&from, &from) < plain.prob(&from, &from) - 0.1);
        // Forced eviction of a malicious core member lands mass on x = 6
        // territory that the undefended chain cannot reach from here
        // (valid members never leave a polluted biased cluster at y = 0
        // except via expiry, which also exists — compare magnitudes).
        let evicted = ClusterState::new(2, 6, 0);
        assert!(defended.prob(&from, &evicted) > plain.prob(&from, &evicted));
    }

    #[test]
    fn refresh_defense_equals_reduced_survival_probability() {
        use pollux_defense::IncarnationRefresh;
        // d_eff = d (1 − q/period) — the defended chain at d must equal
        // the undefended chain at d_eff (the fold is exactly a d shift).
        let d = 0.9;
        let refresh = IncarnationRefresh::new(10.0, 0.5).unwrap();
        let defended = ClusterChain::build_with_defense(
            &ModelParams::paper_defaults().with_mu(0.3).with_d(d),
            &refresh,
        );
        let shifted = ClusterChain::build(
            &ModelParams::paper_defaults()
                .with_mu(0.3)
                .with_d(d * (1.0 - 0.05)),
        );
        for (i, _) in defended.space().iter() {
            for j in 0..defended.space().len() {
                let a = defended.dtmc().prob(i, j);
                let b = shifted.dtmc().prob(i, j);
                assert!((a - b).abs() < 1e-12, "({i}, {j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn adaptive_size_moves_join_mass_to_the_self_loop() {
        use pollux_defense::AdaptiveClusterSize;
        let params = ModelParams::paper_defaults().with_mu(0.2).with_d(0.8);
        let defense = AdaptiveClusterSize::new(0.5).unwrap(); // setpoint 4
        let defended = ClusterChain::build_with_defense(&params, &defense);
        let plain = ClusterChain::build(&params);
        // Safe state above the setpoint: s = 6 admits joins w.p. 1/3.
        let from = ClusterState::new(6, 0, 0);
        let up = ClusterState::new(7, 0, 0);
        let want = 0.5 * (1.0 / 3.0) * 0.8; // p_join · taper · (1 − μ)
        assert!((defended.prob(&from, &up) - want).abs() < 1e-12);
        // Below the setpoint nothing changes.
        let low = ClusterState::new(2, 0, 0);
        let low_up = ClusterState::new(3, 0, 0);
        assert_eq!(
            defended.prob(&low, &low_up).to_bits(),
            plain.prob(&low, &low_up).to_bits()
        );
    }

    #[test]
    fn transitions_stay_in_omega_small_params() {
        // Exhaustive consistency check on a small parameter set.
        let params = ModelParams::new(4, 3, 2).unwrap();
        let params = params.with_mu(0.3).with_d(0.7);
        let ch = ClusterChain::build(&params);
        assert!(ch.dtmc().matrix().is_stochastic(1e-9));
        assert_eq!(ch.space().len(), params.state_count());
    }
}
