use pollux_markov::MarkovError;
use pollux_prob::Binomial;

use crate::{ClusterState, ModelSpace};

/// The paper's initial distributions (Section VII-A).
#[derive(Debug, Clone, PartialEq)]
pub enum InitialCondition {
    /// `δ`: the attack-free start — point mass at `(⌊Δ/2⌋, 0, 0)`
    /// (Relation 4).
    Delta,
    /// `β`: `s₀ ~ U{1..Δ−1}`, `x ~ Bin(C, μ)`, `y ~ Bin(s₀, μ)`
    /// independently (Relation 3) — the cluster is born already infiltrated
    /// proportionally to `μ`.
    Beta,
    /// A point mass on an explicit state.
    State(ClusterState),
    /// An explicit distribution over `Ω` in the space's index order.
    Custom(Vec<f64>),
}

impl InitialCondition {
    /// Materializes the distribution as a vector over `Ω`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidDistribution`] when a custom vector
    /// has the wrong length or is not a probability distribution, or when
    /// an explicit state lies outside `Ω`.
    pub fn distribution(&self, space: &ModelSpace) -> Result<Vec<f64>, MarkovError> {
        let params = space.params();
        let mut alpha = vec![0.0; space.len()];
        match self {
            InitialCondition::Delta => {
                let s0 = params.max_spare() / 2;
                alpha[space.index(&ClusterState::new(s0, 0, 0))] = 1.0;
            }
            InitialCondition::Beta => {
                let delta = params.max_spare();
                let per_s0 = 1.0 / (delta - 1) as f64;
                let bin_core = Binomial::new(params.core_size() as u64, params.mu())
                    .expect("mu is validated by ModelParams");
                for s0 in 1..delta {
                    let bin_spare = Binomial::new(s0 as u64, params.mu())
                        .expect("mu is validated by ModelParams");
                    for x in 0..=params.core_size() {
                        for y in 0..=s0 {
                            let p = per_s0 * bin_core.pmf(x as u64) * bin_spare.pmf(y as u64);
                            alpha[space.index(&ClusterState::new(s0, x, y))] += p;
                        }
                    }
                }
            }
            InitialCondition::State(st) => {
                if !st.is_consistent(params) {
                    return Err(MarkovError::InvalidDistribution(format!(
                        "state {st} lies outside Ω"
                    )));
                }
                alpha[space.index(st)] = 1.0;
            }
            InitialCondition::Custom(v) => {
                if v.len() != space.len() {
                    return Err(MarkovError::InvalidDistribution(format!(
                        "custom distribution has length {}, Ω has {}",
                        v.len(),
                        space.len()
                    )));
                }
                if v.iter().any(|&p| p < 0.0) || (v.iter().sum::<f64>() - 1.0).abs() > 1e-9 {
                    return Err(MarkovError::InvalidDistribution(
                        "custom distribution is not a probability vector".into(),
                    ));
                }
                alpha.copy_from_slice(v);
            }
        }
        Ok(alpha)
    }

    /// Short identifier used in reports (`δ` prints as "delta").
    pub fn label(&self) -> &'static str {
        match self {
            InitialCondition::Delta => "delta",
            InitialCondition::Beta => "beta",
            InitialCondition::State(_) => "state",
            InitialCondition::Custom(_) => "custom",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelParams;

    #[test]
    fn delta_is_a_point_mass_at_half_delta() {
        let params = ModelParams::paper_defaults().with_mu(0.3);
        let space = ModelSpace::new(&params);
        let alpha = InitialCondition::Delta.distribution(&space).unwrap();
        let idx = space.index(&ClusterState::new(3, 0, 0));
        assert_eq!(alpha[idx], 1.0);
        assert_eq!(alpha.iter().sum::<f64>(), 1.0);
        assert_eq!(alpha.iter().filter(|&&p| p > 0.0).count(), 1);
    }

    #[test]
    fn beta_matches_relation_3() {
        let params = ModelParams::paper_defaults().with_mu(0.2);
        let space = ModelSpace::new(&params);
        let alpha = InitialCondition::Beta.distribution(&space).unwrap();
        assert!((alpha.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Hand-check one atom: s0 = 3, x = 1, y = 0:
        // (1/6) · C(7,1)·0.2·0.8⁶ · 0.8³.
        let want = (1.0 / 6.0) * 7.0 * 0.2 * 0.8f64.powi(6) * 0.8f64.powi(3);
        let got = alpha[space.index(&ClusterState::new(3, 1, 0))];
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        // No mass on the boundary spare sizes.
        for x in 0..=7 {
            assert_eq!(alpha[space.index(&ClusterState::new(0, x, 0))], 0.0);
            assert_eq!(alpha[space.index(&ClusterState::new(7, x, 0))], 0.0);
        }
    }

    #[test]
    fn beta_with_mu_zero_collapses_to_clean_states() {
        let params = ModelParams::paper_defaults();
        let space = ModelSpace::new(&params);
        let alpha = InitialCondition::Beta.distribution(&space).unwrap();
        for (i, st) in space.iter() {
            if st.x == 0 && st.y == 0 && (1..7).contains(&st.s) {
                assert!((alpha[i] - 1.0 / 6.0).abs() < 1e-12);
            } else {
                assert_eq!(alpha[i], 0.0);
            }
        }
    }

    #[test]
    fn explicit_state_and_custom() {
        let params = ModelParams::paper_defaults();
        let space = ModelSpace::new(&params);
        let st = ClusterState::new(2, 1, 1);
        let alpha = InitialCondition::State(st).distribution(&space).unwrap();
        assert_eq!(alpha[space.index(&st)], 1.0);
        // Out-of-Ω state rejected.
        assert!(InitialCondition::State(ClusterState::new(9, 0, 0))
            .distribution(&space)
            .is_err());
        // Custom roundtrip.
        let custom = InitialCondition::Custom(alpha.clone())
            .distribution(&space)
            .unwrap();
        assert_eq!(custom, alpha);
        // Bad customs rejected.
        assert!(InitialCondition::Custom(vec![1.0])
            .distribution(&space)
            .is_err());
        let mut bad = alpha.clone();
        bad[0] += 0.5;
        assert!(InitialCondition::Custom(bad).distribution(&space).is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(InitialCondition::Delta.label(), "delta");
        assert_eq!(InitialCondition::Beta.label(), "beta");
    }
}
