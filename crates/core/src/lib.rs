//! Pollux: analytical model and simulators for targeted attacks on
//! cluster-based overlays.
//!
//! This crate is the primary-contribution layer of a full reproduction of
//! *Modeling and Evaluating Targeted Attacks in Large Scale Dynamic
//! Systems* (Anceaume, Sericola, Ludinard, Tronel — DSN 2011):
//!
//! * [`ModelParams`] — the paper's parameter set `(C, Δ, μ, d, k, ν)` plus
//!   ablation toggles.
//! * [`ClusterState`] / [`ModelSpace`] — the state space
//!   `Ω = {(s, x, y)}` with its partition into transient safe `S`,
//!   transient polluted `P` and the absorbing classes `AmS`, `AℓS`, `AmP`
//!   (Figure 1).
//! * [`ClusterChain`] — the exact transition matrix of Figure 2, built
//!   from the overlay operations, Property 1 (limited identifier
//!   lifetimes, survival probability `d`) and the adversary's Rules 1–2.
//! * [`InitialCondition`] — the paper's initial distributions `δ`
//!   (attack-free start) and `β` (binomially pre-polluted, Relation 3).
//! * [`ClusterAnalysis`] — every cluster-level metric of Section VII:
//!   `E(T_S)`, `E(T_P)` (Relations 5–6), successive sojourns
//!   (Relations 7–8), absorption probabilities (Relation 9),
//!   distributions and variances.
//! * [`OverlayModel`] — the overlay-level expectations of Section VIII
//!   (Theorems 1–2): `E(N_S(m))/n`, `E(N_P(m))/n`.
//! * [`simulation`] — an independently-coded event-level Monte-Carlo
//!   simulator of the same process (validates the matrix), and
//! * [`overlay_sim`] — an `n`-cluster competing simulation (validates
//!   Theorem 2), both driven by pluggable [`pollux_adversary`] strategies.
//! * [`des_overlay`] — a continuous-time discrete-event simulation of the
//!   **whole overlay at node granularity** (10⁵–10⁶ nodes) on the
//!   [`pollux_des`] engine: per-cluster Poisson churn, an index-based node
//!   arena, prefix-labelled identifiers, and per-cluster sojourn /
//!   absorption statistics that cross-validate the Markov chain at scales
//!   state-space enumeration cannot reach — plus a regeneration mode
//!   whose event fractions estimate the renewal–reward steady state.
//! * [`duel`] — adversary-vs-defense duels: any
//!   [`pollux_defense::Defense`] folds into both the transition matrix
//!   ([`ClusterChain::build_with_defense`]) and the DES event loop, and
//!   [`duel::run_duel`] compares the two steady-state pollution
//!   estimates inside a renewal-adjusted Wilson interval.
//! * [`experiments`] — canned parameterizations reproducing every table
//!   and figure of the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use pollux::{ClusterAnalysis, InitialCondition, ModelParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // protocol_1 under a 20 % adversary with survival probability 0.8.
//! let params = ModelParams::paper_defaults().with_mu(0.2).with_d(0.8).with_k(1)?;
//! let analysis = ClusterAnalysis::new(&params, InitialCondition::Delta)?;
//! let e_safe = analysis.expected_safe_events()?;
//! let e_polluted = analysis.expected_polluted_events()?;
//! assert!(e_safe > 10.0 && e_polluted < e_safe);
//! # Ok(())
//! # }
//! ```

mod analysis;
pub mod des_overlay;
pub mod duel;
pub mod experiments;
mod initial;
mod overlay_analysis;
pub mod overlay_sim;
mod params;
pub mod simulation;
mod space;
mod state;
mod transition;

pub use analysis::{AbsorptionSplit, AnalysisMode, ClusterAnalysis, SPARSE_PIPELINE_THRESHOLD};
pub use initial::InitialCondition;
pub use overlay_analysis::{OverlayModel, ProportionPoint};
pub use params::{AdversaryToggles, ModelParams, ParamsError};
pub use space::ModelSpace;
pub use state::{ClusterState, StateClass};
pub use transition::{polluted_split_unreachable, ClusterChain};
