use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pollux_linalg::{SolverOptions, DEFAULT_SPARSE_CROSSOVER};
use pollux_markov::{
    AbsorbingChain, MarkovError, PartitionSolvers, SojournAnalysis, SojournPartition,
};
use pollux_obs::Stopwatch;

use crate::{ClusterChain, InitialCondition, ModelParams, StateClass};

/// State-count threshold at which [`ClusterAnalysis`] switches from the
/// dense pipeline (dense matrices + LU, bit-stable with the historical
/// results) to the sparse pipeline (CSR blocks + iterative solves in
/// O(nnz)). Matches the solver crossover so the two layers agree on what
/// "small" means.
pub const SPARSE_PIPELINE_THRESHOLD: usize = DEFAULT_SPARSE_CROSSOVER;

/// Which analytical pipeline a [`ClusterAnalysis`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisMode {
    /// Pick by state count: dense below
    /// [`SPARSE_PIPELINE_THRESHOLD`], sparse at or above it.
    #[default]
    Auto,
    /// Force the dense pipeline (O(n²) memory, O(n³) solves).
    Dense,
    /// Force the sparse pipeline (O(nnz) memory and per-sweep cost).
    Sparse,
}

/// Absorption probabilities split over the Figure-1 classes
/// (Relation 9 evaluated per class).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsorptionSplit {
    /// `p(AmS)` — the cluster eventually merges while safe.
    pub safe_merge: f64,
    /// `p(AℓS)` — the cluster eventually splits while safe.
    pub safe_split: f64,
    /// `p(AmP)` — the cluster eventually merges while polluted (the
    /// pollution-propagation channel).
    pub polluted_merge: f64,
    /// `p(AℓP)` — always 0 under Rule 2; reported for the ablations.
    pub polluted_split: f64,
}

impl AbsorptionSplit {
    /// Total mass (1 up to numeric error, given a transient start).
    pub fn total(&self) -> f64 {
        self.safe_merge + self.safe_split + self.polluted_merge + self.polluted_split
    }
}

/// Cluster-level analysis: every metric of Section VII for one parameter
/// set and one initial condition.
///
/// # Example
///
/// ```
/// use pollux::{ClusterAnalysis, InitialCondition, ModelParams};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // μ = 0 closed form: E(T_S) + E(T_P) = s₀ (Δ − s₀) = 12, and the
/// // absorption split is 4/7 merge vs 3/7 split.
/// let analysis = ClusterAnalysis::new(
///     &ModelParams::paper_defaults(),
///     InitialCondition::Delta,
/// )?;
/// assert!((analysis.expected_safe_events()? - 12.0).abs() < 1e-9);
/// let split = analysis.absorption_split()?;
/// assert!((split.safe_merge - 4.0 / 7.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ClusterAnalysis {
    chain: ClusterChain,
    alpha: Vec<f64>,
    initial: InitialCondition,
    sojourn: SojournAnalysis,
    absorbing: AbsorptionEngine,
    /// The sparse pipeline's shared solver bundle (sojourn, absorption
    /// and hitting all run on it); `None` on the dense pipeline.
    solvers: Option<PartitionSolvers>,
    /// Per-metric build/solve wall-time aggregate, `Arc`-shared across
    /// clones like the solver relaxation cache so sweep workers that
    /// clone an analysis keep feeding one tally.
    timings: Arc<BatteryObs>,
}

/// Timing slots of the markov metric battery.
#[derive(Debug, Clone, Copy)]
enum BatterySlot {
    Build = 0,
    Sojourn = 1,
    Variance = 2,
    Pollution = 3,
    Absorption = 4,
    Occupancy = 5,
}

const BATTERY_SLOTS: usize = 6;
const BATTERY_SLOT_NAMES: [&str; BATTERY_SLOTS] = [
    "markov.build_s",
    "markov.sojourn_s",
    "markov.variance_s",
    "markov.pollution_s",
    "markov.absorption_s",
    "markov.occupancy_s",
];

/// Wall-time tally behind [`ClusterAnalysis::battery_timings`].
///
/// Inert by construction: it only *observes* solves that already ran, so
/// it can never perturb a result. With the `metrics` feature off,
/// [`BatteryObs::record`] is a constant no-op and the whole instrument
/// folds away.
#[derive(Debug, Default)]
struct BatteryObs {
    nanos: [AtomicU64; BATTERY_SLOTS],
    calls: [AtomicU64; BATTERY_SLOTS],
}

impl BatteryObs {
    #[inline]
    fn record(&self, slot: BatterySlot, seconds: f64) {
        if !pollux_obs::METRICS_ENABLED {
            return;
        }
        let i = slot as usize;
        self.nanos[i].fetch_add((seconds.max(0.0) * 1e9) as u64, Ordering::Relaxed);
        self.calls[i].fetch_add(1, Ordering::Relaxed);
    }
}

/// The absorption-side engine behind a [`ClusterAnalysis`].
#[derive(Debug, Clone)]
enum AbsorptionEngine {
    /// Full structural classification + per-closed-class solves.
    Dense(Box<AbsorbingChain>),
    /// Figure-1-bucket solves on the CSR transient block (the sparse
    /// pipeline needs 4 solves, not one per absorbing state).
    Sparse(SparseAbsorption),
}

/// Absorption metrics computed directly from the Figure-1 partition on
/// the sparse representation: `ModelSpace` already knows the absorbing
/// sets, so no Tarjan pass and no per-singleton-class solve is needed.
#[derive(Debug, Clone)]
struct SparseAbsorption {
    /// `α N 1` — expected events to absorption.
    expected_steps: f64,
    /// Relation 9 aggregated per Figure-1 class.
    split: AbsorptionSplit,
}

impl SparseAbsorption {
    /// Builds the absorption metrics on the partition's **shared**
    /// `T`-block solver — the block is never factored a second time.
    fn build(
        chain: &ClusterChain,
        alpha: &[f64],
        solvers: &PartitionSolvers,
    ) -> Result<Self, MarkovError> {
        let space = chain.space();
        let transient = solvers.t_indices();
        let solver = solvers.solver_t();

        let steps = solver.solve(&vec![1.0; transient.len()])?;
        let expected_steps = transient
            .iter()
            .enumerate()
            .map(|(t, &g)| alpha[g] * steps[t])
            .sum();

        // bucket[j] = Figure-1 class of absorbing state j (or MAX).
        const BUCKETS: usize = 4;
        let mut bucket = vec![usize::MAX; space.len()];
        let sets = [
            space.safe_merge(),
            space.safe_split(),
            space.polluted_merge(),
            space.polluted_split(),
        ];
        for (b, set) in sets.iter().enumerate() {
            for &j in *set {
                bucket[j] = b;
            }
        }
        // r[b][t] = P(transient[t] → bucket b in one step), one pass.
        let mut rhs = vec![vec![0.0; transient.len()]; BUCKETS];
        for (t, &g) in transient.iter().enumerate() {
            for (j, v) in chain.sparse_dtmc().successors(g) {
                if bucket[j] != usize::MAX {
                    rhs[bucket[j]][t] += v;
                }
            }
        }
        let sols = solver.solve_many(&rhs)?;
        let mut masses = [0.0f64; BUCKETS];
        for (b, sol) in masses.iter_mut().zip(sols.iter()) {
            *b = transient
                .iter()
                .enumerate()
                .map(|(t, &g)| alpha[g] * sol[t])
                .sum();
        }
        // Initial mass already sitting on an absorbing state stays there.
        for (j, &a) in alpha.iter().enumerate() {
            if a > 0.0 && bucket[j] != usize::MAX {
                masses[bucket[j]] += a;
            }
        }
        Ok(SparseAbsorption {
            expected_steps,
            split: AbsorptionSplit {
                safe_merge: masses[0],
                safe_split: masses[1],
                polluted_merge: masses[2],
                polluted_split: masses[3],
            },
        })
    }
}

impl ClusterAnalysis {
    /// Builds the chain for `params` and prepares all analyses under
    /// `initial`, picking the pipeline by state count
    /// ([`AnalysisMode::Auto`]).
    ///
    /// # Errors
    ///
    /// Propagates initial-distribution validation and linear-algebra
    /// failures.
    pub fn new(params: &ModelParams, initial: InitialCondition) -> Result<Self, MarkovError> {
        let chain = ClusterChain::build(params);
        Self::from_chain(chain, initial)
    }

    /// As [`ClusterAnalysis::new`] with an explicit pipeline choice
    /// (benchmarks and equivalence tests force one side).
    ///
    /// # Errors
    ///
    /// As [`ClusterAnalysis::new`].
    pub fn new_with_mode(
        params: &ModelParams,
        initial: InitialCondition,
        mode: AnalysisMode,
    ) -> Result<Self, MarkovError> {
        let chain = ClusterChain::build(params);
        Self::from_chain_with_mode(chain, initial, mode)
    }

    /// Prepares the analyses on an already-built chain (avoids rebuilding
    /// the matrix when sweeping initial conditions).
    ///
    /// # Errors
    ///
    /// Propagates initial-distribution validation and linear-algebra
    /// failures.
    pub fn from_chain(chain: ClusterChain, initial: InitialCondition) -> Result<Self, MarkovError> {
        Self::from_chain_with_mode(chain, initial, AnalysisMode::Auto)
    }

    /// As [`ClusterAnalysis::from_chain`] with an explicit pipeline
    /// choice.
    ///
    /// # Errors
    ///
    /// As [`ClusterAnalysis::from_chain`].
    pub fn from_chain_with_mode(
        chain: ClusterChain,
        initial: InitialCondition,
        mode: AnalysisMode,
    ) -> Result<Self, MarkovError> {
        let sparse = match mode {
            AnalysisMode::Auto => chain.space().len() >= SPARSE_PIPELINE_THRESHOLD,
            AnalysisMode::Dense => false,
            AnalysisMode::Sparse => true,
        };
        let timings = Arc::new(BatteryObs::default());
        let build_watch = Stopwatch::start();
        let alpha = initial.distribution(chain.space())?;
        let partition = SojournPartition::new(
            chain.space().transient_safe().to_vec(),
            chain.space().transient_polluted().to_vec(),
        )?;
        let (sojourn, absorbing, solvers) = if sparse {
            // One solver bundle serves all three stages: the T block
            // (sojourn totals + absorption) and the S block (sojourn side
            // + pollution hitting) are each factored exactly once.
            let options = SolverOptions::default();
            let solvers = PartitionSolvers::build(chain.sparse_dtmc(), &partition, options)?;
            let sojourn =
                SojournAnalysis::new_sparse_shared(chain.sparse_dtmc(), &alpha, &solvers)?;
            let absorbing =
                AbsorptionEngine::Sparse(SparseAbsorption::build(&chain, &alpha, &solvers)?);
            (sojourn, absorbing, Some(solvers))
        } else {
            let sojourn = SojournAnalysis::new(chain.dtmc(), &partition, &alpha)?;
            let absorbing = AbsorptionEngine::Dense(Box::new(AbsorbingChain::new(chain.dtmc())?));
            (sojourn, absorbing, None)
        };
        timings.record(BatterySlot::Build, build_watch.elapsed_s());
        Ok(ClusterAnalysis {
            chain,
            alpha,
            initial,
            sojourn,
            absorbing,
            solvers,
            timings,
        })
    }

    /// Runs `f`, charging its wall time to `slot` when metrics are on.
    #[inline]
    fn timed<T>(&self, slot: BatterySlot, f: impl FnOnce() -> T) -> T {
        let watch = Stopwatch::start();
        let out = f();
        self.timings.record(slot, watch.elapsed_s());
        out
    }

    /// Per-metric build/solve wall times accumulated by this analysis
    /// and every clone of it, as `(name, seconds, calls)` triples in a
    /// fixed slot order. All zeros when the `metrics` cargo feature is
    /// off — timing collection compiles out entirely.
    pub fn battery_timings(&self) -> Vec<(&'static str, f64, u64)> {
        BATTERY_SLOT_NAMES
            .iter()
            .enumerate()
            .map(|(i, &name)| {
                (
                    name,
                    self.timings.nanos[i].load(Ordering::Relaxed) as f64 * 1e-9,
                    self.timings.calls[i].load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// `true` when this analysis runs on the sparse pipeline.
    pub fn is_sparse(&self) -> bool {
        matches!(self.absorbing, AbsorptionEngine::Sparse(_))
    }

    /// The underlying chain.
    pub fn chain(&self) -> &ClusterChain {
        &self.chain
    }

    /// The parameters of the model.
    pub fn params(&self) -> &ModelParams {
        self.chain.space().params()
    }

    /// The initial condition in force.
    pub fn initial(&self) -> &InitialCondition {
        &self.initial
    }

    /// The materialized initial distribution over `Ω`.
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// `E(T_S)` — expected number of events spent in safe transient states
    /// before absorption (Relation 5).
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures.
    pub fn expected_safe_events(&self) -> Result<f64, MarkovError> {
        self.timed(BatterySlot::Sojourn, || self.sojourn.expected_total_s())
    }

    /// `E(T_P)` — expected number of events spent in polluted transient
    /// states before absorption (Relation 6).
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures.
    pub fn expected_polluted_events(&self) -> Result<f64, MarkovError> {
        self.timed(BatterySlot::Sojourn, || self.sojourn.expected_total_p())
    }

    /// Expected number of events until absorption (equals
    /// `E(T_S) + E(T_P)`).
    ///
    /// # Errors
    ///
    /// Propagates distribution validation failures.
    pub fn expected_absorption_events(&self) -> Result<f64, MarkovError> {
        self.timed(BatterySlot::Absorption, || match &self.absorbing {
            AbsorptionEngine::Dense(abs) => abs.expected_steps(&self.alpha),
            AbsorptionEngine::Sparse(abs) => Ok(abs.expected_steps),
        })
    }

    /// `E(T_{S,n})` for `n = 1..=count` (Relation 7).
    pub fn successive_safe_sojourns(&self, count: usize) -> Vec<f64> {
        self.sojourn.expected_sojourns_s(count)
    }

    /// `E(T_{P,n})` for `n = 1..=count` (Relation 8).
    pub fn successive_polluted_sojourns(&self, count: usize) -> Vec<f64> {
        self.sojourn.expected_sojourns_p(count)
    }

    /// Distribution `P(T_S = j)`, `j = 0..=j_max` (beyond-paper extension
    /// from the same censored-chain construction).
    pub fn safe_time_distribution(&self, j_max: usize) -> Vec<f64> {
        self.sojourn.distribution_s(j_max)
    }

    /// Distribution `P(T_P = j)`, `j = 0..=j_max`.
    pub fn polluted_time_distribution(&self, j_max: usize) -> Vec<f64> {
        self.sojourn.distribution_p(j_max)
    }

    /// Variance of `T_S`.
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures.
    pub fn variance_safe_events(&self) -> Result<f64, MarkovError> {
        self.timed(BatterySlot::Variance, || self.sojourn.variance_s())
    }

    /// Variance of `T_P`.
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures.
    pub fn variance_polluted_events(&self) -> Result<f64, MarkovError> {
        self.timed(BatterySlot::Variance, || self.sojourn.variance_p())
    }

    /// Probability that the cluster is **ever** polluted during its
    /// lifetime: the chance of hitting the polluted transient states or
    /// the polluted-merge class before dissolution.
    ///
    /// Sharper than `E(T_P)`: a small expected pollution time could hide
    /// either rare-but-long or frequent-but-short pollution episodes; this
    /// metric separates the "how often" from the "how long"
    /// (`E(T_P) = P(ever polluted) · E(T_P | polluted)`).
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures.
    pub fn pollution_probability(&self) -> Result<f64, MarkovError> {
        self.timed(BatterySlot::Pollution, || self.pollution_probability_impl())
    }

    fn pollution_probability_impl(&self) -> Result<f64, MarkovError> {
        let space = self.chain.space();
        if let Some(solvers) = &self.solvers {
            // Complement on the shared S-block solver: a trajectory never
            // gets polluted exactly when it wanders inside the safe
            // transient band S and exits straight into a safe absorbing
            // class, so with r[i] = P(i → AmS ∪ AℓS in one step),
            //   P(never polluted | start i ∈ S) = [(I − M_S)⁻¹ r]_i
            // — one solve on a factorization the sojourn stage already
            // set up, instead of a dedicated hitting system.
            let s_idx = solvers.s_indices();
            let mut is_safe_abs = vec![false; space.len()];
            for &j in space.safe_merge().iter().chain(space.safe_split()) {
                is_safe_abs[j] = true;
            }
            let mut r = vec![0.0; s_idx.len()];
            for (t, &g) in s_idx.iter().enumerate() {
                for (j, v) in self.chain.sparse_dtmc().successors(g) {
                    if is_safe_abs[j] {
                        r[t] += v;
                    }
                }
            }
            let p_never = solvers.solver_s().solve(&r)?;
            let mut never: f64 = s_idx
                .iter()
                .enumerate()
                .map(|(t, &g)| self.alpha[g] * p_never[t])
                .sum();
            // Initial mass already sitting on a safe absorbing state
            // stays clean forever.
            for (j, &a) in self.alpha.iter().enumerate() {
                if a > 0.0 && is_safe_abs[j] {
                    never += a;
                }
            }
            Ok((1.0 - never).clamp(0.0, 1.0))
        } else {
            let mut targets: Vec<usize> = space.transient_polluted().to_vec();
            targets.extend_from_slice(space.polluted_merge());
            targets.extend_from_slice(space.polluted_split());
            pollux_markov::hitting::hitting_probability_from(
                self.chain.dtmc(),
                &self.alpha,
                &targets,
            )
        }
    }

    /// Transient occupancy curve of a single cluster: `P(X_m ∈ S)` and
    /// `P(X_m ∈ P)` at each requested event count (sorted, increasing) —
    /// the per-cluster analogue of Figure 5, obtained by pushing `α`
    /// through the chain.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidPartition`] for unsorted sample
    /// points.
    pub fn occupancy_series(
        &self,
        sample_points: &[u64],
    ) -> Result<Vec<(u64, f64, f64)>, MarkovError> {
        self.timed(BatterySlot::Occupancy, || {
            self.occupancy_series_impl(sample_points)
        })
    }

    fn occupancy_series_impl(
        &self,
        sample_points: &[u64],
    ) -> Result<Vec<(u64, f64, f64)>, MarkovError> {
        if sample_points.windows(2).any(|w| w[0] > w[1]) {
            return Err(MarkovError::InvalidPartition(
                "sample points must be sorted increasing".into(),
            ));
        }
        let space = self.chain.space();
        let safe = space.transient_safe();
        let polluted = space.transient_polluted();
        // The CSR push visits contributions in the same order as the dense
        // row scan (ascending source, then ascending target), so this is
        // bit-identical to the historical dense iteration at O(nnz) per
        // step instead of O(n²).
        let matrix = self.chain.sparse_dtmc().matrix();
        let mut dist = self.alpha.clone();
        let mut next = vec![0.0; dist.len()];
        let mut out = Vec::with_capacity(sample_points.len());
        let mut m_cur = 0u64;
        for &m in sample_points {
            while m_cur < m {
                matrix.vec_mul_into(&dist, &mut next);
                std::mem::swap(&mut dist, &mut next);
                m_cur += 1;
            }
            let p_s: f64 = safe.iter().map(|&i| dist[i]).sum();
            let p_p: f64 = polluted.iter().map(|&i| dist[i]).sum();
            out.push((m, p_s, p_p));
        }
        Ok(out)
    }

    /// Long-run safe/polluted fractions of a *regenerating* cluster: when
    /// an absorbed cluster is immediately replaced by a fresh one drawn
    /// from the initial condition (the split/merge successors of a live
    /// overlay), renewal–reward gives
    ///
    /// ```text
    /// fraction polluted = E(T_P) / (E(T_S) + E(T_P) + 1)
    /// ```
    ///
    /// (each cycle spends `T_S + T_P` events transient plus one event on
    /// the regeneration itself). Returns `(safe, polluted)`. This is the
    /// beyond-paper extension validated against the regenerate-mode
    /// overlay simulator.
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures.
    pub fn steady_state_fractions(&self) -> Result<(f64, f64), MarkovError> {
        let ts = self.expected_safe_events()?;
        let tp = self.expected_polluted_events()?;
        let cycle = ts + tp + 1.0;
        Ok((ts / cycle, tp / cycle))
    }

    /// Absorption probabilities per Figure-1 class (Relation 9).
    ///
    /// # Errors
    ///
    /// Propagates distribution validation failures.
    pub fn absorption_split(&self) -> Result<AbsorptionSplit, MarkovError> {
        self.timed(BatterySlot::Absorption, || self.absorption_split_impl())
    }

    fn absorption_split_impl(&self) -> Result<AbsorptionSplit, MarkovError> {
        let abs = match &self.absorbing {
            AbsorptionEngine::Sparse(sparse) => return Ok(sparse.split),
            AbsorptionEngine::Dense(abs) => abs,
        };
        let probs = abs.absorption_probabilities(&self.alpha)?;
        let mut split = AbsorptionSplit {
            safe_merge: 0.0,
            safe_split: 0.0,
            polluted_merge: 0.0,
            polluted_split: 0.0,
        };
        let params = self.params();
        for (class_pos, &class_id) in abs.closed_classes().iter().enumerate() {
            let members = abs.class_members(class_id);
            // Absorbing classes of this chain are singleton self-loop
            // states; classify the representative.
            let state = self.chain.space().state(members[0]);
            let bucket = match state.classify(params) {
                StateClass::SafeMerge => &mut split.safe_merge,
                StateClass::SafeSplit => &mut split.safe_split,
                StateClass::PollutedMerge => &mut split.polluted_merge,
                StateClass::PollutedSplit => &mut split.polluted_split,
                transient => unreachable!("closed class in {transient}"),
            };
            *bucket += probs[class_pos];
        }
        Ok(split)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analysis(mu: f64, d: f64, k: usize, initial: InitialCondition) -> ClusterAnalysis {
        let params = ModelParams::paper_defaults()
            .with_mu(mu)
            .with_d(d)
            .with_k(k)
            .unwrap();
        ClusterAnalysis::new(&params, initial).unwrap()
    }

    #[test]
    fn mu_zero_closed_forms() {
        // Section VII-C: for μ = 0, E(T_S) + E(T_P) = ⌊Δ²/4⌋ = 12 and
        // E(T_P) = 0; Section VII-E: p(merge) = 1 − 3/7, p(split) = 3/7.
        let a = analysis(0.0, 0.9, 1, InitialCondition::Delta);
        assert!((a.expected_safe_events().unwrap() - 12.0).abs() < 1e-9);
        assert!(a.expected_polluted_events().unwrap().abs() < 1e-12);
        let split = a.absorption_split().unwrap();
        assert!((split.safe_merge - 4.0 / 7.0).abs() < 1e-9);
        assert!((split.safe_split - 3.0 / 7.0).abs() < 1e-9);
        assert_eq!(split.polluted_merge, 0.0);
        assert_eq!(split.polluted_split, 0.0);
        assert!((split.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn battery_timings_populate_iff_metrics_enabled_and_stay_inert() {
        let a = analysis(0.2, 0.8, 1, InitialCondition::Delta);
        let ts = a.expected_safe_events().unwrap();
        a.variance_safe_events().unwrap();
        a.pollution_probability().unwrap();
        a.absorption_split().unwrap();
        a.occupancy_series(&[0, 4]).unwrap();
        a.expected_absorption_events().unwrap();

        let timings = a.battery_timings();
        assert_eq!(timings.len(), BATTERY_SLOTS);
        if pollux_obs::METRICS_ENABLED {
            // Build plus every exercised metric slot tallied its calls.
            assert!(
                timings.iter().all(|&(_, _, calls)| calls > 0),
                "{timings:?}"
            );
        } else {
            assert!(
                timings.iter().all(|&(_, s, calls)| s == 0.0 && calls == 0),
                "{timings:?}"
            );
        }

        // Clones feed the same Arc-shared tally, and observation never
        // perturbs the metric values themselves.
        let clone = a.clone();
        assert_eq!(clone.expected_safe_events().unwrap(), ts);
        let sojourn_calls = |t: &[(&str, f64, u64)]| t[BatterySlot::Sojourn as usize].2;
        if pollux_obs::METRICS_ENABLED {
            assert_eq!(
                sojourn_calls(&a.battery_timings()),
                sojourn_calls(&clone.battery_timings())
            );
        }
    }

    #[test]
    fn totals_decompose_absorption_time() {
        for (mu, d, k) in [(0.1, 0.8, 1), (0.3, 0.9, 7), (0.2, 0.3, 3)] {
            let a = analysis(mu, d, k, InitialCondition::Delta);
            let ts = a.expected_safe_events().unwrap();
            let tp = a.expected_polluted_events().unwrap();
            let tot = a.expected_absorption_events().unwrap();
            assert!(
                (ts + tp - tot).abs() < 1e-8 * tot.max(1.0),
                "mu={mu} d={d} k={k}: {ts} + {tp} != {tot}"
            );
        }
    }

    #[test]
    fn sojourn_series_converges_to_totals() {
        let a = analysis(0.2, 0.9, 1, InitialCondition::Delta);
        let series = a.successive_safe_sojourns(300);
        let total = a.expected_safe_events().unwrap();
        let sum: f64 = series.iter().sum();
        assert!((sum - total).abs() < 1e-6 * total, "{sum} vs {total}");
    }

    #[test]
    fn beta_start_is_worse_than_delta_start() {
        // Section VII-B's first lesson: a pre-polluted start (β) gives the
        // adversary a head start.
        let delta = analysis(0.2, 0.8, 1, InitialCondition::Delta);
        let beta = analysis(0.2, 0.8, 1, InitialCondition::Beta);
        assert!(
            beta.expected_polluted_events().unwrap() > delta.expected_polluted_events().unwrap()
        );
        let split_delta = delta.absorption_split().unwrap();
        let split_beta = beta.absorption_split().unwrap();
        assert!(split_beta.polluted_merge > split_delta.polluted_merge);
    }

    #[test]
    fn pollution_grows_with_mu_and_d() {
        let base = analysis(0.1, 0.8, 1, InitialCondition::Delta);
        let more_mu = analysis(0.3, 0.8, 1, InitialCondition::Delta);
        let more_d = analysis(0.1, 0.95, 1, InitialCondition::Delta);
        let tp_base = base.expected_polluted_events().unwrap();
        assert!(more_mu.expected_polluted_events().unwrap() > tp_base);
        assert!(more_d.expected_polluted_events().unwrap() > tp_base);
    }

    #[test]
    fn distribution_mass_and_mean() {
        let a = analysis(0.2, 0.5, 1, InitialCondition::Delta);
        let dist = a.safe_time_distribution(3000);
        let mass: f64 = dist.iter().sum();
        assert!((mass - 1.0).abs() < 1e-8, "mass {mass}");
        let mean: f64 = dist.iter().enumerate().map(|(j, p)| j as f64 * p).sum();
        assert!((mean - a.expected_safe_events().unwrap()).abs() < 1e-5);
        // Variance is non-negative and consistent with a spot Monte-Carlo
        // magnitude (tested against simulation in the integration suite).
        assert!(a.variance_safe_events().unwrap() >= 0.0);
        assert!(a.variance_polluted_events().unwrap() >= 0.0);
    }

    #[test]
    fn accessors() {
        let a = analysis(0.1, 0.5, 1, InitialCondition::Delta);
        assert_eq!(a.params().mu(), 0.1);
        assert_eq!(a.initial().label(), "delta");
        assert_eq!(a.alpha().len(), 288);
        assert_eq!(a.chain().space().len(), 288);
    }

    #[test]
    fn occupancy_series_decays_and_sums_match_sojourns() {
        let a = analysis(0.25, 0.9, 1, InitialCondition::Delta);
        let series = a.occupancy_series(&[0, 1, 10, 100, 1000]).unwrap();
        // Starts in a safe transient state.
        assert_eq!(series[0], (0, 1.0, 0.0));
        // Eventually everything is absorbed.
        let last = series.last().unwrap();
        assert!(last.1 + last.2 < 1e-6);
        // Summing P(X_m in S) over all m gives E(T_S) (counting measure).
        let grid: Vec<u64> = (0..2000).collect();
        let dense = a.occupancy_series(&grid).unwrap();
        let sum_s: f64 = dense.iter().map(|&(_, s, _)| s).sum();
        let sum_p: f64 = dense.iter().map(|&(_, _, p)| p).sum();
        assert!((sum_s - a.expected_safe_events().unwrap()).abs() < 1e-6);
        assert!((sum_p - a.expected_polluted_events().unwrap()).abs() < 1e-6);
        // Unsorted points rejected.
        assert!(a.occupancy_series(&[5, 1]).is_err());
    }

    #[test]
    fn pollution_probability_bounds_and_edge_cases() {
        // mu = 0: never polluted.
        let clean = analysis(0.0, 0.9, 1, InitialCondition::Delta);
        assert_eq!(clean.pollution_probability().unwrap(), 0.0);
        // Grows with mu; bounded by 1.
        let a10 = analysis(0.1, 0.9, 1, InitialCondition::Delta);
        let a30 = analysis(0.3, 0.9, 1, InitialCondition::Delta);
        let p10 = a10.pollution_probability().unwrap();
        let p30 = a30.pollution_probability().unwrap();
        assert!(p10 > 0.0 && p10 < p30 && p30 < 1.0);
        // E(T_P) = P(ever polluted) * E(T_P | ever polluted) >= ... so
        // P(ever) >= E(T_P)/E(T_P|polluted) — sanity: P(ever polluted)
        // must exceed the probability of ending in a polluted merge.
        let amp = a30.absorption_split().unwrap().polluted_merge;
        assert!(p30 >= amp - 1e-12, "{p30} < {amp}");
    }

    #[test]
    fn pollution_probability_matches_simulation() {
        use pollux_adversary::TargetedStrategy;
        use rand::{rngs::StdRng, SeedableRng};
        let params = ModelParams::paper_defaults().with_mu(0.3).with_d(0.9);
        let a = ClusterAnalysis::new(&params, InitialCondition::Delta).unwrap();
        let want = a.pollution_probability().unwrap();
        let strategy = TargetedStrategy::new(1, params.nu()).unwrap();
        let sim = crate::simulation::ClusterSimulator::new(&params, &strategy);
        let mut rng = StdRng::seed_from_u64(99);
        let reps = 30_000;
        let mut hits = 0usize;
        for _ in 0..reps {
            let out = sim.run(crate::ClusterState::new(3, 0, 0), &mut rng);
            if out.polluted_events > 0
                || out.absorbed == crate::simulation::AbsorbedIn::PollutedMerge
            {
                hits += 1;
            }
        }
        let got = hits as f64 / reps as f64;
        let sigma = (want * (1.0 - want) / reps as f64).sqrt();
        assert!(
            (got - want).abs() < 5.0 * sigma + 1e-4,
            "sim {got} vs analytic {want}"
        );
    }

    #[test]
    fn sparse_pipeline_agrees_with_dense() {
        // Force both pipelines on the paper-scale chain (auto would pick
        // dense at 288 states) and compare every sweep-visible metric.
        let params = ModelParams::paper_defaults()
            .with_mu(0.25)
            .with_d(0.9)
            .with_k(3)
            .unwrap();
        let dense =
            ClusterAnalysis::new_with_mode(&params, InitialCondition::Delta, AnalysisMode::Dense)
                .unwrap();
        let sparse =
            ClusterAnalysis::new_with_mode(&params, InitialCondition::Delta, AnalysisMode::Sparse)
                .unwrap();
        assert!(!dense.is_sparse());
        assert!(sparse.is_sparse());
        let pairs = [
            (
                dense.expected_safe_events().unwrap(),
                sparse.expected_safe_events().unwrap(),
            ),
            (
                dense.expected_polluted_events().unwrap(),
                sparse.expected_polluted_events().unwrap(),
            ),
            (
                dense.expected_absorption_events().unwrap(),
                sparse.expected_absorption_events().unwrap(),
            ),
            (
                dense.pollution_probability().unwrap(),
                sparse.pollution_probability().unwrap(),
            ),
            (
                dense.variance_safe_events().unwrap(),
                sparse.variance_safe_events().unwrap(),
            ),
        ];
        for (a, b) in pairs {
            assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{a} vs {b}");
        }
        let sd = dense.absorption_split().unwrap();
        let ss = sparse.absorption_split().unwrap();
        assert!((sd.safe_merge - ss.safe_merge).abs() < 1e-9);
        assert!((sd.safe_split - ss.safe_split).abs() < 1e-9);
        assert!((sd.polluted_merge - ss.polluted_merge).abs() < 1e-9);
        assert!((sd.polluted_split - ss.polluted_split).abs() < 1e-9);
        for (a, b) in dense
            .successive_safe_sojourns(5)
            .iter()
            .zip(sparse.successive_safe_sojourns(5).iter())
        {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn auto_mode_goes_sparse_above_the_threshold() {
        // Δ = 20 at C = 7 gives 8·21·22/2 = 1848 ≥ 1024 states.
        let params = ModelParams::new(7, 20, 1).unwrap().with_mu(0.2).with_d(0.8);
        assert!(params.state_count() >= crate::SPARSE_PIPELINE_THRESHOLD);
        let auto = ClusterAnalysis::new(&params, InitialCondition::Delta).unwrap();
        assert!(auto.is_sparse());
        // The sojourn totals stay finite and positive, and absorption
        // masses form a distribution.
        let ts = auto.expected_safe_events().unwrap();
        let tp = auto.expected_polluted_events().unwrap();
        assert!(ts > 0.0 && tp >= 0.0);
        let split = auto.absorption_split().unwrap();
        assert!((split.total() - 1.0).abs() < 1e-8, "{}", split.total());
        let tot = auto.expected_absorption_events().unwrap();
        assert!((ts + tp - tot).abs() < 1e-7 * tot, "{ts} + {tp} != {tot}");
    }

    #[test]
    fn steady_state_fractions_are_consistent() {
        let a = analysis(0.3, 0.9, 1, InitialCondition::Delta);
        let (safe, polluted) = a.steady_state_fractions().unwrap();
        let ts = a.expected_safe_events().unwrap();
        let tp = a.expected_polluted_events().unwrap();
        assert!((safe + polluted - (ts + tp) / (ts + tp + 1.0)).abs() < 1e-12);
        assert!(polluted > 0.0 && polluted < 0.2);
        assert!(safe > 0.8);
    }
}
