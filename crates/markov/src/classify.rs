//! Structural classification of a Markov chain.
//!
//! Communicating classes are the strongly connected components of the
//! directed graph with an edge `i → j` whenever `P(i → j) > 0`. A class is
//! *closed* when no edge leaves it; states in closed classes are recurrent,
//! all others are transient. The DSN'11 chain has three closed classes (the
//! absorption sets `AmS`, `AℓS`, `AmP` of Figure 1) plus transient safe and
//! polluted states.

use crate::{Dtmc, SparseDtmc};

/// Result of classifying a chain's states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// `class_of[i]` is the communicating-class id of state `i`.
    pub class_of: Vec<usize>,
    /// States of each class, indexed by class id.
    pub classes: Vec<Vec<usize>>,
    /// `closed[c]` is `true` when class `c` has no outgoing edge.
    pub closed: Vec<bool>,
}

impl Classification {
    /// Indices of all transient states (members of non-closed classes), in
    /// increasing order.
    pub fn transient_states(&self) -> Vec<usize> {
        let mut out: Vec<usize> = (0..self.class_of.len())
            .filter(|&i| !self.closed[self.class_of[i]])
            .collect();
        out.sort_unstable();
        out
    }

    /// Indices of all recurrent states (members of closed classes), in
    /// increasing order.
    pub fn recurrent_states(&self) -> Vec<usize> {
        let mut out: Vec<usize> = (0..self.class_of.len())
            .filter(|&i| self.closed[self.class_of[i]])
            .collect();
        out.sort_unstable();
        out
    }

    /// Ids of the closed classes.
    pub fn closed_classes(&self) -> Vec<usize> {
        (0..self.classes.len())
            .filter(|&c| self.closed[c])
            .collect()
    }

    /// `true` when state `i` is absorbing (a singleton closed class whose
    /// self-loop has probability 1 — equivalently, a singleton closed
    /// class).
    pub fn is_absorbing_state(&self, i: usize) -> bool {
        let c = self.class_of[i];
        self.closed[c] && self.classes[c].len() == 1
    }
}

/// Computes the communicating classes of `chain` with an iterative Tarjan
/// SCC, and marks closed classes.
pub fn classify(chain: &Dtmc) -> Classification {
    let n = chain.n_states();
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| chain.prob(i, j) > 0.0)
                .collect::<Vec<_>>()
        })
        .collect();
    classify_adjacency(adj)
}

/// Sparse counterpart of [`classify`]: the adjacency comes straight from
/// the CSR rows, so the whole classification is O(nnz) instead of O(n²).
///
/// Successors are visited in the same (ascending) order as the dense
/// scan, so both entry points produce identical class ids.
pub fn classify_sparse(chain: &SparseDtmc) -> Classification {
    let n = chain.n_states();
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            chain
                .successors(i)
                .filter(|&(_, v)| v > 0.0)
                .map(|(j, _)| j)
                .collect::<Vec<_>>()
        })
        .collect();
    classify_adjacency(adj)
}

/// Shared classification core over an explicit adjacency list.
fn classify_adjacency(adj: Vec<Vec<usize>>) -> Classification {
    let n = adj.len();
    let sccs = tarjan_scc(&adj);

    let mut class_of = vec![usize::MAX; n];
    for (c, members) in sccs.iter().enumerate() {
        for &s in members {
            class_of[s] = c;
        }
    }
    let closed: Vec<bool> = sccs
        .iter()
        .enumerate()
        .map(|(c, members)| {
            members
                .iter()
                .all(|&s| adj[s].iter().all(|&t| class_of[t] == c))
        })
        .collect();
    Classification {
        class_of,
        classes: sccs,
        closed,
    }
}

/// Set of states reachable from the support of `alpha` (including the
/// support itself), as a boolean mask.
///
/// # Panics
///
/// Panics if `alpha.len()` differs from the number of states.
pub fn reachable_from(chain: &Dtmc, alpha: &[f64]) -> Vec<bool> {
    let n = chain.n_states();
    assert_eq!(alpha.len(), n, "distribution length mismatch");
    let mut seen = vec![false; n];
    let mut stack: Vec<usize> = alpha
        .iter()
        .enumerate()
        .filter(|(_, &a)| a > 0.0)
        .map(|(i, _)| i)
        .collect();
    for &s in &stack {
        seen[s] = true;
    }
    while let Some(i) = stack.pop() {
        for (j, seen_j) in seen.iter_mut().enumerate() {
            if !*seen_j && chain.prob(i, j) > 0.0 {
                *seen_j = true;
                stack.push(j);
            }
        }
    }
    seen
}

/// Iterative Tarjan strongly-connected-components algorithm.
///
/// Returns the components; every vertex appears in exactly one component.
fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS frames: (vertex, next child position).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call_stack.push((root, 0));
        while let Some(&mut (v, ref mut child_pos)) = call_stack.last_mut() {
            if *child_pos == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *child_pos < adj[v].len() {
                let w = adj[v][*child_pos];
                *child_pos += 1;
                if index[w] == UNVISITED {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    sccs.push(component);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gamblers_ruin() -> Dtmc {
        Dtmc::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.5, 0.0, 0.5, 0.0],
            &[0.0, 0.5, 0.0, 0.5],
            &[0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap()
    }

    #[test]
    fn gamblers_ruin_classification() {
        let c = classify(&gamblers_ruin());
        assert_eq!(c.transient_states(), vec![1, 2]);
        assert_eq!(c.recurrent_states(), vec![0, 3]);
        assert!(c.is_absorbing_state(0));
        assert!(c.is_absorbing_state(3));
        assert!(!c.is_absorbing_state(1));
        assert_eq!(c.closed_classes().len(), 2);
    }

    #[test]
    fn irreducible_chain_is_one_closed_class() {
        let p = Dtmc::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]).unwrap();
        let c = classify(&p);
        assert_eq!(c.classes.len(), 1);
        assert!(c.closed[0]);
        assert!(c.transient_states().is_empty());
    }

    #[test]
    fn closed_class_of_two_states_is_recurrent_but_not_absorbing() {
        // 0 <-> 1 closed; 2 drains into them.
        let p = Dtmc::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0], &[0.3, 0.3, 0.4]]).unwrap();
        let c = classify(&p);
        assert_eq!(c.transient_states(), vec![2]);
        assert_eq!(c.recurrent_states(), vec![0, 1]);
        assert!(!c.is_absorbing_state(0));
    }

    #[test]
    fn chain_of_transients() {
        // A long path with a sink at the end (stress for iterative Tarjan).
        let n = 500;
        let mut rows = Vec::new();
        for i in 0..n {
            let mut row = vec![0.0; n];
            if i + 1 < n {
                row[i + 1] = 1.0;
            } else {
                row[i] = 1.0;
            }
            rows.push(row);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let p = Dtmc::from_rows(&refs).unwrap();
        let c = classify(&p);
        assert_eq!(c.transient_states().len(), n - 1);
        assert!(c.is_absorbing_state(n - 1));
    }

    #[test]
    fn sparse_and_dense_classification_agree() {
        let dense = gamblers_ruin();
        let sparse = crate::SparseDtmc::from_dense(&dense);
        let a = classify(&dense);
        let b = classify_sparse(&sparse);
        assert_eq!(a, b);
    }

    #[test]
    fn reachability() {
        let p = gamblers_ruin();
        let mut alpha = vec![0.0; 4];
        alpha[0] = 1.0;
        let r = reachable_from(&p, &alpha);
        assert_eq!(r, vec![true, false, false, false]);
        let mut alpha = vec![0.0; 4];
        alpha[1] = 1.0;
        let r = reachable_from(&p, &alpha);
        assert_eq!(r, vec![true, true, true, true]);
    }
}
