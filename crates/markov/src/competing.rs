use pollux_linalg::sparse::CsrMatrix;
use pollux_linalg::vec_ops;
use pollux_prob::Binomial;

use crate::classify::classify;
use crate::{Dtmc, MarkovError};

/// `n` statistically identical Markov chains of which exactly one — chosen
/// uniformly at random — makes a transition at each instant.
///
/// This is the overlay-level model of the DSN'11 paper (Section VIII,
/// following Anceaume, Castella, Ludinard & Sericola): each of the `n`
/// clusters evolves by the same per-cluster chain, and each overlay event
/// hits one uniformly chosen cluster. The marginal distribution of one
/// chain after `m` global events is a binomial mixture of the single-chain
/// transient distributions (Theorem 1), and the expected number of chains
/// inside a state subset `U` is
///
/// ```text
/// E(N_U(m)) / n = α (T/n + (1 − 1/n) I)^m 1_U        (Theorem 2)
/// ```
///
/// where `T` is the (sub-stochastic) transient block of the single-chain
/// matrix.
///
/// # Example
///
/// ```
/// use pollux_markov::{CompetingChains, Dtmc};
///
/// # fn main() -> Result<(), pollux_markov::MarkovError> {
/// let chain = Dtmc::from_rows(&[
///     &[1.0, 0.0, 0.0],
///     &[0.25, 0.5, 0.25],
///     &[0.0, 0.0, 1.0],
/// ])?;
/// let comp = CompetingChains::new(&chain, 10)?;
/// let alpha = vec![0.0, 1.0, 0.0];
/// // Proportion of chains still in the transient state 1 after 20 events.
/// let series = comp.proportion_series(&alpha, &[&[1]], &[0, 20])?;
/// assert!(series[1][0] < series[0][0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompetingChains {
    chain: Dtmc,
    n: u64,
    /// Global indices of transient states, increasing.
    transient: Vec<usize>,
    /// Position of each global state in `transient`.
    transient_pos: Vec<Option<usize>>,
    /// `T/n + (1 − 1/n) I` over the transient block, sparse.
    step_matrix: CsrMatrix,
}

impl CompetingChains {
    /// Builds the model for `n` copies of `chain`.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::InvalidPartition`] when `n == 0`.
    /// * [`MarkovError::NoTransientStates`] when the chain has no transient
    ///   states.
    pub fn new(chain: &Dtmc, n: u64) -> Result<Self, MarkovError> {
        if n == 0 {
            return Err(MarkovError::InvalidPartition(
                "need at least one competing chain".into(),
            ));
        }
        let classification = classify(chain);
        let transient = classification.transient_states();
        if transient.is_empty() {
            return Err(MarkovError::NoTransientStates);
        }
        let nt = chain.n_states();
        let mut transient_pos = vec![None; nt];
        for (t, &g) in transient.iter().enumerate() {
            transient_pos[g] = Some(t);
        }
        let mut triplets = Vec::new();
        for (ti, &gi) in transient.iter().enumerate() {
            for (tj, &gj) in transient.iter().enumerate() {
                let p = chain.prob(gi, gj);
                if p > 0.0 {
                    triplets.push((ti, tj, p));
                }
            }
        }
        let t_block = CsrMatrix::from_triplets(transient.len(), transient.len(), &triplets)?;
        let inv_n = 1.0 / n as f64;
        let step_matrix = t_block.affine(inv_n, 1.0 - inv_n)?;
        Ok(CompetingChains {
            chain: chain.clone(),
            n,
            transient,
            transient_pos,
            step_matrix,
        })
    }

    /// Number of competing chains.
    pub fn n_chains(&self) -> u64 {
        self.n
    }

    /// Global indices of the transient states the model tracks.
    pub fn transient_states(&self) -> &[usize] {
        &self.transient
    }

    /// Restriction of a full-chain distribution to the transient block.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidDistribution`] for wrong length or
    /// negative mass.
    fn restrict(&self, alpha: &[f64]) -> Result<Vec<f64>, MarkovError> {
        if alpha.len() != self.chain.n_states() {
            return Err(MarkovError::InvalidDistribution(format!(
                "length {} does not match {} states",
                alpha.len(),
                self.chain.n_states()
            )));
        }
        if alpha.iter().any(|&a| a < -1e-12) {
            return Err(MarkovError::InvalidDistribution(
                "negative probability mass".into(),
            ));
        }
        Ok(vec_ops::gather(alpha, &self.transient))
    }

    /// Theorem 2: expected proportion `E(N_U(m))/n` for each subset `U`
    /// (given by global state indices) at each requested event count.
    ///
    /// `sample_points` must be sorted increasing. The result has one row
    /// per sample point, one column per subset.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::InvalidDistribution`] for a bad `alpha`.
    /// * [`MarkovError::InvalidPartition`] when `sample_points` is not
    ///   sorted, or a subset contains an out-of-range or non-transient
    ///   index (non-transient indices would always contribute 0 and are
    ///   almost certainly a caller bug).
    pub fn proportion_series(
        &self,
        alpha: &[f64],
        subsets: &[&[usize]],
        sample_points: &[u64],
    ) -> Result<Vec<Vec<f64>>, MarkovError> {
        if sample_points.windows(2).any(|w| w[0] > w[1]) {
            return Err(MarkovError::InvalidPartition(
                "sample points must be sorted increasing".into(),
            ));
        }
        // Translate subsets to transient-block positions.
        let mut masks: Vec<Vec<usize>> = Vec::with_capacity(subsets.len());
        for subset in subsets {
            let mut positions = Vec::with_capacity(subset.len());
            for &g in *subset {
                match self.transient_pos.get(g) {
                    Some(Some(t)) => positions.push(*t),
                    Some(None) => {
                        return Err(MarkovError::InvalidPartition(format!(
                            "state {g} is not transient"
                        )))
                    }
                    None => {
                        return Err(MarkovError::InvalidState {
                            index: g,
                            states: self.chain.n_states(),
                        })
                    }
                }
            }
            masks.push(positions);
        }

        let mut y = self.restrict(alpha)?;
        let mut scratch = vec![0.0; y.len()];
        let mut out = Vec::with_capacity(sample_points.len());
        let mut m_cur: u64 = 0;
        for &m in sample_points {
            while m_cur < m {
                self.step_matrix.vec_mul_into(&y, &mut scratch);
                std::mem::swap(&mut y, &mut scratch);
                m_cur += 1;
            }
            out.push(
                masks
                    .iter()
                    .map(|pos| pos.iter().map(|&t| y[t]).sum())
                    .collect(),
            );
        }
        Ok(out)
    }

    /// Theorem 1: marginal probability that one designated chain is in
    /// global state `j` after `m` overlay events, evaluated directly as the
    /// binomial mixture `Σ_ℓ C(m,ℓ) (1/n)^ℓ (1−1/n)^{m−ℓ} P(X_ℓ = j)`.
    ///
    /// Cost is `O(m)` single-chain pushes; intended for cross-checking
    /// [`CompetingChains::proportion_series`] on small `m`.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::InvalidState`] for an out-of-range state.
    /// * [`MarkovError::InvalidDistribution`] for a bad `alpha`.
    pub fn theorem1_state_probability(
        &self,
        alpha: &[f64],
        j: usize,
        m: u64,
    ) -> Result<f64, MarkovError> {
        if j >= self.chain.n_states() {
            return Err(MarkovError::InvalidState {
                index: j,
                states: self.chain.n_states(),
            });
        }
        self.chain.check_distribution(alpha)?;
        let binom =
            Binomial::new(m, 1.0 / self.n as f64).expect("1/n is a valid probability for n >= 1");
        let mut dist = alpha.to_vec();
        let mut total = binom.pmf(0) * dist[j];
        for l in 1..=m {
            dist = self.chain.matrix().vec_mul(&dist);
            total += binom.pmf(l) * dist[j];
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ruin_chain() -> Dtmc {
        Dtmc::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.5, 0.0, 0.5, 0.0],
            &[0.0, 0.5, 0.0, 0.5],
            &[0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap()
    }

    #[test]
    fn n_equal_one_reduces_to_single_chain() {
        let chain = ruin_chain();
        let comp = CompetingChains::new(&chain, 1).unwrap();
        let alpha = vec![0.0, 1.0, 0.0, 0.0];
        // With one chain the step matrix is T itself, so the "proportion"
        // in {1, 2} equals P(X_m transient).
        let series = comp
            .proportion_series(&alpha, &[&[1, 2]], &[0, 1, 2, 3])
            .unwrap();
        // m=0: in state 1 with certainty.
        assert!((series[0][0] - 1.0).abs() < 1e-12);
        // m=1: absorbed at 0 w.p. 1/2, at state 2 w.p. 1/2.
        assert!((series[1][0] - 0.5).abs() < 1e-12);
        // m=2: from state 2 -> 1 w.p. 1/2, so P(transient) = 1/4... times
        // the mass that survived: 0.5 * 0.5 = 0.25.
        assert!((series[2][0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn proportions_decay_to_zero() {
        let chain = ruin_chain();
        let comp = CompetingChains::new(&chain, 50).unwrap();
        let alpha = vec![0.0, 0.5, 0.5, 0.0];
        let series = comp
            .proportion_series(&alpha, &[&[1, 2]], &[0, 100, 1000, 10_000])
            .unwrap();
        assert!((series[0][0] - 1.0).abs() < 1e-12);
        assert!(series[1][0] < series[0][0]);
        assert!(series[2][0] < series[1][0]);
        assert!(series[3][0] < 1e-6);
    }

    #[test]
    fn larger_n_slows_the_decay() {
        let chain = ruin_chain();
        let alpha = vec![0.0, 1.0, 0.0, 0.0];
        let small = CompetingChains::new(&chain, 10).unwrap();
        let large = CompetingChains::new(&chain, 1000).unwrap();
        let at = [200u64];
        let s = small.proportion_series(&alpha, &[&[1, 2]], &at).unwrap();
        let l = large.proportion_series(&alpha, &[&[1, 2]], &at).unwrap();
        assert!(
            l[0][0] > s[0][0],
            "n=1000 should retain more transient mass ({} vs {})",
            l[0][0],
            s[0][0]
        );
    }

    #[test]
    fn theorem1_and_theorem2_agree() {
        // E(N_U(m))/n = sum_{j in U} P(X^h_m = j) by symmetry, so the
        // Theorem 1 evaluation must match the Theorem 2 iteration.
        let chain = ruin_chain();
        let comp = CompetingChains::new(&chain, 7).unwrap();
        let alpha = vec![0.0, 1.0, 0.0, 0.0];
        for m in [0u64, 1, 5, 20, 60] {
            let t2 = comp.proportion_series(&alpha, &[&[1], &[2]], &[m]).unwrap()[0].clone();
            let p1 = comp.theorem1_state_probability(&alpha, 1, m).unwrap();
            let p2 = comp.theorem1_state_probability(&alpha, 2, m).unwrap();
            assert!((t2[0] - p1).abs() < 1e-10, "m={m}: {} vs {p1}", t2[0]);
            assert!((t2[1] - p2).abs() < 1e-10, "m={m}: {} vs {p2}", t2[1]);
        }
    }

    #[test]
    fn validation_errors() {
        let chain = ruin_chain();
        assert!(CompetingChains::new(&chain, 0).is_err());
        let comp = CompetingChains::new(&chain, 5).unwrap();
        let alpha = vec![0.0, 1.0, 0.0, 0.0];
        // Unsorted sample points.
        assert!(comp.proportion_series(&alpha, &[&[1]], &[5, 1]).is_err());
        // Non-transient subset member.
        assert!(comp.proportion_series(&alpha, &[&[0]], &[1]).is_err());
        // Out-of-range subset member.
        assert!(comp.proportion_series(&alpha, &[&[9]], &[1]).is_err());
        // Bad alpha length.
        assert!(comp.proportion_series(&[1.0], &[&[1]], &[1]).is_err());
        // Irreducible chain has no transient states.
        let irr = Dtmc::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]).unwrap();
        assert!(CompetingChains::new(&irr, 5).is_err());
    }

    #[test]
    fn repeated_sample_points_allowed() {
        let chain = ruin_chain();
        let comp = CompetingChains::new(&chain, 3).unwrap();
        let alpha = vec![0.0, 1.0, 0.0, 0.0];
        let series = comp.proportion_series(&alpha, &[&[1, 2]], &[4, 4]).unwrap();
        assert_eq!(series[0], series[1]);
    }
}
