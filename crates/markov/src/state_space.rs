use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// A bijection between arbitrary state values and dense indices `0..n`.
///
/// Transition matrices index states by `usize`; model code wants to think
/// in structured states (for the DSN'11 model, triples `(s, x, y)`). A
/// `StateSpace` records insertion order, so index assignment is
/// deterministic.
///
/// # Example
///
/// ```
/// use pollux_markov::StateSpace;
///
/// let mut space = StateSpace::new();
/// let a = space.insert((0u8, 1u8));
/// let b = space.insert((1, 0));
/// assert_eq!(space.insert((0, 1)), a); // idempotent
/// assert_eq!(space.index_of(&(1, 0)), Some(b));
/// assert_eq!(space.state(a), &(0, 1));
/// assert_eq!(space.len(), 2);
/// ```
#[derive(Clone)]
pub struct StateSpace<S> {
    states: Vec<S>,
    index: HashMap<S, usize>,
}

impl<S: Clone + Eq + Hash> StateSpace<S> {
    /// Creates an empty state space.
    pub fn new() -> Self {
        StateSpace {
            states: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Inserts a state, returning its index; inserting an existing state
    /// returns the original index.
    pub fn insert(&mut self, state: S) -> usize {
        if let Some(&i) = self.index.get(&state) {
            return i;
        }
        let i = self.states.len();
        self.states.push(state.clone());
        self.index.insert(state, i);
        i
    }

    /// Index of a state, if present.
    pub fn index_of(&self, state: &S) -> Option<usize> {
        self.index.get(state).copied()
    }

    /// State at an index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn state(&self, i: usize) -> &S {
        &self.states[i]
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` when the space contains no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Iterates over `(index, state)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &S)> {
        self.states.iter().enumerate()
    }

    /// Indices of states matching a predicate, in index order.
    pub fn indices_where<F: Fn(&S) -> bool>(&self, pred: F) -> Vec<usize> {
        self.iter()
            .filter(|(_, s)| pred(s))
            .map(|(i, _)| i)
            .collect()
    }
}

impl<S: Clone + Eq + Hash> Default for StateSpace<S> {
    fn default() -> Self {
        StateSpace::new()
    }
}

impl<S: fmt::Debug> fmt::Debug for StateSpace<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StateSpace({} states)", self.states.len())
    }
}

impl<S: Clone + Eq + Hash> FromIterator<S> for StateSpace<S> {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        let mut space = StateSpace::new();
        for s in iter {
            space.insert(s);
        }
        space
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_is_idempotent_and_ordered() {
        let mut sp = StateSpace::new();
        assert!(sp.is_empty());
        let a = sp.insert("a");
        let b = sp.insert("b");
        assert_eq!(sp.insert("a"), a);
        assert_eq!(sp.len(), 2);
        assert_eq!(sp.state(a), &"a");
        assert_eq!(sp.state(b), &"b");
        assert_eq!(sp.index_of(&"c"), None);
    }

    #[test]
    fn from_iterator_dedups() {
        let sp: StateSpace<u32> = [1u32, 2, 1, 3].into_iter().collect();
        assert_eq!(sp.len(), 3);
        assert_eq!(sp.index_of(&3), Some(2));
    }

    #[test]
    fn indices_where_filters_in_order() {
        let sp: StateSpace<u32> = (0u32..10).collect();
        let evens = sp.indices_where(|s| s % 2 == 0);
        assert_eq!(evens, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn debug_nonempty() {
        let sp: StateSpace<u32> = (0u32..3).collect();
        assert!(format!("{sp:?}").contains('3'));
    }
}
