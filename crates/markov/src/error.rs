use std::error::Error;
use std::fmt;

use pollux_linalg::LinalgError;

/// Errors produced by the Markov-chain layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MarkovError {
    /// A transition matrix failed validation (non-square, negative entry,
    /// or a row not summing to 1).
    NotStochastic(String),
    /// A state index was out of range.
    InvalidState {
        /// Offending index.
        index: usize,
        /// Number of states in the chain.
        states: usize,
    },
    /// An initial distribution failed validation.
    InvalidDistribution(String),
    /// A partition argument was inconsistent (overlap, out of range, or not
    /// covering what it must cover).
    InvalidPartition(String),
    /// The requested analysis needs transient states but none exist (or the
    /// relevant block is empty).
    NoTransientStates,
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::NotStochastic(msg) => write!(f, "matrix is not stochastic: {msg}"),
            MarkovError::InvalidState { index, states } => {
                write!(
                    f,
                    "state index {index} out of range (chain has {states} states)"
                )
            }
            MarkovError::InvalidDistribution(msg) => {
                write!(f, "invalid initial distribution: {msg}")
            }
            MarkovError::InvalidPartition(msg) => write!(f, "invalid partition: {msg}"),
            MarkovError::NoTransientStates => write!(f, "chain has no transient states"),
            MarkovError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for MarkovError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MarkovError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for MarkovError {
    fn from(e: LinalgError) -> Self {
        MarkovError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = MarkovError::InvalidState {
            index: 5,
            states: 3,
        };
        assert!(e.to_string().contains('5'));
        let inner = LinalgError::Singular { pivot: 0 };
        let e: MarkovError = inner.into();
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&MarkovError::NoTransientStates).is_none());
    }
}
