use pollux_linalg::{power, Matrix};
use pollux_prob::AliasTable;

use crate::MarkovError;

/// Validation tolerance for row sums of a transition matrix.
const ROW_SUM_TOL: f64 = 1e-9;

/// Shared distribution validation: right length, no negative mass, total
/// mass 1 within `1e-9`. Every chain representation and analysis in this
/// crate funnels through here so the tolerances live in one place.
pub(crate) fn validate_distribution(alpha: &[f64], n_states: usize) -> Result<(), MarkovError> {
    if alpha.len() != n_states {
        return Err(MarkovError::InvalidDistribution(format!(
            "length {} does not match {} states",
            alpha.len(),
            n_states
        )));
    }
    if alpha.iter().any(|&v| v < -1e-12) {
        return Err(MarkovError::InvalidDistribution(
            "negative probability mass".into(),
        ));
    }
    let total: f64 = alpha.iter().sum();
    if (total - 1.0).abs() > 1e-9 {
        return Err(MarkovError::InvalidDistribution(format!(
            "total mass {total}"
        )));
    }
    Ok(())
}

/// A validated discrete-time Markov chain on states `0..n`.
///
/// Construction checks that the matrix is square, entries are non-negative
/// and every row sums to 1 (within `1e-9`); rows are then re-normalized
/// exactly, so downstream analyses never accumulate the construction
/// tolerance.
///
/// # Example
///
/// ```
/// use pollux_markov::Dtmc;
///
/// # fn main() -> Result<(), pollux_markov::MarkovError> {
/// let p = Dtmc::from_rows(&[&[0.9, 0.1], &[0.4, 0.6]])?;
/// let dist = p.transient_distribution(&[1.0, 0.0], 2)?;
/// assert!((dist[0] - 0.85).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dtmc {
    p: Matrix,
}

impl Dtmc {
    /// Builds a chain from a transition matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NotStochastic`] when the matrix is not
    /// square, has a negative entry, or a row sum differs from 1 by more
    /// than `1e-9`.
    pub fn new(p: Matrix) -> Result<Self, MarkovError> {
        if !p.is_square() {
            return Err(MarkovError::NotStochastic(format!(
                "matrix is {}x{}",
                p.rows(),
                p.cols()
            )));
        }
        let mut p = p;
        for i in 0..p.rows() {
            let mut sum = 0.0;
            for &v in p.row(i).iter() {
                if v < -1e-15 {
                    return Err(MarkovError::NotStochastic(format!(
                        "row {i} has negative entry {v}"
                    )));
                }
                sum += v;
            }
            if (sum - 1.0).abs() > ROW_SUM_TOL {
                return Err(MarkovError::NotStochastic(format!("row {i} sums to {sum}")));
            }
            // Exact re-normalization so analyses see rows summing to 1.
            for v in p.row_mut(i) {
                *v = (*v).max(0.0) / sum;
            }
        }
        Ok(Dtmc { p })
    }

    /// Builds a chain from row slices.
    ///
    /// # Errors
    ///
    /// Propagates matrix-construction and stochasticity failures.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, MarkovError> {
        let m = Matrix::from_rows(rows)?;
        Dtmc::new(m)
    }

    /// Wraps a matrix that is already validated and exactly normalized
    /// (used when bridging from [`crate::SparseDtmc`], whose constructor
    /// enforces the same contract — re-running the normalization would
    /// perturb the probabilities by an ulp).
    pub(crate) fn from_validated_matrix(p: Matrix) -> Self {
        debug_assert!(p.is_stochastic(1e-9));
        Dtmc { p }
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.p.rows()
    }

    /// Borrows the transition matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.p
    }

    /// Transition probability `P(i → j)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.p[(i, j)]
    }

    /// Validates a distribution vector against this chain.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidDistribution`] for wrong length,
    /// negative mass or total mass differing from 1 by more than `1e-9`.
    pub fn check_distribution(&self, alpha: &[f64]) -> Result<(), MarkovError> {
        validate_distribution(alpha, self.n_states())
    }

    /// Distribution after `m` steps: `α P^m`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidDistribution`] when `alpha` fails
    /// validation.
    pub fn transient_distribution(&self, alpha: &[f64], m: u64) -> Result<Vec<f64>, MarkovError> {
        self.check_distribution(alpha)?;
        Ok(power::push_distribution(&self.p, alpha, m)?)
    }

    /// Stationary distribution `π` with `π P = π`, `Σ π = 1`, computed by a
    /// direct linear solve (replace one balance equation with the
    /// normalization constraint).
    ///
    /// Meaningful for irreducible chains; for reducible chains the result
    /// is *a* stationary vector of the linear system, if one is uniquely
    /// determined.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Linalg`] when the linear system is singular
    /// (e.g. multiple closed classes give non-unique stationary vectors).
    pub fn stationary_distribution(&self) -> Result<Vec<f64>, MarkovError> {
        let n = self.n_states();
        // Solve (P^T - I) pi = 0 with last row replaced by ones: sum = 1.
        let mut a = Matrix::from_fn(n, n, |i, j| {
            let v = self.p[(j, i)];
            if i == j {
                v - 1.0
            } else {
                v
            }
        });
        for j in 0..n {
            a[(n - 1, j)] = 1.0;
        }
        let mut b = vec![0.0; n];
        b[n - 1] = 1.0;
        let pi = a.solve(&b)?;
        Ok(pi)
    }

    /// Samples the successor of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn step<R: rand::Rng + ?Sized>(&self, i: usize, rng: &mut R) -> usize {
        let row = self.p.row(i);
        let table = AliasTable::new(row).expect("validated stochastic row");
        table.sample(rng)
    }

    /// Pre-builds per-state alias tables for repeated simulation.
    pub fn sampler(&self) -> DtmcSampler {
        DtmcSampler {
            tables: (0..self.n_states())
                .map(|i| AliasTable::new(self.p.row(i)).expect("validated stochastic row"))
                .collect(),
        }
    }

    /// Simulates a trajectory of `steps` transitions starting at `start`,
    /// returning the visited states **including** the start (so the result
    /// has `steps + 1` entries).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidState`] when `start` is out of range.
    pub fn simulate<R: rand::Rng + ?Sized>(
        &self,
        start: usize,
        steps: usize,
        rng: &mut R,
    ) -> Result<Vec<usize>, MarkovError> {
        if start >= self.n_states() {
            return Err(MarkovError::InvalidState {
                index: start,
                states: self.n_states(),
            });
        }
        let sampler = self.sampler();
        let mut path = Vec::with_capacity(steps + 1);
        let mut cur = start;
        path.push(cur);
        for _ in 0..steps {
            cur = sampler.step(cur, rng);
            path.push(cur);
        }
        Ok(path)
    }
}

/// Pre-computed alias tables for O(1)-per-step trajectory sampling.
#[derive(Debug, Clone)]
pub struct DtmcSampler {
    tables: Vec<AliasTable>,
}

impl DtmcSampler {
    /// Samples the successor of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn step<R: rand::Rng + ?Sized>(&self, i: usize, rng: &mut R) -> usize {
        self.tables[i].sample(rng)
    }

    /// Number of states covered.
    pub fn n_states(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn validation_rejects_bad_matrices() {
        assert!(Dtmc::from_rows(&[&[0.5, 0.5], &[0.5, 0.4]]).is_err());
        assert!(Dtmc::from_rows(&[&[1.5, -0.5], &[0.5, 0.5]]).is_err());
        assert!(Dtmc::new(Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn renormalization_is_exact() {
        // Row sums that are off by less than the tolerance get fixed up.
        let p = Dtmc::from_rows(&[&[0.5 + 1e-12, 0.5], &[0.25, 0.75]]).unwrap();
        for i in 0..2 {
            let s: f64 = p.matrix().row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn transient_distribution_two_state() {
        let p = Dtmc::from_rows(&[&[0.9, 0.1], &[0.4, 0.6]]).unwrap();
        // One step from state 0.
        let d1 = p.transient_distribution(&[1.0, 0.0], 1).unwrap();
        assert!((d1[0] - 0.9).abs() < 1e-14);
        // Distribution must stay normalized.
        let d20 = p.transient_distribution(&[0.5, 0.5], 20).unwrap();
        assert!((d20.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn check_distribution_validates() {
        let p = Dtmc::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        assert!(p.check_distribution(&[0.5, 0.5]).is_ok());
        assert!(p.check_distribution(&[0.5]).is_err());
        assert!(p.check_distribution(&[0.7, 0.7]).is_err());
        assert!(p.check_distribution(&[1.5, -0.5]).is_err());
    }

    #[test]
    fn stationary_distribution_known_chain() {
        // Birth-death chain with known stationary distribution.
        let p = Dtmc::from_rows(&[&[0.5, 0.5, 0.0], &[0.25, 0.5, 0.25], &[0.0, 0.5, 0.5]]).unwrap();
        let pi = p.stationary_distribution().unwrap();
        // Detailed balance: pi = (1/4, 1/2, 1/4).
        assert!((pi[0] - 0.25).abs() < 1e-10);
        assert!((pi[1] - 0.50).abs() < 1e-10);
        assert!((pi[2] - 0.25).abs() < 1e-10);
        // Verify invariance.
        let next = p.matrix().vec_mul(&pi);
        for (a, b) in next.iter().zip(pi.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn simulation_respects_structure() {
        // Deterministic cycle 0 -> 1 -> 2 -> 0.
        let p = Dtmc::from_rows(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0], &[1.0, 0.0, 0.0]]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let path = p.simulate(0, 6, &mut rng).unwrap();
        assert_eq!(path, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn simulate_rejects_bad_start() {
        let p = Dtmc::from_rows(&[&[1.0]]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            p.simulate(3, 1, &mut rng),
            Err(MarkovError::InvalidState {
                index: 3,
                states: 1
            })
        ));
    }

    #[test]
    fn empirical_step_frequencies_match_row() {
        let p = Dtmc::from_rows(&[&[0.2, 0.8], &[1.0, 0.0]]).unwrap();
        let sampler = p.sampler();
        let mut rng = StdRng::seed_from_u64(77);
        let n = 50_000;
        let ones = (0..n).filter(|_| sampler.step(0, &mut rng) == 1).count();
        let freq = ones as f64 / n as f64;
        assert!((freq - 0.8).abs() < 0.01, "freq {freq}");
    }
}
