//! Hitting probabilities: the chance of ever visiting a target set.
//!
//! For the DSN'11 model this answers "with what probability does a cluster
//! *ever* get polluted during its lifetime?" — a sharper statement than
//! the expected pollution time, because a tiny `E(T_P)` could hide either
//! rare-but-long or frequent-but-short pollution episodes.

use pollux_linalg::sparse::CsrMatrix;
use pollux_linalg::{Lu, Matrix, SolverOptions, TransientSolver};

use crate::{Dtmc, MarkovError, SparseDtmc};

/// Computes `h[i] = P(the chain started at i ever visits `targets`)` for
/// every state.
///
/// States inside `targets` have `h = 1`. States that cannot reach the
/// target set (no directed path) have `h = 0`; the remaining states are
/// solved by first-step analysis `(I − Q) h = r`, which is non-singular
/// exactly because every state kept in the system has a positive-
/// probability escape path into `targets` or the unreachable region.
///
/// # Errors
///
/// * [`MarkovError::InvalidState`] for an out-of-range target index.
/// * [`MarkovError::InvalidPartition`] for an empty target set.
pub fn hitting_probabilities(chain: &Dtmc, targets: &[usize]) -> Result<Vec<f64>, MarkovError> {
    let n = chain.n_states();
    if targets.is_empty() {
        return Err(MarkovError::InvalidPartition(
            "target set must be non-empty".into(),
        ));
    }
    let mut is_target = vec![false; n];
    for &t in targets {
        if t >= n {
            return Err(MarkovError::InvalidState {
                index: t,
                states: n,
            });
        }
        is_target[t] = true;
    }

    // Reverse reachability from the targets over positive-probability
    // edges: states outside this set can never hit.
    let mut can_reach = is_target.clone();
    let mut stack: Vec<usize> = targets.to_vec();
    // Precompute reverse adjacency on demand (n is small in this crate's
    // applications; O(n²) scan is fine and allocation-free).
    while let Some(j) = stack.pop() {
        for (i, reach) in can_reach.iter_mut().enumerate() {
            if !*reach && chain.prob(i, j) > 0.0 {
                *reach = true;
                stack.push(i);
            }
        }
    }

    // Unknowns: states that can reach the targets but are not targets.
    let unknowns: Vec<usize> = (0..n).filter(|&i| can_reach[i] && !is_target[i]).collect();
    let mut h = vec![0.0; n];
    for &t in targets {
        h[t] = 1.0;
    }
    if unknowns.is_empty() {
        return Ok(h);
    }
    let m = unknowns.len();
    let mut pos = vec![usize::MAX; n];
    for (p, &i) in unknowns.iter().enumerate() {
        pos[i] = p;
    }
    // (I - Q) h_u = r with Q the unknown-to-unknown block and
    // r[i] = P(i -> targets).
    let mut a = Matrix::identity(m);
    let mut r = vec![0.0; m];
    for (p, &i) in unknowns.iter().enumerate() {
        for j in 0..n {
            let pij = chain.prob(i, j);
            if pij == 0.0 {
                continue;
            }
            if is_target[j] {
                r[p] += pij;
            } else if pos[j] != usize::MAX {
                a[(p, pos[j])] -= pij;
            }
        }
    }
    let solution = Lu::decompose(&a)?.solve(&r)?;
    for (p, &i) in unknowns.iter().enumerate() {
        h[i] = solution[p].clamp(0.0, 1.0);
    }
    Ok(h)
}

/// Hitting probability from an initial distribution.
///
/// # Errors
///
/// Propagates [`hitting_probabilities`] failures and distribution
/// validation.
pub fn hitting_probability_from(
    chain: &Dtmc,
    alpha: &[f64],
    targets: &[usize],
) -> Result<f64, MarkovError> {
    chain.check_distribution(alpha)?;
    let h = hitting_probabilities(chain, targets)?;
    Ok(alpha.iter().zip(h.iter()).map(|(a, p)| a * p).sum())
}

/// Sparse counterpart of [`hitting_probabilities`]: reverse reachability
/// runs over the transposed CSR adjacency (O(nnz) instead of the dense
/// O(n²) scan) and the first-step system goes through the crossover-aware
/// [`TransientSolver`].
///
/// # Errors
///
/// As [`hitting_probabilities`], plus [`MarkovError::Linalg`] carrying
/// [`pollux_linalg::LinalgError::NoConvergence`] if an iterative solve
/// exhausts its budget.
pub fn hitting_probabilities_sparse(
    chain: &SparseDtmc,
    targets: &[usize],
    options: SolverOptions,
) -> Result<Vec<f64>, MarkovError> {
    let n = chain.n_states();
    if targets.is_empty() {
        return Err(MarkovError::InvalidPartition(
            "target set must be non-empty".into(),
        ));
    }
    let mut is_target = vec![false; n];
    for &t in targets {
        if t >= n {
            return Err(MarkovError::InvalidState {
                index: t,
                states: n,
            });
        }
        is_target[t] = true;
    }

    // Reverse reachability over the transposed adjacency: row j of the
    // transpose lists the predecessors of j.
    let transpose = chain.matrix().transpose();
    let mut can_reach = is_target.clone();
    let mut stack: Vec<usize> = targets.to_vec();
    while let Some(j) = stack.pop() {
        for (i, v) in transpose.row_entries(j) {
            if v > 0.0 && !can_reach[i] {
                can_reach[i] = true;
                stack.push(i);
            }
        }
    }

    let unknowns: Vec<usize> = (0..n).filter(|&i| can_reach[i] && !is_target[i]).collect();
    let mut h = vec![0.0; n];
    for &t in targets {
        h[t] = 1.0;
    }
    if unknowns.is_empty() {
        return Ok(h);
    }
    let m = unknowns.len();
    let mut pos = vec![usize::MAX; n];
    for (p, &i) in unknowns.iter().enumerate() {
        pos[i] = p;
    }
    // (I − Q) h_u = r with Q the unknown-to-unknown block and
    // r[i] = P(i → targets).
    let mut q_triplets = Vec::new();
    let mut r = vec![0.0; m];
    for (p, &i) in unknowns.iter().enumerate() {
        for (j, pij) in chain.successors(i) {
            if pij == 0.0 {
                continue;
            }
            if is_target[j] {
                r[p] += pij;
            } else if pos[j] != usize::MAX {
                q_triplets.push((p, pos[j], pij));
            }
        }
    }
    let q = CsrMatrix::from_triplet_vec(m, m, q_triplets)
        .expect("unknown-block indices are in range by construction");
    let solver = TransientSolver::new(&q, options)?;
    let solution = solver.solve(&r)?;
    for (p, &i) in unknowns.iter().enumerate() {
        h[i] = solution[p].clamp(0.0, 1.0);
    }
    Ok(h)
}

/// Sparse counterpart of [`hitting_probability_from`].
///
/// # Errors
///
/// Propagates [`hitting_probabilities_sparse`] failures and distribution
/// validation.
pub fn hitting_probability_from_sparse(
    chain: &SparseDtmc,
    alpha: &[f64],
    targets: &[usize],
    options: SolverOptions,
) -> Result<f64, MarkovError> {
    chain.check_distribution(alpha)?;
    let h = hitting_probabilities_sparse(chain, targets, options)?;
    Ok(alpha.iter().zip(h.iter()).map(|(a, p)| a * p).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gamblers_ruin() -> Dtmc {
        Dtmc::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0, 0.0],
            &[0.5, 0.0, 0.5, 0.0, 0.0],
            &[0.0, 0.5, 0.0, 0.5, 0.0],
            &[0.0, 0.0, 0.5, 0.0, 0.5],
            &[0.0, 0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap()
    }

    #[test]
    fn ruin_hitting_probabilities_are_linear() {
        // P(hit state 4 from i) = i/4 for the fair walk.
        let chain = gamblers_ruin();
        let h = hitting_probabilities(&chain, &[4]).unwrap();
        for (i, want) in [(0usize, 0.0), (1, 0.25), (2, 0.5), (3, 0.75), (4, 1.0)] {
            assert!((h[i] - want).abs() < 1e-10, "state {i}: {} vs {want}", h[i]);
        }
    }

    #[test]
    fn hitting_a_transient_state() {
        // P(ever visit state 2 from 1) for the fair walk: first-step from 1:
        // h1 = 1/2 + 1/2 * 0 (absorbed at 0) = 1/2.
        let chain = gamblers_ruin();
        let h = hitting_probabilities(&chain, &[2]).unwrap();
        assert!((h[1] - 0.5).abs() < 1e-10);
        assert_eq!(h[2], 1.0);
        assert_eq!(h[0], 0.0); // absorbed, cannot reach
        assert!((h[3] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn distribution_version() {
        let chain = gamblers_ruin();
        let alpha = [0.0, 0.5, 0.0, 0.5, 0.0];
        let p = hitting_probability_from(&chain, &alpha, &[4]).unwrap();
        assert!((p - 0.5).abs() < 1e-10);
    }

    #[test]
    fn multiple_targets_union() {
        let chain = gamblers_ruin();
        let h = hitting_probabilities(&chain, &[0, 4]).unwrap();
        // Absorption in {0,4} is certain from everywhere.
        for (i, &hi) in h.iter().enumerate() {
            assert!((hi - 1.0).abs() < 1e-10, "state {i}");
        }
    }

    #[test]
    fn validation_errors() {
        let chain = gamblers_ruin();
        assert!(hitting_probabilities(&chain, &[]).is_err());
        assert!(hitting_probabilities(&chain, &[9]).is_err());
        assert!(hitting_probability_from(&chain, &[1.0], &[0]).is_err());
    }

    #[test]
    fn sparse_hitting_agrees_with_dense() {
        let chain = gamblers_ruin();
        let sparse = SparseDtmc::from_dense(&chain);
        for targets in [vec![4usize], vec![2], vec![0, 4]] {
            let dense_h = hitting_probabilities(&chain, &targets).unwrap();
            for options in [SolverOptions::force_dense(), SolverOptions::force_sparse()] {
                let sparse_h = hitting_probabilities_sparse(&sparse, &targets, options).unwrap();
                for (a, b) in dense_h.iter().zip(sparse_h.iter()) {
                    assert!((a - b).abs() < 1e-10, "targets {targets:?}: {a} vs {b}");
                }
            }
        }
        let alpha = [0.0, 0.5, 0.0, 0.5, 0.0];
        let a = hitting_probability_from(&chain, &alpha, &[4]).unwrap();
        let b =
            hitting_probability_from_sparse(&sparse, &alpha, &[4], SolverOptions::force_sparse())
                .unwrap();
        assert!((a - b).abs() < 1e-10);
        // Validation mirrors the dense entry point.
        assert!(hitting_probabilities_sparse(&sparse, &[], SolverOptions::default()).is_err());
        assert!(hitting_probabilities_sparse(&sparse, &[9], SolverOptions::default()).is_err());
    }

    #[test]
    fn unreachable_targets_give_zero() {
        // Two disjoint absorbing islands: from the left island the right
        // target is unreachable.
        let chain =
            Dtmc::from_rows(&[&[1.0, 0.0, 0.0], &[0.5, 0.5, 0.0], &[0.0, 0.0, 1.0]]).unwrap();
        let h = hitting_probabilities(&chain, &[2]).unwrap();
        assert_eq!(h[0], 0.0);
        assert_eq!(h[1], 0.0);
        assert_eq!(h[2], 1.0);
    }
}
