use pollux_linalg::{vec_ops, Lu, Matrix};

use crate::{Dtmc, MarkovError};

/// A two-subset partition `(S, P)` of (a subset of) the transient states of
/// a chain, given by global state indices.
///
/// In the DSN'11 model `S` holds the transient *safe* cluster states and
/// `P` the transient *polluted* ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SojournPartition {
    s_states: Vec<usize>,
    p_states: Vec<usize>,
}

impl SojournPartition {
    /// Creates a partition from the two disjoint index sets.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidPartition`] if the sets overlap.
    pub fn new(s_states: Vec<usize>, p_states: Vec<usize>) -> Result<Self, MarkovError> {
        for s in &s_states {
            if p_states.contains(s) {
                return Err(MarkovError::InvalidPartition(format!(
                    "state {s} appears in both subsets"
                )));
            }
        }
        Ok(SojournPartition { s_states, p_states })
    }

    /// Global indices of the `S` subset.
    pub fn s_states(&self) -> &[usize] {
        &self.s_states
    }

    /// Global indices of the `P` subset.
    pub fn p_states(&self) -> &[usize] {
        &self.p_states
    }
}

/// Sojourn-time analysis for a two-subset partition of transient states,
/// following Sericola (1990) and Rubino & Sericola (1989) as used in the
/// DSN'11 paper (Relations (5)–(8)).
///
/// Let `T_S` be the total number of steps the chain spends in `S` before
/// absorption, and `T_{S,n}` the length of its n-th sojourn in `S`
/// (symmetrically for `P`). With
///
/// * `v = α_S + α_P (I − M_P)^{-1} M_PS`,
/// * `R = M_S + M_SP (I − M_P)^{-1} M_PS`,
/// * `G = (I − M_S)^{-1} M_SP (I − M_P)^{-1} M_PS`,
///
/// the quantities computed here are
///
/// * `E(T_S) = v (I − R)^{-1} 1`                        (Relation 5)
/// * `E(T_{S,n}) = v G^{n-1} (I − M_S)^{-1} 1`          (Relation 7)
/// * `P(T_S = 0) = 1 − v·1`, `P(T_S = j) = v R^{j-1} (I − R) 1`
/// * `E[T_S (T_S − 1)] = 2 v R (I − R)^{-2} 1` (for the variance)
///
/// and the mirror-image set for `P` (Relations 6 and 8).
///
/// # Example
///
/// A gambler's-ruin walk on `{0, 1, 2, 3}` with absorbing barriers,
/// partitioned into `S = {1}` and `P = {2}`: started at state 1, the
/// chain spends two steps in expectation in the transient band, split
/// evenly between the two subsets.
///
/// ```
/// use pollux_markov::{Dtmc, SojournAnalysis, SojournPartition};
///
/// # fn main() -> Result<(), pollux_markov::MarkovError> {
/// let chain = Dtmc::from_rows(&[
///     &[1.0, 0.0, 0.0, 0.0],
///     &[0.5, 0.0, 0.5, 0.0],
///     &[0.0, 0.5, 0.0, 0.5],
///     &[0.0, 0.0, 0.0, 1.0],
/// ])?;
/// let partition = SojournPartition::new(vec![1], vec![2])?;
/// let alpha = [0.0, 1.0, 0.0, 0.0];
/// let sojourns = SojournAnalysis::new(&chain, &partition, &alpha)?;
/// let e_s = sojourns.expected_total_s()?;
/// let e_p = sojourns.expected_total_p()?;
/// assert!((e_s + e_p - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SojournAnalysis {
    side_s: SubsetAnalysis,
    side_p: SubsetAnalysis,
}

/// One side (`S` or `P`) of the analysis; the other side is obtained by
/// swapping the roles of the two subsets.
#[derive(Debug, Clone)]
struct SubsetAnalysis {
    /// Entry vector `v` (defective distribution of the first visited state
    /// of the subset).
    v: Vec<f64>,
    /// Censored transition matrix `R` on the subset.
    r: Matrix,
    /// LU factors of `I − R`.
    lu_r: Option<Lu>,
    /// Sojourn transfer matrix `G`.
    g: Matrix,
    /// `(I − M_S)^{-1} 1` (expected length of one sojourn started in each
    /// state of the subset).
    one_sojourn: Vec<f64>,
}

impl SojournAnalysis {
    /// Builds the analysis for `chain`, `partition` and initial
    /// distribution `alpha` (over **all** states of the chain; only the
    /// mass on `S ∪ P` matters, as in the paper).
    ///
    /// # Errors
    ///
    /// * [`MarkovError::InvalidState`] if a partition index is out of range.
    /// * [`MarkovError::InvalidDistribution`] if `alpha` has the wrong
    ///   length, negative mass, or total mass exceeding 1.
    /// * [`MarkovError::Linalg`] if a censored system is singular, which
    ///   happens exactly when a subset contains a closed class (the subset
    ///   must be transient).
    pub fn new(
        chain: &Dtmc,
        partition: &SojournPartition,
        alpha: &[f64],
    ) -> Result<Self, MarkovError> {
        let n = chain.n_states();
        for &i in partition.s_states().iter().chain(partition.p_states()) {
            if i >= n {
                return Err(MarkovError::InvalidState {
                    index: i,
                    states: n,
                });
            }
        }
        if alpha.len() != n {
            return Err(MarkovError::InvalidDistribution(format!(
                "length {} does not match {} states",
                alpha.len(),
                n
            )));
        }
        if alpha.iter().any(|&a| a < -1e-12) {
            return Err(MarkovError::InvalidDistribution(
                "negative probability mass".into(),
            ));
        }
        if alpha.iter().sum::<f64>() > 1.0 + 1e-9 {
            return Err(MarkovError::InvalidDistribution(
                "total mass exceeds 1".into(),
            ));
        }

        let s_idx = partition.s_states();
        let p_idx = partition.p_states();
        let m = chain.matrix();
        let alpha_s = vec_ops::gather(alpha, s_idx);
        let alpha_p = vec_ops::gather(alpha, p_idx);

        let side_s = SubsetAnalysis::build(m, s_idx, p_idx, &alpha_s, &alpha_p)?;
        let side_p = SubsetAnalysis::build(m, p_idx, s_idx, &alpha_p, &alpha_s)?;
        Ok(SojournAnalysis { side_s, side_p })
    }

    /// `E(T_S)` — expected total time in `S` before absorption
    /// (Relation 5).
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures.
    pub fn expected_total_s(&self) -> Result<f64, MarkovError> {
        self.side_s.expected_total()
    }

    /// `E(T_P)` — expected total time in `P` before absorption
    /// (Relation 6).
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures.
    pub fn expected_total_p(&self) -> Result<f64, MarkovError> {
        self.side_p.expected_total()
    }

    /// `E(T_{S,n})` for `n = 1, 2, …, count` (Relation 7).
    pub fn expected_sojourns_s(&self, count: usize) -> Vec<f64> {
        self.side_s.expected_sojourns(count)
    }

    /// `E(T_{P,n})` for `n = 1, 2, …, count` (Relation 8).
    pub fn expected_sojourns_p(&self, count: usize) -> Vec<f64> {
        self.side_p.expected_sojourns(count)
    }

    /// Distribution `P(T_S = j)` for `j = 0, …, j_max`.
    pub fn distribution_s(&self, j_max: usize) -> Vec<f64> {
        self.side_s.distribution(j_max)
    }

    /// Distribution `P(T_P = j)` for `j = 0, …, j_max`.
    pub fn distribution_p(&self, j_max: usize) -> Vec<f64> {
        self.side_p.distribution(j_max)
    }

    /// Variance of `T_S`.
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures.
    pub fn variance_s(&self) -> Result<f64, MarkovError> {
        self.side_s.variance()
    }

    /// Variance of `T_P`.
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures.
    pub fn variance_p(&self) -> Result<f64, MarkovError> {
        self.side_p.variance()
    }
}

impl SubsetAnalysis {
    /// Builds one side of the analysis: `a_idx` is "our" subset, `b_idx`
    /// the other one.
    fn build(
        m: &Matrix,
        a_idx: &[usize],
        b_idx: &[usize],
        alpha_a: &[f64],
        alpha_b: &[f64],
    ) -> Result<Self, MarkovError> {
        let na = a_idx.len();
        let nb = b_idx.len();
        let m_a = m.submatrix(a_idx, a_idx);
        let m_ab = m.submatrix(a_idx, b_idx);
        let m_ba = m.submatrix(b_idx, a_idx);
        let m_b = m.submatrix(b_idx, b_idx);

        let lu_a = Lu::decompose(&(&Matrix::identity(na) - &m_a))?;
        let lu_b = Lu::decompose(&(&Matrix::identity(nb) - &m_b))?;

        // W = (I - M_B)^{-1} M_BA, solved column by column.
        let mut w = Matrix::zeros(nb, na);
        for j in 0..na {
            let col = lu_b.solve(&m_ba.col(j))?;
            for i in 0..nb {
                w[(i, j)] = col[i];
            }
        }

        // v = alpha_A + alpha_B (I - M_B)^{-1} M_BA.
        let z = lu_b.solve_transposed(alpha_b)?;
        let v = vec_ops::add(alpha_a, &m_ba.vec_mul(&z));

        // R = M_A + M_AB W ;  G = (I - M_A)^{-1} (M_AB W).
        let u = m_ab.matmul(&w)?;
        let r = &m_a + &u;
        let mut g = Matrix::zeros(na, na);
        for j in 0..na {
            let col = lu_a.solve(&u.col(j))?;
            for i in 0..na {
                g[(i, j)] = col[i];
            }
        }

        let one_sojourn = lu_a.solve(&vec![1.0; na])?;
        let lu_r = if na > 0 {
            Some(Lu::decompose(&(&Matrix::identity(na) - &r))?)
        } else {
            None
        };
        Ok(SubsetAnalysis {
            v,
            r,
            lu_r,
            g,
            one_sojourn,
        })
    }

    fn expected_total(&self) -> Result<f64, MarkovError> {
        match &self.lu_r {
            None => Ok(0.0),
            Some(lu) => {
                let u = lu.solve(&vec![1.0; self.v.len()])?;
                Ok(vec_ops::dot(&self.v, &u))
            }
        }
    }

    fn expected_sojourns(&self, count: usize) -> Vec<f64> {
        if self.v.is_empty() {
            return vec![0.0; count];
        }
        let mut out = Vec::with_capacity(count);
        let mut u = self.one_sojourn.clone();
        for n in 0..count {
            if n > 0 {
                u = self.g.mul_vec(&u);
            }
            out.push(vec_ops::dot(&self.v, &u));
        }
        out
    }

    fn distribution(&self, j_max: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(j_max + 1);
        let entering: f64 = vec_ops::sum(&self.v);
        out.push((1.0 - entering).max(0.0));
        if self.v.is_empty() {
            out.resize(j_max + 1, 0.0);
            return out;
        }
        // e = (I - R) 1, per-state exit probability of the censored chain.
        let e: Vec<f64> = self
            .r
            .row_sums()
            .iter()
            .map(|s| (1.0 - s).max(0.0))
            .collect();
        let mut cur = self.v.clone();
        for _ in 1..=j_max {
            out.push(vec_ops::dot(&cur, &e));
            cur = self.r.vec_mul(&cur);
        }
        out
    }

    fn variance(&self) -> Result<f64, MarkovError> {
        match &self.lu_r {
            None => Ok(0.0),
            Some(lu) => {
                let ones = vec![1.0; self.v.len()];
                let u1 = lu.solve(&ones)?;
                let u2 = lu.solve(&u1)?;
                let m1 = vec_ops::dot(&self.v, &u1);
                let m2f = 2.0 * vec_ops::dot(&self.v, &self.r.mul_vec(&u2));
                Ok(m2f + m1 - m1 * m1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AbsorbingChain;
    use rand::{rngs::StdRng, SeedableRng};

    /// Gambler's ruin on {0..4}: transient {1,2,3}; S = {1}, P = {2,3}.
    fn setup() -> (Dtmc, SojournPartition, Vec<f64>) {
        let chain = Dtmc::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0, 0.0],
            &[0.5, 0.0, 0.5, 0.0, 0.0],
            &[0.0, 0.5, 0.0, 0.5, 0.0],
            &[0.0, 0.0, 0.5, 0.0, 0.5],
            &[0.0, 0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap();
        let partition = SojournPartition::new(vec![1], vec![2, 3]).unwrap();
        let alpha = vec![0.0, 0.0, 1.0, 0.0, 0.0];
        (chain, partition, alpha)
    }

    #[test]
    fn partition_rejects_overlap() {
        assert!(SojournPartition::new(vec![1, 2], vec![2, 3]).is_err());
    }

    #[test]
    fn totals_split_expected_absorption_time() {
        let (chain, partition, alpha) = setup();
        let soj = SojournAnalysis::new(&chain, &partition, &alpha).unwrap();
        let abs = AbsorbingChain::new(&chain).unwrap();
        let total_s = soj.expected_total_s().unwrap();
        let total_p = soj.expected_total_p().unwrap();
        let want = abs.expected_steps(&alpha).unwrap();
        assert!(
            (total_s + total_p - want).abs() < 1e-10,
            "{total_s} + {total_p} != {want}"
        );
    }

    #[test]
    fn sojourn_series_sums_to_total() {
        let (chain, partition, alpha) = setup();
        let soj = SojournAnalysis::new(&chain, &partition, &alpha).unwrap();
        let series = soj.expected_sojourns_s(200);
        let sum: f64 = series.iter().sum();
        let total = soj.expected_total_s().unwrap();
        assert!((sum - total).abs() < 1e-9, "{sum} vs {total}");
        let series_p = soj.expected_sojourns_p(200);
        let sum_p: f64 = series_p.iter().sum();
        let total_p = soj.expected_total_p().unwrap();
        assert!((sum_p - total_p).abs() < 1e-9);
    }

    #[test]
    fn distribution_is_a_distribution_with_matching_mean() {
        let (chain, partition, alpha) = setup();
        let soj = SojournAnalysis::new(&chain, &partition, &alpha).unwrap();
        let dist = soj.distribution_s(2000);
        let mass: f64 = dist.iter().sum();
        assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
        let mean: f64 = dist.iter().enumerate().map(|(j, p)| j as f64 * p).sum();
        assert!((mean - soj.expected_total_s().unwrap()).abs() < 1e-6);
    }

    #[test]
    fn monte_carlo_agreement() {
        let (chain, partition, alpha) = setup();
        let soj = SojournAnalysis::new(&chain, &partition, &alpha).unwrap();
        let mut rng = StdRng::seed_from_u64(424242);
        let sampler = chain.sampler();
        let reps = 40_000;
        let mut tot_s = 0.0f64;
        let mut tot_p = 0.0f64;
        let mut sq_s = 0.0f64;
        for _ in 0..reps {
            // Start in state 2 (alpha is a point mass there).
            let mut cur = 2usize;
            let mut ts = 0u32;
            let mut tp = 0u32;
            while cur != 0 && cur != 4 {
                if cur == 1 {
                    ts += 1;
                } else {
                    tp += 1;
                }
                cur = sampler.step(cur, &mut rng);
            }
            tot_s += ts as f64;
            tot_p += tp as f64;
            sq_s += (ts as f64) * (ts as f64);
        }
        let emp_s = tot_s / reps as f64;
        let emp_p = tot_p / reps as f64;
        let want_s = soj.expected_total_s().unwrap();
        let want_p = soj.expected_total_p().unwrap();
        assert!((emp_s - want_s).abs() < 0.1, "S: {emp_s} vs {want_s}");
        assert!((emp_p - want_p).abs() < 0.15, "P: {emp_p} vs {want_p}");
        let emp_var = sq_s / reps as f64 - emp_s * emp_s;
        let want_var = soj.variance_s().unwrap();
        assert!(
            (emp_var - want_var).abs() / want_var < 0.1,
            "var: {emp_var} vs {want_var}"
        );
    }

    #[test]
    fn empty_subset_is_degenerate() {
        let (chain, _, alpha) = setup();
        let partition = SojournPartition::new(vec![], vec![1, 2, 3]).unwrap();
        let soj = SojournAnalysis::new(&chain, &partition, &alpha).unwrap();
        assert_eq!(soj.expected_total_s().unwrap(), 0.0);
        assert_eq!(soj.expected_sojourns_s(3), vec![0.0, 0.0, 0.0]);
        let d = soj.distribution_s(3);
        assert_eq!(d[0], 1.0);
        assert_eq!(soj.variance_s().unwrap(), 0.0);
        // And the full mass flows through P.
        let abs = AbsorbingChain::new(&chain).unwrap();
        let want = abs.expected_steps(&alpha).unwrap();
        assert!((soj.expected_total_p().unwrap() - want).abs() < 1e-10);
    }

    #[test]
    fn validation_errors() {
        let (chain, partition, _) = setup();
        assert!(SojournAnalysis::new(&chain, &partition, &[1.0]).is_err());
        let bad = SojournPartition::new(vec![99], vec![]).unwrap();
        assert!(SojournAnalysis::new(&chain, &bad, &[0.0; 5]).is_err());
        let neg = [-0.5, 0.5, 0.5, 0.5, 0.0];
        assert!(SojournAnalysis::new(&chain, &partition, &neg).is_err());
    }

    #[test]
    fn subset_containing_closed_class_is_rejected() {
        let (chain, _, alpha) = setup();
        // State 0 is absorbing; including it makes I - M_S singular.
        let partition = SojournPartition::new(vec![0, 1], vec![2, 3]).unwrap();
        let r = SojournAnalysis::new(&chain, &partition, &alpha);
        assert!(matches!(r, Err(MarkovError::Linalg(_))));
    }

    #[test]
    fn first_sojourn_dominates_for_weakly_coupled_subsets() {
        // Once the walk leaves S = {1} it is more likely absorbed than to
        // come back through P; E(T_{S,1}) should carry most of E(T_S).
        let (chain, partition, alpha) = setup();
        let soj = SojournAnalysis::new(&chain, &partition, &alpha).unwrap();
        let series = soj.expected_sojourns_s(10);
        assert!(series[0] > series[1]);
        assert!(series[1] > series[2]);
    }
}
