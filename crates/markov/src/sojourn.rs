use std::sync::Arc;

use pollux_linalg::sparse::CsrMatrix;
use pollux_linalg::{vec_ops, Lu, Matrix, SolverOptions, TransientSolver};

use crate::sparse_chain::sparse_block;
use crate::{Dtmc, MarkovError, SparseDtmc};

/// A two-subset partition `(S, P)` of (a subset of) the transient states of
/// a chain, given by global state indices.
///
/// In the DSN'11 model `S` holds the transient *safe* cluster states and
/// `P` the transient *polluted* ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SojournPartition {
    s_states: Vec<usize>,
    p_states: Vec<usize>,
}

impl SojournPartition {
    /// Creates a partition from the two disjoint index sets.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidPartition`] if the sets overlap.
    pub fn new(s_states: Vec<usize>, p_states: Vec<usize>) -> Result<Self, MarkovError> {
        for s in &s_states {
            if p_states.contains(s) {
                return Err(MarkovError::InvalidPartition(format!(
                    "state {s} appears in both subsets"
                )));
            }
        }
        Ok(SojournPartition { s_states, p_states })
    }

    /// Global indices of the `S` subset.
    pub fn s_states(&self) -> &[usize] {
        &self.s_states
    }

    /// Global indices of the `P` subset.
    pub fn p_states(&self) -> &[usize] {
        &self.p_states
    }
}

/// The solver bundle of a sojourn partition, built **once** and shared by
/// every downstream analysis stage.
///
/// A sparse [`SojournAnalysis`] needs factorizations/setups of three
/// censored blocks — the full transient block `T = S ∪ P`, the `S` block
/// and the `P` block — and so do its sibling stages (absorption metrics
/// reuse `T`, hitting probabilities reuse `S`). Historically each stage
/// set its own solvers up, factoring the `T` block multiple times per
/// analysis; this bundle hoists the construction so each block is set up
/// exactly once and handed around by [`Arc`].
///
/// Index sets are stored sorted ascending (the CSR block order).
#[derive(Debug, Clone)]
pub struct PartitionSolvers {
    options: SolverOptions,
    t_idx: Vec<usize>,
    s_idx: Vec<usize>,
    p_idx: Vec<usize>,
    solver_t: Arc<TransientSolver>,
    solver_s: Arc<TransientSolver>,
    solver_p: Arc<TransientSolver>,
    m_s: Arc<CsrMatrix>,
    m_sp: Arc<CsrMatrix>,
    m_ps: Arc<CsrMatrix>,
    m_p: Arc<CsrMatrix>,
}

impl PartitionSolvers {
    /// Extracts the censored blocks of `partition` from `chain` and sets
    /// up the three solvers.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::InvalidState`] for an out-of-range partition
    ///   index.
    /// * [`MarkovError::Linalg`] when a block is singular (the subset
    ///   contains a closed class) or an iterative setup fails.
    pub fn build(
        chain: &SparseDtmc,
        partition: &SojournPartition,
        options: SolverOptions,
    ) -> Result<Self, MarkovError> {
        let n = chain.n_states();
        for &i in partition.s_states().iter().chain(partition.p_states()) {
            if i >= n {
                return Err(MarkovError::InvalidState {
                    index: i,
                    states: n,
                });
            }
        }
        let mut s_idx = partition.s_states().to_vec();
        let mut p_idx = partition.p_states().to_vec();
        s_idx.sort_unstable();
        p_idx.sort_unstable();
        let mut t_idx: Vec<usize> = s_idx.iter().chain(p_idx.iter()).copied().collect();
        t_idx.sort_unstable();

        let p = chain.matrix();
        let q_t = sparse_block(p, &t_idx, &t_idx);
        let solver_t = Arc::new(TransientSolver::new(&q_t, options)?);
        let m_s = Arc::new(sparse_block(p, &s_idx, &s_idx));
        let m_sp = Arc::new(sparse_block(p, &s_idx, &p_idx));
        let m_ps = Arc::new(sparse_block(p, &p_idx, &s_idx));
        let m_p = Arc::new(sparse_block(p, &p_idx, &p_idx));
        let solver_s = Arc::new(TransientSolver::new(&m_s, options)?);
        let solver_p = Arc::new(TransientSolver::new(&m_p, options)?);
        Ok(PartitionSolvers {
            options,
            t_idx,
            s_idx,
            p_idx,
            solver_t,
            solver_s,
            solver_p,
            m_s,
            m_sp,
            m_ps,
            m_p,
        })
    }

    /// The options the solvers were built with.
    pub fn options(&self) -> SolverOptions {
        self.options
    }

    /// Sorted global indices of `T = S ∪ P`.
    pub fn t_indices(&self) -> &[usize] {
        &self.t_idx
    }

    /// Sorted global indices of `S`.
    pub fn s_indices(&self) -> &[usize] {
        &self.s_idx
    }

    /// Sorted global indices of `P`.
    pub fn p_indices(&self) -> &[usize] {
        &self.p_idx
    }

    /// Solver for `I − Q_T` (the full transient block).
    pub fn solver_t(&self) -> &Arc<TransientSolver> {
        &self.solver_t
    }

    /// Solver for `I − M_S`.
    pub fn solver_s(&self) -> &Arc<TransientSolver> {
        &self.solver_s
    }

    /// Solver for `I − M_P`.
    pub fn solver_p(&self) -> &Arc<TransientSolver> {
        &self.solver_p
    }
}

/// Sojourn-time analysis for a two-subset partition of transient states,
/// following Sericola (1990) and Rubino & Sericola (1989) as used in the
/// DSN'11 paper (Relations (5)–(8)).
///
/// Let `T_S` be the total number of steps the chain spends in `S` before
/// absorption, and `T_{S,n}` the length of its n-th sojourn in `S`
/// (symmetrically for `P`). With
///
/// * `v = α_S + α_P (I − M_P)^{-1} M_PS`,
/// * `R = M_S + M_SP (I − M_P)^{-1} M_PS`,
/// * `G = (I − M_S)^{-1} M_SP (I − M_P)^{-1} M_PS`,
///
/// the quantities computed here are
///
/// * `E(T_S) = v (I − R)^{-1} 1`                        (Relation 5)
/// * `E(T_{S,n}) = v G^{n-1} (I − M_S)^{-1} 1`          (Relation 7)
/// * `P(T_S = 0) = 1 − v·1`, `P(T_S = j) = v R^{j-1} (I − R) 1`
/// * `E[T_S (T_S − 1)] = 2 v R (I − R)^{-2} 1` (for the variance)
///
/// and the mirror-image set for `P` (Relations 6 and 8).
///
/// # Example
///
/// A gambler's-ruin walk on `{0, 1, 2, 3}` with absorbing barriers,
/// partitioned into `S = {1}` and `P = {2}`: started at state 1, the
/// chain spends two steps in expectation in the transient band, split
/// evenly between the two subsets.
///
/// ```
/// use pollux_markov::{Dtmc, SojournAnalysis, SojournPartition};
///
/// # fn main() -> Result<(), pollux_markov::MarkovError> {
/// let chain = Dtmc::from_rows(&[
///     &[1.0, 0.0, 0.0, 0.0],
///     &[0.5, 0.0, 0.5, 0.0],
///     &[0.0, 0.5, 0.0, 0.5],
///     &[0.0, 0.0, 0.0, 1.0],
/// ])?;
/// let partition = SojournPartition::new(vec![1], vec![2])?;
/// let alpha = [0.0, 1.0, 0.0, 0.0];
/// let sojourns = SojournAnalysis::new(&chain, &partition, &alpha)?;
/// let e_s = sojourns.expected_total_s()?;
/// let e_p = sojourns.expected_total_p()?;
/// assert!((e_s + e_p - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SojournAnalysis {
    side_s: Side,
    side_p: Side,
}

/// Representation of one side of the analysis.
#[derive(Debug, Clone)]
enum Side {
    /// Dense censored matrices and LU factors (the historical path).
    Dense(SubsetAnalysis),
    /// Operator-form sparse path: `R` and `G` are never materialized,
    /// every application is a chain of CSR products and block solves.
    Sparse(Box<SparseSubset>),
}

impl Side {
    fn expected_total(&self) -> Result<f64, MarkovError> {
        match self {
            Side::Dense(s) => s.expected_total(),
            Side::Sparse(s) => Ok(s.expected_total),
        }
    }

    fn expected_sojourns(&self, count: usize) -> Vec<f64> {
        match self {
            Side::Dense(s) => s.expected_sojourns(count),
            Side::Sparse(s) => s.expected_sojourns(count),
        }
    }

    fn distribution(&self, j_max: usize) -> Vec<f64> {
        match self {
            Side::Dense(s) => s.distribution(j_max),
            Side::Sparse(s) => s.distribution(j_max),
        }
    }

    fn variance(&self) -> Result<f64, MarkovError> {
        match self {
            Side::Dense(s) => s.variance(),
            Side::Sparse(s) => Ok(s.variance),
        }
    }
}

/// One side (`S` or `P`) of the analysis; the other side is obtained by
/// swapping the roles of the two subsets.
#[derive(Debug, Clone)]
struct SubsetAnalysis {
    /// Entry vector `v` (defective distribution of the first visited state
    /// of the subset).
    v: Vec<f64>,
    /// Censored transition matrix `R` on the subset.
    r: Matrix,
    /// LU factors of `I − R`.
    lu_r: Option<Lu>,
    /// Sojourn transfer matrix `G`.
    g: Matrix,
    /// `(I − M_S)^{-1} 1` (expected length of one sojourn started in each
    /// state of the subset).
    one_sojourn: Vec<f64>,
}

impl SojournAnalysis {
    /// Builds the analysis for `chain`, `partition` and initial
    /// distribution `alpha` (over **all** states of the chain; only the
    /// mass on `S ∪ P` matters, as in the paper).
    ///
    /// # Errors
    ///
    /// * [`MarkovError::InvalidState`] if a partition index is out of range.
    /// * [`MarkovError::InvalidDistribution`] if `alpha` has the wrong
    ///   length, negative mass, or total mass exceeding 1.
    /// * [`MarkovError::Linalg`] if a censored system is singular, which
    ///   happens exactly when a subset contains a closed class (the subset
    ///   must be transient).
    pub fn new(
        chain: &Dtmc,
        partition: &SojournPartition,
        alpha: &[f64],
    ) -> Result<Self, MarkovError> {
        let n = chain.n_states();
        for &i in partition.s_states().iter().chain(partition.p_states()) {
            if i >= n {
                return Err(MarkovError::InvalidState {
                    index: i,
                    states: n,
                });
            }
        }
        if alpha.len() != n {
            return Err(MarkovError::InvalidDistribution(format!(
                "length {} does not match {} states",
                alpha.len(),
                n
            )));
        }
        if alpha.iter().any(|&a| a < -1e-12) {
            return Err(MarkovError::InvalidDistribution(
                "negative probability mass".into(),
            ));
        }
        if alpha.iter().sum::<f64>() > 1.0 + 1e-9 {
            return Err(MarkovError::InvalidDistribution(
                "total mass exceeds 1".into(),
            ));
        }

        let s_idx = partition.s_states();
        let p_idx = partition.p_states();
        let m = chain.matrix();
        let alpha_s = vec_ops::gather(alpha, s_idx);
        let alpha_p = vec_ops::gather(alpha, p_idx);

        let side_s = Side::Dense(SubsetAnalysis::build(m, s_idx, p_idx, &alpha_s, &alpha_p)?);
        let side_p = Side::Dense(SubsetAnalysis::build(m, p_idx, s_idx, &alpha_p, &alpha_s)?);
        Ok(SojournAnalysis { side_s, side_p })
    }

    /// Builds the analysis on a sparse chain without ever materializing
    /// the censored matrices `R` and `G`: every quantity is evaluated in
    /// operator form through CSR blocks and the crossover-aware
    /// [`TransientSolver`] (dense LU below `options.crossover` unknowns,
    /// SOR sweeps in O(nnz) above).
    ///
    /// The totals and variances use the full-transient-block identities
    ///
    /// * `E(T_S) = α_T N 1_S` with `N = (I − Q_T)⁻¹` over `T = S ∪ P`,
    /// * `E[T_S (T_S − 1)] = 2 (α_T N) I_S (N − I) 1_S`,
    ///
    /// which are algebraically equal to Relations (5)–(6) but need two
    /// sparse solves instead of a censored-matrix inverse. Sojourn series
    /// and distributions iterate `G`- and `R`-applications as solve
    /// chains.
    ///
    /// # Errors
    ///
    /// As [`SojournAnalysis::new`], plus [`MarkovError::Linalg`] carrying
    /// [`pollux_linalg::LinalgError::NoConvergence`] when an iterative
    /// solve exhausts its budget during construction. The series /
    /// distribution query methods additionally solve per call on this
    /// path and *panic* on budget exhaustion there (see their `# Panics`
    /// sections) — construction already exercises the same blocks, so a
    /// construction success makes that remote.
    pub fn new_sparse(
        chain: &SparseDtmc,
        partition: &SojournPartition,
        alpha: &[f64],
        options: SolverOptions,
    ) -> Result<Self, MarkovError> {
        let solvers = PartitionSolvers::build(chain, partition, options)?;
        Self::new_sparse_shared(chain, alpha, &solvers)
    }

    /// As [`SojournAnalysis::new_sparse`] with a prebuilt
    /// [`PartitionSolvers`] bundle — sibling stages (absorption, hitting)
    /// reuse the same factorizations instead of setting the blocks up
    /// again.
    ///
    /// # Errors
    ///
    /// As [`SojournAnalysis::new_sparse`] (the bundle already validated
    /// the partition against the chain).
    pub fn new_sparse_shared(
        chain: &SparseDtmc,
        alpha: &[f64],
        solvers: &PartitionSolvers,
    ) -> Result<Self, MarkovError> {
        let n = chain.n_states();
        if alpha.len() != n {
            return Err(MarkovError::InvalidDistribution(format!(
                "length {} does not match {} states",
                alpha.len(),
                n
            )));
        }
        if alpha.iter().any(|&a| a < -1e-12) {
            return Err(MarkovError::InvalidDistribution(
                "negative probability mass".into(),
            ));
        }
        if alpha.iter().sum::<f64>() > 1.0 + 1e-9 {
            return Err(MarkovError::InvalidDistribution(
                "total mass exceeds 1".into(),
            ));
        }

        let t_idx = solvers.t_indices();
        let s_idx = solvers.s_indices();
        let p_idx = solvers.p_indices();
        let alpha_t = vec_ops::gather(alpha, t_idx);
        // α_T N, shared by both sides' variance computation.
        let weights = solvers.solver_t().solve_transposed(&alpha_t)?;

        let mut t_pos = vec![usize::MAX; n];
        for (pos, &g) in t_idx.iter().enumerate() {
            t_pos[g] = pos;
        }
        let mask_s: Vec<bool> = {
            let mut mask = vec![false; t_idx.len()];
            for &g in s_idx {
                mask[t_pos[g]] = true;
            }
            mask
        };
        let mask_p: Vec<bool> = mask_s.iter().map(|&b| !b).collect();

        // Side S censors through P and vice versa: the four censored
        // blocks and both subset solvers come from the bundle, swapped.
        let side_s = SparseSubset::build(
            s_idx,
            p_idx,
            alpha,
            &alpha_t,
            &mask_s,
            Arc::clone(&solvers.m_s),
            Arc::clone(&solvers.m_sp),
            Arc::clone(&solvers.m_ps),
            Arc::clone(solvers.solver_s()),
            Arc::clone(solvers.solver_p()),
            solvers.solver_t(),
            &weights,
        )?;
        let side_p = SparseSubset::build(
            p_idx,
            s_idx,
            alpha,
            &alpha_t,
            &mask_p,
            Arc::clone(&solvers.m_p),
            Arc::clone(&solvers.m_ps),
            Arc::clone(&solvers.m_sp),
            Arc::clone(solvers.solver_p()),
            Arc::clone(solvers.solver_s()),
            solvers.solver_t(),
            &weights,
        )?;
        Ok(SojournAnalysis {
            side_s: Side::Sparse(Box::new(side_s)),
            side_p: Side::Sparse(Box::new(side_p)),
        })
    }

    /// `E(T_S)` — expected total time in `S` before absorption
    /// (Relation 5).
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures.
    pub fn expected_total_s(&self) -> Result<f64, MarkovError> {
        self.side_s.expected_total()
    }

    /// `E(T_P)` — expected total time in `P` before absorption
    /// (Relation 6).
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures.
    pub fn expected_total_p(&self) -> Result<f64, MarkovError> {
        self.side_p.expected_total()
    }

    /// `E(T_{S,n})` for `n = 1, 2, …, count` (Relation 7).
    ///
    /// # Panics
    ///
    /// On a [`SojournAnalysis::new_sparse`] analysis whose blocks sit on
    /// the iterative path, panics in the (remote — three solver fallbacks
    /// deep) event that a per-call censored-block solve exhausts its
    /// budget. The dense path never panics.
    pub fn expected_sojourns_s(&self, count: usize) -> Vec<f64> {
        self.side_s.expected_sojourns(count)
    }

    /// `E(T_{P,n})` for `n = 1, 2, …, count` (Relation 8).
    ///
    /// # Panics
    ///
    /// As [`SojournAnalysis::expected_sojourns_s`].
    pub fn expected_sojourns_p(&self, count: usize) -> Vec<f64> {
        self.side_p.expected_sojourns(count)
    }

    /// Distribution `P(T_S = j)` for `j = 0, …, j_max`.
    ///
    /// # Panics
    ///
    /// As [`SojournAnalysis::expected_sojourns_s`].
    pub fn distribution_s(&self, j_max: usize) -> Vec<f64> {
        self.side_s.distribution(j_max)
    }

    /// Distribution `P(T_P = j)` for `j = 0, …, j_max`.
    ///
    /// # Panics
    ///
    /// As [`SojournAnalysis::expected_sojourns_s`].
    pub fn distribution_p(&self, j_max: usize) -> Vec<f64> {
        self.side_p.distribution(j_max)
    }

    /// Variance of `T_S`.
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures.
    pub fn variance_s(&self) -> Result<f64, MarkovError> {
        self.side_s.variance()
    }

    /// Variance of `T_P`.
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures.
    pub fn variance_p(&self) -> Result<f64, MarkovError> {
        self.side_p.variance()
    }
}

impl SubsetAnalysis {
    /// Builds one side of the analysis: `a_idx` is "our" subset, `b_idx`
    /// the other one.
    fn build(
        m: &Matrix,
        a_idx: &[usize],
        b_idx: &[usize],
        alpha_a: &[f64],
        alpha_b: &[f64],
    ) -> Result<Self, MarkovError> {
        let na = a_idx.len();
        let nb = b_idx.len();
        let m_a = m.submatrix(a_idx, a_idx);
        let m_ab = m.submatrix(a_idx, b_idx);
        let m_ba = m.submatrix(b_idx, a_idx);
        let m_b = m.submatrix(b_idx, b_idx);

        let lu_a = Lu::decompose(&(&Matrix::identity(na) - &m_a))?;
        let lu_b = Lu::decompose(&(&Matrix::identity(nb) - &m_b))?;

        // W = (I - M_B)^{-1} M_BA, solved column by column.
        let mut w = Matrix::zeros(nb, na);
        for j in 0..na {
            let col = lu_b.solve(&m_ba.col(j))?;
            for i in 0..nb {
                w[(i, j)] = col[i];
            }
        }

        // v = alpha_A + alpha_B (I - M_B)^{-1} M_BA.
        let z = lu_b.solve_transposed(alpha_b)?;
        let v = vec_ops::add(alpha_a, &m_ba.vec_mul(&z));

        // R = M_A + M_AB W ;  G = (I - M_A)^{-1} (M_AB W).
        let u = m_ab.matmul(&w)?;
        let r = &m_a + &u;
        let mut g = Matrix::zeros(na, na);
        for j in 0..na {
            let col = lu_a.solve(&u.col(j))?;
            for i in 0..na {
                g[(i, j)] = col[i];
            }
        }

        let one_sojourn = lu_a.solve(&vec![1.0; na])?;
        let lu_r = if na > 0 {
            Some(Lu::decompose(&(&Matrix::identity(na) - &r))?)
        } else {
            None
        };
        Ok(SubsetAnalysis {
            v,
            r,
            lu_r,
            g,
            one_sojourn,
        })
    }

    fn expected_total(&self) -> Result<f64, MarkovError> {
        match &self.lu_r {
            None => Ok(0.0),
            Some(lu) => {
                let u = lu.solve(&vec![1.0; self.v.len()])?;
                Ok(vec_ops::dot(&self.v, &u))
            }
        }
    }

    fn expected_sojourns(&self, count: usize) -> Vec<f64> {
        if self.v.is_empty() {
            return vec![0.0; count];
        }
        let mut out = Vec::with_capacity(count);
        let mut u = self.one_sojourn.clone();
        for n in 0..count {
            if n > 0 {
                u = self.g.mul_vec(&u);
            }
            out.push(vec_ops::dot(&self.v, &u));
        }
        out
    }

    fn distribution(&self, j_max: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(j_max + 1);
        let entering: f64 = vec_ops::sum(&self.v);
        out.push((1.0 - entering).max(0.0));
        if self.v.is_empty() {
            out.resize(j_max + 1, 0.0);
            return out;
        }
        // e = (I - R) 1, per-state exit probability of the censored chain.
        let e: Vec<f64> = self
            .r
            .row_sums()
            .iter()
            .map(|s| (1.0 - s).max(0.0))
            .collect();
        let mut cur = self.v.clone();
        for _ in 1..=j_max {
            out.push(vec_ops::dot(&cur, &e));
            cur = self.r.vec_mul(&cur);
        }
        out
    }

    fn variance(&self) -> Result<f64, MarkovError> {
        match &self.lu_r {
            None => Ok(0.0),
            Some(lu) => {
                let ones = vec![1.0; self.v.len()];
                let u1 = lu.solve(&ones)?;
                let u2 = lu.solve(&u1)?;
                let m1 = vec_ops::dot(&self.v, &u1);
                let m2f = 2.0 * vec_ops::dot(&self.v, &self.r.mul_vec(&u2));
                Ok(m2f + m1 - m1 * m1)
            }
        }
    }
}

/// One side of the sparse analysis. `A` is "our" subset, `B` the other;
/// the censored operators are applied as solve chains:
///
/// * `R y   = M_A y + M_AB (I − M_B)⁻¹ M_BA y`
/// * `G y   = (I − M_A)⁻¹ M_AB (I − M_B)⁻¹ M_BA y`
/// * `x R   = (x M_A) + ((x M_AB) (I − M_B)⁻¹) M_BA`
#[derive(Debug, Clone)]
struct SparseSubset {
    /// Entry vector `v` over `A` (defective distribution of the first
    /// visited state of the subset).
    v: Vec<f64>,
    /// `E(T_A)`, precomputed via `α_T N 1_A`.
    expected_total: f64,
    /// `Var(T_A)`, precomputed via the full-block identity.
    variance: f64,
    /// CSR censored blocks, shared with the partition's solver bundle
    /// (and the mirror side, roles swapped).
    m_a: Arc<CsrMatrix>,
    m_ab: Arc<CsrMatrix>,
    m_ba: Arc<CsrMatrix>,
    /// Solvers for `I − M_A` and `I − M_B`, shared likewise.
    solver_a: Arc<TransientSolver>,
    solver_b: Arc<TransientSolver>,
    /// `(I − M_A)⁻¹ 1` — expected length of one sojourn per entry state.
    one_sojourn: Vec<f64>,
    /// `(I − R) 1` — per-state exit probability of the censored chain.
    r_exit: Vec<f64>,
}

impl SparseSubset {
    /// Builds one side from the shared blocks and solvers. `alpha_t`,
    /// `mask_a` and the shared full-block solver / weight vector live
    /// over `T = A ∪ B` in sorted order.
    #[allow(clippy::too_many_arguments)]
    fn build(
        a_idx: &[usize],
        b_idx: &[usize],
        alpha: &[f64],
        alpha_t: &[f64],
        mask_a: &[bool],
        m_a: Arc<CsrMatrix>,
        m_ab: Arc<CsrMatrix>,
        m_ba: Arc<CsrMatrix>,
        solver_a: Arc<TransientSolver>,
        solver_b: Arc<TransientSolver>,
        solver_t: &TransientSolver,
        weights: &[f64],
    ) -> Result<Self, MarkovError> {
        let na = a_idx.len();
        let alpha_a = vec_ops::gather(alpha, a_idx);
        let alpha_b = vec_ops::gather(alpha, b_idx);

        // v = α_A + α_B (I − M_B)⁻¹ M_BA.
        let z = solver_b.solve_transposed(&alpha_b)?;
        let v = vec_ops::add(&alpha_a, &m_ba.vec_mul(&z));

        let one_sojourn = solver_a.solve(&vec![1.0; na])?;

        // (I − R) 1 = 1 − M_A 1 − M_AB (I − M_B)⁻¹ M_BA 1.
        let w1 = solver_b.solve(&m_ba.mul_vec(&vec![1.0; na]))?;
        let mut r_one = m_a.mul_vec(&vec![1.0; na]);
        m_ab.mul_add(&w1, &mut r_one);
        let r_exit: Vec<f64> = r_one.iter().map(|s| (1.0 - s).max(0.0)).collect();

        // E(T_A) = α_T N 1_A and the factorial moment
        // E[T_A (T_A − 1)] = 2 Σ_{i ∈ A} (α_T N)_i ((N 1_A)_i − 1).
        let ind_a: Vec<f64> = mask_a.iter().map(|&m| if m { 1.0 } else { 0.0 }).collect();
        let occupancy = solver_t.solve(&ind_a)?;
        let expected_total = vec_ops::dot(alpha_t, &occupancy);
        let mut factorial = 0.0;
        for (i, &in_a) in mask_a.iter().enumerate() {
            if in_a {
                factorial += weights[i] * (occupancy[i] - 1.0);
            }
        }
        let variance = if na == 0 {
            0.0
        } else {
            2.0 * factorial + expected_total - expected_total * expected_total
        };

        Ok(SparseSubset {
            v,
            expected_total,
            variance,
            m_a,
            m_ab,
            m_ba,
            solver_a,
            solver_b,
            one_sojourn,
            r_exit,
        })
    }

    /// `E(T_{A,n})` for `n = 1..=count`: iterate `u ← G u` starting from
    /// `(I − M_A)⁻¹ 1` and dot with `v` (Relations 7–8).
    fn expected_sojourns(&self, count: usize) -> Vec<f64> {
        if self.v.is_empty() {
            return vec![0.0; count];
        }
        let mut out = Vec::with_capacity(count);
        let mut u = self.one_sojourn.clone();
        for n in 0..count {
            if n > 0 {
                u = self.apply_g(&u);
            }
            out.push(vec_ops::dot(&self.v, &u));
        }
        out
    }

    /// `P(T_A = j)` for `j = 0..=j_max`: iterate the row vector `v Rʲ⁻¹`
    /// and dot with the exit probabilities.
    fn distribution(&self, j_max: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(j_max + 1);
        let entering: f64 = vec_ops::sum(&self.v);
        out.push((1.0 - entering).max(0.0));
        if self.v.is_empty() {
            out.resize(j_max + 1, 0.0);
            return out;
        }
        let mut cur = self.v.clone();
        for _ in 1..=j_max {
            out.push(vec_ops::dot(&cur, &self.r_exit));
            cur = self.apply_r_left(&cur);
        }
        out
    }

    /// `G u` as a solve chain (no materialized `G`).
    fn apply_g(&self, u: &[f64]) -> Vec<f64> {
        let through_b = self
            .solver_b
            .solve(&self.m_ba.mul_vec(u))
            .expect("censored block solves succeed after construction");
        self.solver_a
            .solve(&self.m_ab.mul_vec(&through_b))
            .expect("censored block solves succeed after construction")
    }

    /// `x R` (row vector) as a solve chain (no materialized `R`).
    fn apply_r_left(&self, x: &[f64]) -> Vec<f64> {
        let mut out = self.m_a.vec_mul(x);
        let through_b = self
            .solver_b
            .solve_transposed(&self.m_ab.vec_mul(x))
            .expect("censored block solves succeed after construction");
        let back = self.m_ba.vec_mul(&through_b);
        for (o, b) in out.iter_mut().zip(back.iter()) {
            *o += b;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AbsorbingChain;
    use rand::{rngs::StdRng, SeedableRng};

    /// Gambler's ruin on {0..4}: transient {1,2,3}; S = {1}, P = {2,3}.
    fn setup() -> (Dtmc, SojournPartition, Vec<f64>) {
        let chain = Dtmc::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0, 0.0],
            &[0.5, 0.0, 0.5, 0.0, 0.0],
            &[0.0, 0.5, 0.0, 0.5, 0.0],
            &[0.0, 0.0, 0.5, 0.0, 0.5],
            &[0.0, 0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap();
        let partition = SojournPartition::new(vec![1], vec![2, 3]).unwrap();
        let alpha = vec![0.0, 0.0, 1.0, 0.0, 0.0];
        (chain, partition, alpha)
    }

    #[test]
    fn partition_rejects_overlap() {
        assert!(SojournPartition::new(vec![1, 2], vec![2, 3]).is_err());
    }

    #[test]
    fn totals_split_expected_absorption_time() {
        let (chain, partition, alpha) = setup();
        let soj = SojournAnalysis::new(&chain, &partition, &alpha).unwrap();
        let abs = AbsorbingChain::new(&chain).unwrap();
        let total_s = soj.expected_total_s().unwrap();
        let total_p = soj.expected_total_p().unwrap();
        let want = abs.expected_steps(&alpha).unwrap();
        assert!(
            (total_s + total_p - want).abs() < 1e-10,
            "{total_s} + {total_p} != {want}"
        );
    }

    #[test]
    fn sojourn_series_sums_to_total() {
        let (chain, partition, alpha) = setup();
        let soj = SojournAnalysis::new(&chain, &partition, &alpha).unwrap();
        let series = soj.expected_sojourns_s(200);
        let sum: f64 = series.iter().sum();
        let total = soj.expected_total_s().unwrap();
        assert!((sum - total).abs() < 1e-9, "{sum} vs {total}");
        let series_p = soj.expected_sojourns_p(200);
        let sum_p: f64 = series_p.iter().sum();
        let total_p = soj.expected_total_p().unwrap();
        assert!((sum_p - total_p).abs() < 1e-9);
    }

    #[test]
    fn distribution_is_a_distribution_with_matching_mean() {
        let (chain, partition, alpha) = setup();
        let soj = SojournAnalysis::new(&chain, &partition, &alpha).unwrap();
        let dist = soj.distribution_s(2000);
        let mass: f64 = dist.iter().sum();
        assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
        let mean: f64 = dist.iter().enumerate().map(|(j, p)| j as f64 * p).sum();
        assert!((mean - soj.expected_total_s().unwrap()).abs() < 1e-6);
    }

    #[test]
    fn monte_carlo_agreement() {
        let (chain, partition, alpha) = setup();
        let soj = SojournAnalysis::new(&chain, &partition, &alpha).unwrap();
        let mut rng = StdRng::seed_from_u64(424242);
        let sampler = chain.sampler();
        let reps = 40_000;
        let mut tot_s = 0.0f64;
        let mut tot_p = 0.0f64;
        let mut sq_s = 0.0f64;
        for _ in 0..reps {
            // Start in state 2 (alpha is a point mass there).
            let mut cur = 2usize;
            let mut ts = 0u32;
            let mut tp = 0u32;
            while cur != 0 && cur != 4 {
                if cur == 1 {
                    ts += 1;
                } else {
                    tp += 1;
                }
                cur = sampler.step(cur, &mut rng);
            }
            tot_s += ts as f64;
            tot_p += tp as f64;
            sq_s += (ts as f64) * (ts as f64);
        }
        let emp_s = tot_s / reps as f64;
        let emp_p = tot_p / reps as f64;
        let want_s = soj.expected_total_s().unwrap();
        let want_p = soj.expected_total_p().unwrap();
        assert!((emp_s - want_s).abs() < 0.1, "S: {emp_s} vs {want_s}");
        assert!((emp_p - want_p).abs() < 0.15, "P: {emp_p} vs {want_p}");
        let emp_var = sq_s / reps as f64 - emp_s * emp_s;
        let want_var = soj.variance_s().unwrap();
        assert!(
            (emp_var - want_var).abs() / want_var < 0.1,
            "var: {emp_var} vs {want_var}"
        );
    }

    #[test]
    fn empty_subset_is_degenerate() {
        let (chain, _, alpha) = setup();
        let partition = SojournPartition::new(vec![], vec![1, 2, 3]).unwrap();
        let soj = SojournAnalysis::new(&chain, &partition, &alpha).unwrap();
        assert_eq!(soj.expected_total_s().unwrap(), 0.0);
        assert_eq!(soj.expected_sojourns_s(3), vec![0.0, 0.0, 0.0]);
        let d = soj.distribution_s(3);
        assert_eq!(d[0], 1.0);
        assert_eq!(soj.variance_s().unwrap(), 0.0);
        // And the full mass flows through P.
        let abs = AbsorbingChain::new(&chain).unwrap();
        let want = abs.expected_steps(&alpha).unwrap();
        assert!((soj.expected_total_p().unwrap() - want).abs() < 1e-10);
    }

    #[test]
    fn validation_errors() {
        let (chain, partition, _) = setup();
        assert!(SojournAnalysis::new(&chain, &partition, &[1.0]).is_err());
        let bad = SojournPartition::new(vec![99], vec![]).unwrap();
        assert!(SojournAnalysis::new(&chain, &bad, &[0.0; 5]).is_err());
        let neg = [-0.5, 0.5, 0.5, 0.5, 0.0];
        assert!(SojournAnalysis::new(&chain, &partition, &neg).is_err());
    }

    #[test]
    fn subset_containing_closed_class_is_rejected() {
        let (chain, _, alpha) = setup();
        // State 0 is absorbing; including it makes I - M_S singular.
        let partition = SojournPartition::new(vec![0, 1], vec![2, 3]).unwrap();
        let r = SojournAnalysis::new(&chain, &partition, &alpha);
        assert!(matches!(r, Err(MarkovError::Linalg(_))));
    }

    #[test]
    fn sparse_constructor_agrees_with_dense() {
        let (chain, partition, alpha) = setup();
        let dense = SojournAnalysis::new(&chain, &partition, &alpha).unwrap();
        let sparse_chain = SparseDtmc::from_dense(&chain);
        for options in [SolverOptions::force_dense(), SolverOptions::force_sparse()] {
            let sparse =
                SojournAnalysis::new_sparse(&sparse_chain, &partition, &alpha, options).unwrap();
            let pairs = [
                (
                    dense.expected_total_s().unwrap(),
                    sparse.expected_total_s().unwrap(),
                ),
                (
                    dense.expected_total_p().unwrap(),
                    sparse.expected_total_p().unwrap(),
                ),
                (dense.variance_s().unwrap(), sparse.variance_s().unwrap()),
                (dense.variance_p().unwrap(), sparse.variance_p().unwrap()),
            ];
            for (a, b) in pairs {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
            for (a, b) in dense
                .expected_sojourns_s(20)
                .iter()
                .zip(sparse.expected_sojourns_s(20).iter())
            {
                assert!((a - b).abs() < 1e-9, "sojourn series: {a} vs {b}");
            }
            for (a, b) in dense
                .distribution_s(200)
                .iter()
                .zip(sparse.distribution_s(200).iter())
            {
                assert!((a - b).abs() < 1e-9, "distribution: {a} vs {b}");
            }
        }
    }

    #[test]
    fn shared_solver_bundle_reproduces_new_sparse_exactly() {
        let (chain, partition, alpha) = setup();
        let sparse_chain = SparseDtmc::from_dense(&chain);
        for options in [SolverOptions::force_dense(), SolverOptions::force_sparse()] {
            let own =
                SojournAnalysis::new_sparse(&sparse_chain, &partition, &alpha, options).unwrap();
            let solvers = PartitionSolvers::build(&sparse_chain, &partition, options).unwrap();
            assert_eq!(solvers.t_indices(), &[1, 2, 3]);
            assert_eq!(solvers.s_indices(), &[1]);
            assert_eq!(solvers.p_indices(), &[2, 3]);
            assert_eq!(solvers.options(), options);
            let shared =
                SojournAnalysis::new_sparse_shared(&sparse_chain, &alpha, &solvers).unwrap();
            // Bit-identical: the same blocks go through the same solves.
            assert_eq!(
                own.expected_total_s().unwrap().to_bits(),
                shared.expected_total_s().unwrap().to_bits()
            );
            assert_eq!(
                own.variance_p().unwrap().to_bits(),
                shared.variance_p().unwrap().to_bits()
            );
            assert_eq!(own.expected_sojourns_s(10), shared.expected_sojourns_s(10));
            assert_eq!(own.distribution_p(50), shared.distribution_p(50));
            // The bundle's standalone solvers answer block systems.
            let steps = solvers.solver_t().solve(&[1.0; 3]).unwrap();
            assert!((steps[1] - 4.0).abs() < 1e-9); // middle of the ruin walk
        }
    }

    #[test]
    fn partition_solvers_validate_indices() {
        let (chain, _, _) = setup();
        let sparse_chain = SparseDtmc::from_dense(&chain);
        let bad = SojournPartition::new(vec![99], vec![]).unwrap();
        assert!(matches!(
            PartitionSolvers::build(&sparse_chain, &bad, SolverOptions::default()),
            Err(MarkovError::InvalidState { .. })
        ));
        // A closed class inside a subset surfaces as a solver failure.
        let closed = SojournPartition::new(vec![0, 1], vec![2, 3]).unwrap();
        assert!(matches!(
            PartitionSolvers::build(&sparse_chain, &closed, SolverOptions::default()),
            Err(MarkovError::Linalg(_))
        ));
    }

    #[test]
    fn sparse_empty_subset_is_degenerate() {
        let (chain, _, alpha) = setup();
        let partition = SojournPartition::new(vec![], vec![1, 2, 3]).unwrap();
        let sparse_chain = SparseDtmc::from_dense(&chain);
        let soj = SojournAnalysis::new_sparse(
            &sparse_chain,
            &partition,
            &alpha,
            SolverOptions::force_sparse(),
        )
        .unwrap();
        assert_eq!(soj.expected_total_s().unwrap(), 0.0);
        assert_eq!(soj.expected_sojourns_s(3), vec![0.0, 0.0, 0.0]);
        let d = soj.distribution_s(3);
        assert_eq!(d[0], 1.0);
        assert_eq!(soj.variance_s().unwrap(), 0.0);
        let dense = SojournAnalysis::new(&chain, &partition, &alpha).unwrap();
        let a = soj.expected_total_p().unwrap();
        let b = dense.expected_total_p().unwrap();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn first_sojourn_dominates_for_weakly_coupled_subsets() {
        // Once the walk leaves S = {1} it is more likely absorbed than to
        // come back through P; E(T_{S,1}) should carry most of E(T_S).
        let (chain, partition, alpha) = setup();
        let soj = SojournAnalysis::new(&chain, &partition, &alpha).unwrap();
        let series = soj.expected_sojourns_s(10);
        assert!(series[0] > series[1]);
        assert!(series[1] > series[2]);
    }
}
