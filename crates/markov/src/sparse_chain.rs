//! A validated discrete-time Markov chain in compressed sparse row form.
//!
//! The DSN'11 cluster chain reaches a handful of successor states from
//! each state, so its transition matrix holds O(n) non-zeros while the
//! dense representation costs O(n²) memory and O(n³) analysis time. A
//! [`SparseDtmc`] carries the same validation contract as [`Dtmc`]
//! (square, non-negative, rows summing to 1 within `1e-9`, then exact
//! re-normalization) on the CSR storage, letting model builders emit
//! transition triplets directly without ever materializing the dense
//! matrix.

use pollux_linalg::sparse::CsrMatrix;

use crate::{Dtmc, MarkovError};

/// Validation tolerance for row sums (matches [`Dtmc`]).
const ROW_SUM_TOL: f64 = 1e-9;

/// A validated discrete-time Markov chain on states `0..n`, stored as a
/// CSR matrix.
///
/// # Example
///
/// ```
/// use pollux_markov::SparseDtmc;
///
/// # fn main() -> Result<(), pollux_markov::MarkovError> {
/// let p = SparseDtmc::from_triplets(
///     2,
///     vec![(0, 0, 0.9), (0, 1, 0.1), (1, 0, 0.4), (1, 1, 0.6)],
/// )?;
/// assert_eq!(p.n_states(), 2);
/// assert!((p.prob(0, 1) - 0.1).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseDtmc {
    p: CsrMatrix,
}

impl SparseDtmc {
    /// Builds a chain from a CSR transition matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NotStochastic`] when the matrix is not
    /// square, has a negative entry, or a row sum differs from 1 by more
    /// than `1e-9`.
    pub fn new(p: CsrMatrix) -> Result<Self, MarkovError> {
        if p.rows() != p.cols() {
            return Err(MarkovError::NotStochastic(format!(
                "matrix is {}x{}",
                p.rows(),
                p.cols()
            )));
        }
        let mut p = p;
        for i in 0..p.rows() {
            let mut sum = 0.0;
            for (_, v) in p.row_entries(i) {
                if v < -1e-15 {
                    return Err(MarkovError::NotStochastic(format!(
                        "row {i} has negative entry {v}"
                    )));
                }
                sum += v;
            }
            if (sum - 1.0).abs() > ROW_SUM_TOL {
                return Err(MarkovError::NotStochastic(format!("row {i} sums to {sum}")));
            }
            // Exact re-normalization, mirroring `Dtmc::new`, so analyses
            // see rows summing to 1 regardless of builder round-off.
            p.row_values_mut(i).iter_mut().for_each(|v| {
                *v = (*v).max(0.0) / sum;
            });
        }
        Ok(SparseDtmc { p })
    }

    /// Builds a chain from `(row, col, probability)` triplets over an
    /// `n × n` space (duplicates are summed in appearance order, exactly
    /// as a dense scatter-accumulate would).
    ///
    /// # Errors
    ///
    /// Propagates triplet shape violations and stochasticity failures.
    pub fn from_triplets(
        n: usize,
        triplets: Vec<(usize, usize, f64)>,
    ) -> Result<Self, MarkovError> {
        let p = CsrMatrix::from_triplet_vec(n, n, triplets)
            .map_err(|e| MarkovError::NotStochastic(e.to_string()))?;
        SparseDtmc::new(p)
    }

    /// Converts a dense chain (keeping the exact probabilities — the dense
    /// chain is already validated and normalized).
    #[must_use]
    pub fn from_dense(chain: &Dtmc) -> Self {
        SparseDtmc {
            p: CsrMatrix::from_dense(chain.matrix(), 0.0),
        }
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.p.rows()
    }

    /// Borrows the CSR transition matrix.
    #[must_use]
    pub fn matrix(&self) -> &CsrMatrix {
        &self.p
    }

    /// Transition probability `P(i → j)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    #[must_use]
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.p.get(i, j)
    }

    /// Iterates the non-zero transitions out of state `i` as
    /// `(successor, probability)` pairs, in successor order.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn successors(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.p.row_entries(i)
    }

    /// Validates a distribution vector against this chain (same contract
    /// as [`Dtmc::check_distribution`]).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidDistribution`] for wrong length,
    /// negative mass or total mass differing from 1 by more than `1e-9`.
    pub fn check_distribution(&self, alpha: &[f64]) -> Result<(), MarkovError> {
        crate::chain::validate_distribution(alpha, self.n_states())
    }

    /// Distribution after `m` steps: `α P^m`, iterated in O(m · nnz).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidDistribution`] when `alpha` fails
    /// validation.
    pub fn transient_distribution(&self, alpha: &[f64], m: u64) -> Result<Vec<f64>, MarkovError> {
        self.check_distribution(alpha)?;
        let mut cur = alpha.to_vec();
        let mut next = vec![0.0; cur.len()];
        for _ in 0..m {
            self.p.vec_mul_into(&cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        Ok(cur)
    }

    /// Densifies into a [`Dtmc`] carrying the *exact* stored probabilities
    /// (no second validation pass, so bridging representations never
    /// re-normalizes twice).
    #[must_use]
    pub fn to_dense(&self) -> Dtmc {
        Dtmc::from_validated_matrix(self.p.to_dense())
    }
}

/// Extracts the square sub-chain block `P[idx, idx]` of a CSR matrix as a
/// new CSR matrix over the compacted index range `0..idx.len()`.
///
/// `idx` must be strictly increasing; entries outside `idx × idx` are
/// dropped. This is the sparse analogue of
/// [`pollux_linalg::Matrix::submatrix`] used to carve transient blocks
/// (`Q`, `M_S`, `M_P`, …) out of a chain.
///
/// # Panics
///
/// Panics if `idx` is not strictly increasing or indexes out of bounds.
#[must_use]
pub fn sparse_block(p: &CsrMatrix, row_idx: &[usize], col_idx: &[usize]) -> CsrMatrix {
    assert!(
        row_idx.windows(2).all(|w| w[0] < w[1]),
        "row index set must be strictly increasing"
    );
    assert!(
        col_idx.windows(2).all(|w| w[0] < w[1]),
        "column index set must be strictly increasing"
    );
    let mut col_pos = vec![usize::MAX; p.cols()];
    for (c, &j) in col_idx.iter().enumerate() {
        col_pos[j] = c;
    }
    let mut triplets = Vec::new();
    for (r, &i) in row_idx.iter().enumerate() {
        for (j, v) in p.row_entries(i) {
            if col_pos[j] != usize::MAX {
                triplets.push((r, col_pos[j], v));
            }
        }
    }
    CsrMatrix::from_triplet_vec(row_idx.len(), col_idx.len(), triplets)
        .expect("block indices are in range by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gamblers_ruin() -> SparseDtmc {
        SparseDtmc::from_triplets(
            4,
            vec![
                (0, 0, 1.0),
                (1, 0, 0.5),
                (1, 2, 0.5),
                (2, 1, 0.5),
                (2, 3, 0.5),
                (3, 3, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_matrices() {
        assert!(SparseDtmc::from_triplets(2, vec![(0, 0, 1.0), (1, 1, 0.9)]).is_err());
        assert!(
            SparseDtmc::from_triplets(2, vec![(0, 0, 1.5), (0, 1, -0.5), (1, 1, 1.0)]).is_err()
        );
        let rect = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(SparseDtmc::new(rect).is_err());
    }

    #[test]
    fn renormalization_is_exact() {
        let p = SparseDtmc::from_triplets(
            2,
            vec![(0, 0, 0.5 + 1e-12), (0, 1, 0.5), (1, 0, 0.25), (1, 1, 0.75)],
        )
        .unwrap();
        for i in 0..2 {
            let s: f64 = p.successors(i).map(|(_, v)| v).sum();
            assert!((s - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn dense_roundtrip_preserves_bits() {
        let sparse = gamblers_ruin();
        let dense = sparse.to_dense();
        assert_eq!(dense.n_states(), 4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(sparse.prob(i, j), dense.prob(i, j));
            }
        }
        let back = SparseDtmc::from_dense(&dense);
        assert_eq!(back, sparse);
    }

    #[test]
    fn transient_distribution_matches_dense() {
        let sparse = gamblers_ruin();
        let dense = sparse.to_dense();
        let alpha = [0.0, 0.5, 0.5, 0.0];
        for m in [0u64, 1, 5, 50] {
            let a = sparse.transient_distribution(&alpha, m).unwrap();
            let b = dense.transient_distribution(&alpha, m).unwrap();
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-14);
            }
        }
        assert!(sparse.transient_distribution(&[1.0], 1).is_err());
    }

    #[test]
    fn check_distribution_validates() {
        let p = gamblers_ruin();
        assert!(p.check_distribution(&[0.25; 4]).is_ok());
        assert!(p.check_distribution(&[0.5; 4]).is_err());
        assert!(p.check_distribution(&[1.0]).is_err());
        assert!(p.check_distribution(&[1.5, -0.5, 0.0, 0.0]).is_err());
    }

    #[test]
    fn block_extraction_matches_dense_submatrix() {
        let p = gamblers_ruin();
        let q = sparse_block(p.matrix(), &[1, 2], &[1, 2]);
        let dense_q = p.to_dense().matrix().submatrix(&[1, 2], &[1, 2]);
        assert_eq!(q.to_dense(), dense_q);
        // Rectangular block.
        let r = sparse_block(p.matrix(), &[1, 2], &[0, 3]);
        assert_eq!(r.get(0, 0), 0.5);
        assert_eq!(r.get(1, 1), 0.5);
        assert_eq!(r.nnz(), 2);
    }
}
