//! Discrete-time Markov chain machinery.
//!
//! This crate implements the stochastic-process layer of the Pollux
//! reproduction of *Modeling and Evaluating Targeted Attacks in Large Scale
//! Dynamic Systems* (Anceaume, Sericola, Ludinard, Tronel — DSN 2011):
//!
//! * [`StateSpace`] — a bijection between arbitrary state values and dense
//!   indices.
//! * [`Dtmc`] — a validated discrete-time Markov chain with simulation
//!   support.
//! * [`SparseDtmc`] — the same validation contract on CSR storage, so
//!   sparse chains (each state reaching a handful of successors) never
//!   materialize an O(n²) matrix; the analyses below accept either
//!   representation, switching to O(nnz) iterative solvers at a size
//!   crossover.
//! * [`classify`] — communicating classes (iterative Tarjan SCC), closed /
//!   transient classification, reachability.
//! * [`AbsorbingChain`] — fundamental matrix, expected time to absorption,
//!   absorption probabilities per absorbing class (the paper's
//!   Relation (9)).
//! * [`SojournAnalysis`] — total and per-visit sojourn times in a
//!   two-subset partition of the transient states, following Sericola
//!   (*J. Appl. Prob.* 1990) and Rubino & Sericola (*J. Appl. Prob.* 1989):
//!   the paper's Relations (5)–(8), plus full distributions and variances.
//! * [`CompetingChains`] — `n` identical chains of which a uniformly chosen
//!   one moves at each instant (Anceaume, Castella, Ludinard, Sericola —
//!   the paper's Theorems 1 and 2).
//!
//! # Example
//!
//! ```
//! use pollux_markov::{Dtmc, AbsorbingChain};
//!
//! # fn main() -> Result<(), pollux_markov::MarkovError> {
//! // Gambler's ruin on {0,1,2,3} with absorbing barriers 0 and 3.
//! let p = Dtmc::from_rows(&[
//!     &[1.0, 0.0, 0.0, 0.0],
//!     &[0.5, 0.0, 0.5, 0.0],
//!     &[0.0, 0.5, 0.0, 0.5],
//!     &[0.0, 0.0, 0.0, 1.0],
//! ])?;
//! let abs = AbsorbingChain::new(&p)?;
//! let t = abs.expected_steps_from(1)?;
//! assert!((t - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod absorbing;
mod chain;
pub mod classify;
mod competing;
mod error;
pub mod hitting;
mod sojourn;
pub mod sparse_chain;
mod state_space;

pub use absorbing::AbsorbingChain;
pub use chain::Dtmc;
pub use competing::CompetingChains;
pub use error::MarkovError;
pub use sojourn::{PartitionSolvers, SojournAnalysis, SojournPartition};
pub use sparse_chain::SparseDtmc;
pub use state_space::StateSpace;
