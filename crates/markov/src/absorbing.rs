use pollux_linalg::{Matrix, SolverOptions, TransientSolver};

use crate::classify::{classify, classify_sparse, Classification};
use crate::sparse_chain::sparse_block;
use crate::{Dtmc, MarkovError, SparseDtmc};

/// Absorbing-chain analysis: fundamental matrix, expected steps to
/// absorption, expected visit counts and absorption probabilities per
/// closed class.
///
/// States are classified automatically; "absorption" means entering any
/// closed communicating class (for the DSN'11 chain these are the safe
/// merge, safe split and polluted merge sets of Figure 1).
///
/// # Example
///
/// ```
/// use pollux_markov::{AbsorbingChain, Dtmc};
///
/// # fn main() -> Result<(), pollux_markov::MarkovError> {
/// let p = Dtmc::from_rows(&[
///     &[1.0, 0.0, 0.0],
///     &[0.25, 0.5, 0.25],
///     &[0.0, 0.0, 1.0],
/// ])?;
/// let abs = AbsorbingChain::new(&p)?;
/// assert!((abs.expected_steps_from(1)? - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AbsorbingChain {
    n_states: usize,
    classification: Classification,
    /// Global indices of transient states, increasing.
    transient: Vec<usize>,
    /// Position of each global state inside `transient` (or `None`).
    transient_pos: Vec<Option<usize>>,
    /// Solver for `(I − Q) x = b` where `Q` is the transient block —
    /// dense LU when built from a [`Dtmc`], crossover-aware when built
    /// from a [`SparseDtmc`].
    solver: TransientSolver,
    /// Expected steps to absorption from each transient state.
    steps: Vec<f64>,
    /// Ids of closed classes, in classification order.
    closed_classes: Vec<usize>,
    /// `b[c][t]`: probability of absorbing into closed class
    /// `closed_classes[c]` starting from `transient[t]`.
    absorption: Vec<Vec<f64>>,
}

impl AbsorbingChain {
    /// Builds the analysis for a dense chain (always by dense LU — the
    /// historical bit-exact path for paper-scale chains).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NoTransientStates`] when every state is
    /// recurrent (nothing to analyze), or a [`MarkovError::Linalg`] if the
    /// fundamental system is singular (cannot happen for a genuinely
    /// sub-stochastic transient block, but surfaced honestly).
    pub fn new(chain: &Dtmc) -> Result<Self, MarkovError> {
        let classification = classify(chain);
        let transient = classification.transient_states();
        if transient.is_empty() {
            return Err(MarkovError::NoTransientStates);
        }
        let n = chain.n_states();
        let q = chain.matrix().submatrix(&transient, &transient);
        let i_minus_q = &Matrix::identity(transient.len()) - &q;
        let solver = TransientSolver::from_dense_system(&i_minus_q)?;

        let closed_classes = classification.closed_classes();
        let mut rhs = Vec::with_capacity(closed_classes.len());
        for &c in &closed_classes {
            // r[t] = P(transient[t] -> class c in one step).
            let members = &classification.classes[c];
            let r: Vec<f64> = transient
                .iter()
                .map(|&g| members.iter().map(|&j| chain.prob(g, j)).sum())
                .collect();
            rhs.push(r);
        }
        Self::finish(n, classification, transient, solver, rhs)
    }

    /// Builds the analysis for a sparse chain: classification runs on the
    /// CSR adjacency in O(nnz), the fundamental systems go through the
    /// crossover-aware [`TransientSolver`] (dense LU below
    /// `options.crossover` states, batched SOR sweeps above), and the
    /// per-class entry vectors are accumulated in a single pass over the
    /// transient rows instead of one dense column scan per class.
    ///
    /// Per-class absorption still costs one solve per closed class; chains
    /// with many absorbing states (like the large-Δ cluster chains, where
    /// every split state is its own class) should aggregate classes before
    /// asking, as `pollux`'s scaling analysis does.
    ///
    /// # Errors
    ///
    /// As [`AbsorbingChain::new`], plus [`MarkovError::Linalg`] carrying
    /// [`pollux_linalg::LinalgError::NoConvergence`] if an iterative solve
    /// exhausts its sweep budget.
    pub fn new_sparse(chain: &SparseDtmc, options: SolverOptions) -> Result<Self, MarkovError> {
        let classification = classify_sparse(chain);
        let transient = classification.transient_states();
        if transient.is_empty() {
            return Err(MarkovError::NoTransientStates);
        }
        let n = chain.n_states();
        let q = sparse_block(chain.matrix(), &transient, &transient);
        let solver = TransientSolver::new(&q, options)?;

        let closed_classes = classification.closed_classes();
        // class_slot[j] = position of j's closed class in `closed_classes`
        // (or MAX for transient / open-class states).
        let mut class_slot = vec![usize::MAX; n];
        for (slot, &c) in closed_classes.iter().enumerate() {
            for &j in &classification.classes[c] {
                class_slot[j] = slot;
            }
        }
        let mut rhs = vec![vec![0.0; transient.len()]; closed_classes.len()];
        for (t, &g) in transient.iter().enumerate() {
            for (j, v) in chain.successors(g) {
                let slot = class_slot[j];
                if slot != usize::MAX {
                    rhs[slot][t] += v;
                }
            }
        }
        Self::finish(n, classification, transient, solver, rhs)
    }

    /// Shared tail of both constructors: solve for the expected steps and
    /// the per-class absorption probabilities (batched).
    fn finish(
        n: usize,
        classification: Classification,
        transient: Vec<usize>,
        solver: TransientSolver,
        rhs: Vec<Vec<f64>>,
    ) -> Result<Self, MarkovError> {
        let mut transient_pos = vec![None; n];
        for (t, &g) in transient.iter().enumerate() {
            transient_pos[g] = Some(t);
        }
        let steps = solver.solve(&vec![1.0; transient.len()])?;
        let absorption = solver.solve_many(&rhs)?;
        let closed_classes = classification.closed_classes();
        Ok(AbsorbingChain {
            n_states: n,
            classification,
            transient,
            transient_pos,
            solver,
            steps,
            closed_classes,
            absorption,
        })
    }

    /// Number of states of the underlying chain.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// The structural classification computed for the chain.
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// Global indices of the transient states, in increasing order.
    pub fn transient_states(&self) -> &[usize] {
        &self.transient
    }

    /// Ids of the closed (absorbing) classes, aligned with the rows of
    /// [`AbsorbingChain::absorption_probabilities_from`].
    pub fn closed_classes(&self) -> &[usize] {
        &self.closed_classes
    }

    /// The member states of closed class `c` (a classification class id).
    ///
    /// # Panics
    ///
    /// Panics if `c` is not a valid class id.
    pub fn class_members(&self, c: usize) -> &[usize] {
        &self.classification.classes[c]
    }

    /// Expected number of steps until absorption starting from state `i`
    /// (0 when `i` is already recurrent).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidState`] when `i` is out of range.
    pub fn expected_steps_from(&self, i: usize) -> Result<f64, MarkovError> {
        if i >= self.n_states {
            return Err(MarkovError::InvalidState {
                index: i,
                states: self.n_states,
            });
        }
        Ok(match self.transient_pos[i] {
            Some(t) => self.steps[t],
            None => 0.0,
        })
    }

    /// Validates `alpha` as a distribution over this chain's states (the
    /// same contract as [`Dtmc::check_distribution`]).
    fn check_distribution(&self, alpha: &[f64]) -> Result<(), MarkovError> {
        crate::chain::validate_distribution(alpha, self.n_states)
    }

    /// Expected number of steps until absorption from an initial
    /// distribution over all states.
    ///
    /// # Errors
    ///
    /// Propagates distribution validation failures.
    pub fn expected_steps(&self, alpha: &[f64]) -> Result<f64, MarkovError> {
        self.check_distribution(alpha)?;
        Ok(self
            .transient
            .iter()
            .enumerate()
            .map(|(t, &g)| alpha[g] * self.steps[t])
            .sum())
    }

    /// Expected number of visits to transient state `j` before absorption,
    /// starting from transient state `i` (the fundamental-matrix entry
    /// `N[i][j]`).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidPartition`] if either state is not
    /// transient, or [`MarkovError::InvalidState`] for an out-of-range
    /// index.
    pub fn expected_visits(&self, i: usize, j: usize) -> Result<f64, MarkovError> {
        let n = self.n_states;
        for idx in [i, j] {
            if idx >= n {
                return Err(MarkovError::InvalidState {
                    index: idx,
                    states: n,
                });
            }
        }
        let (ti, tj) = match (self.transient_pos[i], self.transient_pos[j]) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(MarkovError::InvalidPartition(format!(
                    "states {i} and {j} must both be transient"
                )))
            }
        };
        // Column j of N = (I-Q)^{-1}: solve (I-Q) x = e_j and read row i...
        // N e_j gives column j, so x[ti] is the desired entry.
        let mut e = vec![0.0; self.transient.len()];
        e[tj] = 1.0;
        let col = self.solver.solve(&e)?;
        Ok(col[ti])
    }

    /// Probability of being absorbed in each closed class, starting from
    /// state `i`. Entries align with [`AbsorbingChain::closed_classes`].
    ///
    /// A recurrent start state is absorbed in its own class with
    /// probability 1.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidState`] when `i` is out of range.
    pub fn absorption_probabilities_from(&self, i: usize) -> Result<Vec<f64>, MarkovError> {
        if i >= self.n_states {
            return Err(MarkovError::InvalidState {
                index: i,
                states: self.n_states,
            });
        }
        Ok(match self.transient_pos[i] {
            Some(t) => self.absorption.iter().map(|b| b[t]).collect(),
            None => {
                let class = self.classification.class_of[i];
                self.closed_classes
                    .iter()
                    .map(|&c| if c == class { 1.0 } else { 0.0 })
                    .collect()
            }
        })
    }

    /// Probability of being absorbed in each closed class from an initial
    /// distribution over all states (the paper's Relation (9) when the
    /// classes are `AmS`, `AℓS`, `AmP`).
    ///
    /// # Errors
    ///
    /// Propagates distribution validation failures.
    pub fn absorption_probabilities(&self, alpha: &[f64]) -> Result<Vec<f64>, MarkovError> {
        self.check_distribution(alpha)?;
        let mut out = vec![0.0; self.closed_classes.len()];
        for (g, &a) in alpha.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let probs = self.absorption_probabilities_from(g)?;
            for (o, p) in out.iter_mut().zip(probs.iter()) {
                *o += a * p;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gamblers_ruin(p_win: f64, n: usize) -> Dtmc {
        // States 0..=n, 0 and n absorbing.
        let mut rows = vec![vec![0.0; n + 1]; n + 1];
        rows[0][0] = 1.0;
        rows[n][n] = 1.0;
        for i in 1..n {
            rows[i][i + 1] = p_win;
            rows[i][i - 1] = 1.0 - p_win;
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dtmc::from_rows(&refs).unwrap()
    }

    #[test]
    fn fair_ruin_expected_steps() {
        // E[steps from i] = i (n - i) for the fair game.
        let n = 10;
        let chain = gamblers_ruin(0.5, n);
        let abs = AbsorbingChain::new(&chain).unwrap();
        for i in 0..=n {
            let want = (i * (n - i)) as f64;
            let got = abs.expected_steps_from(i).unwrap();
            assert!((got - want).abs() < 1e-9, "i={i}: {got} vs {want}");
        }
    }

    #[test]
    fn fair_ruin_absorption_probabilities() {
        // P(reach n from i) = i/n for the fair game.
        let n = 8;
        let chain = gamblers_ruin(0.5, n);
        let abs = AbsorbingChain::new(&chain).unwrap();
        // Identify which closed class is state n.
        let classes = abs.closed_classes().to_vec();
        let idx_of_n = classes
            .iter()
            .position(|&c| abs.class_members(c).contains(&n))
            .unwrap();
        for i in 1..n {
            let p = abs.absorption_probabilities_from(i).unwrap();
            assert!((p[idx_of_n] - i as f64 / n as f64).abs() < 1e-10);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn biased_ruin_absorption_matches_closed_form() {
        // P(reach n from i) = (1 - r^i)/(1 - r^n) with r = q/p.
        let n = 6;
        let p_win = 0.6;
        let r: f64 = 0.4 / 0.6;
        let chain = gamblers_ruin(p_win, n);
        let abs = AbsorbingChain::new(&chain).unwrap();
        let classes = abs.closed_classes().to_vec();
        let idx_of_n = classes
            .iter()
            .position(|&c| abs.class_members(c).contains(&n))
            .unwrap();
        for i in 1..n {
            let want = (1.0 - r.powi(i as i32)) / (1.0 - r.powi(n as i32));
            let got = abs.absorption_probabilities_from(i).unwrap()[idx_of_n];
            assert!((got - want).abs() < 1e-10, "i={i}");
        }
    }

    #[test]
    fn distribution_start() {
        let chain = gamblers_ruin(0.5, 4);
        let abs = AbsorbingChain::new(&chain).unwrap();
        let alpha = [0.0, 0.5, 0.0, 0.5, 0.0];
        let steps = abs.expected_steps(&alpha).unwrap();
        assert!((steps - 3.0).abs() < 1e-10); // (3 + 3)/2
        let p = abs.absorption_probabilities(&alpha).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn recurrent_start_state() {
        let chain = gamblers_ruin(0.5, 4);
        let abs = AbsorbingChain::new(&chain).unwrap();
        assert_eq!(abs.expected_steps_from(0).unwrap(), 0.0);
        let p = abs.absorption_probabilities_from(0).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.contains(&1.0));
    }

    #[test]
    fn expected_visits_fundamental_matrix() {
        // For fair ruin with n=4, transient {1,2,3}:
        // N = (I-Q)^{-1} with Q tridiagonal(0.5). Known: N[1][1] = 1.5.
        let chain = gamblers_ruin(0.5, 4);
        let abs = AbsorbingChain::new(&chain).unwrap();
        let n22 = abs.expected_visits(2, 2).unwrap();
        assert!((n22 - 2.0).abs() < 1e-10, "{n22}");
        let n11 = abs.expected_visits(1, 1).unwrap();
        assert!((n11 - 1.5).abs() < 1e-10, "{n11}");
        // Row sums of N equal expected steps.
        let total: f64 = (1..4).map(|j| abs.expected_visits(1, j).unwrap()).sum();
        assert!((total - abs.expected_steps_from(1).unwrap()).abs() < 1e-10);
    }

    #[test]
    fn errors_for_bad_inputs() {
        let chain = gamblers_ruin(0.5, 4);
        let abs = AbsorbingChain::new(&chain).unwrap();
        assert!(abs.expected_steps_from(99).is_err());
        assert!(abs.expected_visits(0, 1).is_err()); // 0 is recurrent
        assert!(abs.absorption_probabilities(&[1.0]).is_err());
        // A chain with no transient states is rejected.
        let irr = Dtmc::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]).unwrap();
        assert!(matches!(
            AbsorbingChain::new(&irr),
            Err(MarkovError::NoTransientStates)
        ));
    }

    #[test]
    fn sparse_constructor_agrees_with_dense() {
        let n = 10;
        let chain = gamblers_ruin(0.55, n);
        let sparse = SparseDtmc::from_dense(&chain);
        let dense_abs = AbsorbingChain::new(&chain).unwrap();
        for options in [SolverOptions::force_dense(), SolverOptions::force_sparse()] {
            let sparse_abs = AbsorbingChain::new_sparse(&sparse, options).unwrap();
            assert_eq!(sparse_abs.closed_classes(), dense_abs.closed_classes());
            assert_eq!(sparse_abs.transient_states(), dense_abs.transient_states());
            for i in 0..=n {
                let a = dense_abs.expected_steps_from(i).unwrap();
                let b = sparse_abs.expected_steps_from(i).unwrap();
                assert!((a - b).abs() < 1e-9, "steps i={i}: {a} vs {b}");
                let pa = dense_abs.absorption_probabilities_from(i).unwrap();
                let pb = sparse_abs.absorption_probabilities_from(i).unwrap();
                for (x, y) in pa.iter().zip(pb.iter()) {
                    assert!((x - y).abs() < 1e-9, "absorption i={i}: {x} vs {y}");
                }
            }
            let v_dense = dense_abs.expected_visits(2, 3).unwrap();
            let v_sparse = sparse_abs.expected_visits(2, 3).unwrap();
            assert!((v_dense - v_sparse).abs() < 1e-9);
        }
    }

    #[test]
    fn absorbing_class_with_multiple_states() {
        // 0 <-> 1 is a closed class of two states; 2 is transient.
        let chain =
            Dtmc::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0], &[0.25, 0.25, 0.5]]).unwrap();
        let abs = AbsorbingChain::new(&chain).unwrap();
        assert_eq!(abs.closed_classes().len(), 1);
        let p = abs.absorption_probabilities_from(2).unwrap();
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!((abs.expected_steps_from(2).unwrap() - 2.0).abs() < 1e-12);
    }
}
