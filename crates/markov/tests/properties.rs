//! Property-based tests for the Markov-chain machinery on *random*
//! absorbing chains (not just the textbook examples of the unit tests).

use proptest::prelude::*;

use pollux_markov::classify::classify;
use pollux_markov::{AbsorbingChain, CompetingChains, Dtmc, SojournAnalysis, SojournPartition};

/// A random absorbing chain: `t` transient states followed by `a`
/// absorbing ones. Each transient row mixes random mass over everything
/// with guaranteed leakage towards the absorbing block.
fn absorbing_chain_strategy() -> impl Strategy<Value = (Dtmc, usize)> {
    (2usize..=6, 1usize..=3).prop_flat_map(|(t, a)| {
        let n = t + a;
        proptest::collection::vec(0.01f64..1.0, t * n).prop_map(move |weights| {
            let mut rows = Vec::with_capacity(n);
            for i in 0..t {
                let mut row: Vec<f64> = weights[i * n..(i + 1) * n].to_vec();
                // Force strictly positive absorption leakage.
                for cell in row.iter_mut().skip(t) {
                    *cell += 0.2;
                }
                let total: f64 = row.iter().sum();
                for cell in row.iter_mut() {
                    *cell /= total;
                }
                rows.push(row);
            }
            for i in 0..a {
                let mut row = vec![0.0; n];
                row[t + i] = 1.0;
                rows.push(row);
            }
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            (Dtmc::from_rows(&refs).expect("rows normalized"), t)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn absorption_probabilities_sum_to_one((chain, t) in absorbing_chain_strategy()) {
        let abs = AbsorbingChain::new(&chain).unwrap();
        for i in 0..t {
            let probs = abs.absorption_probabilities_from(i).unwrap();
            let total: f64 = probs.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "state {i}: {total}");
            prop_assert!(probs.iter().all(|&p| p >= -1e-12));
        }
    }

    #[test]
    fn expected_steps_satisfy_first_step_equations((chain, t) in absorbing_chain_strategy()) {
        // t_i = 1 + Σ_j P(i→j) t_j over transient j.
        let abs = AbsorbingChain::new(&chain).unwrap();
        for i in 0..t {
            let ti = abs.expected_steps_from(i).unwrap();
            let mut rhs = 1.0;
            for j in 0..t {
                rhs += chain.prob(i, j) * abs.expected_steps_from(j).unwrap();
            }
            prop_assert!((ti - rhs).abs() < 1e-8, "state {i}: {ti} vs {rhs}");
        }
    }

    #[test]
    fn expected_visits_row_sums_equal_expected_steps((chain, t) in absorbing_chain_strategy()) {
        let abs = AbsorbingChain::new(&chain).unwrap();
        for i in 0..t {
            let total: f64 = (0..t).map(|j| abs.expected_visits(i, j).unwrap()).sum();
            let steps = abs.expected_steps_from(i).unwrap();
            prop_assert!((total - steps).abs() < 1e-8);
        }
    }

    #[test]
    fn sojourn_totals_decompose_for_every_bipartition((chain, t) in absorbing_chain_strategy(), mask in any::<u32>()) {
        // Split the transient states arbitrarily by the mask bits.
        let s_states: Vec<usize> = (0..t).filter(|i| mask & (1 << i) != 0).collect();
        let p_states: Vec<usize> = (0..t).filter(|i| mask & (1 << i) == 0).collect();
        let partition = SojournPartition::new(s_states, p_states).unwrap();
        let mut alpha = vec![0.0; chain.n_states()];
        alpha[0] = 1.0;
        let soj = SojournAnalysis::new(&chain, &partition, &alpha).unwrap();
        let abs = AbsorbingChain::new(&chain).unwrap();
        let total = abs.expected_steps_from(0).unwrap();
        let ts = soj.expected_total_s().unwrap();
        let tp = soj.expected_total_p().unwrap();
        prop_assert!(ts >= -1e-12 && tp >= -1e-12);
        prop_assert!((ts + tp - total).abs() < 1e-7,
            "{ts} + {tp} != {total}");
    }

    #[test]
    fn sojourn_distribution_mean_matches_expectation((chain, t) in absorbing_chain_strategy()) {
        let s_states: Vec<usize> = (0..t / 2).collect();
        let p_states: Vec<usize> = (t / 2..t).collect();
        let partition = SojournPartition::new(s_states, p_states).unwrap();
        let mut alpha = vec![0.0; chain.n_states()];
        alpha[0] = 1.0;
        let soj = SojournAnalysis::new(&chain, &partition, &alpha).unwrap();
        let dist = soj.distribution_s(4000);
        let mass: f64 = dist.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-6, "mass {mass}");
        let mean: f64 = dist.iter().enumerate().map(|(j, p)| j as f64 * p).sum();
        let want = soj.expected_total_s().unwrap();
        prop_assert!((mean - want).abs() < 1e-4 * (1.0 + want));
    }

    #[test]
    fn classification_counts_are_consistent((chain, t) in absorbing_chain_strategy()) {
        let c = classify(&chain);
        prop_assert_eq!(c.transient_states().len(), t);
        prop_assert_eq!(c.recurrent_states().len(), chain.n_states() - t);
        for i in t..chain.n_states() {
            prop_assert!(c.is_absorbing_state(i));
        }
    }

    #[test]
    fn competing_chains_preserve_scaled_mass((chain, t) in absorbing_chain_strategy(), n in 1u64..50) {
        // After one overlay event the transient mass shrinks by at most
        // the per-event absorption rate / n.
        let comp = CompetingChains::new(&chain, n).unwrap();
        let mut alpha = vec![0.0; chain.n_states()];
        alpha[0] = 1.0;
        let subset: Vec<usize> = (0..t).collect();
        let series = comp.proportion_series(&alpha, &[&subset], &[0, 1, 10]).unwrap();
        prop_assert!((series[0][0] - 1.0).abs() < 1e-12);
        prop_assert!(series[1][0] <= 1.0 + 1e-12);
        prop_assert!(series[2][0] <= series[1][0] + 1e-12);
        // One step removes at most 1/n of the mass (only one chain moves).
        prop_assert!(series[1][0] >= 1.0 - 1.0 / n as f64 - 1e-12);
    }
}
