use pollux_adversary::ClusterView;

/// A pluggable countermeasure: the decision points the overlay operator
/// controls, mirrored on the paper's adversary trait.
///
/// Every hook is consulted per churn event against the `(s, x, y)` view of
/// the cluster the event lands on, and returns a probability (or a
/// setpoint that folds into one). That makes any implementation
/// **Markovian**: the analytical chain builder folds the hooks into the
/// Figure-2 transition probabilities, and the discrete-event loop rolls
/// them per event — the same `Defense` object drives both evaluations.
///
/// The hooks see the exact malicious counts through [`ClusterView`], like
/// the analytical chain itself does. A deployed defense would observe
/// noisy proxies; giving it the model's omniscient view evaluates the
/// *best-case envelope* of each mechanism, which is the right yardstick
/// for "can this countermeasure family help at all".
///
/// Neutral returns (`1.0`, `0.0`, `0.0`, `None`) leave the model
/// untouched: engines are required to consume **no randomness** for a
/// hook that returns its neutral element, so [`crate::NullDefense`] runs
/// are bit-identical to defense-free runs.
pub trait Defense {
    /// Short machine-friendly identifier for reports.
    fn name(&self) -> &'static str;

    /// **Join-rate shaping**: probability in `[0, 1]` that a join event
    /// reaching this cluster is admitted (an unadmitted join is dropped
    /// before the cluster — or the adversary squatting in it — sees it;
    /// the event is a no-op). Neutral: `1.0`.
    fn join_admission(&self, view: &ClusterView) -> f64 {
        let _ = view;
        1.0
    }

    /// **Induced-churn scheduling**: probability in `[0, 1)` that the
    /// defense preempts a churn event with a forced eviction of a
    /// uniformly chosen member. Unlike voluntary departures, a forced
    /// eviction cannot be refused by a valid malicious member — it is the
    /// protocol revoking the membership, not the member leaving — so the
    /// usual maintenance redraw runs. Neutral: `0.0`.
    fn induced_churn(&self, view: &ClusterView) -> f64 {
        let _ = view;
        0.0
    }

    /// **Polluted-node eviction on incarnation refresh**: per-event
    /// probability in `[0, 1]` that a malicious identifier fails the
    /// defense's re-certification and is evicted, folding into Property
    /// 1's survival probability as `d_eff = d · (1 − q)` (see
    /// [`effective_survival`]). Neutral: `0.0`.
    fn refresh_eviction(&self, view: &ClusterView) -> f64 {
        let _ = view;
        0.0
    }

    /// **Cluster-size adaptation**: a soft setpoint on the spare size.
    /// When `Some(t)` with `t < Δ`, join admission is additionally tapered
    /// linearly for `s ≥ t` — a join is admitted with the extra factor
    /// `(Δ − s) / (Δ − t)` (see [`effective_join_admission`]), steering
    /// the cluster away from the split boundary. Neutral: `None`.
    fn spare_setpoint(&self, view: &ClusterView) -> Option<usize> {
        let _ = view;
        None
    }
}

/// The admission probability both engines apply to a join event: the
/// [`Defense::join_admission`] shaping times the linear
/// [`Defense::spare_setpoint`] taper.
///
/// Shared by the analytical chain builder and the discrete-event loop so
/// the two fold cluster-size adaptation identically. Neutral defenses
/// return exactly `1.0` (no arithmetic is applied to the neutral case, so
/// bit-identity with defense-free runs is preserved).
pub fn effective_join_admission<D: Defense + ?Sized>(defense: &D, view: &ClusterView) -> f64 {
    let g = defense.join_admission(view);
    debug_assert!(
        (0.0..=1.0).contains(&g),
        "join_admission = {g} outside [0, 1]"
    );
    match defense.spare_setpoint(view) {
        Some(t) if view.spare_size() > t && view.max_spare() > t => {
            g * ((view.max_spare() - view.spare_size()) as f64 / (view.max_spare() - t) as f64)
        }
        _ => g,
    }
}

/// The effective identifier-survival probability both engines use:
/// Property 1's `d` times the complement of the defense's
/// [`Defense::refresh_eviction`] hazard.
///
/// A malicious identifier survives one event when it neither expires
/// (probability `1 − d`) nor fails the defense's re-certification
/// (probability `q`), the two checks being independent. Neutral defenses
/// return `d` bit-exactly (`d · (1 − 0) = d · 1`).
pub fn effective_survival<D: Defense + ?Sized>(defense: &D, view: &ClusterView, d: f64) -> f64 {
    let q = defense.refresh_eviction(view);
    debug_assert!(
        (0.0..=1.0).contains(&q),
        "refresh_eviction = {q} outside [0, 1]"
    );
    d * (1.0 - q)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial defense to pin the trait's object safety and defaults.
    struct Inert;

    impl Defense for Inert {
        fn name(&self) -> &'static str {
            "inert"
        }
    }

    #[test]
    fn defense_is_object_safe_with_neutral_defaults() {
        let d: Box<dyn Defense> = Box::new(Inert);
        let view = ClusterView::new(7, 7, 3, 1, 1).unwrap();
        assert_eq!(d.name(), "inert");
        assert_eq!(d.join_admission(&view), 1.0);
        assert_eq!(d.induced_churn(&view), 0.0);
        assert_eq!(d.refresh_eviction(&view), 0.0);
        assert_eq!(d.spare_setpoint(&view), None);
        // The fold helpers accept unsized trait objects.
        assert_eq!(effective_join_admission(&*d, &view), 1.0);
        assert_eq!(effective_survival(&*d, &view, 0.9), 0.9);
    }

    /// A setpoint-only defense exercising the shared taper.
    struct Cap(usize);

    impl Defense for Cap {
        fn name(&self) -> &'static str {
            "cap"
        }
        fn spare_setpoint(&self, _view: &ClusterView) -> Option<usize> {
            Some(self.0)
        }
    }

    #[test]
    fn setpoint_taper_is_linear_above_the_setpoint() {
        let cap = Cap(4);
        let at = |s: usize| {
            let view = ClusterView::new(7, 7, s, 0, 0).unwrap();
            effective_join_admission(&cap, &view)
        };
        // At or below the setpoint: no shaping.
        assert_eq!(at(3), 1.0);
        assert_eq!(at(4), 1.0);
        // Above: (Δ − s) / (Δ − t).
        assert!((at(5) - 2.0 / 3.0).abs() < 1e-15);
        assert!((at(6) - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn degenerate_setpoint_at_delta_is_inert() {
        let cap = Cap(7);
        let view = ClusterView::new(7, 7, 6, 0, 0).unwrap();
        assert_eq!(effective_join_admission(&cap, &view), 1.0);
    }
}
