use std::error::Error;
use std::fmt;

/// Validation errors for defense constructors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DefenseError {
    /// A numeric parameter was outside its domain.
    OutOfRange(String),
}

impl fmt::Display for DefenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefenseError::OutOfRange(msg) => write!(f, "defense parameter out of range: {msg}"),
        }
    }
}

impl Error for DefenseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_message() {
        let e = DefenseError::OutOfRange("rate = 2".into());
        assert!(e.to_string().contains("rate = 2"));
    }
}
