//! Pluggable countermeasures against targeted overlay attacks.
//!
//! The DSN'11 paper evaluates its adversary against a *passive* overlay;
//! its discussion of countermeasures (induced churn, identifier refresh,
//! cluster-size adaptation) is exactly the half of the model this crate
//! supplies. It mirrors [`pollux_adversary`] on the defending side:
//!
//! * [`Defense`] — the trait: four hooks covering join-rate shaping,
//!   induced-churn scheduling, polluted-node eviction on incarnation
//!   refresh, and cluster-size adaptation. Every hook is expressed as a
//!   per-event probability (or a setpoint folded into one), so a defense
//!   is **Markovian by construction**: the same object modifies the
//!   analytical transition matrix (`ClusterChain::build_with_defense` in
//!   `pollux`) and drives the discrete-event loop
//!   (`run_des_overlay_duel`), and the two evaluations stay comparable.
//! * [`NullDefense`] — the do-nothing baseline: engines given a
//!   `NullDefense` produce **bit-identical** artefacts to defense-free
//!   runs (all hooks return exact neutral elements and engines skip the
//!   defense's random draws when a hook is neutral).
//! * [`InducedChurn`] — periodic forced refresh: a fraction of churn
//!   events is preempted by the eviction of a uniformly chosen member,
//!   malicious members included (they cannot refuse a protocol-level
//!   eviction the way they refuse voluntary departures).
//! * [`IncarnationRefresh`] — periodic re-certification sweeps that catch
//!   a malicious identifier with some probability, folding into the
//!   survival probability `d` of Property 1.
//! * [`AdaptiveClusterSize`] — a soft setpoint on the spare size: join
//!   admission tapers linearly above the setpoint, steering clusters
//!   toward merge (short lifetimes) instead of the split boundary the
//!   adversary games with Rule 2.
//! * [`DefenseOutcome`] — the report type of one adversary-vs-defense
//!   duel: analytical and measured steady-state pollution side by side
//!   with the agreement verdict.
//! * [`DefenseSpec`] — a declarative, comparable description of a defense
//!   (what sweep scenarios embed in their output kinds).
//!
//! # Example
//!
//! ```
//! use pollux_adversary::ClusterView;
//! use pollux_defense::{effective_join_admission, Defense, InducedChurn, NullDefense};
//!
//! let churn = InducedChurn::new(0.1).unwrap();
//! let view = ClusterView::new(7, 7, 3, 3, 1).unwrap();
//! assert_eq!(churn.induced_churn(&view), 0.1);
//! // The null defense is neutral everywhere.
//! let null = NullDefense::new();
//! assert_eq!(null.induced_churn(&view), 0.0);
//! assert_eq!(effective_join_admission(&null, &view), 1.0);
//! ```

mod defense;
mod error;
mod mechanisms;
mod outcome;
mod spec;

pub use defense::{effective_join_admission, effective_survival, Defense};
pub use error::DefenseError;
pub use mechanisms::{AdaptiveClusterSize, IncarnationRefresh, InducedChurn, NullDefense};
pub use outcome::DefenseOutcome;
pub use spec::DefenseSpec;
