use crate::{
    AdaptiveClusterSize, Defense, DefenseError, IncarnationRefresh, InducedChurn, NullDefense,
};

/// A declarative, comparable description of a defense.
///
/// Sweep scenarios embed specs (not trait objects) in their output kinds
/// so scenarios stay `Clone + PartialEq + Debug`; [`DefenseSpec::build`]
/// materializes the trait object at evaluation time and
/// [`DefenseSpec::label`] names the variant (parameters included) in
/// output rows.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DefenseSpec {
    /// [`NullDefense`] — the undefended baseline.
    Null,
    /// [`InducedChurn`] with the given per-event preemption rate.
    InducedChurn {
        /// Per-event preemption probability in `[0, 1)`.
        rate: f64,
    },
    /// [`IncarnationRefresh`] with the given sweep period and detection
    /// probability.
    IncarnationRefresh {
        /// Mean events between sweeps (≥ 1).
        period: f64,
        /// Probability a sweep catches a malicious identifier.
        detection_prob: f64,
    },
    /// [`AdaptiveClusterSize`] with the given setpoint fraction of `Δ`.
    AdaptiveClusterSize {
        /// Setpoint fraction in `(0, 1]`.
        target_fraction: f64,
    },
}

impl DefenseSpec {
    /// The row label of this variant: the mechanism name plus its
    /// parameters, so duel artefacts stay self-describing.
    pub fn label(&self) -> String {
        match self {
            DefenseSpec::Null => "none".into(),
            DefenseSpec::InducedChurn { rate } => format!("induced-churn@{rate}"),
            DefenseSpec::IncarnationRefresh {
                period,
                detection_prob,
            } => format!("refresh@{period}:{detection_prob}"),
            DefenseSpec::AdaptiveClusterSize { target_fraction } => {
                format!("adaptive@{target_fraction}")
            }
        }
    }

    /// Materializes the defense. The trait object is `Send + Sync` so a
    /// built defense can be consulted concurrently by the sharded DES
    /// engine (every shipped mechanism is plain immutable data).
    ///
    /// # Errors
    ///
    /// Propagates the mechanism constructors' validation.
    pub fn build(&self) -> Result<Box<dyn Defense + Send + Sync>, DefenseError> {
        Ok(match self {
            DefenseSpec::Null => Box::new(NullDefense::new()),
            DefenseSpec::InducedChurn { rate } => Box::new(InducedChurn::new(*rate)?),
            DefenseSpec::IncarnationRefresh {
                period,
                detection_prob,
            } => Box::new(IncarnationRefresh::new(*period, *detection_prob)?),
            DefenseSpec::AdaptiveClusterSize { target_fraction } => {
                Box::new(AdaptiveClusterSize::new(*target_fraction)?)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pollux_adversary::ClusterView;

    #[test]
    fn labels_are_self_describing_and_unique() {
        let specs = [
            DefenseSpec::Null,
            DefenseSpec::InducedChurn { rate: 0.1 },
            DefenseSpec::IncarnationRefresh {
                period: 10.0,
                detection_prob: 0.5,
            },
            DefenseSpec::AdaptiveClusterSize {
                target_fraction: 0.5,
            },
        ];
        let labels: Vec<String> = specs.iter().map(DefenseSpec::label).collect();
        assert_eq!(
            labels,
            vec![
                "none",
                "induced-churn@0.1",
                "refresh@10:0.5",
                "adaptive@0.5"
            ]
        );
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn build_round_trips_the_mechanisms() {
        let view = ClusterView::new(7, 7, 3, 3, 1).unwrap();
        let churn = DefenseSpec::InducedChurn { rate: 0.2 }.build().unwrap();
        assert_eq!(churn.induced_churn(&view), 0.2);
        let refresh = DefenseSpec::IncarnationRefresh {
            period: 5.0,
            detection_prob: 1.0,
        }
        .build()
        .unwrap();
        assert!((refresh.refresh_eviction(&view) - 0.2).abs() < 1e-15);
        let adaptive = DefenseSpec::AdaptiveClusterSize {
            target_fraction: 0.5,
        }
        .build()
        .unwrap();
        assert_eq!(adaptive.spare_setpoint(&view), Some(4));
        assert_eq!(DefenseSpec::Null.build().unwrap().name(), "none");
    }

    #[test]
    fn build_propagates_validation() {
        assert!(DefenseSpec::InducedChurn { rate: 1.5 }.build().is_err());
        assert!(DefenseSpec::IncarnationRefresh {
            period: 0.0,
            detection_prob: 0.5
        }
        .build()
        .is_err());
        assert!(DefenseSpec::AdaptiveClusterSize {
            target_fraction: 0.0
        }
        .build()
        .is_err());
    }
}
