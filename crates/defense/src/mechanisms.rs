//! The four concrete countermeasures of the duel engine.

use pollux_adversary::ClusterView;

use crate::{Defense, DefenseError};

/// The do-nothing baseline: every hook returns its neutral element, so
/// engines given a `NullDefense` produce bit-identical artefacts to
/// defense-free runs (this is test-enforced at the repository level).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullDefense;

impl NullDefense {
    /// Creates the null defense.
    pub fn new() -> Self {
        NullDefense
    }
}

impl Defense for NullDefense {
    fn name(&self) -> &'static str {
        "none"
    }
}

/// Induced churn: the overlay operator forces a uniformly chosen member of
/// a cluster to re-join elsewhere on a fraction `rate` of that cluster's
/// churn events.
///
/// A forced eviction is a protocol-level membership revocation, so —
/// unlike the voluntary departures of the base model — a valid malicious
/// member cannot refuse it. This directly drains the self-loop that keeps
/// polluted cores polluted: the adversary's captured seats are recycled
/// through the honest maintenance redraw at rate
/// `rate · x / (C + s)` per event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InducedChurn {
    rate: f64,
}

impl InducedChurn {
    /// Creates the defense with per-event preemption probability
    /// `rate ∈ [0, 1)`.
    ///
    /// # Errors
    ///
    /// [`DefenseError::OutOfRange`] for a rate outside `[0, 1)`.
    pub fn new(rate: f64) -> Result<Self, DefenseError> {
        if !(0.0..1.0).contains(&rate) {
            return Err(DefenseError::OutOfRange(format!(
                "induced-churn rate = {rate} outside [0, 1)"
            )));
        }
        Ok(InducedChurn { rate })
    }

    /// The per-event preemption probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Defense for InducedChurn {
    fn name(&self) -> &'static str {
        "induced-churn"
    }

    fn induced_churn(&self, _view: &ClusterView) -> f64 {
        self.rate
    }
}

/// Incarnation refresh: identifiers must periodically re-certify, and a
/// malicious identifier fails the check with probability `detection_prob`.
///
/// A sweep reaches a given cluster once per `period` events on average,
/// so per event a malicious identifier is evicted by the defense with
/// hazard `detection_prob / period`; that folds into Property 1 as
/// `d_eff = d · (1 − detection_prob / period)` — the defense literally
/// shortens the adversary's incarnation lifetimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncarnationRefresh {
    period: f64,
    detection_prob: f64,
}

impl IncarnationRefresh {
    /// Creates the defense: a refresh sweep every `period ≥ 1` events
    /// (per cluster, on average) catching a malicious identifier with
    /// probability `detection_prob ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// [`DefenseError::OutOfRange`] for `period < 1`, a non-finite period,
    /// or a detection probability outside `[0, 1]`.
    pub fn new(period: f64, detection_prob: f64) -> Result<Self, DefenseError> {
        if !period.is_finite() || period < 1.0 {
            return Err(DefenseError::OutOfRange(format!(
                "refresh period = {period} must be a finite value ≥ 1"
            )));
        }
        if !(0.0..=1.0).contains(&detection_prob) {
            return Err(DefenseError::OutOfRange(format!(
                "detection probability = {detection_prob} outside [0, 1]"
            )));
        }
        Ok(IncarnationRefresh {
            period,
            detection_prob,
        })
    }

    /// Mean events between refresh sweeps of one cluster.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Probability a sweep catches (and evicts) a malicious identifier.
    pub fn detection_prob(&self) -> f64 {
        self.detection_prob
    }
}

impl Defense for IncarnationRefresh {
    fn name(&self) -> &'static str {
        "incarnation-refresh"
    }

    fn refresh_eviction(&self, _view: &ClusterView) -> f64 {
        self.detection_prob / self.period
    }
}

/// Cluster-size adaptation: a soft setpoint on the spare size at
/// `⌈target_fraction · Δ⌉`, enforced by the engines' linear join-admission
/// taper above it.
///
/// Keeping spare sets small starves the two levers Rule 2 plays against
/// the split boundary (join stuffing and split dodging) and shortens
/// cluster lifetimes, trading a higher merge rate for less accumulated
/// exposure per cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveClusterSize {
    target_fraction: f64,
}

impl AdaptiveClusterSize {
    /// Creates the defense with a setpoint at
    /// `max(1, round(target_fraction · Δ))`, `target_fraction ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// [`DefenseError::OutOfRange`] for a fraction outside `(0, 1]`.
    pub fn new(target_fraction: f64) -> Result<Self, DefenseError> {
        if !(target_fraction > 0.0 && target_fraction <= 1.0) {
            return Err(DefenseError::OutOfRange(format!(
                "target fraction = {target_fraction} outside (0, 1]"
            )));
        }
        Ok(AdaptiveClusterSize { target_fraction })
    }

    /// The setpoint fraction of `Δ`.
    pub fn target_fraction(&self) -> f64 {
        self.target_fraction
    }

    /// The absolute setpoint for a cluster with spare bound `Δ`.
    pub fn setpoint(&self, max_spare: usize) -> usize {
        ((self.target_fraction * max_spare as f64).round() as usize).max(1)
    }
}

impl Defense for AdaptiveClusterSize {
    fn name(&self) -> &'static str {
        "adaptive-cluster-size"
    }

    fn spare_setpoint(&self, view: &ClusterView) -> Option<usize> {
        Some(self.setpoint(view.max_spare()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{effective_join_admission, effective_survival};

    fn view(s: usize, x: usize, y: usize) -> ClusterView {
        ClusterView::new(7, 7, s, x, y).unwrap()
    }

    #[test]
    fn null_defense_is_neutral_everywhere() {
        let d = NullDefense::new();
        for s in 1..7 {
            let v = view(s, 3, 1);
            assert_eq!(d.join_admission(&v), 1.0);
            assert_eq!(d.induced_churn(&v), 0.0);
            assert_eq!(d.refresh_eviction(&v), 0.0);
            assert_eq!(d.spare_setpoint(&v), None);
            // The folds return the untouched bit patterns.
            assert_eq!(effective_join_admission(&d, &v), 1.0);
            assert_eq!(effective_survival(&d, &v, 0.9).to_bits(), 0.9f64.to_bits());
        }
        assert_eq!(d.name(), "none");
    }

    #[test]
    fn induced_churn_validates_and_reports_its_rate() {
        assert!(InducedChurn::new(-0.1).is_err());
        assert!(InducedChurn::new(1.0).is_err());
        let d = InducedChurn::new(0.25).unwrap();
        assert_eq!(d.rate(), 0.25);
        assert_eq!(d.induced_churn(&view(3, 3, 1)), 0.25);
        assert_eq!(d.name(), "induced-churn");
    }

    #[test]
    fn incarnation_refresh_folds_into_survival() {
        assert!(IncarnationRefresh::new(0.5, 0.5).is_err());
        assert!(IncarnationRefresh::new(10.0, 1.5).is_err());
        assert!(IncarnationRefresh::new(f64::NAN, 0.5).is_err());
        let d = IncarnationRefresh::new(10.0, 0.5).unwrap();
        assert_eq!(d.period(), 10.0);
        assert_eq!(d.detection_prob(), 0.5);
        let v = view(3, 3, 1);
        assert!((d.refresh_eviction(&v) - 0.05).abs() < 1e-15);
        assert!((effective_survival(&d, &v, 0.9) - 0.9 * 0.95).abs() < 1e-15);
    }

    #[test]
    fn adaptive_size_tapers_admission_above_its_setpoint() {
        assert!(AdaptiveClusterSize::new(0.0).is_err());
        assert!(AdaptiveClusterSize::new(1.2).is_err());
        let d = AdaptiveClusterSize::new(0.5).unwrap();
        assert_eq!(d.setpoint(7), 4);
        assert_eq!(d.setpoint(2), 1);
        assert_eq!(effective_join_admission(&d, &view(4, 0, 0)), 1.0);
        assert!((effective_join_admission(&d, &view(6, 0, 0)) - 1.0 / 3.0).abs() < 1e-15);
        // Full fraction keeps the setpoint at Δ: inert.
        let full = AdaptiveClusterSize::new(1.0).unwrap();
        assert_eq!(effective_join_admission(&full, &view(6, 0, 0)), 1.0);
    }
}
