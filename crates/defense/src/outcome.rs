/// The report of one adversary-vs-defense duel: analytical and measured
/// steady-state pollution side by side.
///
/// Produced by `pollux::duel::run_duel` (and consumed by the sweep
/// engine's `Duel` output kind): the analytical side evaluates the
/// defense-modified Markov chain through the sparse pipeline, the
/// measured side runs the regeneration-mode whole-overlay discrete-event
/// simulation, and [`DefenseOutcome::agrees`] records whether the
/// analytical value falls inside the renewal-adjusted Wilson interval of
/// the measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct DefenseOutcome {
    /// The defense's identifier ([`crate::Defense::name`]).
    pub defense: String,
    /// Analytical `E(T_S)` under the defense (events per renewal cycle).
    pub analytic_safe_events: f64,
    /// Analytical `E(T_P)` under the defense.
    pub analytic_polluted_events: f64,
    /// Analytical long-run safe fraction (renewal–reward).
    pub analytic_safe: f64,
    /// Analytical long-run polluted fraction (renewal–reward) — the duel's
    /// headline number.
    pub analytic_polluted: f64,
    /// Measured long-run polluted fraction (regeneration-mode DES, share
    /// of events landing on polluted clusters).
    pub des_polluted: f64,
    /// Lower edge of the measurement's renewal-adjusted Wilson interval.
    pub des_lo: f64,
    /// Upper edge of the interval.
    pub des_hi: f64,
    /// Analytical polluted fraction of the *undefended* model (the
    /// [`crate::NullDefense`] baseline this duel is compared against).
    pub baseline_polluted: f64,
    /// Churn events the measurement processed.
    pub events: u64,
    /// Completed renewal (absorption → regeneration) cycles observed.
    pub cycles: u64,
    /// `true` when `analytic_polluted ∈ [des_lo, des_hi]`.
    pub agrees: bool,
}

impl DefenseOutcome {
    /// Relative reduction of the analytical steady-state polluted fraction
    /// vs the undefended baseline (`0` for a pollution-free baseline,
    /// negative when the defense backfires).
    pub fn reduction(&self) -> f64 {
        if self.baseline_polluted > 0.0 {
            1.0 - self.analytic_polluted / self.baseline_polluted
        } else {
            0.0
        }
    }

    /// `true` when the measured interval sits strictly below the baseline
    /// — the defense **measurably** (not just analytically) reduces
    /// steady-state pollution.
    pub fn measurably_improves(&self) -> bool {
        self.des_hi < self.baseline_polluted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(analytic: f64, baseline: f64, lo: f64, hi: f64) -> DefenseOutcome {
        DefenseOutcome {
            defense: "test".into(),
            analytic_safe_events: 10.0,
            analytic_polluted_events: 1.0,
            analytic_safe: 0.8,
            analytic_polluted: analytic,
            des_polluted: (lo + hi) / 2.0,
            des_lo: lo,
            des_hi: hi,
            baseline_polluted: baseline,
            events: 1000,
            cycles: 80,
            agrees: analytic >= lo && analytic <= hi,
        }
    }

    #[test]
    fn reduction_is_relative_to_the_baseline() {
        let o = outcome(0.02, 0.08, 0.015, 0.025);
        assert!((o.reduction() - 0.75).abs() < 1e-12);
        assert!(o.agrees);
        assert!(o.measurably_improves());
    }

    #[test]
    fn clean_baseline_reports_zero_reduction() {
        let o = outcome(0.0, 0.0, 0.0, 0.001);
        assert_eq!(o.reduction(), 0.0);
        assert!(!o.measurably_improves());
    }

    #[test]
    fn a_backfiring_defense_has_negative_reduction() {
        let o = outcome(0.1, 0.05, 0.09, 0.11);
        assert!(o.reduction() < 0.0);
        assert!(!o.measurably_improves());
    }
}
