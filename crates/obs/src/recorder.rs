//! The [`Recorder`] trait instrumented loops are generic over, its no-op
//! implementation [`NullRecorder`], and the real [`MetricsRecorder`].
//!
//! The zero-cost story has two independent layers:
//!
//! 1. **Monomorphization** — hot loops take `R: Recorder`; with
//!    [`NullRecorder`] every call inlines to an empty body and the loop
//!    compiles to the uninstrumented machine code. Public entry points
//!    that do not ask for observation pass `NullRecorder`, so existing
//!    callers pay nothing regardless of cargo features.
//! 2. **The `metrics` cargo feature** — even [`MetricsRecorder`]'s
//!    bodies are compiled out without the feature, so a metrics-off
//!    build carries no recording code at all and accidental use of the
//!    real recorder in a hot path cannot cost anything.
//!
//! In *both* configurations every implementation is inert: no RNG, no
//! effect on control flow, consulted only after an event's effects are
//! committed.

use crate::metrics::Registry;
use crate::trace::{DesEventKind, TraceRing};

/// The instrumentation interface. Every method has an `#[inline]` no-op
/// default body, so implementors override only what they record and
/// [`NullRecorder`] is just `impl Recorder for NullRecorder {}`.
#[allow(unused_variables)]
pub trait Recorder {
    /// Adds `delta` to the monotonic counter `key`.
    #[inline]
    fn add(&mut self, key: &'static str, delta: u64) {}

    /// Records `value` into the log₂ histogram `key`.
    #[inline]
    fn observe(&mut self, key: &'static str, value: u64) {}

    /// Raises the high-water gauge `key` to at least `value`.
    #[inline]
    fn high_water(&mut self, key: &'static str, value: u64) {}

    /// Records a completed span of `seconds` under `key`.
    #[inline]
    fn span(&mut self, key: &'static str, seconds: f64) {}

    /// Appends a DES trace record (time, cluster, event kind, post-event
    /// x/y state) to the bounded ring buffer, if one is attached.
    #[inline]
    fn trace(&mut self, time: f64, cluster: u32, kind: DesEventKind, x: u32, y: u32) {}

    /// `true` when this recorder actually records — lets call sites skip
    /// *assembling* expensive inputs (never required for correctness).
    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// The no-op recorder: a zero-sized type whose every call disappears at
/// compile time. Loops monomorphized with it are byte-for-byte the
/// uninstrumented loops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// The real recorder: a [`Registry`] of named metrics plus an optional
/// bounded [`TraceRing`]. Without the `metrics` cargo feature its
/// recording bodies are compiled out and it behaves exactly like
/// [`NullRecorder`] (the registry stays empty, `is_enabled()` is false).
///
/// One instance is owned per instrumented loop (per DES shard, per sweep
/// worker); the spawning layer merges the registries afterwards in a
/// fixed order via [`Registry::merge`].
#[derive(Debug, Clone, Default)]
pub struct MetricsRecorder {
    registry: Registry,
    trace: Option<TraceRing>,
}

impl MetricsRecorder {
    /// A recorder with an empty registry and no tracer.
    #[must_use]
    pub fn new() -> Self {
        MetricsRecorder {
            registry: Registry::new(),
            trace: None,
        }
    }

    /// A recorder that additionally keeps the last `capacity` DES events
    /// in a ring buffer (capacity 0 means no tracer).
    #[must_use]
    pub fn with_trace(capacity: usize) -> Self {
        MetricsRecorder {
            registry: Registry::new(),
            trace: if capacity > 0 {
                Some(TraceRing::new(capacity))
            } else {
                None
            },
        }
    }

    /// The metrics recorded so far.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The event tracer, if one was attached.
    #[must_use]
    pub fn tracer(&self) -> Option<&TraceRing> {
        self.trace.as_ref()
    }

    /// Consumes the recorder, returning its parts for merging/export.
    #[must_use]
    pub fn into_parts(self) -> (Registry, Option<TraceRing>) {
        (self.registry, self.trace)
    }
}

impl Recorder for MetricsRecorder {
    #[inline]
    fn add(&mut self, key: &'static str, delta: u64) {
        #[cfg(feature = "metrics")]
        self.registry.add(key, delta);
        #[cfg(not(feature = "metrics"))]
        let _ = (key, delta);
    }

    #[inline]
    fn observe(&mut self, key: &'static str, value: u64) {
        #[cfg(feature = "metrics")]
        self.registry.observe(key, value);
        #[cfg(not(feature = "metrics"))]
        let _ = (key, value);
    }

    #[inline]
    fn high_water(&mut self, key: &'static str, value: u64) {
        #[cfg(feature = "metrics")]
        self.registry.high_water(key, value);
        #[cfg(not(feature = "metrics"))]
        let _ = (key, value);
    }

    #[inline]
    fn span(&mut self, key: &'static str, seconds: f64) {
        #[cfg(feature = "metrics")]
        self.registry.span(key, seconds);
        #[cfg(not(feature = "metrics"))]
        let _ = (key, seconds);
    }

    #[inline]
    fn trace(&mut self, time: f64, cluster: u32, kind: DesEventKind, x: u32, y: u32) {
        #[cfg(feature = "metrics")]
        if let Some(ring) = &mut self.trace {
            ring.push(time, cluster, kind, x, y);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = (time, cluster, kind, x, y);
    }

    #[inline]
    fn is_enabled(&self) -> bool {
        cfg!(feature = "metrics")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<R: Recorder>(rec: &mut R) -> u64 {
        let mut acc = 0u64;
        for i in 0..10u64 {
            acc = acc.wrapping_mul(31).wrapping_add(i);
            rec.add("iters", 1);
            rec.observe("acc_low", acc & 0xff);
            rec.high_water("acc_max", acc);
            rec.trace(i as f64, i as u32, DesEventKind::Join, 1, 0);
        }
        rec.span("drive", 0.25);
        acc
    }

    #[test]
    fn null_and_metrics_recorders_do_not_change_results() {
        let null = drive(&mut NullRecorder);
        let mut rec = MetricsRecorder::with_trace(4);
        let real = drive(&mut rec);
        assert_eq!(null, real);
    }

    #[test]
    fn metrics_recorder_population_matches_feature_flag() {
        let mut rec = MetricsRecorder::with_trace(4);
        drive(&mut rec);
        if crate::METRICS_ENABLED {
            assert!(rec.is_enabled());
            assert_eq!(rec.registry().counter("iters"), Some(10));
            assert_eq!(rec.registry().histogram("acc_low").unwrap().count(), 10);
            assert!(rec.registry().high_water_mark("acc_max").unwrap() > 0);
            assert_eq!(rec.registry().span_stats("drive").unwrap().count(), 1);
            // Ring capacity 4 keeps only the last 4 of 10 events.
            assert_eq!(rec.tracer().unwrap().len(), 4);
            assert_eq!(rec.tracer().unwrap().total_pushed(), 10);
        } else {
            assert!(!rec.is_enabled());
            assert!(rec.registry().is_empty());
            assert_eq!(rec.tracer().unwrap().len(), 0);
        }
    }

    #[test]
    fn null_recorder_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NullRecorder>(), 0);
        assert!(!NullRecorder.is_enabled());
    }
}
