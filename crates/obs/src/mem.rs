//! Memory accounting: process-level RSS readings from
//! `/proc/self/status` and exact analytic byte audits of the big
//! simulation data structures.
//!
//! The ROADMAP's scaling note is that *memory, not time, caps overlay
//! size*; this module is what turns that into numbers. Two complementary
//! sources:
//!
//! * [`peak_rss_bytes`] / [`current_rss_bytes`] — the kernel's view
//!   (`VmHWM` / `VmRSS`). Peak RSS is monotonic over the process
//!   lifetime, so in a multi-rung bench it reflects the largest rung run
//!   so far; the per-rung numbers come from the audits below.
//! * [`MemoryAudit`] — an exact, platform-independent byte count built
//!   from the same formulas the allocations use (node arena, hot
//!   records, event queue, membership tables), reported per structure
//!   and as **bytes per node** — the capacity-planning figure.

use std::fs;

/// Parses a `VmHWM:   12345 kB`-style line from `/proc/self/status`.
fn proc_status_kb(field: &str) -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let rest = rest.trim_start_matches(':').trim();
            let kb: u64 = rest.split_whitespace().next()?.parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Peak resident set size (`VmHWM`) of this process in bytes, or `None`
/// off-Linux / when `/proc` is unavailable. Monotonic over the process
/// lifetime.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_kb("VmHWM")
}

/// Current resident set size (`VmRSS`) of this process in bytes, or
/// `None` off-Linux / when `/proc` is unavailable.
#[must_use]
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_kb("VmRSS")
}

/// An exact byte audit of one run's simulation state, accumulated
/// structure by structure. Every figure is computed from the allocation
/// formulas (length × element size), not sampled, so audits are
/// identical across platforms and runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryAudit {
    entries: Vec<(&'static str, u64)>,
    nodes: u64,
}

impl MemoryAudit {
    /// An empty audit for a simulation over `nodes` nodes.
    #[must_use]
    pub fn new(nodes: u64) -> Self {
        MemoryAudit {
            entries: Vec::new(),
            nodes,
        }
    }

    /// Records `bytes` under `label`, accumulating on repeat labels
    /// (sharded runs add each shard's share).
    pub fn record(&mut self, label: &'static str, bytes: u64) {
        match self.entries.iter_mut().find(|(l, _)| *l == label) {
            Some((_, b)) => *b += bytes,
            None => self.entries.push((label, bytes)),
        }
    }

    /// Number of nodes this audit normalizes by.
    #[must_use]
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Total audited bytes across all structures.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|(_, b)| b).sum()
    }

    /// Audited bytes per node — the capacity-planning figure the
    /// ROADMAP's scaling item asks for (0 when `nodes` is 0).
    #[must_use]
    pub fn bytes_per_node(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / self.nodes as f64
        }
    }

    /// The audited bytes under `label`, if recorded.
    #[must_use]
    pub fn get(&self, label: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, b)| *b)
    }

    /// All entries sorted by label (the deterministic export order).
    #[must_use]
    pub fn sorted(&self) -> Vec<(&'static str, u64)> {
        let mut out = self.entries.clone();
        out.sort_by_key(|(l, _)| *l);
        out
    }

    /// The audit as a deterministic JSON object string: sorted structure
    /// keys plus `total_bytes`, `nodes` and `bytes_per_node`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (label, bytes) in self.sorted() {
            s.push_str(&format!("\"{label}\":{bytes},"));
        }
        s.push_str(&format!(
            "\"bytes_per_node\":{:?},\"nodes\":{},\"total_bytes\":{}}}",
            self.bytes_per_node(),
            self.nodes,
            self.total_bytes()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_readings_work_on_linux() {
        // The container runs Linux, so /proc must be readable and peak
        // must dominate current (both in plausible ranges).
        let peak = peak_rss_bytes().expect("VmHWM readable");
        let cur = current_rss_bytes().expect("VmRSS readable");
        assert!(peak >= cur);
        assert!(peak > 100 * 1024, "peak RSS implausibly small: {peak}");
    }

    #[test]
    fn audit_accumulates_and_normalizes() {
        let mut audit = MemoryAudit::new(1000);
        audit.record("arena", 5000);
        audit.record("queue", 2400);
        audit.record("arena", 5000); // second shard's share
        assert_eq!(audit.get("arena"), Some(10_000));
        assert_eq!(audit.total_bytes(), 12_400);
        assert!((audit.bytes_per_node() - 12.4).abs() < 1e-12);
        assert_eq!(audit.get("missing"), None);
        assert_eq!(MemoryAudit::new(0).bytes_per_node(), 0.0);
    }

    #[test]
    fn audit_json_is_sorted_and_deterministic() {
        let mut audit = MemoryAudit::new(10);
        audit.record("queue", 240);
        audit.record("arena", 50);
        assert_eq!(
            audit.to_json(),
            "{\"arena\":50,\"queue\":240,\"bytes_per_node\":29.0,\"nodes\":10,\"total_bytes\":290}"
        );
    }
}
