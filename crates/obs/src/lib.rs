//! `pollux-obs` — a deterministic, zero-cost-when-disabled
//! instrumentation layer for the Pollux reproduction.
//!
//! The workspace's standing guarantee is *byte-identical scenario output
//! at any thread/shard count*; an instrumentation layer must observe the
//! dynamics without perturbing that contract. This crate provides the
//! pieces, all of them **provably inert**: recorders draw no randomness,
//! never reorder events, and are consulted strictly *after* an event's
//! effects are committed, so a run with metrics on produces the same
//! bytes as a run with metrics off.
//!
//! * [`Recorder`] — the trait every instrumented loop is generic over.
//!   All methods have `#[inline]` no-op default bodies, so a loop
//!   monomorphized with [`NullRecorder`] compiles to exactly the
//!   uninstrumented machine code (the 4.5M events/s DES hot loop pays
//!   nothing when observation is off).
//! * [`MetricsRecorder`] — the real implementation: named monotonic
//!   [counters](Registry), log₂-bucketed [`Histogram`]s, [`SpanStats`]
//!   span timers, high-water gauges and a bounded ring-buffer
//!   [`TraceRing`] event tracer. Its recording bodies are additionally
//!   compiled out unless the `metrics` cargo feature is enabled — the
//!   feature-flag matrix is documented in `DESIGN.md`.
//! * [`Stopwatch`] — a span timer that is a zero-sized no-op without the
//!   `metrics` feature, so call sites need no `#[cfg]`.
//! * [`mem`] — memory accounting: peak/current RSS from
//!   `/proc/self/status` plus exact [`mem::MemoryAudit`] byte audits of
//!   the big simulation data structures (node arena, hot records, event
//!   queue, CSR matrices).
//! * [`ObsReport`] — a deterministic JSON sink (sorted keys, fixed
//!   formatting) for metrics sidecars written next to sweep artefacts
//!   and bench trajectories.
//!
//! # Inertness contract
//!
//! Instrumented code must uphold three rules, test-enforced at the
//! repository level (`tests/obs_inertness.rs`):
//!
//! 1. **No randomness** — a recorder never touches an RNG stream.
//! 2. **No reordering** — recording happens after an event's effects are
//!    committed; recorders cannot influence control flow.
//! 3. **No output coupling** — metrics land in sidecar files only;
//!    scenario TSV/JSON bytes are identical with recording on or off.
//!
//! # Example
//!
//! ```
//! use pollux_obs::{MetricsRecorder, NullRecorder, Recorder};
//!
//! fn hot_loop<R: Recorder>(rec: &mut R) -> u64 {
//!     let mut acc = 0;
//!     for i in 0..100u64 {
//!         acc += i;
//!         rec.add("loop.iterations", 1);
//!         rec.observe("loop.value", i);
//!     }
//!     acc
//! }
//!
//! // Identical results with the no-op and the real recorder…
//! assert_eq!(hot_loop(&mut NullRecorder), 4950);
//! let mut rec = MetricsRecorder::new();
//! assert_eq!(hot_loop(&mut rec), 4950);
//! // …and with the `metrics` feature on, the counters are populated.
//! if pollux_obs::METRICS_ENABLED {
//!     assert_eq!(rec.registry().counter("loop.iterations"), Some(100));
//! }
//! ```

pub mod mem;
mod metrics;
mod recorder;
mod report;
mod trace;

pub use metrics::{Histogram, Metric, Registry, SpanStats, HIST_BUCKETS};
pub use recorder::{MetricsRecorder, NullRecorder, Recorder};
pub use report::ObsReport;
pub use trace::{DesEventKind, TraceRecord, TraceRing};

/// `true` when the crate was compiled with the `metrics` cargo feature,
/// i.e. when [`MetricsRecorder`] and [`Stopwatch`] actually record.
/// Callers can branch on this to skip assembling expensive observation
/// inputs, but never need to: every recording path is safe (and inert)
/// in both configurations.
pub const METRICS_ENABLED: bool = cfg!(feature = "metrics");

/// A span timer whose cost is compiled out without the `metrics`
/// feature: [`Stopwatch::start`] is then a zero-sized constant and
/// [`Stopwatch::elapsed_s`] returns `0.0` without reading a clock, so
/// call sites need no `#[cfg]` and pay nothing when observation is off.
///
/// # Example
///
/// ```
/// let t = pollux_obs::Stopwatch::start();
/// let busy = t.elapsed_s(); // 0.0 unless the `metrics` feature is on
/// assert!(busy >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    #[cfg(feature = "metrics")]
    start: std::time::Instant,
}

impl Stopwatch {
    /// Starts the timer (a no-op constant without the `metrics` feature).
    #[inline]
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            #[cfg(feature = "metrics")]
            start: std::time::Instant::now(),
        }
    }

    /// Seconds since [`Stopwatch::start`]; `0.0` without the `metrics`
    /// feature.
    #[inline]
    #[must_use]
    pub fn elapsed_s(&self) -> f64 {
        #[cfg(feature = "metrics")]
        {
            self.start.elapsed().as_secs_f64()
        }
        #[cfg(not(feature = "metrics"))]
        {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_inert_when_disabled() {
        let t = Stopwatch::start();
        let s = t.elapsed_s();
        if METRICS_ENABLED {
            assert!(s >= 0.0);
        } else {
            assert_eq!(s, 0.0);
        }
    }
}
