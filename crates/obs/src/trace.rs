//! A bounded ring-buffer event tracer for the DES.
//!
//! Keeps the **last** `capacity` `(time, cluster, event-kind, x/y state)`
//! records of a run — enough for a post-mortem of a determinism or
//! estimator bug without unbounded memory — and exports them as JSONL
//! (one record per line, sorted keys, `{:?}`-formatted floats, matching
//! the repo's other hand-rolled writers).

use std::io::{self, Write};

/// The DES event taxonomy, mirroring the branches of the engine's
/// `churn_event` (join admitted/rejected, leave from core/spare,
/// self-loops) plus the engine-level transitions (induced eviction,
/// cluster regeneration, absorption).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesEventKind {
    /// A node joined the cluster (admitted to core or spare).
    Join,
    /// A join was rejected (cluster at capacity).
    JoinRejected,
    /// A node left the cluster (core or spare).
    Leave,
    /// A churn event that did not change the observable (x, y) state.
    SelfLoop,
    /// The defense evicted a node (induced churn).
    InducedEviction,
    /// The cluster was regenerated after polluting.
    Regeneration,
    /// The cluster reached an absorbing state and stopped.
    Absorption,
}

impl DesEventKind {
    /// The counter key this kind is tallied under, shared between the
    /// tracer and the per-shard registries so trace and counters agree.
    #[must_use]
    pub fn counter_key(self) -> &'static str {
        match self {
            DesEventKind::Join => "des.events.join",
            DesEventKind::JoinRejected => "des.events.join_rejected",
            DesEventKind::Leave => "des.events.leave",
            DesEventKind::SelfLoop => "des.events.self_loop",
            DesEventKind::InducedEviction => "des.events.induced_eviction",
            DesEventKind::Regeneration => "des.events.regeneration",
            DesEventKind::Absorption => "des.events.absorption",
        }
    }

    /// The JSONL `kind` field value.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DesEventKind::Join => "join",
            DesEventKind::JoinRejected => "join_rejected",
            DesEventKind::Leave => "leave",
            DesEventKind::SelfLoop => "self_loop",
            DesEventKind::InducedEviction => "induced_eviction",
            DesEventKind::Regeneration => "regeneration",
            DesEventKind::Absorption => "absorption",
        }
    }

    /// All kinds, in a fixed order (export/merge order).
    #[must_use]
    pub fn all() -> [DesEventKind; 7] {
        [
            DesEventKind::Join,
            DesEventKind::JoinRejected,
            DesEventKind::Leave,
            DesEventKind::SelfLoop,
            DesEventKind::InducedEviction,
            DesEventKind::Regeneration,
            DesEventKind::Absorption,
        ]
    }
}

/// One traced DES event: simulation time, cluster index, event kind and
/// the cluster's (x, y) composition *after* the event was applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Simulation time of the event.
    pub time: f64,
    /// Global cluster index.
    pub cluster: u32,
    /// What happened.
    pub kind: DesEventKind,
    /// Malicious nodes in the core after the event.
    pub x: u32,
    /// Honest spare nodes after the event.
    pub y: u32,
}

impl TraceRecord {
    /// The record as one JSONL line (no trailing newline), keys sorted.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"cluster\":{},\"kind\":\"{}\",\"time\":{:?},\"x\":{},\"y\":{}}}",
            self.cluster,
            self.kind.as_str(),
            self.time,
            self.x,
            self.y
        )
    }
}

/// A bounded ring buffer of [`TraceRecord`]s keeping the most recent
/// `capacity` events.
///
/// # Example
///
/// ```
/// use pollux_obs::{DesEventKind, TraceRing};
///
/// let mut ring = TraceRing::new(2);
/// for i in 0..5 {
///     ring.push(i as f64, i, DesEventKind::Join, 0, 0);
/// }
/// assert_eq!(ring.total_pushed(), 5);
/// // Only the last two survive, in chronological order.
/// let times: Vec<f64> = ring.iter_in_order().map(|r| r.time).collect();
/// assert_eq!(times, vec![3.0, 4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct TraceRing {
    records: Vec<TraceRecord>,
    capacity: usize,
    /// Next write position (wraps at `capacity`).
    head: usize,
    /// Total events ever pushed (so the export can report truncation).
    total: u64,
}

impl TraceRing {
    /// A ring keeping the last `capacity` records (`capacity ≥ 1`).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TraceRing capacity must be at least 1");
        TraceRing {
            records: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            total: 0,
        }
    }

    /// Appends a record, evicting the oldest when full.
    #[inline]
    pub fn push(&mut self, time: f64, cluster: u32, kind: DesEventKind, x: u32, y: u32) {
        let rec = TraceRecord {
            time,
            cluster,
            kind,
            x,
            y,
        };
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.records[self.head] = rec;
        }
        self.head = (self.head + 1) % self.capacity;
        self.total += 1;
    }

    /// Records currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The ring's capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total records ever pushed (including evicted ones).
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// The held records, oldest first.
    pub fn iter_in_order(&self) -> impl Iterator<Item = &TraceRecord> {
        let split = if self.records.len() < self.capacity {
            0 // not yet wrapped: storage order is chronological
        } else {
            self.head
        };
        self.records[split..]
            .iter()
            .chain(self.records[..split].iter())
    }

    /// Writes the held records as JSONL, oldest first.
    ///
    /// # Errors
    /// Propagates I/O errors from `w`.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for rec in self.iter_in_order() {
            writeln!(w, "{}", rec.to_jsonl())?;
        }
        Ok(())
    }

    /// Merges rings from several shards into one chronological record
    /// list, stable across shard boundaries (ties broken by shard order —
    /// the caller passes shards in shard-index order, the fixed merge
    /// order used everywhere in the workspace).
    #[must_use]
    pub fn merge_in_order(rings: &[&TraceRing]) -> Vec<TraceRecord> {
        let mut all: Vec<(usize, TraceRecord)> = Vec::new();
        for (shard, ring) in rings.iter().enumerate() {
            all.extend(ring.iter_in_order().map(|r| (shard, *r)));
        }
        // Stable sort by time only: equal times keep shard order.
        all.sort_by(|a, b| a.1.time.total_cmp(&b.1.time));
        all.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_before_wraparound_keeps_everything_in_order() {
        let mut ring = TraceRing::new(8);
        for i in 0..5 {
            ring.push(i as f64, i, DesEventKind::Leave, 1, 2);
        }
        assert_eq!(ring.len(), 5);
        assert_eq!(ring.total_pushed(), 5);
        let times: Vec<f64> = ring.iter_in_order().map(|r| r.time).collect();
        assert_eq!(times, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn ring_wraparound_keeps_last_capacity_records() {
        let mut ring = TraceRing::new(3);
        for i in 0..10 {
            ring.push(i as f64, i, DesEventKind::Join, 0, 0);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_pushed(), 10);
        let times: Vec<f64> = ring.iter_in_order().map(|r| r.time).collect();
        assert_eq!(times, vec![7.0, 8.0, 9.0]);
        // Exactly at a multiple of capacity the head is back at 0.
        let mut ring = TraceRing::new(4);
        for i in 0..8 {
            ring.push(i as f64, 0, DesEventKind::Join, 0, 0);
        }
        let times: Vec<f64> = ring.iter_in_order().map(|r| r.time).collect();
        assert_eq!(times, vec![4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn jsonl_export_is_deterministic_and_sorted_keys() {
        let mut ring = TraceRing::new(2);
        ring.push(0.5, 3, DesEventKind::InducedEviction, 2, 1);
        let mut out = Vec::new();
        ring.write_jsonl(&mut out).unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "{\"cluster\":3,\"kind\":\"induced_eviction\",\"time\":0.5,\"x\":2,\"y\":1}\n"
        );
    }

    #[test]
    fn merge_in_order_is_chronological_and_shard_stable() {
        let mut a = TraceRing::new(4);
        a.push(1.0, 0, DesEventKind::Join, 0, 0);
        a.push(3.0, 0, DesEventKind::Leave, 0, 0);
        let mut b = TraceRing::new(4);
        b.push(2.0, 1, DesEventKind::Join, 0, 0);
        b.push(3.0, 1, DesEventKind::Leave, 0, 0);
        let merged = TraceRing::merge_in_order(&[&a, &b]);
        let order: Vec<(f64, u32)> = merged.iter().map(|r| (r.time, r.cluster)).collect();
        // Tie at t=3.0 resolves to shard order (cluster 0 before 1).
        assert_eq!(order, vec![(1.0, 0), (2.0, 1), (3.0, 0), (3.0, 1)]);
    }

    #[test]
    fn counter_keys_are_unique() {
        let keys: Vec<&str> = DesEventKind::all()
            .iter()
            .map(|k| k.counter_key())
            .collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
    }
}
