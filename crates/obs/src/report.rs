//! [`ObsReport`] — the deterministic JSON sink for metrics sidecars.
//!
//! A report bundles a merged [`Registry`], optional [`MemoryAudit`] and
//! free-form scalar fields, and renders them as pretty-printed JSON with
//! **sorted keys and fixed float formatting** (`{:?}`, like every other
//! hand-rolled writer in the workspace), so a sidecar's bytes depend
//! only on the recorded values — never on recording order or platform.
//! Sidecars are written *next to* scenario artefacts, never into them:
//! the TSV/JSON outputs a sweep produces are byte-identical with
//! observation on or off.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::mem::MemoryAudit;
use crate::metrics::{Metric, Registry};

/// A metrics sidecar: scalar context fields, a merged metric registry
/// and an optional memory audit, rendered as deterministic JSON.
///
/// # Example
///
/// ```
/// use pollux_obs::{ObsReport, Registry};
///
/// let mut reg = Registry::new();
/// reg.add("events", 42);
/// let mut report = ObsReport::new("demo");
/// report.set_f64("wall_s", 1.5);
/// report.set_u64("threads", 2);
/// report.merge_registry(&reg);
/// let json = report.to_json();
/// assert!(json.contains("\"scenario\": \"demo\""));
/// assert!(json.contains("\"events\": 42"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObsReport {
    scenario: String,
    fields: Vec<(String, String)>,
    registry: Registry,
    memory: Option<MemoryAudit>,
}

impl ObsReport {
    /// An empty report for `scenario`.
    #[must_use]
    pub fn new(scenario: &str) -> Self {
        ObsReport {
            scenario: scenario.to_string(),
            fields: Vec::new(),
            registry: Registry::new(),
            memory: None,
        }
    }

    /// Sets (or replaces) a scalar float field.
    pub fn set_f64(&mut self, key: &str, value: f64) {
        self.set_raw(key, format!("{value:?}"));
    }

    /// Sets (or replaces) a scalar integer field.
    pub fn set_u64(&mut self, key: &str, value: u64) {
        self.set_raw(key, value.to_string());
    }

    /// Sets (or replaces) a scalar string field.
    pub fn set_str(&mut self, key: &str, value: &str) {
        self.set_raw(key, format!("\"{value}\""));
    }

    fn set_raw(&mut self, key: &str, rendered: String) {
        match self.fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = rendered,
            None => self.fields.push((key.to_string(), rendered)),
        }
    }

    /// Merges `reg` into the report's registry (fixed caller order, as
    /// everywhere).
    pub fn merge_registry(&mut self, reg: &Registry) {
        self.registry.merge(reg);
    }

    /// Attaches a memory audit.
    pub fn set_memory(&mut self, audit: MemoryAudit) {
        self.memory = Some(audit);
    }

    /// The merged registry (for assertions in tests).
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Renders the report as pretty-printed JSON with sorted keys inside
    /// every object and `{:?}` float formatting.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"scenario\": \"{}\",", self.scenario);

        // Scalar context fields, sorted.
        let mut fields = self.fields.clone();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        for (k, v) in &fields {
            let _ = writeln!(s, "  \"{k}\": {v},");
        }

        // Metrics grouped by kind, each group key-sorted.
        s.push_str("  \"metrics\": {\n");
        let sorted = self.registry.sorted();
        for (i, (key, metric)) in sorted.iter().enumerate() {
            let comma = if i + 1 < sorted.len() { "," } else { "" };
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(s, "    \"{key}\": {c}{comma}");
                }
                Metric::HighWater(hw) => {
                    let _ = writeln!(s, "    \"{key}\": {hw}{comma}");
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        s,
                        "    \"{key}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:?}, \"buckets\": [",
                        h.count(),
                        h.sum(),
                        h.max(),
                        h.mean()
                    );
                    for (j, (lo, hi, n)) in h.nonzero_buckets().iter().enumerate() {
                        if j > 0 {
                            s.push_str(", ");
                        }
                        let _ = write!(s, "[{lo}, {hi}, {n}]");
                    }
                    let _ = writeln!(s, "]}}{comma}");
                }
                Metric::Span(sp) => {
                    let _ = writeln!(
                        s,
                        "    \"{key}\": {{\"count\": {}, \"total_s\": {:?}, \"min_s\": {:?}, \"max_s\": {:?}, \"mean_s\": {:?}, \"variance\": {:?}}}{comma}",
                        sp.count(),
                        sp.total(),
                        sp.min(),
                        sp.max(),
                        sp.mean(),
                        sp.variance()
                    );
                }
            }
        }
        s.push_str("  }");

        if let Some(mem) = &self.memory {
            s.push_str(",\n  \"memory\": ");
            s.push_str(&mem.to_json());
        }
        s.push_str("\n}\n");
        s
    }

    /// Writes the report to `path`.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ObsReport {
        let mut reg = Registry::new();
        reg.add("z.counter", 7);
        reg.high_water("a.depth", 12);
        reg.observe("m.hist", 5);
        reg.observe("m.hist", 300);
        reg.span("m.span", 0.5);
        let mut report = ObsReport::new("unit");
        report.set_f64("wall_s", 2.25);
        report.set_u64("shards", 4);
        report.set_str("mode", "duel");
        report.merge_registry(&reg);
        let mut audit = MemoryAudit::new(100);
        audit.record("arena", 640);
        report.set_memory(audit);
        report
    }

    #[test]
    fn json_is_deterministic_and_key_sorted() {
        let a = sample_report().to_json();
        let b = sample_report().to_json();
        assert_eq!(a, b);
        // Scalar fields sorted: mode < shards < wall_s.
        let mode = a.find("\"mode\"").unwrap();
        let shards = a.find("\"shards\"").unwrap();
        let wall = a.find("\"wall_s\"").unwrap();
        assert!(mode < shards && shards < wall);
        // Metric keys sorted: a.depth < m.hist < m.span < z.counter.
        let d = a.find("\"a.depth\"").unwrap();
        let h = a.find("\"m.hist\"").unwrap();
        let sp = a.find("\"m.span\"").unwrap();
        let c = a.find("\"z.counter\"").unwrap();
        assert!(d < h && h < sp && sp < c);
        assert!(a.contains("\"memory\""));
        assert!(a.contains("\"bytes_per_node\":6.4"));
    }

    #[test]
    fn scalar_fields_replace_not_duplicate() {
        let mut r = ObsReport::new("x");
        r.set_u64("n", 1);
        r.set_u64("n", 2);
        let json = r.to_json();
        assert_eq!(json.matches("\"n\":").count(), 1);
        assert!(json.contains("\"n\": 2"));
    }

    #[test]
    fn write_json_round_trips_to_disk() {
        let dir = std::env::temp_dir().join("pollux_obs_report_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.metrics.json");
        let report = sample_report();
        report.write_json(&path).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), report.to_json());
        let _ = fs::remove_file(&path);
    }
}
