//! Metric primitives: monotonic counters, high-water gauges,
//! log₂-bucketed histograms, span-timer statistics, and the [`Registry`]
//! that holds them by name.
//!
//! Everything here is plain data — no atomics, no locks. Instrumented
//! loops own one registry each (one per DES shard, one per sweep
//! worker); the owner merges them afterwards **in a fixed order** (shard
//! order, cluster order), the same discipline the simulation outcome
//! merge uses, so merged statistics are deterministic for a given
//! partition.

/// Number of histogram buckets: one for zero plus one per bit width of a
/// `u64` value (bucket `i ≥ 1` covers `[2^(i−1), 2^i − 1]`).
pub const HIST_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucketing by bit width keeps recording branch-free and the bucket
/// array fixed-size: value `0` lands in bucket `0`, any other value `v`
/// in bucket `64 − v.leading_zeros()`. Count, sum and max are tracked
/// exactly, so means are exact and only quantiles are bucket-resolution
/// approximations.
///
/// # Example
///
/// ```
/// use pollux_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [0, 1, 2, 3, 4, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.max(), 1000);
/// assert_eq!(h.bucket(0), 1); // the zero
/// assert_eq!(h.bucket(1), 1); // 1
/// assert_eq!(h.bucket(2), 2); // 2, 3
/// assert_eq!(h.bucket(10), 1); // 1000 ∈ [512, 1023]
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index a value lands in.
    #[inline]
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The half-open value range `[lo, hi)` bucket `i` covers.
    #[must_use]
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), 1 << i),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupancy of bucket `i`.
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Upper bound (inclusive) of the bucket containing the `q`-quantile
    /// (`0 ≤ q ≤ 1`), a bucket-resolution approximation; `None` when
    /// empty.
    #[must_use]
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let (_, hi) = Self::bucket_range(i);
                return Some(hi.saturating_sub(1).max(if i == 0 { 0 } else { 1 }));
            }
        }
        Some(self.max)
    }

    /// Merges `other` into `self` (exact: element-wise integer sums).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(range_lo, range_hi_exclusive, count)`
    /// triples, in value order (the JSON export shape).
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b > 0)
            .map(|(i, &b)| {
                let (lo, hi) = Self::bucket_range(i);
                (lo, hi, b)
            })
            .collect()
    }
}

/// Moment statistics of a span timer (or any `f64` series): count, total,
/// min/max and a Welford mean/variance accumulator with the standard
/// parallel-merge identity.
///
/// Merging is **ordered**: `merge` is deterministic for a fixed merge
/// order, and the instrumented layers always merge in shard/cluster
/// order — the same rule the DES outcome merge follows — so merged spans
/// are reproducible for a given partition.
///
/// # Example
///
/// ```
/// use pollux_obs::SpanStats;
///
/// let mut all = SpanStats::new();
/// let (mut a, mut b) = (SpanStats::new(), SpanStats::new());
/// for (i, v) in [0.5, 1.5, 2.5, 3.5].iter().enumerate() {
///     all.record(*v);
///     if i < 2 { a.record(*v) } else { b.record(*v) }
/// }
/// a.merge(&b);
/// assert_eq!(a.count(), all.count());
/// assert!((a.mean() - all.mean()).abs() < 1e-15);
/// assert!((a.variance() - all.variance()).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanStats {
    count: u64,
    total: f64,
    min: f64,
    max: f64,
    mean: f64,
    m2: f64,
}

impl Default for SpanStats {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        SpanStats {
            count: 0,
            total: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Records one span (seconds, or any f64 measurement).
    #[inline]
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.total += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of spans recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all spans.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Smallest span (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest span (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean span (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 for fewer than two spans).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Merges `other` into `self` via Chan's parallel-update identity.
    /// Deterministic for a fixed merge order.
    pub fn merge(&mut self, other: &SpanStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.count += other.count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonic counter (merge: sum).
    Counter(u64),
    /// A high-water gauge (merge: max).
    HighWater(u64),
    /// A log₂ histogram (merge: element-wise sum).
    Histogram(Box<Histogram>),
    /// Span statistics (merge: ordered Welford merge).
    Span(SpanStats),
}

/// A named metric store owned by one instrumented loop.
///
/// Keys are `&'static str` so recording never allocates; lookup is a
/// linear scan with a pointer-equality fast path (instrumented loops use
/// a handful of interned literals, so the scan is a few comparisons).
/// Entries keep insertion order internally; every exported view is
/// sorted by key, so exports are deterministic regardless of recording
/// order.
///
/// # Example
///
/// ```
/// use pollux_obs::Registry;
///
/// let mut r = Registry::new();
/// r.add("events", 2);
/// r.add("events", 3);
/// r.high_water("depth", 7);
/// r.high_water("depth", 4);
/// assert_eq!(r.counter("events"), Some(5));
/// assert_eq!(r.high_water_mark("depth"), Some(7));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    entries: Vec<(&'static str, Metric)>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            entries: Vec::new(),
        }
    }

    fn slot(&mut self, key: &'static str) -> Option<usize> {
        self.entries
            .iter()
            .position(|(k, _)| std::ptr::eq(*k, key) || *k == key)
    }

    /// Adds `delta` to counter `key` (creating it at 0).
    #[inline]
    pub fn add(&mut self, key: &'static str, delta: u64) {
        match self.slot(key) {
            Some(i) => {
                if let Metric::Counter(c) = &mut self.entries[i].1 {
                    *c += delta;
                }
            }
            None => self.entries.push((key, Metric::Counter(delta))),
        }
    }

    /// Raises high-water gauge `key` to at least `value`.
    #[inline]
    pub fn high_water(&mut self, key: &'static str, value: u64) {
        match self.slot(key) {
            Some(i) => {
                if let Metric::HighWater(hw) = &mut self.entries[i].1 {
                    *hw = (*hw).max(value);
                }
            }
            None => self.entries.push((key, Metric::HighWater(value))),
        }
    }

    /// Records `value` into histogram `key`.
    #[inline]
    pub fn observe(&mut self, key: &'static str, value: u64) {
        match self.slot(key) {
            Some(i) => {
                if let Metric::Histogram(h) = &mut self.entries[i].1 {
                    h.record(value);
                }
            }
            None => {
                let mut h = Histogram::new();
                h.record(value);
                self.entries.push((key, Metric::Histogram(Box::new(h))));
            }
        }
    }

    /// Records a span of `seconds` under `key`.
    #[inline]
    pub fn span(&mut self, key: &'static str, seconds: f64) {
        match self.slot(key) {
            Some(i) => {
                if let Metric::Span(s) = &mut self.entries[i].1 {
                    s.record(seconds);
                }
            }
            None => {
                let mut s = SpanStats::new();
                s.record(seconds);
                self.entries.push((key, Metric::Span(s)));
            }
        }
    }

    /// The value of counter `key`, if present (and a counter).
    #[must_use]
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(|m| match m {
            Metric::Counter(c) => Some(*c),
            _ => None,
        })
    }

    /// The mark of high-water gauge `key`, if present.
    #[must_use]
    pub fn high_water_mark(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(|m| match m {
            Metric::HighWater(hw) => Some(*hw),
            _ => None,
        })
    }

    /// The histogram under `key`, if present.
    #[must_use]
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.get(key).and_then(|m| match m {
            Metric::Histogram(h) => Some(h.as_ref()),
            _ => None,
        })
    }

    /// The span statistics under `key`, if present.
    #[must_use]
    pub fn span_stats(&self, key: &str) -> Option<&SpanStats> {
        self.get(key).and_then(|m| match m {
            Metric::Span(s) => Some(s),
            _ => None,
        })
    }

    /// The metric under `key`, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Metric> {
        self.entries.iter().find(|(k, _)| *k == key).map(|(_, m)| m)
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of named metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Merges `other` into `self`, metric by metric: counters sum,
    /// high-water gauges max, histograms sum element-wise, spans merge in
    /// call order. The caller is responsible for a fixed merge order
    /// (shard 0, shard 1, …) — the same rule as the simulation outcome
    /// merge.
    pub fn merge(&mut self, other: &Registry) {
        for (key, metric) in &other.entries {
            match self.slot(key) {
                Some(i) => match (&mut self.entries[i].1, metric) {
                    (Metric::Counter(a), Metric::Counter(b)) => *a += b,
                    (Metric::HighWater(a), Metric::HighWater(b)) => *a = (*a).max(*b),
                    (Metric::Histogram(a), Metric::Histogram(b)) => a.merge(b),
                    (Metric::Span(a), Metric::Span(b)) => a.merge(b),
                    // A key recorded as two different metric kinds is a
                    // programming error; keep the first, drop the second.
                    _ => {}
                },
                None => self.entries.push((key, metric.clone())),
            }
        }
    }

    /// All metrics, sorted by key (the deterministic export order).
    #[must_use]
    pub fn sorted(&self) -> Vec<(&'static str, &Metric)> {
        let mut out: Vec<_> = self.entries.iter().map(|(k, m)| (*k, m)).collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries() {
        // Zero is its own bucket; powers of two open a new bucket.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 1..HIST_BUCKETS - 1 {
            let (lo, hi) = Histogram::bucket_range(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(
                Histogram::bucket_index(hi - 1),
                i,
                "upper edge of bucket {i}"
            );
            assert_eq!(hi, 2 * lo);
        }
    }

    #[test]
    fn histogram_moments_are_exact() {
        let mut h = Histogram::new();
        for v in [5u64, 0, 1023, 7, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1042);
        assert_eq!(h.max(), 1023);
        assert!((h.mean() - 208.4).abs() < 1e-12);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(3), 3); // 5, 7, 7 ∈ [4, 7]
        assert_eq!(h.bucket(10), 1); // 1023 ∈ [512, 1023]
    }

    #[test]
    fn histogram_merge_equals_pooled_recording() {
        let values: Vec<u64> = (0..1000).map(|i| (i * i * 2654435761) % 100_000).collect();
        let mut pooled = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            pooled.record(v);
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, pooled);
    }

    #[test]
    fn histogram_quantiles_bound_the_data() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(Histogram::new().quantile_bound(0.5), None);
        let median = h.quantile_bound(0.5).unwrap();
        // True median 500 ∈ [median bucket 9: 256..=511].
        assert!((500..=511).contains(&median), "median bound {median}");
        assert!(h.quantile_bound(1.0).unwrap() >= 1000);
    }

    #[test]
    fn span_merge_matches_sequential_push_in_order() {
        // Split a series at an arbitrary point; ordered merge must equal
        // the sequential accumulation to floating-point round-off.
        let xs: Vec<f64> = (0..200)
            .map(|i| ((i * 37) % 91) as f64 * 0.25 + 1.0)
            .collect();
        let mut seq = SpanStats::new();
        for &x in &xs {
            seq.record(x);
        }
        for split in [0usize, 1, 99, 199, 200] {
            let (mut a, mut b) = (SpanStats::new(), SpanStats::new());
            for &x in &xs[..split] {
                a.record(x);
            }
            for &x in &xs[split..] {
                b.record(x);
            }
            a.merge(&b);
            assert_eq!(a.count(), seq.count());
            assert!((a.total() - seq.total()).abs() < 1e-9);
            assert!((a.mean() - seq.mean()).abs() < 1e-12);
            assert!((a.variance() - seq.variance()).abs() < 1e-9);
            assert_eq!(a.min(), seq.min());
            assert_eq!(a.max(), seq.max());
        }
    }

    #[test]
    fn span_merge_is_deterministic_for_a_fixed_order() {
        // The cluster-order rule: merging [s0, s1, s2] left to right twice
        // gives bit-identical accumulators.
        let mk = |seed: u64| {
            let mut s = SpanStats::new();
            for i in 0..50 {
                s.record(((seed * 31 + i * 17) % 101) as f64 * 0.125);
            }
            s
        };
        let parts = [mk(1), mk(2), mk(3)];
        let fold = || {
            let mut acc = SpanStats::new();
            for p in &parts {
                acc.merge(p);
            }
            acc
        };
        assert_eq!(fold(), fold());
    }

    #[test]
    fn registry_round_trip_and_merge() {
        let mut a = Registry::new();
        a.add("ev", 10);
        a.high_water("q", 5);
        a.observe("h", 3);
        a.span("t", 0.5);
        let mut b = Registry::new();
        b.add("ev", 4);
        b.high_water("q", 2);
        b.observe("h", 900);
        b.span("t", 1.5);
        b.add("only_b", 1);
        a.merge(&b);
        assert_eq!(a.counter("ev"), Some(14));
        assert_eq!(a.high_water_mark("q"), Some(5));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h").unwrap().max(), 900);
        let t = a.span_stats("t").unwrap();
        assert_eq!(t.count(), 2);
        assert!((t.mean() - 1.0).abs() < 1e-15);
        assert_eq!(a.counter("only_b"), Some(1));
        assert_eq!(a.counter("missing"), None);
        // Sorted export order is key order, not insertion order.
        let keys: Vec<&str> = a.sorted().iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec!["ev", "h", "only_b", "q", "t"]);
    }
}
