//! Greedy scenario minimization: shrink a disagreeing scenario while
//! the **same oracle pair** keeps disagreeing.
//!
//! The shrinker applies a fixed list of moves (drop the defense, drop
//! the toggles, shrink `C`/`Δ`/`k`, halve the DES budget, …) in order,
//! repeating each move while it preserves the failure, and loops over
//! the list until a full pass accepts nothing. Every accepted candidate
//! re-runs only the failing pair ([`DiffRunner::run_pair`]), so a
//! shrink is much cheaper than a full verdict per step. The process is
//! fully deterministic — same scenario, same fault, same minimal
//! config.

use crate::runner::{DiffRunner, PairStatus};
use crate::scenario::{FuzzScenario, QueueBackendChoice, StrategyChoice, SweepKindChoice};
use pollux::InitialCondition;
use pollux_defense::DefenseSpec;

/// Result of a shrink: the minimal scenario and how many predicate
/// evaluations ([`DiffRunner::run_pair`] calls) it took.
#[derive(Debug, Clone, PartialEq)]
pub struct ShrinkOutcome {
    /// The smallest scenario still failing the pair.
    pub scenario: FuzzScenario,
    /// Predicate evaluations spent.
    pub attempts: usize,
}

/// One shrinking move: a strictly-smaller candidate, or `None` when the
/// field is already minimal.
type Move = fn(&FuzzScenario) -> Option<FuzzScenario>;

/// The move list, cheapest/most-structural first. Order matters only
/// for determinism and speed, not correctness — the outer loop runs to
/// a fixpoint.
const MOVES: [Move; 18] = [
    // Structural simplifications.
    |s| {
        (s.defense != DefenseSpec::Null).then(|| {
            let mut c = s.clone();
            c.defense = DefenseSpec::Null;
            c
        })
    },
    |s| {
        (s.strategy != StrategyChoice::Passive).then(|| {
            let mut c = s.clone();
            c.strategy = StrategyChoice::Passive;
            c
        })
    },
    |s| {
        (s.rule1 || s.rule2 || s.bias).then(|| {
            let mut c = s.clone();
            c.rule1 = false;
            c.rule2 = false;
            c.bias = false;
            c
        })
    },
    |s| {
        (s.initial != InitialCondition::Delta).then(|| {
            let mut c = s.clone();
            c.initial = InitialCondition::Delta;
            c
        })
    },
    |s| {
        (!s.sample_times.is_empty()).then(|| {
            let mut c = s.clone();
            c.sample_times.clear();
            c
        })
    },
    |s| {
        (s.warmup_events != 0).then(|| {
            let mut c = s.clone();
            c.warmup_events = 0;
            c
        })
    },
    |s| {
        (s.kind != SweepKindChoice::Sojourns).then(|| {
            let mut c = s.clone();
            c.kind = SweepKindChoice::Sojourns;
            c
        })
    },
    |s| {
        s.regenerate.then(|| {
            let mut c = s.clone();
            c.regenerate = false;
            c
        })
    },
    |s| {
        (s.queue != QueueBackendChoice::Heap).then(|| {
            let mut c = s.clone();
            c.queue = QueueBackendChoice::Heap;
            c
        })
    },
    |s| {
        s.steal.then(|| {
            let mut c = s.clone();
            c.steal = false;
            c.steal_skew = 0;
            c
        })
    },
    // Size minimization (the ISSUE's C, Δ, k, budget axes).
    |s| {
        (s.delta > 2).then(|| {
            let mut c = s.clone();
            c.delta -= 1;
            c
        })
    },
    |s| {
        (s.c > 1).then(|| {
            let mut c = s.clone();
            c.c -= 1;
            c.k = c.k.min(c.c);
            c
        })
    },
    |s| {
        (s.k > 1).then(|| {
            let mut c = s.clone();
            c.k -= 1;
            c
        })
    },
    |s| {
        (s.events_per_cluster > 50).then(|| {
            let mut c = s.clone();
            c.events_per_cluster = (c.events_per_cluster / 2).max(50);
            c.warmup_events = c.warmup_events.min(c.events_per_cluster / 2);
            c
        })
    },
    |s| {
        (s.cluster_bits > 2).then(|| {
            let mut c = s.clone();
            c.cluster_bits -= 1;
            c
        })
    },
    |s| {
        (s.shards > 2).then(|| {
            let mut c = s.clone();
            c.shards -= 1;
            c
        })
    },
    // Rate normalization.
    |s| {
        (s.mu != 0.0 || s.d != 0.0).then(|| {
            let mut c = s.clone();
            c.mu = 0.0;
            c.d = 0.0;
            c
        })
    },
    |s| {
        (s.nu != 0.1 || s.lambda != 1.0).then(|| {
            let mut c = s.clone();
            c.nu = 0.1;
            c.lambda = 1.0;
            c
        })
    },
];

/// Greedily minimizes `scenario` while `pair` (one of
/// [`crate::runner::PAIR_NAMES`]) still disagrees, spending at most
/// `max_attempts` predicate evaluations.
pub fn shrink(
    runner: &DiffRunner,
    scenario: &FuzzScenario,
    pair: &'static str,
    max_attempts: usize,
) -> ShrinkOutcome {
    let mut current = scenario.clone();
    let mut attempts = 0usize;
    let still_fails = |cand: &FuzzScenario, attempts: &mut usize| {
        *attempts += 1;
        runner.run_pair(cand, pair).status == PairStatus::Disagree
    };
    loop {
        let mut accepted_any = false;
        for mv in MOVES {
            while let Some(cand) = mv(&current) {
                if attempts >= max_attempts {
                    return ShrinkOutcome {
                        scenario: current,
                        attempts,
                    };
                }
                if still_fails(&cand, &mut attempts) {
                    current = cand;
                    accepted_any = true;
                } else {
                    break;
                }
            }
        }
        if !accepted_any {
            return ShrinkOutcome {
                scenario: current,
                attempts,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ScenarioGen;
    use crate::runner::{DiffRunner, Fault, PAIR_NAMES};

    /// The CSR fault fails `dense_vs_sparse` whenever it is injectable,
    /// so the shrinker must land on a local minimum that still fails,
    /// deterministically and within a bounded attempt count. The exact
    /// floor depends on the chain: below a certain size the sojourn
    /// metrics stop depending on any transition probability and the
    /// fault becomes uninjectable, so the shrinker is expected to stop
    /// just above that degeneracy line rather than at (1, 2, 1).
    #[test]
    fn shrinks_the_csr_fault_to_a_failing_minimum() {
        let runner = DiffRunner::with_fault(Fault::SparseCsrEntry);
        let mut gen = ScenarioGen::new(2011);
        let seed_scenario = loop {
            let s = gen.next_scenario();
            if runner.run_pair(&s, PAIR_NAMES[0]).status == PairStatus::Disagree {
                break s;
            }
        };
        let out = shrink(&runner, &seed_scenario, PAIR_NAMES[0], 300);
        assert!(out.attempts <= 300);
        let m = &out.scenario;
        // Every size axis shrank or held — never grew.
        assert!(m.c <= seed_scenario.c);
        assert!(m.delta <= seed_scenario.delta);
        assert!(m.k <= seed_scenario.k);
        assert!(m.events_per_cluster <= seed_scenario.events_per_cluster);
        assert!(m.cluster_bits <= seed_scenario.cluster_bits);
        assert!(m.shards <= seed_scenario.shards);
        // DES-side structure is irrelevant to this analytic pair, so the
        // structural moves must all have been accepted.
        assert_eq!(m.kind, SweepKindChoice::Sojourns);
        assert!(m.sample_times.is_empty());
        assert_eq!(m.warmup_events, 0);
        assert!(!m.regenerate);
        assert_eq!(m.queue, QueueBackendChoice::Heap);
        assert!(!m.steal);
        assert_eq!(m.steal_skew, 0);
        // And the minimum still fails.
        assert_eq!(
            runner.run_pair(m, PAIR_NAMES[0]).status,
            PairStatus::Disagree
        );
        // It is minimal: no single move produces a still-failing
        // scenario.
        let again = shrink(&runner, m, PAIR_NAMES[0], 300);
        assert_eq!(again.scenario, *m);
        // Determinism: shrinking again lands on the same minimum.
        let repeat = shrink(&runner, &seed_scenario, PAIR_NAMES[0], 300);
        assert_eq!(repeat, out);
    }
}
